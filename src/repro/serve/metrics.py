"""Serving-frontend metrics: connection lifecycle and shed decisions.

One :class:`ServeMetrics` instruments a serving frontend against the
run's unified :class:`~repro.obs.metrics.MetricsRegistry` — pass the
cluster's own registry (``simulator.metrics.registry``) and a single JSON
or Prometheus snapshot covers the whole stack, from admission door to
engine steps. The schema is declared up front in ``__init__`` (the same
convention :class:`~repro.cluster.metrics.ClusterMetrics` follows) so an
idle server still exports every serve metric at zero.

The parity contract (tests/test_serve_gateway.py): every count here is
observable identically through ``registry.to_json()`` and
``registry.render_prometheus()``.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry

TTFB_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)
"""Time-to-first-byte buckets (seconds of backend clock); serving tails
stretch past the generic latency buckets under queueing, hence the 30 s
top bucket."""


class ServeMetrics:
    """Per-tenant serving counters over a shared registry."""

    def __init__(self, registry: "MetricsRegistry | None" = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self.connections = r.counter(
            "serve_connections_total",
            "client connections opened at the serving frontend",
            labels=("tenant",),
        )
        self.admitted = r.counter(
            "serve_requests_admitted_total",
            "requests admitted past per-tenant admission control",
            labels=("tenant",),
        )
        self.shed = r.counter(
            "serve_requests_shed_total",
            "requests shed at the door, by tenant and reason",
            labels=("tenant", "reason"),
        )
        self.finished = r.counter(
            "serve_requests_finished_total",
            "streams that completed normally",
            labels=("tenant",),
        )
        self.client_cancels = r.counter(
            "serve_client_cancels_total",
            "streams ended by client cancel or disconnect",
            labels=("tenant",),
        )
        self.tokens_streamed = r.counter(
            "serve_tokens_streamed_total",
            "tokens delivered to clients over open streams",
        )
        self.active_connections = r.gauge(
            "serve_active_connections",
            "currently open client connections",
        )
        self.active_streams = r.gauge(
            "serve_active_streams",
            "admitted requests not yet finished or cancelled",
        )
        self.ttfb = r.histogram(
            "serve_ttfb_seconds",
            "submit-to-first-streamed-token time (backend clock)",
            buckets=TTFB_BUCKETS,
        )

    # ------------------------------------------------------------------
    def record_connect(self, tenant: str) -> None:
        self.connections.inc(tenant=tenant)
        self.active_connections.inc()

    def record_disconnect(self) -> None:
        self.active_connections.dec()

    def record_admitted(self, tenant: str) -> None:
        self.admitted.inc(tenant=tenant)
        self.active_streams.inc()

    def record_shed(self, tenant: str, reason: str) -> None:
        self.shed.inc(tenant=tenant, reason=reason)

    def record_first_token(self, ttfb_seconds: float) -> None:
        self.ttfb.observe(ttfb_seconds)

    def record_tokens(self, n: int) -> None:
        if n:
            self.tokens_streamed.inc(float(n))

    def record_end(self, tenant: str, cancelled: bool) -> None:
        """One admitted stream reached its terminal state."""
        if cancelled:
            self.client_cancels.inc(tenant=tenant)
        else:
            self.finished.inc(tenant=tenant)
        self.active_streams.dec()
