"""The serving gateway: admission control glued onto the cluster frontend.

:class:`ServeGateway` is the clock-agnostic core of the async serving
frontend — everything the server does *except* the asyncio plumbing.
Time flows only through ``now`` arguments, so the same gateway runs in
two modes:

* **deterministic** — driven by events on the simulator's own discrete
  event loop (the ``serve`` golden-trace scenario in
  :mod:`repro.obs.scenarios`): byte-identical traces under a fixed seed;
* **asyncio** — driven by :class:`~repro.serve.bridge.SimulatorBridge`,
  which pumps the virtual clock from a wall-clock task and feeds client
  submissions/cancels in as they arrive.

Responsibilities: per-tenant admission (:mod:`repro.serve.limits`),
connection-lifecycle tracing (CONNECT / DISCONNECT / SHED events with
``request_id=None`` — a shed connection never owns a request timeline),
serving metrics (:mod:`repro.serve.metrics`), and exactly-one
``release`` per admitted stream back to the controller.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.cluster.frontend import Frontend, RequestHandle, TokenCallback
from repro.obs.tracer import EventKind, Tracer
from repro.serve.limits import AdmissionController, Decision
from repro.serve.metrics import ServeMetrics


@dataclass
class OpenStream:
    """Gateway-side state of one admitted stream."""

    handle: RequestHandle
    tenant: str
    opened_at: float
    ttfb_observed: bool = False
    tokens_streamed: int = 0
    cancelled: bool = False
    finalized: bool = False
    extra: dict = field(default_factory=dict)
    """Owner scratch space (the bridge parks its asyncio queue here)."""

    @property
    def request_id(self) -> str:
        return self.handle.request_id


class ServeGateway:
    """Admission + lifecycle bookkeeping over a :class:`Frontend`."""

    def __init__(
        self,
        frontend: Frontend,
        controller: "AdmissionController | None" = None,
        metrics: "ServeMetrics | None" = None,
        tracer: "Tracer | None" = None,
    ):
        self.frontend = frontend
        self.controller = controller or AdmissionController()
        self.metrics = metrics
        self.tracer = tracer
        self._streams: "dict[str, OpenStream]" = {}
        self._conn_ids = itertools.count()

    # ------------------------------------------------------------------
    @property
    def simulator(self):
        return self.frontend.simulator

    def stream(self, request_id: str) -> OpenStream:
        return self._streams[request_id]

    def open_streams(self) -> "list[OpenStream]":
        return list(self._streams.values())

    # ------------------------------------------------------------------
    def open(
        self,
        tenant: str,
        lora_id: str,
        prompt_len: int,
        response_len: int,
        now: float,
        request_id: "str | None" = None,
        prompt_tokens: "list[int] | None" = None,
        on_token: "TokenCallback | None" = None,
    ) -> "tuple[OpenStream | None, Decision]":
        """One client stream request: admit into the cluster, or shed.

        On ADMIT the request is submitted to the simulator frontend at
        ``now`` (virtual clock) and an :class:`OpenStream` tracks it until
        :meth:`finalize`. On any other decision the connection is traced
        CONNECT -> SHED -> DISCONNECT and nothing reaches the scheduler.
        """
        rid = request_id or f"sv-{next(self._conn_ids):05d}"
        user_on_token = on_token
        if self.tracer is not None:
            self.tracer.emit(now, EventKind.CONNECT, conn=rid, tenant=tenant)
        if self.metrics is not None:
            self.metrics.record_connect(tenant)
        decision = self.controller.admit(tenant, now)
        if not decision.admitted:
            if self.tracer is not None:
                self.tracer.emit(
                    now, EventKind.SHED,
                    conn=rid, tenant=tenant, reason=decision.value,
                )
                self.tracer.emit(
                    now, EventKind.DISCONNECT,
                    conn=rid, tenant=tenant, cause="shed",
                )
            if self.metrics is not None:
                self.metrics.record_shed(tenant, decision.value)
                self.metrics.record_disconnect()
            return None, decision
        box: "list[OpenStream]" = []

        def hooked(req_id: str, token: int, t: float) -> None:
            # Tokens fire only inside the simulator's step events — after
            # this method has returned and filled the box. Accounting here
            # (not in the bridge) keeps the token/TTFB metrics identical
            # whichever transport drives the gateway.
            self.account_tokens(box[0], t)
            if user_on_token is not None:
                user_on_token(req_id, token, t)

        handle = self.frontend.submit(
            lora_id=lora_id,
            prompt_len=prompt_len,
            response_len=response_len,
            at_time=now,
            prompt_tokens=prompt_tokens,
            request_id=rid,
            on_token=hooked,
        )
        stream = OpenStream(handle=handle, tenant=tenant, opened_at=now)
        box.append(stream)
        self._streams[rid] = stream
        if self.metrics is not None:
            self.metrics.record_admitted(tenant)
        return stream, decision

    def client_close(self, request_id: str, now: float) -> None:
        """Client disconnected (or sent an explicit cancel) mid-stream.

        Propagates all the way down: frontend cancel -> simulator cancel
        -> engine eviction + queue drain, with a CANCEL trace event
        carrying ``reason="disconnect"`` at the engine boundary.
        """
        stream = self._streams.get(request_id)
        if stream is None or stream.finalized:
            return
        if not stream.handle.is_done():
            stream.cancelled = True
            self.frontend.cancel(request_id, reason="disconnect")
        self._finalize(stream, now, cause="client")

    def poll(self, now: float) -> "list[OpenStream]":
        """Finalize every open stream whose request reached a terminal
        state; returns them (the bridge pushes their end-of-stream
        sentinels). Deterministic: insertion order."""
        done = [
            s for s in self._streams.values()
            if not s.finalized and s.handle.is_done()
        ]
        for stream in done:
            self._finalize(stream, now, cause="served")
        return done

    def account_tokens(self, stream: OpenStream, now: float, n: int = 1) -> None:
        """Metrics for ``n`` newly streamed tokens (TTFB on the first)."""
        if self.metrics is not None:
            if not stream.ttfb_observed:
                self.metrics.record_first_token(max(0.0, now - stream.opened_at))
            self.metrics.record_tokens(n)
        stream.ttfb_observed = True
        stream.tokens_streamed += n

    # ------------------------------------------------------------------
    def _finalize(self, stream: OpenStream, now: float, cause: str) -> None:
        stream.finalized = True
        del self._streams[stream.request_id]
        self.controller.release(stream.tenant)
        if self.tracer is not None:
            self.tracer.emit(
                now, EventKind.DISCONNECT,
                conn=stream.request_id, tenant=stream.tenant, cause=cause,
            )
        if self.metrics is not None:
            self.metrics.record_end(stream.tenant, cancelled=stream.cancelled)
            self.metrics.record_disconnect()

    def drain(self, now: float) -> "list[OpenStream]":
        """Close every still-open stream (server shutdown): cancel
        in-flight requests and finalize. Returns the closed streams."""
        closed = []
        for stream in list(self._streams.values()):
            if not stream.handle.is_done():
                stream.cancelled = True
                self.frontend.cancel(stream.request_id, reason="disconnect")
            self._finalize(stream, now, cause="client")
            closed.append(stream)
        return closed
