"""Ready-made serving stacks: what ``repro serve`` / ``repro loadgen`` run.

Builders here assemble a complete serving frontend over either backend —
cluster simulator or functional NumPy engine — with one call, so the CLI,
the async test-suite and the CI load smoke all drive the identical stack
instead of three hand-rolled copies.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from repro.cluster.frontend import Frontend
from repro.cluster.scheduler import SchedulerConfig
from repro.cluster.simulator import ClusterSimulator
from repro.core.lora import LoraRegistry, random_lora_weights
from repro.models.config import LLAMA2_7B, tiny_config
from repro.models.weights import random_llama_weights
from repro.obs.tracer import Tracer
from repro.runtime.backend import NumpyBackend, SimulatedBackend
from repro.runtime.engine import EngineConfig, GpuEngine
from repro.serve.bridge import FunctionalBridge, SimulatorBridge
from repro.serve.client import LoadGenerator, LoadSpec, summarize
from repro.serve.gateway import ServeGateway
from repro.serve.limits import AdmissionController, TenantPolicy
from repro.serve.metrics import ServeMetrics
from repro.serve.server import ServeServer

DEFAULT_LORA_IDS = ("lora-0", "lora-1", "lora-2", "lora-3")
"""Adapters both builders provision; matches ``LoadSpec``'s default mix."""


@dataclass
class ServeStack:
    """One assembled serving frontend and its observability handles."""

    server: ServeServer
    bridge: "SimulatorBridge | FunctionalBridge"
    metrics: ServeMetrics
    tracer: "Tracer | None" = None


def default_policy() -> TenantPolicy:
    """Permissive default: the load smoke's compliant tenants fit under it."""
    return TenantPolicy(rate=500.0, burst=100.0, max_inflight=256)


def build_sim_stack(
    seed: int = 0,
    num_gpus: int = 2,
    max_batch_size: int = 8,
    step_overhead: float = 0.05,
    warp: "float | None" = None,
    quantum: float = 0.05,
    policy: "TenantPolicy | None" = None,
    tenant_policies: "dict[str, TenantPolicy] | None" = None,
    max_total_inflight: "int | None" = None,
    host: str = "127.0.0.1",
    port: int = 0,
) -> ServeStack:
    """Serving frontend over the (optionally time-warped) cluster simulator.

    ``seed`` is accepted for CLI symmetry; the simulated backend itself is
    deterministic, so the load mix (the client side) is where seeds matter.
    """
    del seed  # the simulated stack has no randomness of its own
    tracer = Tracer()
    engines = [
        GpuEngine(
            f"gpu{i:02d}",
            SimulatedBackend(LLAMA2_7B, step_overhead=step_overhead),
            EngineConfig(max_batch_size=max_batch_size),
        )
        for i in range(num_gpus)
    ]
    sim = ClusterSimulator(engines, SchedulerConfig(), tracer=tracer)
    metrics = ServeMetrics()
    gateway = ServeGateway(
        Frontend(sim),
        AdmissionController(
            default_policy=policy or default_policy(),
            tenant_policies=tenant_policies,
            max_total_inflight=max_total_inflight,
        ),
        metrics=metrics,
        tracer=tracer,
    )
    bridge = SimulatorBridge(gateway, warp=warp, quantum=quantum)
    return ServeStack(
        server=ServeServer(bridge, host=host, port=port),
        bridge=bridge, metrics=metrics, tracer=tracer,
    )


def build_functional_stack(
    seed: int = 0,
    max_batch_size: int = 8,
    lora_ids: "tuple[str, ...]" = DEFAULT_LORA_IDS,
    policy: "TenantPolicy | None" = None,
    max_total_inflight: "int | None" = None,
    host: str = "127.0.0.1",
    port: int = 0,
) -> ServeStack:
    """Serving frontend over one functional engine: real token ids from
    the tiny NumPy Llama, one registered adapter per tenant in the default
    load mix."""
    cfg = tiny_config(hidden_size=32, num_layers=1, num_heads=4, vocab_size=128)
    weights = random_llama_weights(cfg, seed=seed)
    registry = LoraRegistry()
    for i, lora_id in enumerate(lora_ids):
        registry.register(
            random_lora_weights(
                lora_id, cfg.num_layers, cfg.proj_dims(), 4, seed=seed + 50 + i
            )
        )
    backend = NumpyBackend(
        weights, registry, total_pages=256, page_size=4, lora_rank=4
    )
    engine = GpuEngine("gpu0", backend, EngineConfig(max_batch_size=max_batch_size))
    metrics = ServeMetrics()
    bridge = FunctionalBridge(
        engine,
        AdmissionController(
            default_policy=policy or default_policy(),
            max_total_inflight=max_total_inflight,
        ),
        metrics=metrics,
        vocab_size=cfg.vocab_size,
        seed=seed,
    )
    return ServeStack(
        server=ServeServer(bridge, host=host, port=port),
        bridge=bridge, metrics=metrics, tracer=None,
    )


def build_stack(backend: str, **kwargs) -> ServeStack:
    """Dispatch on backend name: ``"sim"`` or ``"functional"``."""
    if backend == "sim":
        return build_sim_stack(**kwargs)
    if backend == "functional":
        kwargs.pop("warp", None)
        kwargs.pop("num_gpus", None)
        return build_functional_stack(**kwargs)
    raise ValueError(f"unknown backend {backend!r}; pick 'sim' or 'functional'")


async def run_load(
    stack: ServeStack, spec: LoadSpec
) -> "tuple[dict, list]":
    """Start the stack, run one load spec against it, stop, summarize."""
    await stack.server.start()
    try:
        generator = LoadGenerator("127.0.0.1", stack.server.port, spec)
        results = await generator.run()
    finally:
        await stack.server.stop()
    return summarize(results), results


async def serve_until(
    stack: ServeStack, duration: "float | None" = None
) -> None:
    """Run the server until ``duration`` wall seconds pass (or forever)."""
    await stack.server.start()
    try:
        if duration is None:
            await stack.server.serve_forever()
        else:
            await asyncio.sleep(duration)
    except asyncio.CancelledError:
        pass
    finally:
        await stack.server.stop()
