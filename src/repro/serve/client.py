"""Asyncio load-generation client for the serving frontend.

:class:`ServeClient` is one TCP connection speaking
:mod:`repro.serve.protocol`; :class:`LoadGenerator` drives hundreds of
them concurrently from a :class:`LoadSpec` — the tool behind the
acceptance smoke (≥100 concurrent streaming connections against the
time-warped simulator) and its two adversarial variants:

* **cancellation storms** — a seeded fraction of clients cancels
  mid-stream after a few tokens (or disconnects without the courtesy
  :class:`~repro.serve.protocol.CancelOp` at all), exercising the
  disconnect-to-eviction path under concurrency;
* **slow readers** — a seeded fraction lags between reads, proving a
  stalled client backpressures only its own connection while the backend
  keeps streaming everyone else.

Nothing here waits on the wall clock. Slow readers *yield the event
loop* a configured number of times between reads instead of sleeping,
and staggered starts are chained connection waves (wave k+1 is released
when wave k has connected) instead of timed delays — so load runs are
insensitive to machine load and timing margins never flake
(tests/test_serve_async.py's deflake contract).

Everything random is drawn from one seeded RNG at spec-expansion time, so
a load run's *request mix* is reproducible even though asyncio
interleaving is not (the invariant-based assertions in
tests/test_serve_async.py don't need it to be).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.serve.protocol import (
    AcceptedFrame,
    CancelOp,
    EndFrame,
    ErrorFrame,
    GenerateOp,
    TokenFrame,
    decode_frame,
    encode_frame,
)
from repro.utils.rng import new_rng


async def yield_loop(times: int) -> None:
    """Cede the event loop ``times`` times without touching the wall clock.

    The event-driven replacement for ``asyncio.sleep(delay)`` in load
    plans: every ready task (other clients, the server, the bridge pump)
    gets ``times`` chances to run before the caller proceeds, however
    loaded the machine is.
    """
    for _ in range(times):
        await asyncio.sleep(0)


class ServeClient:
    """One client connection; supports sequential streaming requests."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: "asyncio.StreamReader | None" = None
        self._writer: "asyncio.StreamWriter | None" = None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None

    async def abort(self) -> None:
        """Hard disconnect: drop the socket with no CancelOp (the rude
        client the disconnect-propagation path exists for)."""
        if self._writer is not None:
            self._writer.transport.abort()
            self._writer = None

    async def send(self, frame) -> None:
        self._writer.write(encode_frame(frame))
        await self._writer.drain()

    async def read_frame(self):
        """Next server frame, or ``None`` on EOF."""
        line = await self._reader.readline()
        if not line:
            return None
        return decode_frame(line)

    async def generate(
        self,
        op: GenerateOp,
        cancel_after: "int | None" = None,
        read_yields: int = 0,
    ) -> "ClientResult":
        """Run one generation to completion (or cancellation).

        ``cancel_after=N`` sends a :class:`CancelOp` once N tokens have
        arrived; ``read_yields`` cedes the event loop that many times
        between reads (a slow reader, without wall-clock sleeps).
        """
        loop = asyncio.get_running_loop()
        start = loop.time()
        await self.send(op)
        result = ClientResult(request_id=op.request_id, tenant=op.effective_tenant)
        cancel_sent = False
        while True:
            frame = await self.read_frame()
            if frame is None:
                result.status = "disconnected"
                break
            if isinstance(frame, AcceptedFrame):
                result.request_id = frame.request_id
                continue
            if isinstance(frame, ErrorFrame):
                result.status = "shed" if frame.code == 429 else "error"
                result.reason = frame.reason
                break
            if frame.request_id != result.request_id:
                continue  # a frame for another stream on this connection
            if isinstance(frame, TokenFrame):
                if result.num_tokens == 0:
                    result.ttfb = loop.time() - start
                result.num_tokens += 1
                result.tokens.append(frame.token)
                if (
                    cancel_after is not None
                    and not cancel_sent
                    and result.num_tokens >= cancel_after
                ):
                    await self.send(CancelOp(request_id=result.request_id))
                    cancel_sent = True
                if read_yields > 0:
                    await yield_loop(read_yields)
                continue
            if isinstance(frame, EndFrame):
                result.status = frame.status
                break
        result.duration = loop.time() - start
        return result


@dataclass
class ClientResult:
    """Outcome of one client request, as the client observed it."""

    request_id: str = ""
    tenant: str = ""
    status: str = "pending"
    """finished | cancelled | failed | shed | error | disconnected."""
    reason: str = ""
    num_tokens: int = 0
    tokens: "list[int]" = field(default_factory=list)
    ttfb: "float | None" = None
    """Wall seconds from send to first token frame."""
    duration: float = 0.0


@dataclass(frozen=True)
class LoadSpec:
    """Shape of one load-generation run (expanded deterministically)."""

    num_clients: int = 100
    tenants: "tuple[str, ...]" = ("tenant-a", "tenant-b", "tenant-c")
    lora_ids: "tuple[str, ...]" = ("lora-0", "lora-1", "lora-2", "lora-3")
    prompt_len: "tuple[int, int]" = (8, 64)
    """Inclusive (lo, hi) range prompts are drawn from."""
    response_len: "tuple[int, int]" = (4, 32)
    cancel_fraction: float = 0.0
    """Fraction of clients that cancel after ``cancel_after`` tokens."""
    cancel_after: int = 2
    abort_fraction: float = 0.0
    """Fraction that hard-disconnect (no CancelOp) after ``cancel_after``
    tokens — the rude variant of a cancellation storm."""
    slow_fraction: float = 0.0
    """Fraction of clients that lag between reads (slow readers)."""
    slow_yields: int = 20
    """Event-loop yields a slow reader cedes between token reads — the
    load-insensitive replacement for a wall-clock read delay."""
    stagger: int = 0
    """Stagger starts in connection waves of this size: wave k+1 is
    released once every client in wave k has connected (0 = all at once).
    Event-driven; no timed ramp, so no wall-clock sensitivity."""
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_clients < 1:
            raise ValueError("num_clients must be >= 1")
        if self.slow_yields < 0 or self.stagger < 0:
            raise ValueError("slow_yields and stagger must be >= 0")
        for frac in (self.cancel_fraction, self.abort_fraction, self.slow_fraction):
            if not 0.0 <= frac <= 1.0:
                raise ValueError(f"fractions must be in [0, 1], got {frac}")


@dataclass(frozen=True)
class _ClientPlan:
    index: int
    op: GenerateOp
    cancel_after: "int | None"
    abort_after: "int | None"
    read_yields: int


def expand_plans(spec: LoadSpec) -> "list[_ClientPlan]":
    """Deterministically expand a spec into per-client plans."""
    rng = new_rng(spec.seed)
    plans = []
    for i in range(spec.num_clients):
        op = GenerateOp(
            request_id=f"load-{spec.seed}-{i:05d}",
            tenant=spec.tenants[int(rng.integers(len(spec.tenants)))],
            lora_id=spec.lora_ids[int(rng.integers(len(spec.lora_ids)))],
            prompt_len=int(rng.integers(spec.prompt_len[0], spec.prompt_len[1] + 1)),
            response_len=int(
                rng.integers(spec.response_len[0], spec.response_len[1] + 1)
            ),
        )
        roll = float(rng.random())
        cancel_after = abort_after = None
        if roll < spec.cancel_fraction:
            cancel_after = spec.cancel_after
        elif roll < spec.cancel_fraction + spec.abort_fraction:
            abort_after = spec.cancel_after
        read_yields = (
            spec.slow_yields if float(rng.random()) < spec.slow_fraction else 0
        )
        plans.append(
            _ClientPlan(
                index=i, op=op, cancel_after=cancel_after,
                abort_after=abort_after, read_yields=read_yields,
            )
        )
    return plans


class LoadGenerator:
    """Run a :class:`LoadSpec` against a serving frontend, concurrently."""

    def __init__(self, host: str, port: int, spec: "LoadSpec | None" = None):
        self.host = host
        self.port = port
        self.spec = spec or LoadSpec()

    async def run(self) -> "list[ClientResult]":
        plans = expand_plans(self.spec)
        gates = self._wave_gates(len(plans))
        return list(
            await asyncio.gather(
                *(self._run_client(p, g) for p, g in zip(plans, gates))
            )
        )

    def _wave_gates(self, n: int) -> "list[tuple[asyncio.Event | None, object | None]]":
        """Per-client (wait-for, mark-connected) pairs for staggered starts.

        Wave ``k``'s event fires when every client of wave ``k - 1`` has
        connected — a causal chain, not a timer, so the stagger shape is
        identical on an idle laptop and a saturated CI runner.
        """
        stagger = self.spec.stagger
        if stagger <= 0 or n <= stagger:
            return [(None, None)] * n
        waves = [list(range(i, min(i + stagger, n))) for i in range(0, n, stagger)]
        events = [asyncio.Event() for _ in waves]
        gates: "list[tuple[asyncio.Event | None, object | None]]" = [None] * n
        for w, members in enumerate(waves):
            remaining = {"count": len(members)}
            release = events[w]

            def connected(remaining=remaining, release=release) -> None:
                remaining["count"] -= 1
                if remaining["count"] == 0:
                    release.set()

            wait = events[w - 1] if w > 0 else None
            for i in members:
                gates[i] = (wait, connected)
        return gates

    async def _run_client(
        self,
        plan: "_ClientPlan",
        gate: "tuple[asyncio.Event | None, object | None]" = (None, None),
    ) -> ClientResult:
        wait, connected = gate
        if wait is not None:
            await wait.wait()
        client = ServeClient(self.host, self.port)
        try:
            await client.connect()
        finally:
            # Release the next wave even on a failed connect — a single
            # refused socket must not deadlock the rest of the load run.
            if connected is not None:
                connected()
        try:
            if plan.abort_after is not None:
                return await self._run_aborting(client, plan)
            return await client.generate(
                plan.op,
                cancel_after=plan.cancel_after,
                read_yields=plan.read_yields,
            )
        finally:
            await client.close()

    async def _run_aborting(
        self, client: ServeClient, plan: "_ClientPlan"
    ) -> ClientResult:
        """Stream until ``abort_after`` tokens, then drop the socket."""
        result = ClientResult(
            request_id=plan.op.request_id, tenant=plan.op.effective_tenant
        )
        await client.send(plan.op)
        while True:
            frame = await client.read_frame()
            if frame is None:
                result.status = "disconnected"
                return result
            if isinstance(frame, ErrorFrame):
                result.status = "shed" if frame.code == 429 else "error"
                result.reason = frame.reason
                return result
            if isinstance(frame, TokenFrame):
                result.num_tokens += 1
                result.tokens.append(frame.token)
                if result.num_tokens >= plan.abort_after:
                    await client.abort()
                    result.status = "aborted"
                    return result
            elif isinstance(frame, EndFrame):
                # Finished before we got around to aborting.
                result.status = frame.status
                return result


def summarize(results: "list[ClientResult]") -> "dict[str, object]":
    """Aggregate a load run into the numbers the CLI prints."""
    by_status: "dict[str, int]" = {}
    for r in results:
        by_status[r.status] = by_status.get(r.status, 0) + 1
    ttfbs = sorted(r.ttfb for r in results if r.ttfb is not None)
    mid = len(ttfbs) // 2
    return {
        "clients": len(results),
        "by_status": dict(sorted(by_status.items())),
        "tokens": sum(r.num_tokens for r in results),
        "ttfb_p50": ttfbs[mid] if ttfbs else None,
        "ttfb_max": ttfbs[-1] if ttfbs else None,
    }
