"""Per-tenant admission control: token buckets and bounded in-flight queues.

Multi-tenant serving lives or dies on this layer (S-LoRA's admission
control, CaraServe's per-tenant fairness — see PAPERS.md): one tenant
submitting faster than its share must be shed *at the door* with a
429-style rejection, before its requests occupy scheduler queue slots and
KvCache pages that compliant tenants need.

Two mechanisms compose, both deterministic functions of the clock the
caller passes in (so the same controller runs under the discrete-event
simulator's virtual clock and under asyncio wall time):

* a **token bucket** per tenant (``rate`` requests/s, ``burst`` depth) —
  smooth rate enforcement that tolerates bursts up to the bucket size;
* a **bounded admission queue** per tenant (``max_inflight``) plus a
  server-wide bound (``max_total_inflight``) — backpressure on slow
  drains: a tenant whose requests pile up inside the scheduler stops
  being admitted even if its arrival *rate* is compliant.

A request is admitted only if every applicable check passes; the bucket
is only debited on admission, so a rejection never double-charges.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Decision(enum.Enum):
    """Outcome of one admission check."""

    ADMIT = "admit"
    RATE_LIMITED = "rate_limited"
    """Token bucket empty: the tenant exceeded its request rate."""
    QUEUE_FULL = "queue_full"
    """The tenant's bounded in-flight queue is at capacity."""
    OVERLOADED = "overloaded"
    """The server-wide in-flight bound is hit (tenant-agnostic shed)."""

    @property
    def admitted(self) -> bool:
        return self is Decision.ADMIT


class TokenBucket:
    """Classic token bucket; refills lazily from elapsed time.

    ``rate`` tokens/second accumulate up to ``burst``; ``allow`` debits
    one token when available. Time flows only through the ``now``
    arguments, which must be non-decreasing per bucket.
    """

    def __init__(self, rate: float, burst: float, now: float = 0.0):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last = float(now)

    def _refill(self, now: float) -> None:
        if now < self._last:
            raise ValueError(
                f"bucket time went backwards: {now} < {self._last}"
            )
        self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
        self._last = now

    def peek(self, now: float) -> float:
        """Tokens available at ``now`` (refills as a side effect)."""
        self._refill(now)
        return self._tokens

    def allow(self, now: float, cost: float = 1.0) -> bool:
        """Debit ``cost`` tokens if available; False leaves the bucket as-is."""
        self._refill(now)
        if self._tokens + 1e-12 < cost:
            return False
        self._tokens -= cost
        return True


@dataclass(frozen=True)
class TenantPolicy:
    """Admission knobs for one tenant (or the default for unknown ones)."""

    rate: float = 100.0
    """Sustained request rate (requests per second of backend clock)."""
    burst: float = 20.0
    """Token-bucket depth: how far a tenant may burst above ``rate``."""
    max_inflight: int = 64
    """Bounded admission queue: open streams (queued + running) at once."""

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        if self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )


class AdmissionController:
    """Stateful per-tenant admission: rate limits + bounded in-flight.

    The controller tracks how many admitted requests each tenant still has
    open; callers must pair every admitted :meth:`admit` with exactly one
    :meth:`release` when the stream ends (finish, cancel or failure), or
    the tenant's queue slot leaks.
    """

    def __init__(
        self,
        default_policy: "TenantPolicy | None" = None,
        tenant_policies: "dict[str, TenantPolicy] | None" = None,
        max_total_inflight: "int | None" = None,
        start_time: float = 0.0,
    ):
        self.default_policy = default_policy or TenantPolicy()
        self.tenant_policies = dict(tenant_policies or {})
        if max_total_inflight is not None and max_total_inflight < 1:
            raise ValueError(
                f"max_total_inflight must be >= 1, got {max_total_inflight}"
            )
        self.max_total_inflight = max_total_inflight
        self._start_time = float(start_time)
        self._buckets: "dict[str, TokenBucket]" = {}
        self._inflight: "dict[str, int]" = {}
        self._total_inflight = 0

    # ------------------------------------------------------------------
    def policy(self, tenant: str) -> TenantPolicy:
        return self.tenant_policies.get(tenant, self.default_policy)

    def inflight(self, tenant: str) -> int:
        return self._inflight.get(tenant, 0)

    @property
    def total_inflight(self) -> int:
        return self._total_inflight

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            policy = self.policy(tenant)
            bucket = self._buckets[tenant] = TokenBucket(
                policy.rate, policy.burst, now=self._start_time
            )
        return bucket

    # ------------------------------------------------------------------
    def admit(self, tenant: str, now: float) -> Decision:
        """Run every check; debit the bucket and a queue slot on ADMIT.

        Check order matters for fairness accounting: capacity bounds are
        tested *before* the bucket so a request shed for queue depth does
        not also burn rate budget the tenant could use once it drains.
        """
        if (
            self.max_total_inflight is not None
            and self._total_inflight >= self.max_total_inflight
        ):
            return Decision.OVERLOADED
        if self.inflight(tenant) >= self.policy(tenant).max_inflight:
            return Decision.QUEUE_FULL
        if not self._bucket(tenant).allow(now):
            return Decision.RATE_LIMITED
        self._inflight[tenant] = self.inflight(tenant) + 1
        self._total_inflight += 1
        return Decision.ADMIT

    def release(self, tenant: str) -> None:
        """Return an admitted request's queue slot (stream ended)."""
        current = self.inflight(tenant)
        if current < 1:
            raise ValueError(f"release without admit for tenant {tenant!r}")
        self._inflight[tenant] = current - 1
        self._total_inflight -= 1
