"""Backend bridges: one asyncio-facing interface over either engine.

The serving frontend runs against two very different backends through one
small surface (``start`` / ``stop`` / ``open`` / ``cancel`` + a per-stream
:class:`asyncio.Queue` of :class:`StreamUpdate`):

* :class:`SimulatorBridge` — **time-warped cluster simulation**. The
  discrete-event loop advances in fixed virtual quanta from a pump
  coroutine; ``warp`` maps virtual seconds to wall seconds (``warp=60``
  replays a one-hour trace in a minute, ``warp=None`` runs as fast as the
  event loop allows). Client submissions and cancels land on the
  simulator at its current virtual time, so admission control, traces and
  metrics are all stamped with the backend clock.
* :class:`FunctionalBridge` — **real tokens** from a
  :class:`~repro.runtime.engine.GpuEngine` over the NumPy model. The pump
  steps the engine FCFS (same admission discipline as
  :func:`repro.runtime.serve.serve_requests`) and streams each generated
  token id the step it appears.

Both bridges are single-threaded asyncio: token callbacks fire inside the
pump coroutine, so ``Queue.put_nowait`` needs no locking, and a slow
reader only ever blocks its own connection's writer task — the engine
never waits on a client socket (updates buffer in the per-stream queue).
"""

from __future__ import annotations

import asyncio
import itertools
from collections import deque
from dataclasses import dataclass

from repro.runtime.request import Request, RequestState
from repro.serve.gateway import ServeGateway
from repro.serve.limits import AdmissionController, Decision
from repro.serve.metrics import ServeMetrics
from repro.serve.protocol import GenerateOp
from repro.utils.rng import new_rng
from repro.workloads.trace import RequestSpec


@dataclass(frozen=True)
class StreamUpdate:
    """One item on a stream's queue: a token, or the end of the stream."""

    kind: str
    """``"token"`` or ``"end"``."""
    time: float
    """Backend clock (virtual seconds under the simulator)."""
    token: "int | None" = None
    index: "int | None" = None
    status: "str | None" = None
    """Terminal state for ``kind="end"``: finished | cancelled | failed."""
    num_tokens: int = 0


def _terminal_status(state: RequestState) -> str:
    if state is RequestState.FINISHED:
        return "finished"
    if state is RequestState.CANCELLED:
        return "cancelled"
    return "failed"


class SimulatorBridge:
    """Pump the cluster simulator's virtual clock under asyncio.

    ``quantum`` is the virtual-time slice advanced per pump iteration;
    ``warp`` is virtual seconds per wall second (``None`` = unthrottled).
    With a ``warp`` the pump keeps ticking even when idle so token buckets
    refill in virtual time; unthrottled, it parks on a wake event until
    the next submission (the virtual clock freezes while truly idle).
    """

    def __init__(
        self,
        gateway: ServeGateway,
        warp: "float | None" = None,
        quantum: float = 0.05,
    ):
        if warp is not None and warp <= 0:
            raise ValueError(f"warp must be positive, got {warp}")
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum}")
        self.gateway = gateway
        self.warp = warp
        self.quantum = float(quantum)
        self._queues: "dict[str, asyncio.Queue]" = {}
        self._wake: "asyncio.Event | None" = None
        self._task: "asyncio.Task | None" = None
        self._ids = itertools.count()

    # ------------------------------------------------------------------
    @property
    def simulator(self):
        return self.gateway.simulator

    @property
    def now(self) -> float:
        """The backend (virtual) clock."""
        return self.simulator.now

    async def start(self) -> None:
        if self._task is not None:
            raise RuntimeError("bridge already started")
        self._wake = asyncio.Event()
        self._task = asyncio.create_task(self._pump())

    async def stop(self) -> None:
        """Stop the pump and cancel every still-open stream."""
        if self._task is None:
            return
        task, self._task = self._task, None
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass
        now = self.now
        for stream in self.gateway.drain(now):
            self._push_end(stream, now)

    # ------------------------------------------------------------------
    def open(self, op: GenerateOp) -> "tuple[str, asyncio.Queue | None, Decision]":
        """Admit one :class:`GenerateOp` at the current virtual time.

        Returns ``(request_id, queue, decision)``; ``queue`` is ``None``
        when the request was shed (the decision says why).
        """
        rid = op.request_id or f"sv-{next(self._ids):05d}"
        now = self.now
        queue: asyncio.Queue = asyncio.Queue()
        count = itertools.count()

        def on_token(_rid: str, tok: int, t: float) -> None:
            # Metrics accounting already happened inside the gateway's own
            # wrapped callback; this layer only feeds the stream queue.
            queue.put_nowait(
                StreamUpdate(kind="token", time=t, token=tok, index=next(count))
            )

        stream, decision = self.gateway.open(
            tenant=op.effective_tenant,
            lora_id=op.lora_id,
            prompt_len=op.prompt_len,
            response_len=op.response_len,
            now=now,
            request_id=rid,
            prompt_tokens=(
                list(op.prompt_tokens) if op.prompt_tokens is not None else None
            ),
            on_token=on_token,
        )
        if stream is None:
            return rid, None, decision
        self._queues[rid] = queue
        if self._wake is not None:
            self._wake.set()
        return rid, queue, decision

    def cancel(self, request_id: str) -> bool:
        """Client cancel/disconnect; False when the id is unknown."""
        stream = self.gateway._streams.get(request_id)
        if stream is None:
            self._queues.pop(request_id, None)
            return False
        now = self.now
        self.gateway.client_close(request_id, now)
        self._push_end(stream, now)
        if self._wake is not None:
            self._wake.set()
        return True

    # ------------------------------------------------------------------
    def _push_end(self, stream, now: float) -> None:
        queue = self._queues.pop(stream.request_id, None)
        if queue is None:
            return
        status = _terminal_status(stream.handle.state)
        if stream.cancelled:
            status = "cancelled"
        queue.put_nowait(
            StreamUpdate(
                kind="end", time=now, status=status,
                num_tokens=stream.tokens_streamed,
            )
        )

    async def _pump(self) -> None:
        sim = self.simulator
        gateway = self.gateway
        while True:
            if self.warp is None and not sim.work_remaining():
                done = gateway.poll(sim.now)
                for stream in done:
                    self._push_end(stream, sim.now)
                if not gateway.open_streams():
                    self._wake.clear()
                    if not sim.work_remaining() and not gateway.open_streams():
                        await self._wake.wait()
                    continue
            sim.loop.run(until=sim.now + self.quantum)
            now = sim.now
            for stream in gateway.poll(now):
                self._push_end(stream, now)
            if self.warp is None:
                await asyncio.sleep(0)
            else:
                await asyncio.sleep(self.quantum / self.warp)


class _FuncStream:
    """FunctionalBridge-side state of one admitted stream."""

    __slots__ = (
        "request", "tenant", "queue", "opened_at",
        "streamed", "cancelled", "ttfb_observed",
    )

    def __init__(self, request: Request, tenant: str, queue, opened_at: float):
        self.request = request
        self.tenant = tenant
        self.queue = queue
        self.opened_at = opened_at
        self.streamed = 0
        self.cancelled = False
        self.ttfb_observed = False

    @property
    def request_id(self) -> str:
        return self.request.request_id


class FunctionalBridge:
    """Serve real token ids from one :class:`~repro.runtime.engine.GpuEngine`.

    The pump admits waiting requests FCFS (head blocks, matching
    :func:`repro.runtime.serve.serve_requests`) and advances the backend
    clock by each step's reported latency, so admission control runs on
    the same clock the engine's cost model produces. Prompts without
    explicit ``prompt_tokens`` get deterministic random ids from ``seed``.
    """

    def __init__(
        self,
        engine,
        controller: "AdmissionController | None" = None,
        metrics: "ServeMetrics | None" = None,
        vocab_size: int = 1000,
        seed: int = 0,
    ):
        self.engine = engine
        self.controller = controller or AdmissionController()
        self.metrics = metrics
        self.vocab_size = int(vocab_size)
        self._rng = new_rng(seed)
        self._clock = 0.0
        self._waiting: "deque[_FuncStream]" = deque()
        self._streams: "dict[str, _FuncStream]" = {}
        self._wake: "asyncio.Event | None" = None
        self._task: "asyncio.Task | None" = None
        self._ids = itertools.count()

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._clock

    async def start(self) -> None:
        if self._task is not None:
            raise RuntimeError("bridge already started")
        self._wake = asyncio.Event()
        self._task = asyncio.create_task(self._pump())

    async def stop(self) -> None:
        if self._task is None:
            return
        task, self._task = self._task, None
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass
        for stream in list(self._streams.values()):
            stream.cancelled = True
            self._end_stream(stream)

    # ------------------------------------------------------------------
    def open(self, op: GenerateOp) -> "tuple[str, asyncio.Queue | None, Decision]":
        rid = op.request_id or f"fn-{next(self._ids):05d}"
        now = self._clock
        if self.metrics is not None:
            self.metrics.record_connect(op.effective_tenant)
        decision = self.controller.admit(op.effective_tenant, now)
        if not decision.admitted:
            if self.metrics is not None:
                self.metrics.record_shed(op.effective_tenant, decision.value)
                self.metrics.record_disconnect()
            return rid, None, decision
        if op.prompt_tokens is not None:
            prompt = [int(t) for t in op.prompt_tokens]
        else:
            prompt = [
                int(t)
                for t in self._rng.integers(
                    0, self.vocab_size, size=op.prompt_len
                )
            ]
        spec = RequestSpec(
            request_id=rid,
            lora_id=op.lora_id,
            arrival_time=now,
            prompt_len=op.prompt_len,
            response_len=op.response_len,
        )
        stream = _FuncStream(
            request=Request(spec=spec, prompt_tokens=prompt),
            tenant=op.effective_tenant,
            queue=asyncio.Queue(),
            opened_at=now,
        )
        self._streams[rid] = stream
        self._waiting.append(stream)
        if self.metrics is not None:
            self.metrics.record_admitted(op.effective_tenant)
        if self._wake is not None:
            self._wake.set()
        return rid, stream.queue, decision

    def cancel(self, request_id: str) -> bool:
        stream = self._streams.get(request_id)
        if stream is None:
            return False
        stream.cancelled = True
        req = stream.request
        if self.engine.has_request(request_id):
            self.engine.cancel(request_id)
        elif not req.state.is_terminal:
            req.mark_cancelled()
        self._end_stream(stream)
        if self._wake is not None:
            self._wake.set()
        return True

    # ------------------------------------------------------------------
    def _end_stream(self, stream: _FuncStream) -> None:
        self._streams.pop(stream.request_id, None)
        self.controller.release(stream.tenant)
        status = _terminal_status(stream.request.state)
        if stream.cancelled:
            status = "cancelled"
        stream.queue.put_nowait(
            StreamUpdate(
                kind="end", time=self._clock, status=status,
                num_tokens=stream.streamed,
            )
        )
        if self.metrics is not None:
            self.metrics.record_end(stream.tenant, cancelled=stream.cancelled)
            self.metrics.record_disconnect()

    def _admit_waiting(self) -> None:
        """Place waiting requests FCFS; the head blocks (§5.1)."""
        while self._waiting:
            head = self._waiting[0]
            if head.request.state.is_terminal:
                self._waiting.popleft()
                continue
            if not self.engine.can_accept(head.request):
                break
            self._waiting.popleft()
            self.engine.add_request(head.request, self._clock)

    def _stream_new_tokens(self) -> None:
        ended = []
        for stream in self._streams.values():
            req = stream.request
            new = req.generated_tokens[stream.streamed:]
            for tok in new:
                index = stream.streamed
                if self.metrics is not None:
                    if not stream.ttfb_observed:
                        self.metrics.record_first_token(
                            max(0.0, self._clock - stream.opened_at)
                        )
                    self.metrics.record_tokens(1)
                stream.ttfb_observed = True
                stream.streamed += 1
                stream.queue.put_nowait(
                    StreamUpdate(
                        kind="token", time=self._clock, token=tok, index=index
                    )
                )
            if req.state.is_terminal:
                ended.append(stream)
        for stream in ended:
            self._end_stream(stream)

    async def _pump(self) -> None:
        engine = self.engine
        while True:
            self._admit_waiting()
            report = engine.step(self._clock)
            if report is None:
                if engine.is_idle and self._waiting:
                    head = self._waiting[0].request
                    if not head.state.is_terminal and not engine.can_accept(head):
                        # Never admissible (e.g. prompt longer than the
                        # KvCache): fail it rather than wedge the queue.
                        stream = self._waiting.popleft()
                        stream.request.mark_failed(
                            "request cannot fit on the engine"
                        )
                        self._end_stream(stream)
                        continue
                if engine.is_idle and not self._waiting:
                    self._wake.clear()
                    if engine.is_idle and not self._waiting:
                        await self._wake.wait()
                    continue
                # Waiting on an in-flight adapter load.
                self._clock += 1e-3
                await asyncio.sleep(0)
                continue
            self._clock = report.end
            for rid in report.evicted:
                stream = self._streams.get(rid)
                if stream is not None:
                    self._waiting.appendleft(stream)
            self._stream_new_tokens()
            await asyncio.sleep(0)
