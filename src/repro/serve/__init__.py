"""Async serving frontend: an asyncio token-streaming server over the engine.

The paper's deployment (§6, Figure 2) runs frontends as separate processes
that accept client requests, forward them to the scheduler, and stream
generated tokens back over websockets. This package is that layer for the
reproduction: a real :mod:`asyncio` server speaking a newline-delimited
JSON request/stream/cancel protocol (:mod:`repro.serve.protocol`, a wire
mirror of :mod:`repro.cluster.protocol`), with per-tenant token-bucket
rate limits and bounded admission before anything reaches the scheduler
(:mod:`repro.serve.limits`), serving either backend:

* the **time-warped cluster simulator** — the discrete-event clock is
  bridged to asyncio so large traces replay at a configurable multiple of
  wall speed (:class:`~repro.serve.bridge.SimulatorBridge`);
* the **functional NumPy backend** — real token ids from the toy Llama
  (:class:`~repro.serve.bridge.FunctionalBridge`).

Client disconnects propagate all the way down to engine eviction through
the same cancellation path the fault and migration layers hardened; the
:mod:`repro.serve.client` load generator drives hundreds of concurrent
streaming connections, cancellation storms and slow readers against it.
See docs/serving.md.
"""

from repro.serve.bridge import FunctionalBridge, SimulatorBridge, StreamUpdate
from repro.serve.client import ClientResult, LoadGenerator, LoadSpec, ServeClient
from repro.serve.gateway import ServeGateway
from repro.serve.limits import (
    AdmissionController,
    Decision,
    TenantPolicy,
    TokenBucket,
)
from repro.serve.metrics import ServeMetrics
from repro.serve.protocol import (
    CancelOp,
    EndFrame,
    ErrorFrame,
    GenerateOp,
    TokenFrame,
    decode_frame,
    encode_frame,
)
from repro.serve.server import ServeServer

__all__ = [
    "AdmissionController",
    "CancelOp",
    "ClientResult",
    "Decision",
    "EndFrame",
    "ErrorFrame",
    "FunctionalBridge",
    "GenerateOp",
    "LoadGenerator",
    "LoadSpec",
    "ServeClient",
    "ServeGateway",
    "ServeMetrics",
    "ServeServer",
    "SimulatorBridge",
    "StreamUpdate",
    "TenantPolicy",
    "TokenBucket",
    "TokenFrame",
    "decode_frame",
    "encode_frame",
]
