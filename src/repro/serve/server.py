"""The asyncio serving frontend: newline-framed JSON over TCP.

:class:`ServeServer` accepts client connections, decodes
:mod:`repro.serve.protocol` frames, and drives a backend bridge
(:class:`~repro.serve.bridge.SimulatorBridge` or
:class:`~repro.serve.bridge.FunctionalBridge`):

* a :class:`~repro.serve.protocol.GenerateOp` is admitted (or shed with a
  429 :class:`~repro.serve.protocol.ErrorFrame`); admitted streams get an
  :class:`~repro.serve.protocol.AcceptedFrame` and then token frames as
  the backend produces them, each connection multiplexing any number of
  concurrent streams by request id;
* a :class:`~repro.serve.protocol.CancelOp` cancels one stream;
* EOF on the socket with streams still open is a client disconnect: every
  open stream of that connection is cancelled, which propagates down to
  engine eviction (the trace shows CANCEL ``reason="disconnect"``).

One writer task per open stream pumps its update queue to the socket, so
a slow reader backpressures only its own connection (its queue buffers;
``drain()`` blocks only that task) and the backend clock never waits on a
client.
"""

from __future__ import annotations

import asyncio

from repro.serve.protocol import (
    AcceptedFrame,
    CancelOp,
    EndFrame,
    ErrorFrame,
    GenerateOp,
    TokenFrame,
    decode_frame,
    encode_frame,
)


class ServeServer:
    """Serve a bridge over TCP; ``port=0`` binds an ephemeral port."""

    def __init__(self, bridge, host: str = "127.0.0.1", port: int = 0):
        self.bridge = bridge
        self.host = host
        self.port = port
        self._server: "asyncio.base_events.Server | None" = None
        self._conn_tasks: "set[asyncio.Task]" = set()
        self._conn_writers: "set[asyncio.StreamWriter]" = set()

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Start the bridge pump and bind the listening socket."""
        await self.bridge.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting, drop live connections, stop the bridge.

        Connections are dropped by aborting their transports, not by
        cancelling their handler tasks: the handlers see EOF and run
        their own disconnect cleanup (stream cancellation included).
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._conn_writers):
            writer.transport.abort()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._conn_tasks.clear()
        await self.bridge.stop()

    async def serve_forever(self) -> None:
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._conn_writers.add(writer)
        streams: "dict[str, asyncio.Task]" = {}
        lock = asyncio.Lock()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    frame = decode_frame(line)
                except ValueError as exc:
                    await self._send(writer, lock, ErrorFrame(
                        code=400, reason=str(exc),
                    ))
                    continue
                if isinstance(frame, GenerateOp):
                    await self._handle_generate(frame, writer, lock, streams)
                elif isinstance(frame, CancelOp):
                    if not self.bridge.cancel(frame.request_id):
                        await self._send(writer, lock, ErrorFrame(
                            request_id=frame.request_id, code=404,
                            reason="unknown request",
                        ))
                else:
                    await self._send(writer, lock, ErrorFrame(
                        code=400, reason="clients may only send operations",
                    ))
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            # Disconnect: cancel every stream the client left open. The
            # writer tasks each receive their "end" update; they are then
            # cancelled since there is no one left to write to.
            for rid in list(streams):
                self.bridge.cancel(rid)
            for stream_task in streams.values():
                stream_task.cancel()
            if streams:
                await asyncio.gather(
                    *streams.values(), return_exceptions=True
                )
            self._conn_writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._conn_tasks.discard(task)

    async def _handle_generate(
        self,
        op: GenerateOp,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        streams: "dict[str, asyncio.Task]",
    ) -> None:
        rid, queue, decision = self.bridge.open(op)
        if queue is None:
            await self._send(writer, lock, ErrorFrame(
                request_id=rid, code=429, reason=decision.value,
            ))
            return
        await self._send(writer, lock, AcceptedFrame(request_id=rid))
        stream_task = asyncio.create_task(
            self._pump_stream(rid, queue, writer, lock, streams)
        )
        streams[rid] = stream_task

    async def _pump_stream(
        self,
        rid: str,
        queue: asyncio.Queue,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        streams: "dict[str, asyncio.Task]",
    ) -> None:
        """Forward one stream's updates until its end frame."""
        try:
            while True:
                update = await queue.get()
                if update.kind == "token":
                    await self._send(writer, lock, TokenFrame(
                        request_id=rid, token=update.token,
                        index=update.index, time=update.time,
                    ))
                else:
                    await self._send(writer, lock, EndFrame(
                        request_id=rid, status=update.status,
                        num_tokens=update.num_tokens,
                    ))
                    return
        except (ConnectionError, OSError):
            pass
        finally:
            streams.pop(rid, None)

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, lock: asyncio.Lock, frame) -> None:
        """One frame, atomically: drain under the connection's lock so a
        slow socket cannot interleave half-written frames from concurrent
        stream tasks."""
        async with lock:
            writer.write(encode_frame(frame))
            await writer.drain()
