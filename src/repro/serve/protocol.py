"""Client <-> server wire protocol: the outer mirror of the inner protocol.

The serving frontend speaks newline-delimited JSON frames over a byte
stream (TCP here; the paper's deployment used websockets, which are the
same shape: ordered framed messages both ways). Each frame type mirrors
one leg of the scheduler<->runner protocol in
:mod:`repro.cluster.protocol`:

========================  =================================================
wire frame                inner protocol message
========================  =================================================
:class:`GenerateOp`       :class:`~repro.cluster.protocol.AddRequest`
:class:`CancelOp`         :class:`~repro.cluster.protocol.CancelRequest`
:class:`TokenFrame`       :class:`~repro.cluster.protocol.TokenChunk`
:class:`EndFrame`         :class:`~repro.cluster.protocol.RequestFinished`
                          (or the cancel/shed terminal states)
:class:`ErrorFrame`       admission rejection — no inner counterpart: a
                          shed request never reaches the scheduler
========================  =================================================

Frames serialize via :func:`encode_frame` / :func:`decode_frame` with
sorted keys and compact separators, so a captured session log is stable
enough to diff. A closed connection with no :class:`CancelOp` means the
client disconnected; the server treats that exactly like a cancel (the
disconnect-to-eviction path the acceptance smoke asserts).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

_MAX_FRAME_BYTES = 1 << 20
"""Upper bound on one encoded frame; a longer line is a protocol error."""


# ---------------------------------------------------------------------------
# Client -> server operations
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class GenerateOp:
    """Open one generation stream (the RESTful POST of Figure 2)."""

    op: str = "generate"
    request_id: str = ""
    tenant: str = ""
    """Rate-limit principal; defaults to the LoRA model id when empty."""
    lora_id: str = ""
    prompt_len: int = 1
    response_len: int = 1
    prompt_tokens: "tuple[int, ...] | None" = None
    """Real prompt ids (functional backend); None in simulation mode."""

    def __post_init__(self) -> None:
        if self.prompt_len < 1 or self.response_len < 1:
            raise ValueError("prompt_len and response_len must be >= 1")
        if not self.lora_id:
            raise ValueError("lora_id must be set")

    @property
    def effective_tenant(self) -> str:
        return self.tenant or self.lora_id


@dataclass(frozen=True)
class CancelOp:
    """Cancel an in-flight stream by id (explicit client-side cancel)."""

    op: str = "cancel"
    request_id: str = ""

    def __post_init__(self) -> None:
        if not self.request_id:
            raise ValueError("cancel requires a request_id")


# ---------------------------------------------------------------------------
# Server -> client stream frames
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class AcceptedFrame:
    """Admission succeeded; token frames for ``request_id`` follow."""

    event: str = "accepted"
    request_id: str = ""


@dataclass(frozen=True)
class TokenFrame:
    """One generated token, streamed as soon as the engine produced it."""

    event: str = "token"
    request_id: str = ""
    token: int = 0
    index: int = 0
    time: float = 0.0
    """Backend clock (virtual seconds under the time-warped simulator)."""


@dataclass(frozen=True)
class EndFrame:
    """Stream end. ``status`` is finished | cancelled | failed."""

    event: str = "end"
    request_id: str = ""
    status: str = "finished"
    num_tokens: int = 0


@dataclass(frozen=True)
class ErrorFrame:
    """Request rejected before reaching the scheduler (429-style shed)."""

    event: str = "error"
    request_id: str = ""
    code: int = 429
    reason: str = ""


_FRAME_TYPES = {
    "generate": GenerateOp,
    "cancel": CancelOp,
    "accepted": AcceptedFrame,
    "token": TokenFrame,
    "end": EndFrame,
    "error": ErrorFrame,
}

Frame = (
    "GenerateOp | CancelOp | AcceptedFrame | TokenFrame | EndFrame | ErrorFrame"
)


def encode_frame(frame) -> bytes:
    """One frame -> one canonical JSON line (newline-terminated bytes)."""
    obj = {k: v for k, v in asdict(frame).items() if v is not None}
    if "prompt_tokens" in obj:
        obj["prompt_tokens"] = list(obj["prompt_tokens"])
    return (
        json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode()


def decode_frame(line: "bytes | str"):
    """One JSON line -> the typed frame it encodes.

    Raises ``ValueError`` on malformed JSON, an unknown discriminator, or
    a frame that fails its own validation — the server answers those with
    an :class:`ErrorFrame` instead of dying.
    """
    if isinstance(line, bytes):
        if len(line) > _MAX_FRAME_BYTES:
            raise ValueError(f"frame exceeds {_MAX_FRAME_BYTES} bytes")
        line = line.decode("utf-8", errors="strict")
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"malformed frame: {exc}") from None
    if not isinstance(obj, dict):
        raise ValueError(f"frame must be a JSON object, got {type(obj).__name__}")
    key = obj.get("op") or obj.get("event")
    cls = _FRAME_TYPES.get(key)
    if cls is None:
        raise ValueError(f"unknown frame discriminator {key!r}")
    if "prompt_tokens" in obj and obj["prompt_tokens"] is not None:
        obj["prompt_tokens"] = tuple(int(t) for t in obj["prompt_tokens"])
    try:
        return cls(**obj)
    except TypeError as exc:
        raise ValueError(f"bad {key!r} frame: {exc}") from None
