"""Static-batching baseline engine (HF Transformers, DeepSpeed, FasterTransformer).

These systems use an inseparable KvCache layout (§5.4): requests that enter
a batch together stay until *every* member reaches its stopping condition
(Fig 6). The engine exposes the same driver interface as
:class:`~repro.runtime.engine.GpuEngine` (``can_accept`` / ``add_request``
/ ``step`` / ``is_idle``), so the identical FCFS driver serves both — the
throughput difference is entirely the system model, as in the paper.

Behavioural differences from the continuous engine:

* a new batch is sealed from queued requests only when the previous batch
  has fully drained;
* all batch members share one LoRA model (baselines cannot mix);
* the whole batch prefills in a single invocation;
* members that finish early keep running wasted decode steps (their tokens
  are not counted) until the longest member completes.
"""

from __future__ import annotations

from repro.hw.kernels import KernelCostModel
from repro.hw.spec import A100_80G, GpuSpec
from repro.models.config import LlamaConfig
from repro.models.perf import StepWorkload, model_step_latency
from repro.models.tp import SINGLE_GPU, TensorParallelConfig
from repro.runtime.engine import StepReport
from repro.runtime.request import Request
from repro.utils.units import GIB


class StaticBatchEngine:
    """Inseparable-KvCache, same-LoRA, whole-batch-prefill baseline."""

    def __init__(
        self,
        gpu_id: str,
        profile,
        config: LlamaConfig,
        gpu: GpuSpec = A100_80G,
        tp: TensorParallelConfig = SINGLE_GPU,
        max_batch_size: int = 32,
        lora_rank: int = 16,
        workspace_bytes: float = 2 * GIB,
    ):
        self.gpu_id = gpu_id
        self.profile = profile
        self.config = config
        self.tp = tp
        self.max_batch_size = max_batch_size
        self.lora_rank = lora_rank
        self.cost_model = KernelCostModel(gpu)
        weights = config.weight_bytes() // tp.world_size
        self.kv_capacity_tokens = int(
            (gpu.hbm_capacity - weights - workspace_bytes)
            // max(1, config.kv_bytes_per_token() // tp.world_size)
        )
        if self.kv_capacity_tokens <= 0:
            raise ValueError(f"{config.name} does not fit on {gpu.name}")
        self._pending: list[Request] = []
        self._active: list[Request] = []
        self._done_in_active: set[str] = set()
        # Padded per-lane KvCache lengths: keep growing even for finished
        # members (their lanes still occupy compute and memory, Fig 6).
        self._lane_kv: dict[str, int] = {}
        self._prefilled = False
        self._token_counter = 0

    # -- driver interface -------------------------------------------------
    @property
    def working_set_size(self) -> int:
        return len(self._pending) + len(self._active)

    @property
    def is_idle(self) -> bool:
        return self.working_set_size == 0

    def kv_free_tokens(self) -> int:
        used = sum(self._lane_kv.get(r.request_id, 0) for r in self._active)
        return max(0, self.kv_capacity_tokens - used)

    def can_accept(self, request: Request) -> bool:
        if self._active:
            return False  # inseparable batch: wait for full drain
        if len(self._pending) >= self.max_batch_size:
            return False
        if self._pending and request.lora_id != self._pending[0].lora_id:
            return False  # baselines batch one LoRA model only
        projected = sum(
            r.effective_prompt_len + r.spec.response_len for r in self._pending
        )
        projected += request.effective_prompt_len + request.spec.response_len
        return projected <= self.kv_capacity_tokens

    def add_request(self, request: Request, now: float) -> None:
        if not self.can_accept(request):
            raise RuntimeError(f"{self.gpu_id} cannot accept {request.request_id}")
        request.needs_prefill = True
        request.mark_running(self.gpu_id, now)
        self._pending.append(request)

    def all_requests(self) -> list[Request]:
        """Every request currently on this GPU (active batch + pending)."""
        return list(self._active) + list(self._pending)

    def next_ready_time(self) -> "float | None":
        """Static baselines have no async LoRA loads to wait for."""
        return None

    def cancel(self, request_id: str, requeue: bool = False) -> Request:
        for bucket in (self._pending, self._active):
            for i, req in enumerate(bucket):
                if req.request_id == request_id:
                    bucket.pop(i)
                    self._done_in_active.discard(request_id)
                    self._lane_kv.pop(request_id, None)
                    if requeue:
                        req.evict()
                    else:
                        req.mark_cancelled()
                    return req
        raise KeyError(f"request {request_id} not on {self.gpu_id}")

    # -- execution ----------------------------------------------------------
    def step(self, now: float) -> StepReport | None:
        if not self._active:
            if not self._pending:
                return None
            self._active = self._pending
            self._pending = []
            self._done_in_active = set()
            self._prefilled = False
        if not self._prefilled:
            return self._prefill_step(now)
        return self._decode_step(now)

    def _latency(self, work: StepWorkload) -> float:
        return (
            model_step_latency(
                self.config, self.cost_model, work, tp=self.tp, flags=self.profile.flags
            )
            + self.profile.step_overhead
        )

    def _lora_segments(self, num_tokens: int) -> "tuple[int, ...] | None":
        # One shared LoRA model per batch => a single segment; or no LoRA
        # at all for backbone-only systems.
        return (num_tokens,) if self.profile.serves_lora else None

    def _prefill_step(self, now: float) -> StepReport:
        prefill_lens = tuple(r.effective_prompt_len for r in self._active)
        work = StepWorkload(
            prefill_lens=prefill_lens,
            decode_kv_lens=(),
            lora_segments=self._lora_segments(sum(prefill_lens)),
            lora_rank=self.lora_rank,
        )
        latency = self._latency(work)
        end = now + latency
        tokens: dict[str, int] = {}
        finished: list[str] = []
        for req in self._active:
            self._lane_kv[req.request_id] = req.effective_prompt_len
            req.kv_len = req.effective_prompt_len
            req.needs_prefill = False
            self._token_counter += 1
            tokens[req.request_id] = self._token_counter
            req.record_token(self._token_counter, end)
            if req.reached_limit():
                self._finish(req, end, finished)
        self._prefilled = True
        report = StepReport(
            gpu_id=self.gpu_id, start=now, latency=latency,
            batch_size=len(self._active),
            num_prefill=len(self._active), num_decode=0,
            num_lora_segments=1 if self.profile.serves_lora else 0,
            new_tokens=tokens, finished=tuple(finished), evicted=(),
        )
        self._maybe_drain()
        return report

    def _decode_step(self, now: float) -> StepReport:
        # Every member — finished or not — occupies a decode lane (Fig 6).
        kv_lens = tuple(self._lane_kv[r.request_id] for r in self._active)
        work = StepWorkload(
            prefill_lens=(),
            decode_kv_lens=kv_lens,
            lora_segments=self._lora_segments(len(self._active)),
            lora_rank=self.lora_rank,
        )
        latency = self._latency(work)
        end = now + latency
        tokens: dict[str, int] = {}
        finished: list[str] = []
        for req in self._active:
            self._lane_kv[req.request_id] += 1
            if req.request_id in self._done_in_active:
                continue  # wasted decode step: no token counted
            self._token_counter += 1
            tokens[req.request_id] = self._token_counter
            req.record_token(self._token_counter, end)
            if req.reached_limit():
                self._finish(req, end, finished)
        report = StepReport(
            gpu_id=self.gpu_id, start=now, latency=latency,
            batch_size=len(self._active),
            num_prefill=0, num_decode=len(self._active),
            num_lora_segments=1 if self.profile.serves_lora else 0,
            new_tokens=tokens, finished=tuple(finished), evicted=(),
        )
        self._maybe_drain()
        return report

    def _finish(self, req: Request, end: float, finished: list[str]) -> None:
        req.mark_finished(end)
        self._done_in_active.add(req.request_id)
        finished.append(req.request_id)

    def _maybe_drain(self) -> None:
        if len(self._done_in_active) == len(self._active):
            self._active = []
            self._done_in_active = set()
            self._lane_kv = {}
            self._prefilled = False

    # -- diagnostics --------------------------------------------------------
    def wasted_step_fraction(self) -> float:
        """Fraction of current-batch decode lanes running wasted steps."""
        if not self._active:
            return 0.0
        return len(self._done_in_active) / len(self._active)
