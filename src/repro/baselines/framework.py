"""Framework capability profiles and the engine factory.

The capability matrix behind Fig 11 (each row documented in the paper's
"Baselines" paragraph and §5.4/§6):

===================  ==========  =========  ==========  ===========
system               batching    separable  LoRA        kernels
===================  ==========  =========  ==========  ===========
HF Transformers      static      no         PEFT        unfused, no flash,
                                                        cache concat, eager
DeepSpeed            static      no         PEFT        fused
FasterTransformer    static      no         backbone    fused (C++)
vLLM                 continuous  paged      backbone    fused
Punica               continuous  paged      SGMV multi  fused
===================  ==========  =========  ==========  ===========
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.pcie import PcieSpec
from repro.hw.spec import A100_80G, GpuSpec
from repro.models.config import LlamaConfig
from repro.models.perf import PerfFlags
from repro.models.tp import SINGLE_GPU, TensorParallelConfig
from repro.runtime.backend import SimulatedBackend
from repro.runtime.engine import EngineConfig, GpuEngine
from repro.runtime.loader import LoraLoader
from repro.utils.units import US


@dataclass(frozen=True)
class FrameworkProfile:
    """One serving system's capabilities, as modelled in this reproduction."""

    name: str
    display_name: str
    batching: str
    """"continuous" (Orca-style) or "static" (batch runs until all finish)."""
    serves_lora: bool
    """False = backbone-only relaxation (FasterTransformer, vLLM)."""
    multi_lora_batching: bool
    """Only Punica batches different LoRA models in one invocation."""
    flags: PerfFlags
    step_overhead: float = 0.5e-3
    """Host time per invocation (scheduler, sampling, streaming)."""

    def __post_init__(self) -> None:
        if self.batching not in ("continuous", "static"):
            raise ValueError(f"unknown batching mode {self.batching!r}")
        if self.multi_lora_batching and not self.serves_lora:
            raise ValueError("multi-LoRA batching implies serving LoRA")


PUNICA = FrameworkProfile(
    name="punica",
    display_name="Punica",
    batching="continuous",
    serves_lora=True,
    multi_lora_batching=True,
    flags=PerfFlags(),
)

VLLM = FrameworkProfile(
    name="vllm",
    display_name="vLLM (backbone only)",
    batching="continuous",
    serves_lora=False,
    multi_lora_batching=False,
    flags=PerfFlags(),
)

DEEPSPEED = FrameworkProfile(
    name="deepspeed",
    display_name="DeepSpeed (+PEFT)",
    batching="static",
    serves_lora=True,
    multi_lora_batching=False,
    flags=PerfFlags(framework_overhead_per_layer=20 * US),
)

FASTER_TRANSFORMER = FrameworkProfile(
    name="faster_transformer",
    display_name="FasterTransformer (backbone only)",
    batching="static",
    serves_lora=False,
    multi_lora_batching=False,
    flags=PerfFlags(),
)

HF_TRANSFORMERS = FrameworkProfile(
    name="hf",
    display_name="HuggingFace Transformers (+PEFT)",
    batching="static",
    serves_lora=True,
    multi_lora_batching=False,
    flags=PerfFlags(
        flash_attention=False,
        fused_layernorm=False,
        cache_concat=True,
        # Eager-mode Python dispatch through Transformers + PEFT dominates:
        # a 32-layer decode step measures in the hundreds of ms (the "lack
        # of critical CUDA kernel optimizations" of §7.2).
        framework_overhead_per_layer=4e-3,
    ),
    step_overhead=5e-3,
)

ALL_BASELINES = (HF_TRANSFORMERS, DEEPSPEED, FASTER_TRANSFORMER, VLLM)
ALL_SYSTEMS = ALL_BASELINES + (PUNICA,)

#: Baselines get their model switching cost waived (paper: "We omit the
#: model switching costs for baseline systems") — an effectively infinite
#: PCIe link makes every LoRA load instantaneous.
_INSTANT_PCIE = PcieSpec(name="instant (switching cost waived)",
                         effective_bandwidth=float("inf"), latency=0.0)


def build_engine(
    profile: FrameworkProfile,
    config: LlamaConfig,
    gpu: GpuSpec = A100_80G,
    tp: TensorParallelConfig = SINGLE_GPU,
    max_batch_size: int = 32,
    lora_rank: int = 16,
    gpu_id: str = "gpu0",
):
    """Build a ready-to-serve engine for ``profile``.

    Continuous systems get a :class:`GpuEngine` (Punica unrestricted,
    vLLM restricted to one LoRA model per batch); static systems get a
    :class:`~repro.baselines.static_engine.StaticBatchEngine`.
    """
    if profile.batching == "static":
        from repro.baselines.static_engine import StaticBatchEngine

        return StaticBatchEngine(
            gpu_id=gpu_id,
            profile=profile,
            config=config,
            gpu=gpu,
            tp=tp,
            max_batch_size=max_batch_size,
            lora_rank=lora_rank,
        )
    backend = SimulatedBackend(
        config,
        gpu=gpu,
        tp=tp,
        flags=profile.flags,
        lora_rank=lora_rank,
        serve_lora=profile.serves_lora,
        step_overhead=profile.step_overhead,
    )
    loader = LoraLoader() if profile.name == "punica" else LoraLoader(pcie=_INSTANT_PCIE)
    engine_cfg = EngineConfig(
        max_batch_size=max_batch_size,
        same_lora_only=not profile.multi_lora_batching,
    )
    return GpuEngine(gpu_id, backend, engine_cfg, loader=loader)
