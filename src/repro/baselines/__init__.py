"""Baseline serving systems compared against Punica in §7.

Each baseline is a :class:`FrameworkProfile` — a set of capability flags —
plus an engine built from it. The same relaxations the paper grants apply
here: FasterTransformer and vLLM run backbone-only (no LoRA compute at
all), and model-switching costs are omitted for every baseline. The one
capability no baseline has is Punica's: batching requests of *different*
LoRA models into one invocation.
"""

from repro.baselines.framework import (
    ALL_BASELINES,
    ALL_SYSTEMS,
    DEEPSPEED,
    FASTER_TRANSFORMER,
    HF_TRANSFORMERS,
    PUNICA,
    VLLM,
    FrameworkProfile,
    build_engine,
)
from repro.baselines.static_engine import StaticBatchEngine

__all__ = [
    "ALL_BASELINES",
    "ALL_SYSTEMS",
    "DEEPSPEED",
    "FASTER_TRANSFORMER",
    "FrameworkProfile",
    "HF_TRANSFORMERS",
    "PUNICA",
    "StaticBatchEngine",
    "VLLM",
    "build_engine",
]
