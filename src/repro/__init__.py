"""repro — a pure-Python reproduction of *Punica: Multi-Tenant LoRA Serving*
(Chen et al., MLSYS 2024).

Quick tour
----------
>>> from repro import sgmv_shrink, sgmv_expand          # the SGMV operator
>>> from repro import LlamaModel, tiny_config            # functional Llama
>>> from repro import GpuEngine, SimulatedBackend        # serving runtime
>>> from repro import ClusterSimulator, PunicaScheduler  # multi-GPU serving
>>> from repro import generate_trace                     # workloads

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured index; ``benchmarks/`` regenerates every figure.
"""

from repro.baselines import (
    ALL_BASELINES,
    ALL_SYSTEMS,
    DEEPSPEED,
    FASTER_TRANSFORMER,
    HF_TRANSFORMERS,
    PUNICA,
    VLLM,
    FrameworkProfile,
    build_engine,
)
from repro.cluster import (
    ClusterMetrics,
    ClusterSimulator,
    ElasticClusterSimulator,
    ElasticConfig,
    Frontend,
    PunicaScheduler,
    SchedulerConfig,
    SimulationResult,
)
from repro.core import (
    BatchLen,
    BatchPlan,
    LoraRegistry,
    add_lora_sgmv,
    plan_batch,
    sgmv_expand,
    sgmv_shrink,
)
from repro.core.lora import random_lora_weights
from repro.hw import A100_40G, A100_80G, GpuSpec, KernelCostModel
from repro.kvcache import KvPool, PageAllocator, PagedKvData
from repro.models import (
    LLAMA2_13B,
    LLAMA2_70B,
    LLAMA2_7B,
    LlamaConfig,
    LlamaModel,
    StepWorkload,
    TensorParallelConfig,
    model_step_latency,
    random_llama_weights,
    tiny_config,
)
from repro.obs import (
    EventKind,
    MetricsRegistry,
    TraceEvent,
    Tracer,
    compute_breakdowns,
)
from repro.runtime import (
    EngineConfig,
    GpuEngine,
    NumpyBackend,
    Request,
    ServeResult,
    SimulatedBackend,
    SpecConfig,
    requests_from_trace,
    serve_requests,
)
from repro.workloads import ShareGptLengths, Trace, generate_trace, open_loop_trace

__version__ = "0.1.0"

__all__ = [
    "A100_40G",
    "A100_80G",
    "ALL_BASELINES",
    "ALL_SYSTEMS",
    "BatchLen",
    "BatchPlan",
    "ClusterMetrics",
    "ClusterSimulator",
    "DEEPSPEED",
    "ElasticClusterSimulator",
    "ElasticConfig",
    "EngineConfig",
    "EventKind",
    "FASTER_TRANSFORMER",
    "FrameworkProfile",
    "Frontend",
    "GpuEngine",
    "GpuSpec",
    "HF_TRANSFORMERS",
    "KernelCostModel",
    "KvPool",
    "LLAMA2_13B",
    "LLAMA2_70B",
    "LLAMA2_7B",
    "LlamaConfig",
    "LlamaModel",
    "LoraRegistry",
    "MetricsRegistry",
    "NumpyBackend",
    "PUNICA",
    "PageAllocator",
    "PagedKvData",
    "PunicaScheduler",
    "Request",
    "SchedulerConfig",
    "ServeResult",
    "ShareGptLengths",
    "SimulatedBackend",
    "SimulationResult",
    "SpecConfig",
    "StepWorkload",
    "TensorParallelConfig",
    "Trace",
    "TraceEvent",
    "Tracer",
    "VLLM",
    "add_lora_sgmv",
    "build_engine",
    "compute_breakdowns",
    "generate_trace",
    "model_step_latency",
    "open_loop_trace",
    "plan_batch",
    "random_llama_weights",
    "random_lora_weights",
    "requests_from_trace",
    "serve_requests",
    "sgmv_expand",
    "sgmv_shrink",
    "tiny_config",
    "__version__",
]
