"""Command-line interface: regenerate any paper figure from the shell.

Examples
--------
::

    python -m repro list
    python -m repro fig08
    python -m repro fig11 --requests 200
    python -m repro all --out results/
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from collections.abc import Callable

from repro.bench import (
    run_faults_ablation,
    run_fig01,
    run_fig07,
    run_fig08,
    run_fig09,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_loader_bench,
)
from repro.bench.reporting import FigureTable

RUNNERS: "dict[str, tuple[str, Callable[..., FigureTable]]]" = {
    "fig01": ("Figure 1: prefill/decode batching", run_fig01),
    "fig07": ("Figure 7: SGMV roofline", run_fig07),
    "fig08": ("Figure 8: LoRA operator comparison", run_fig08),
    "fig09": ("Figure 9: SGMV rank sweep", run_fig09),
    "fig10": ("Figure 10: transformer layer latency", run_fig10),
    "fig11": ("Figure 11: single-GPU text generation", run_fig11),
    "fig12": ("Figure 12: 70B tensor parallelism", run_fig12),
    "fig13": ("Figure 13: cluster deployment", run_fig13),
    "loader": ("§5.2: on-demand LoRA loading", run_loader_bench),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate figures from 'Punica: Multi-Tenant LoRA Serving'",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available figures")
    all_p = sub.add_parser("all", help="run every figure")
    all_p.add_argument("--out", type=pathlib.Path, default=None,
                       help="directory to save tables into")
    for name, (desc, _) in RUNNERS.items():
        p = sub.add_parser(name, help=desc)
        p.add_argument("--out", type=pathlib.Path, default=None)
        if name in ("fig11", "fig12"):
            p.add_argument("--requests", type=int, default=None,
                           help="trace size (default: quick scale)")
    _add_adapters_parser(sub)
    _add_disagg_parser(sub)
    _add_spec_parser(sub)
    _add_slo_parser(sub)
    _add_faults_parser(sub)
    _add_trace_parser(sub)
    _add_perf_parser(sub)
    _add_serve_parser(sub)
    _add_loadgen_parser(sub)
    return parser


def _add_adapters_parser(sub) -> None:
    """The adapter-lifecycle subcommand (registry + tiered cache tooling)."""
    adapters = sub.add_parser(
        "adapters", help="adapter lifecycle: registry listing, cache simulation"
    )
    asub = adapters.add_subparsers(dest="adapters_command", required=True)

    lst = asub.add_parser(
        "list", help="register a trace's adapters and list their metadata"
    )
    lst.add_argument("--requests", type=int, default=500, help="trace size")
    lst.add_argument("--alpha", type=float, default=1.1, help="Zipf skew")
    lst.add_argument("--seed", type=int, default=0)
    lst.add_argument("--out", type=pathlib.Path, default=None)

    simc = asub.add_parser(
        "simulate-cache",
        help="simulate the tiered adapter cache on a Zipf trace",
    )
    simc.add_argument(
        "--tiers", action="append", default=None, metavar="GPU[:HOST]",
        help="GPU adapter slots and host staging slots, e.g. 4:16 "
             "(omit :HOST for unbounded host RAM); repeatable",
    )
    simc.add_argument("--no-prefetch", action="store_true",
                      help="disable the popularity-driven prefetcher")
    simc.add_argument("--seed", type=int, default=0)
    simc.add_argument("--out", type=pathlib.Path, default=None)


def _add_disagg_parser(sub) -> None:
    """The disaggregation subcommand (prefill/decode split ablation)."""
    disagg = sub.add_parser(
        "disagg",
        help="disaggregated prefill/decode ablation with paged KV handoff",
    )
    disagg.add_argument("--seed", type=int, default=0, help="trace seed")
    disagg.add_argument(
        "--interconnect", choices=["nvlink", "pcie"], default="nvlink",
        help="interconnect model pricing the KV handoff (default: nvlink)",
    )
    disagg.add_argument("--out", type=pathlib.Path, default=None)


def _positive_int(value: str) -> int:
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {value!r}")
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {parsed}")
    return parsed


def _add_spec_parser(sub) -> None:
    """The speculative-decoding subcommand (MagicDec trade-off ablation)."""
    spec = sub.add_parser(
        "spec",
        help="speculative decoding: ITL vs acceptance rate vs batch ablation",
    )
    spec.add_argument("--seed", type=int, default=0, help="trace seed")
    spec.add_argument(
        "--draft-len", type=_positive_int, default=4,
        help="draft tokens proposed per speculative round (default: 4)",
    )
    spec.add_argument("--out", type=pathlib.Path, default=None)


def _add_slo_parser(sub) -> None:
    """The SLO control-plane subcommand (fleet-shape ablation)."""
    slo = sub.add_parser(
        "slo",
        help="SLO attainment vs fleet shape at equal cost (control plane)",
    )
    slo.add_argument("--seed", type=int, default=0, help="trace seed")
    slo.add_argument("--ttft-deadline", type=float, default=None,
                     help="TTFT deadline in seconds (default: 0.3)")
    slo.add_argument("--itl-deadline", type=float, default=None,
                     help="mean inter-token deadline in seconds "
                          "(default: 0.12)")
    slo.add_argument("--out", type=pathlib.Path, default=None)


def _add_faults_parser(sub) -> None:
    """The fault-injection subcommand (crash ablation on the cluster sim)."""
    faults = sub.add_parser(
        "faults",
        help="fault tolerance: GPU crash ablation with §5.3 re-placement",
    )
    faults.add_argument("--seed", type=int, default=0,
                        help="trace and injector seed")
    faults.add_argument("--crash-time", type=float, default=None,
                        help="when the GPU dies (default: mid-trace)")
    faults.add_argument("--out", type=pathlib.Path, default=None)


def _add_trace_parser(sub) -> None:
    """The tracing subcommand (seeded scenarios + latency breakdowns)."""
    trace = sub.add_parser(
        "trace",
        help="run a seeded scenario, dump its JSONL trace and latency breakdown",
    )
    trace.add_argument(
        "scenario", nargs="?", default="single_gpu",
        choices=["single_gpu", "cluster_migration", "faults", "disagg",
                 "serve", "spec", "slo"],
        help="which seeded scenario to run (default: single_gpu)",
    )
    trace.add_argument("--seed", type=int, default=0,
                       help="workload and injector seed")
    trace.add_argument("--out", type=pathlib.Path, default=None,
                       help="write the JSONL trace to this file")
    trace.add_argument("--metrics", action="store_true",
                       help="also print the Prometheus-text metrics snapshot")
    trace.add_argument("--limit", type=int, default=None,
                       help="cap the breakdown table at N requests")


def _add_perf_parser(sub) -> None:
    """The fast-path perf gate (fig13 timed through both engine paths)."""
    perf = sub.add_parser(
        "perf",
        help="fast-path perf gate: time fig13 through both engine paths",
    )
    perf.add_argument("--seed", type=int, default=0)
    perf.add_argument("--scenario", default="fig13_quick",
                      choices=["fig13_quick", "fig13_1m", "all"],
                      help="fig13_quick = fast-vs-ref speedup gate; "
                           "fig13_1m = scale-out wall budget (fast only)")
    perf.add_argument("--rounds", type=int, default=1,
                      help="measurement rounds (>=2 also bounds variance)")
    perf.add_argument("--check", action="store_true",
                      help="exit nonzero if any gate threshold is violated")
    perf.add_argument("--update", action="store_true",
                      help="rewrite benchmarks/BENCH_perf.json with the results")
    perf.add_argument("--out", type=pathlib.Path, default=None)


def _add_serve_parser(sub) -> None:
    """The asyncio serving frontend (docs/serving.md)."""
    serve = sub.add_parser(
        "serve",
        help="asyncio token-streaming server with per-tenant admission control",
    )
    serve.add_argument("--backend", choices=["sim", "functional"], default="sim",
                       help="time-warped cluster simulator, or real tokens "
                            "from the functional NumPy engine")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7012,
                       help="listening port (0 binds an ephemeral one)")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--gpus", type=int, default=2,
                       help="simulated GPU pool size (sim backend)")
    serve.add_argument("--warp", type=float, default=None,
                       help="virtual seconds per wall second for the sim "
                            "backend (default: unthrottled)")
    serve.add_argument("--duration", type=float, default=None,
                       help="stop after this many wall seconds "
                            "(default: serve until interrupted)")


def _add_loadgen_parser(sub) -> None:
    """The async load generator (client side of docs/serving.md)."""
    loadgen = sub.add_parser(
        "loadgen",
        help="drive concurrent streaming clients against the serving frontend",
    )
    loadgen.add_argument("--host", default=None,
                         help="target server; omitted = spin up an "
                              "in-process server and load it")
    loadgen.add_argument("--port", type=int, default=7012)
    loadgen.add_argument("--backend", choices=["sim", "functional"],
                         default="sim", help="in-process backend")
    loadgen.add_argument("--clients", type=int, default=100)
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument("--cancel-fraction", type=float, default=0.1,
                         help="clients that cancel mid-stream")
    loadgen.add_argument("--abort-fraction", type=float, default=0.05,
                         help="clients that hard-disconnect mid-stream")
    loadgen.add_argument("--slow-fraction", type=float, default=0.05,
                         help="slow readers (sleep between token reads)")
    loadgen.add_argument("--warp", type=float, default=None,
                         help="sim-backend time warp (in-process runs)")
    loadgen.add_argument("--metrics", action="store_true",
                         help="print the Prometheus snapshot after the run")


def _run_serve_cmd(args) -> int:
    import asyncio

    from repro.serve.harness import build_stack, serve_until

    stack = build_stack(
        args.backend, seed=args.seed, warp=args.warp,
        num_gpus=args.gpus, host=args.host, port=args.port,
    )
    print(f"serving backend={args.backend} on {args.host}:{args.port} "
          f"(warp={args.warp if args.warp is not None else 'unthrottled'})")
    try:
        asyncio.run(serve_until(stack, duration=args.duration))
    except KeyboardInterrupt:
        pass
    return 0


def _run_loadgen(args) -> int:
    import asyncio

    from repro.serve.client import LoadGenerator, LoadSpec, summarize
    from repro.serve.harness import build_stack, run_load

    spec = LoadSpec(
        num_clients=args.clients,
        cancel_fraction=args.cancel_fraction,
        abort_fraction=args.abort_fraction,
        slow_fraction=args.slow_fraction,
        seed=args.seed,
    )
    if args.host is not None:
        async def _against_remote():
            return await LoadGenerator(args.host, args.port, spec).run()

        results = asyncio.run(_against_remote())
        summary, stack = summarize(results), None
    else:
        stack = build_stack(args.backend, seed=args.seed, warp=args.warp)
        summary, _ = asyncio.run(run_load(stack, spec))
    print(f"# loadgen backend={args.backend if args.host is None else args.host} "
          f"clients={args.clients} seed={args.seed}")
    for key, value in summary.items():
        print(f"{key}: {value}")
    if args.metrics:
        if stack is None:
            print("(metrics are only local to in-process runs)")
        else:
            print()
            print(stack.metrics.registry.render_prometheus(), end="")
    return 0


def _run_perf(args) -> int:
    from repro.bench.perf_gate import run_perf_gate

    table, failures = run_perf_gate(
        seed=args.seed, rounds=args.rounds, write_json=args.update,
        scenario=args.scenario,
    )
    text = table.render()
    print(text)
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / "perf_gate.txt").write_text(text + "\n")
    if args.check and failures:
        for failure in failures:
            print(f"PERF GATE FAILURE: {failure}", file=sys.stderr)
        return 1
    return 0


def _run_trace(args) -> int:
    from repro.obs import breakdown_table, compute_breakdowns, run_scenario
    from repro.obs.analysis import breakdown_totals

    result = run_scenario(args.scenario, seed=args.seed)
    breakdowns = compute_breakdowns(result.tracer)
    print(f"# scenario={args.scenario} seed={args.seed} "
          f"requests={len(result.requests)} events={len(result.tracer.events)}")
    print(breakdown_table(breakdowns, limit=args.limit))
    totals = breakdown_totals(breakdowns)
    parts = "  ".join(f"{k}={v:.4f}s" for k, v in totals.items())
    print(f"totals: {parts}")
    if args.metrics:
        if result.metrics is None:
            print("(no cluster metrics for this scenario)")
        else:
            print()
            print(result.metrics.registry.render_prometheus(), end="")
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        result.tracer.dump_jsonl(args.out)
        print(f"trace written to {args.out}")
    return 0


def _run_disagg(args) -> int:
    from repro.bench import run_disagg_ablation

    table = run_disagg_ablation(
        seed=args.seed, interconnect_name=args.interconnect
    )
    text = table.render()
    print(text)
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / "disagg.txt").write_text(text + "\n")
    return 0


def _run_spec(args) -> int:
    from repro.bench import run_spec_ablation

    table = run_spec_ablation(seed=args.seed, draft_len=args.draft_len)
    text = table.render()
    print(text)
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / "spec.txt").write_text(text + "\n")
    return 0


def _run_slo(args) -> int:
    from repro.bench import run_slo_ablation

    kwargs = {"seed": args.seed}
    if args.ttft_deadline is not None:
        kwargs["ttft_deadline"] = args.ttft_deadline
    if args.itl_deadline is not None:
        kwargs["itl_deadline"] = args.itl_deadline
    table = run_slo_ablation(**kwargs)
    text = table.render()
    print(text)
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / "slo.txt").write_text(text + "\n")
    return 0


def _run_faults(args) -> int:
    kwargs = {"seed": args.seed}
    if args.crash_time is not None:
        kwargs["crash_time"] = args.crash_time
    table = run_faults_ablation(**kwargs)
    text = table.render()
    print(text)
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / "faults.txt").write_text(text + "\n")
    return 0


def _parse_tiers(spec: str) -> "tuple[int, int | None]":
    gpu, _, host = spec.partition(":")
    try:
        gpu_slots = int(gpu)
        host_slots = int(host) if host else None
    except ValueError:
        raise SystemExit(f"bad --tiers spec {spec!r}; expected GPU[:HOST]")
    if gpu_slots < 1 or (host_slots is not None and host_slots < 1):
        raise SystemExit(f"--tiers slots must be >= 1, got {spec!r}")
    return gpu_slots, host_slots


def _run_adapters(args) -> int:
    from dataclasses import replace

    from repro.adapters import AdapterRegistry, register_trace_adapters
    from repro.bench.adapter_cache import (
        QUICK,
        build_adapter_cluster,
        mean_cold_ttft,
        mean_ttft,
    )
    from repro.models.config import LLAMA2_7B
    from repro.utils.units import MIB, MS
    from repro.workloads.trace import generate_trace, open_loop_trace

    if args.adapters_command == "list":
        trace = generate_trace(
            args.requests, "skewed", seed=args.seed, alpha=args.alpha
        )
        registry = AdapterRegistry()
        register_trace_adapters(registry, trace, LLAMA2_7B)
        counts: "dict[str, int]" = {}
        for spec in trace:
            counts[spec.lora_id] = counts.get(spec.lora_id, 0) + 1
        table = FigureTable(
            figure_id="Adapter registry",
            title=(
                f"{len(registry)} adapters over {len(trace)} requests "
                f"(Zipf-{args.alpha})"
            ),
            headers=["lora_id", "rank", "mib", "trace_requests", "tier"],
        )
        for meta in sorted(
            registry.adapters(), key=lambda m: -counts[m.lora_id]
        ):
            table.add_row(
                meta.lora_id, meta.rank, meta.nbytes / MIB,
                counts[meta.lora_id], registry.tier(meta.lora_id).name,
            )
    else:
        scale = QUICK
        trace = open_loop_trace(
            rate=scale.rate, duration=scale.duration, distribution="skewed",
            seed=args.seed, alpha=scale.alpha,
        )
        table = FigureTable(
            figure_id="Adapter cache simulation",
            title=(
                f"{scale.num_gpus} GPUs, {trace.num_lora_models} adapters, "
                f"prefetch {'off' if args.no_prefetch else 'on'}"
            ),
            headers=[
                "tiers", "cold_ttft_ms", "mean_ttft_ms", "gpu_hits",
                "host_hits", "disk_hits", "evictions", "prefetch_acc",
            ],
        )
        for spec in args.tiers or ["4", "4:16", "2:8"]:
            gpu_slots, host_slots = _parse_tiers(spec)
            sim, _, _ = build_adapter_cluster(
                trace,
                scale=replace(scale, gpu_adapter_slots=gpu_slots),
                prefetch=not args.no_prefetch,
                host_slots=host_slots,
            )
            result = sim.run(trace)
            hits = result.metrics.adapter_hit_counts()
            table.add_row(
                spec, mean_cold_ttft(result) / MS, mean_ttft(result) / MS,
                hits["gpu"], hits["host"], hits["disk"],
                result.metrics.eviction_count(),
                result.metrics.prefetch_accuracy(),
            )
        table.add_note("tiers = GPU adapter slots[:host staging slots]")
    text = table.render()
    print(text)
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        name = f"adapters_{args.adapters_command.replace('-', '_')}"
        (args.out / f"{name}.txt").write_text(text + "\n")
    return 0


def _run_one(name: str, out: "pathlib.Path | None", requests: "int | None") -> None:
    _, runner = RUNNERS[name]
    kwargs = {}
    if requests is not None and name in ("fig11", "fig12"):
        kwargs["n_requests"] = requests
    table = runner(**kwargs)
    text = table.render()
    if name == "fig07":
        from repro.bench.fig07_roofline import fig07_ascii_plot

        text += "\n\n" + fig07_ascii_plot()
    print(text)
    print()
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
        (out / f"{name}.txt").write_text(text + "\n")


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name, (desc, _) in RUNNERS.items():
            print(f"{name:8s} {desc}")
        return 0
    if args.command == "all":
        for name in RUNNERS:
            _run_one(name, args.out, requests=None)
        return 0
    if args.command == "adapters":
        return _run_adapters(args)
    if args.command == "disagg":
        return _run_disagg(args)
    if args.command == "spec":
        return _run_spec(args)
    if args.command == "slo":
        return _run_slo(args)
    if args.command == "faults":
        return _run_faults(args)
    if args.command == "trace":
        return _run_trace(args)
    if args.command == "perf":
        return _run_perf(args)
    if args.command == "serve":
        return _run_serve_cmd(args)
    if args.command == "loadgen":
        return _run_loadgen(args)
    _run_one(args.command, args.out, getattr(args, "requests", None))
    return 0


if __name__ == "__main__":
    sys.exit(main())
