"""Command-line interface: regenerate any paper figure from the shell.

Examples
--------
::

    python -m repro list
    python -m repro fig08
    python -m repro fig11 --requests 200
    python -m repro all --out results/
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from collections.abc import Callable

from repro.bench import (
    run_fig01,
    run_fig07,
    run_fig08,
    run_fig09,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_loader_bench,
)
from repro.bench.reporting import FigureTable

RUNNERS: "dict[str, tuple[str, Callable[..., FigureTable]]]" = {
    "fig01": ("Figure 1: prefill/decode batching", run_fig01),
    "fig07": ("Figure 7: SGMV roofline", run_fig07),
    "fig08": ("Figure 8: LoRA operator comparison", run_fig08),
    "fig09": ("Figure 9: SGMV rank sweep", run_fig09),
    "fig10": ("Figure 10: transformer layer latency", run_fig10),
    "fig11": ("Figure 11: single-GPU text generation", run_fig11),
    "fig12": ("Figure 12: 70B tensor parallelism", run_fig12),
    "fig13": ("Figure 13: cluster deployment", run_fig13),
    "loader": ("§5.2: on-demand LoRA loading", run_loader_bench),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate figures from 'Punica: Multi-Tenant LoRA Serving'",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available figures")
    all_p = sub.add_parser("all", help="run every figure")
    all_p.add_argument("--out", type=pathlib.Path, default=None,
                       help="directory to save tables into")
    for name, (desc, _) in RUNNERS.items():
        p = sub.add_parser(name, help=desc)
        p.add_argument("--out", type=pathlib.Path, default=None)
        if name in ("fig11", "fig12"):
            p.add_argument("--requests", type=int, default=None,
                           help="trace size (default: quick scale)")
    return parser


def _run_one(name: str, out: "pathlib.Path | None", requests: "int | None") -> None:
    _, runner = RUNNERS[name]
    kwargs = {}
    if requests is not None and name in ("fig11", "fig12"):
        kwargs["n_requests"] = requests
    table = runner(**kwargs)
    text = table.render()
    if name == "fig07":
        from repro.bench.fig07_roofline import fig07_ascii_plot

        text += "\n\n" + fig07_ascii_plot()
    print(text)
    print()
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
        (out / f"{name}.txt").write_text(text + "\n")


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name, (desc, _) in RUNNERS.items():
            print(f"{name:8s} {desc}")
        return 0
    if args.command == "all":
        for name in RUNNERS:
            _run_one(name, args.out, requests=None)
        return 0
    _run_one(args.command, args.out, getattr(args, "requests", None))
    return 0


if __name__ == "__main__":
    sys.exit(main())
