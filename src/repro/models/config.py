"""Llama-2 architecture configurations (Touvron et al., 2023).

The 7B/13B/70B presets match the released architectures; the paper serves
all three in fp16 with LoRA rank 16 applied to every dense projection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.spec import FP16_BYTES
from repro.kvcache.pool import kv_bytes_per_token


@dataclass(frozen=True)
class LlamaConfig:
    """Architecture hyperparameters of one Llama-family model."""

    name: str
    hidden_size: int
    intermediate_size: int
    num_layers: int
    num_heads: int
    num_kv_heads: int
    vocab_size: int = 32_000
    max_seq_len: int = 4_096
    rope_theta: float = 10_000.0

    def __post_init__(self) -> None:
        if self.hidden_size % self.num_heads != 0:
            raise ValueError(
                f"hidden_size {self.hidden_size} not divisible by num_heads {self.num_heads}"
            )
        if self.num_heads % self.num_kv_heads != 0:
            raise ValueError(
                f"num_heads {self.num_heads} not divisible by num_kv_heads {self.num_kv_heads}"
            )
        for attr in ("hidden_size", "intermediate_size", "num_layers", "vocab_size"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")

    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.num_heads

    @property
    def kv_dim(self) -> int:
        """Width of the K and V projections (GQA-aware)."""
        return self.num_kv_heads * self.head_dim

    def proj_dims(self) -> dict[str, tuple[int, int]]:
        """``(h_in, h_out)`` of every dense projection LoRA attaches to."""
        h, inter, kv = self.hidden_size, self.intermediate_size, self.kv_dim
        return {
            "q": (h, h),
            "k": (h, kv),
            "v": (h, kv),
            "o": (h, h),
            "gate": (h, inter),
            "up": (h, inter),
            "down": (inter, h),
        }

    def layer_param_count(self) -> int:
        """Parameters in one transformer layer (projections + norms)."""
        projections = sum(i * o for i, o in self.proj_dims().values())
        norms = 2 * self.hidden_size
        return projections + norms

    def param_count(self) -> int:
        """Total parameters including embeddings and the LM head."""
        embed = self.vocab_size * self.hidden_size
        return self.num_layers * self.layer_param_count() + 2 * embed + self.hidden_size

    def weight_bytes(self) -> int:
        """fp16 footprint of the backbone — what one GPU must hold resident."""
        return self.param_count() * FP16_BYTES

    def kv_bytes_per_token(self) -> int:
        """KvCache bytes one token occupies across all layers."""
        return kv_bytes_per_token(self.num_layers, self.num_kv_heads, self.head_dim)

    def lora_param_count(self, rank: int) -> int:
        """Parameters of one LoRA model at ``rank`` on all projections."""
        if rank <= 0:
            raise ValueError(f"rank must be positive, got {rank}")
        return self.num_layers * sum(
            (i + o) * rank for i, o in self.proj_dims().values()
        )

    def lora_bytes(self, rank: int) -> int:
        """fp16 footprint of one LoRA model — the §5.2 on-demand load unit."""
        return self.lora_param_count(rank) * FP16_BYTES


LLAMA2_7B = LlamaConfig(
    name="llama2-7b",
    hidden_size=4_096,
    intermediate_size=11_008,
    num_layers=32,
    num_heads=32,
    num_kv_heads=32,
)

LLAMA2_13B = LlamaConfig(
    name="llama2-13b",
    hidden_size=5_120,
    intermediate_size=13_824,
    num_layers=40,
    num_heads=40,
    num_kv_heads=40,
)

LLAMA2_70B = LlamaConfig(
    name="llama2-70b",
    hidden_size=8_192,
    intermediate_size=28_672,
    num_layers=80,
    num_heads=64,
    num_kv_heads=8,  # grouped-query attention
)


def tiny_config(
    hidden_size: int = 64,
    num_layers: int = 2,
    num_heads: int = 4,
    num_kv_heads: int | None = None,
    vocab_size: int = 128,
    intermediate_size: int | None = None,
) -> LlamaConfig:
    """A toy Llama for the functional backend and fast tests."""
    return LlamaConfig(
        name="llama-tiny",
        hidden_size=hidden_size,
        intermediate_size=intermediate_size or hidden_size * 3,
        num_layers=num_layers,
        num_heads=num_heads,
        num_kv_heads=num_kv_heads if num_kv_heads is not None else num_heads,
        vocab_size=vocab_size,
        max_seq_len=512,
    )
