"""Analytical step latency of one batched model invocation.

Bridges the kernel cost model (:mod:`repro.hw.kernels`) and the serving
runtime: given *what* a batch contains — prefill lengths, decode KvCache
lengths, token-level LoRA segments — these functions price one transformer
layer and one full model step on a :class:`~repro.hw.spec.GpuSpec`,
optionally sharded with Megatron tensor parallelism.

Capability flags (``flash``, ``fused_layernorm``, ``cache_concat``) exist
so the baseline frameworks of Fig 11 can be priced through the *same*
formulas with their documented inefficiencies switched on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.kernels import KernelCostModel
from repro.hw.spec import FP16_BYTES
from repro.models.config import LlamaConfig
from repro.models.tp import TensorParallelConfig, SINGLE_GPU


@dataclass(frozen=True)
class StepWorkload:
    """The shape of one batched invocation.

    Attributes
    ----------
    prefill_lens:
        New-token counts of the prefill requests in the batch (Punica keeps
        at most one; baselines may prefill whole batches).
    decode_kv_lens:
        For each decode request, the KvCache length it attends over
        (past tokens; the new token adds one).
    lora_segments:
        Token-level SGMV segment sizes, or ``None`` when serving the bare
        backbone (the vLLM/FasterTransformer baselines).
    lora_rank:
        Rank of every LoRA model in the batch (16 in all paper experiments).
    """

    prefill_lens: tuple[int, ...] = ()
    decode_kv_lens: tuple[int, ...] = ()
    lora_segments: tuple[int, ...] | None = None
    lora_rank: int = 16

    def __post_init__(self) -> None:
        if any(l <= 0 for l in self.prefill_lens):
            raise ValueError(f"prefill lengths must be positive, got {self.prefill_lens}")
        if any(l < 0 for l in self.decode_kv_lens):
            raise ValueError(f"kv lengths must be nonnegative, got {self.decode_kv_lens}")
        if not self.prefill_lens and not self.decode_kv_lens:
            raise ValueError("workload must contain at least one request")
        if self.lora_segments is not None:
            if any(s <= 0 for s in self.lora_segments):
                raise ValueError("lora segments must be positive")
            if sum(self.lora_segments) != self.num_tokens:
                raise ValueError(
                    f"lora segments cover {sum(self.lora_segments)} tokens, "
                    f"batch has {self.num_tokens}"
                )
        if self.lora_rank <= 0:
            raise ValueError(f"lora_rank must be positive, got {self.lora_rank}")

    @property
    def num_tokens(self) -> int:
        """Tokens flowing through the dense projections this step."""
        return sum(self.prefill_lens) + len(self.decode_kv_lens)

    @property
    def batch_size(self) -> int:
        return len(self.prefill_lens) + len(self.decode_kv_lens)


@dataclass(frozen=True)
class PerfFlags:
    """Framework capability switches (all on = Punica; see baselines)."""

    flash_attention: bool = True
    fused_layernorm: bool = True
    cache_concat: bool = False
    """HF-style per-step KvCache reallocation (reads+writes the whole cache)."""
    framework_overhead_per_layer: float = 0.0
    """Extra eager-mode host time per layer (unoptimized frameworks)."""
    lora_impl: str = "sgmv"
    """Which batched LoRA operator the engine runs: "sgmv" (Punica),
    "gather_bmm", or "loop" — the Fig 8 comparison, end to end."""

    def __post_init__(self) -> None:
        if self.lora_impl not in ("sgmv", "gather_bmm", "loop"):
            raise ValueError(f"unknown lora_impl {self.lora_impl!r}")


PUNICA_FLAGS = PerfFlags()


def _lora_latency(
    kcm: KernelCostModel,
    work: StepWorkload,
    h_in: int,
    h_out: int,
    impl: str = "sgmv",
) -> float:
    """Batched LoRA addon for one projection under the chosen operator."""
    if work.lora_segments is None:
        return 0.0
    if impl == "sgmv":
        return kcm.lora_addon(work.lora_segments, h_in, h_out, work.lora_rank)
    if impl == "gather_bmm":
        return kcm.gather_bmm_lora(work.lora_segments, h_in, h_out, work.lora_rank)
    return kcm.loop_lora(work.lora_segments, h_in, h_out, work.lora_rank)


@dataclass(frozen=True)
class StepLatencyTerms:
    """The kv-invariant pieces of :func:`model_step_latency`, pre-summed.

    Every term of the step-latency formula except batched decode attention
    depends only on the *shape* of the invocation (token counts, LoRA
    segments, prefill lengths) — which is exactly what a reused
    :class:`~repro.core.batch.BatchPlan` pins. Decode attention is the
    lone term that moves as KvCache lengths grow each step.

    Floating-point addition is not associative, so the split must preserve
    the original summation order exactly for trace byte-identity:
    ``layer_prefix`` is the running sum of every term *before* decode
    attention (a single float — identical to the accumulator's value at
    that point), ``layer_tails`` are the individual term values added
    *after* it, in order, and ``model_tails`` the three model-level terms.
    Re-evaluating via :func:`step_latency_from_terms` therefore performs
    the same float operations in the same order as the direct computation
    and returns the bit-identical result.
    """

    layer_prefix: float
    layer_tails: tuple[float, ...]
    model_tails: tuple[float, ...]
    num_decode: int
    heads_shard: int
    kv_heads_shard: int


def _layer_terms(
    config: LlamaConfig,
    kcm: KernelCostModel,
    work: StepWorkload,
    tp: TensorParallelConfig,
    flags: PerfFlags,
) -> "tuple[list[float], list[float]]":
    """Per-layer latency terms split around decode attention.

    Single source of truth for the layer formula: both the direct
    :func:`transformer_layer_latency` and the cached fast path fold these
    exact values, so they cannot drift apart.
    """
    tp.validate_for(config)
    w = tp.world_size
    h = config.hidden_size
    kv_dim_shard = max(config.kv_dim // w, config.head_dim)
    inter_shard = config.intermediate_size // w
    heads_shard = tp.shard_heads(config)
    kv_heads_shard = tp.shard_kv_heads(config)
    tokens = work.num_tokens

    prefix: "list[float]" = []
    prefix.append(2.0 * kcm.layernorm(fused=flags.fused_layernorm))

    # Attention block projections (column-parallel q/k/v, row-parallel o).
    prefix.append(kcm.gemm(tokens, h // w, h))  # q
    prefix.append(kcm.gemm(tokens, kv_dim_shard, h))  # k
    prefix.append(kcm.gemm(tokens, kv_dim_shard, h))  # v
    prefix.append(kcm.gemm(tokens, h, h // w))  # o
    prefix.append(_lora_latency(kcm, work, h, h // w, flags.lora_impl))  # q lora
    prefix.append(
        2.0 * _lora_latency(kcm, work, h, kv_dim_shard, flags.lora_impl)
    )  # k, v lora
    prefix.append(_lora_latency(kcm, work, h // w, h, flags.lora_impl))  # o lora

    # Self-attention kernels: one BatchPrefill per prefill request; the
    # BatchDecode over all decode requests goes *between* prefix and tail.
    for s in work.prefill_lens:
        prefix.append(
            kcm.attention_prefill(
                s, heads_shard, config.head_dim, kv_heads_shard,
                flash=flags.flash_attention,
            )
        )

    tail: "list[float]" = []
    # MLP (column-parallel gate/up, row-parallel down).
    tail.append(2.0 * kcm.gemm(tokens, inter_shard, h))  # gate, up
    tail.append(kcm.gemm(tokens, h, inter_shard))  # down
    tail.append(
        2.0 * _lora_latency(kcm, work, h, inter_shard, flags.lora_impl)
    )  # gate, up lora
    tail.append(_lora_latency(kcm, work, inter_shard, h, flags.lora_impl))  # down lora

    # RoPE + SiLU + two residual adds, all bandwidth-bound elementwise.
    tail.append(4.0 * kcm.elementwise(tokens * h * FP16_BYTES / w))

    # HF-style cache concatenation: the whole layer cache is copied.
    if flags.cache_concat:
        cache_tokens = sum(work.decode_kv_lens) + sum(work.prefill_lens)
        cache_bytes = cache_tokens * 2 * kv_heads_shard * config.head_dim * FP16_BYTES
        tail.append(kcm.elementwise(cache_bytes))

    tail.append(tp.layer_allreduce_time(config, tokens))  # two all-reduces
    tail.append(flags.framework_overhead_per_layer)
    return prefix, tail


def transformer_layer_latency(
    config: LlamaConfig,
    kcm: KernelCostModel,
    work: StepWorkload,
    tp: TensorParallelConfig = SINGLE_GPU,
    flags: PerfFlags = PUNICA_FLAGS,
) -> float:
    """Latency of one transformer layer for ``work`` on one GPU (Fig 10).

    Sums: two norms, Q/K/V/O projections (+LoRA), prefill and decode
    attention kernels, the SwiGLU MLP (+LoRA), RoPE/residual elementwise
    passes, and — under tensor parallelism — the two all-reduces.
    """
    prefix, tail = _layer_terms(config, kcm, work, tp, flags)
    t = 0.0
    for term in prefix:
        t += term
    if work.decode_kv_lens:
        t += kcm.attention_decode(
            [l + 1 for l in work.decode_kv_lens],
            tp.shard_heads(config),
            config.head_dim,
            tp.shard_kv_heads(config),
        )
    for term in tail:
        t += term
    return t


def step_latency_terms(
    config: LlamaConfig,
    kcm: KernelCostModel,
    work: StepWorkload,
    tp: TensorParallelConfig = SINGLE_GPU,
    flags: PerfFlags = PUNICA_FLAGS,
) -> StepLatencyTerms:
    """Precompute the kv-invariant terms of :func:`model_step_latency`.

    The caller caches the result against the batch plan and re-evaluates
    with :func:`step_latency_from_terms` as KvCache lengths advance.
    """
    prefix_terms, tail_terms = _layer_terms(config, kcm, work, tp, flags)
    prefix = 0.0
    for term in prefix_terms:
        prefix += term
    model_tails = (
        # Embedding lookup for every input token.
        kcm.elementwise(work.num_tokens * config.hidden_size * FP16_BYTES),
        # LM head only for tokens that produce logits (one per request).
        kcm.gemm(
            work.batch_size, config.vocab_size // tp.world_size, config.hidden_size
        ),
        kcm.layernorm(fused=flags.fused_layernorm),
    )
    return StepLatencyTerms(
        layer_prefix=prefix,
        layer_tails=tuple(tail_terms),
        model_tails=model_tails,
        num_decode=len(work.decode_kv_lens),
        heads_shard=tp.shard_heads(config),
        kv_heads_shard=tp.shard_kv_heads(config),
    )


def step_latency_from_terms(
    config: LlamaConfig,
    kcm: KernelCostModel,
    terms: StepLatencyTerms,
    decode_past_lens: "list[int]",
) -> float:
    """Re-evaluate :func:`model_step_latency` from cached invariant terms.

    ``decode_past_lens`` must list the decode requests' *past* KvCache
    lengths in the same (plan) order the terms were built from. Bit
    equality with the direct computation is guaranteed by the summation
    contract documented on :class:`StepLatencyTerms`.
    """
    if len(decode_past_lens) != terms.num_decode:
        raise ValueError(
            f"terms were built for {terms.num_decode} decode requests, "
            f"got {len(decode_past_lens)}"
        )
    t = terms.layer_prefix
    if decode_past_lens:
        t += kcm.attention_decode(
            [l + 1 for l in decode_past_lens],
            terms.heads_shard,
            config.head_dim,
            terms.kv_heads_shard,
        )
    for term in terms.layer_tails:
        t += term
    total = config.num_layers * t
    for term in terms.model_tails:
        total += term
    return total


def step_latency_steady(
    config: LlamaConfig,
    kcm: KernelCostModel,
    terms: StepLatencyTerms,
    total_kv: int,
) -> float:
    """:func:`step_latency_from_terms` with the decode KvCache lengths
    summarized by their total.

    ``total_kv`` must equal ``sum(past + 1 for past in decode_past_lens)``
    as an exact integer; decode attention depends on the lengths only
    through that sum and the batch size
    (:meth:`~repro.hw.kernels.KernelCostModel.attention_decode_total`), so
    the result is bit-identical to the per-length evaluation.
    """
    t = terms.layer_prefix
    if terms.num_decode:
        t += kcm.attention_decode_total(
            float(total_kv),
            terms.num_decode,
            terms.heads_shard,
            config.head_dim,
            terms.kv_heads_shard,
        )
    for term in terms.layer_tails:
        t += term
    total = config.num_layers * t
    for term in terms.model_tails:
        total += term
    return total


def step_latency_steady_run(
    config: LlamaConfig,
    kcm: KernelCostModel,
    terms: StepLatencyTerms,
    total_kv: int,
    increment: int,
    count: int,
) -> np.ndarray:
    """Vectorized :func:`step_latency_steady` over a run of steady steps.

    Step ``k`` of a steady decode run prices with
    ``total_kv + k * increment`` past-plus-current tokens (``increment``
    is the batch size: every request's KvCache grows by one per step).
    The arithmetic mirrors the scalar function op for op — elementwise
    float64 array operations round identically to their scalar
    counterparts, and the KV totals are exact integers — so
    ``step_latency_steady_run(...)[k] == step_latency_steady(...,
    total_kv + k * increment)`` bit for bit. One array expression per
    run replaces ``count`` Python-level evaluations; the engine's
    vectorized decode lane is the only caller.
    """
    totals = (
        np.arange(count, dtype=np.int64) * increment + total_kv
    ).astype(np.float64)
    if terms.num_decode:
        t = terms.layer_prefix + kcm.attention_decode_total(
            totals,
            terms.num_decode,
            terms.heads_shard,
            config.head_dim,
            terms.kv_heads_shard,
        )
    else:
        t = np.full(count, terms.layer_prefix)
    for term in terms.layer_tails:
        t += term
    total = config.num_layers * t
    for term in terms.model_tails:
        total += term
    return total


def model_step_latency(
    config: LlamaConfig,
    kcm: KernelCostModel,
    work: StepWorkload,
    tp: TensorParallelConfig = SINGLE_GPU,
    flags: PerfFlags = PUNICA_FLAGS,
) -> float:
    """One full model invocation: all layers + embedding + LM head."""
    layer = transformer_layer_latency(config, kcm, work, tp=tp, flags=flags)
    t = config.num_layers * layer
    # Embedding lookup for every input token.
    t += kcm.elementwise(work.num_tokens * config.hidden_size * FP16_BYTES)
    # LM head only for tokens that produce logits (one per request).
    t += kcm.gemm(work.batch_size, config.vocab_size // tp.world_size, config.hidden_size)
    t += kcm.layernorm(fused=flags.fused_layernorm)
    return t


def spec_verify_latency(
    config: LlamaConfig,
    kcm: KernelCostModel,
    work: StepWorkload,
    draft_len: int,
    tp: TensorParallelConfig = SINGLE_GPU,
    flags: PerfFlags = PUNICA_FLAGS,
) -> float:
    """Price the batched verify of one speculative round.

    Every decode request submits a ``draft_len + 1``-token chunk (the
    last committed token re-scored plus the drafts) in one target-model
    invocation. The dense/LoRA side is exactly a short prefill of that
    chunk per request — each LoRA segment widens by the chunk length —
    while attention pays the piece a prefill does not have: streaming
    each request's past KV under the chunk's causal block
    (:meth:`~repro.hw.kernels.KernelCostModel.attention_verify`).
    """
    if work.prefill_lens:
        raise ValueError("speculative verify prices an all-decode batch")
    if draft_len < 1:
        raise ValueError(f"draft_len must be >= 1, got {draft_len}")
    chunk = draft_len + 1
    segments = (
        tuple(s * chunk for s in work.lora_segments)
        if work.lora_segments is not None
        else None
    )
    # Build the chunked workload via the prefill shape so the dense
    # projections and LoRA segments price over chunk*batch tokens.
    verify_work = StepWorkload(
        prefill_lens=(chunk,) * len(work.decode_kv_lens),
        decode_kv_lens=(),
        lora_segments=segments,
        lora_rank=work.lora_rank,
    )
    prefix_terms, tail_terms = _layer_terms(config, kcm, verify_work, tp, flags)
    heads_shard = tp.shard_heads(config)
    kv_heads_shard = tp.shard_kv_heads(config)
    layer = 0.0
    for term in prefix_terms:
        layer += term
    # _layer_terms priced each chunk as a fresh prefill (no past); swap in
    # the verify kernel's past-aware cost by adding the difference term.
    for past in work.decode_kv_lens:
        layer += kcm.attention_verify(
            chunk, past, heads_shard, config.head_dim, kv_heads_shard,
            flash=flags.flash_attention,
        )
        layer -= kcm.attention_prefill(
            chunk, heads_shard, config.head_dim, kv_heads_shard,
            flash=flags.flash_attention,
        )
    for term in tail_terms:
        layer += term
    t = config.num_layers * layer
    t += kcm.elementwise(verify_work.num_tokens * config.hidden_size * FP16_BYTES)
    # Logits for every chunk position (each needs an accept/reject verdict).
    t += kcm.gemm(
        verify_work.num_tokens, config.vocab_size // tp.world_size,
        config.hidden_size,
    )
    t += kcm.layernorm(fused=flags.fused_layernorm)
    return t


def spec_round_latency(
    config: LlamaConfig,
    kcm: KernelCostModel,
    work: StepWorkload,
    draft_len: int,
    draft_cost_ratio: float,
    tp: TensorParallelConfig = SINGLE_GPU,
    flags: PerfFlags = PUNICA_FLAGS,
) -> float:
    """One full speculative round: ``draft_len`` cheap draft decode steps
    plus the batched verify.

    The draft model runs the bare backbone (no LoRA — adapters only
    steer the verified output) at ``draft_cost_ratio`` of a target decode
    step; its KvCache mirrors the target's and grows one token per draft
    step. ``work`` must be the all-decode workload of the round's batch,
    with ``decode_kv_lens`` holding each request's *past* KV length.
    """
    if work.prefill_lens:
        raise ValueError("speculative rounds run on all-decode batches")
    if not 0.0 < draft_cost_ratio <= 1.0:
        raise ValueError(
            f"draft_cost_ratio must be within (0, 1], got {draft_cost_ratio}"
        )
    total = 0.0
    kv = work.decode_kv_lens
    for k in range(draft_len):
        draft_work = StepWorkload(
            prefill_lens=(),
            decode_kv_lens=tuple(l + k for l in kv),
            lora_segments=None,
            lora_rank=work.lora_rank,
        )
        total += draft_cost_ratio * model_step_latency(
            config, kcm, draft_work, tp=tp, flags=flags
        )
    total += spec_verify_latency(config, kcm, work, draft_len, tp=tp, flags=flags)
    return total


def decode_step_workload(
    kv_lens: "list[int]",
    lora_segments: "list[int] | None" = None,
    lora_rank: int = 16,
) -> StepWorkload:
    """Convenience: a pure decode step over ``kv_lens`` requests."""
    return StepWorkload(
        prefill_lens=(),
        decode_kv_lens=tuple(kv_lens),
        lora_segments=tuple(lora_segments) if lora_segments is not None else None,
        lora_rank=lora_rank,
    )
