"""Analytical step latency of one batched model invocation.

Bridges the kernel cost model (:mod:`repro.hw.kernels`) and the serving
runtime: given *what* a batch contains — prefill lengths, decode KvCache
lengths, token-level LoRA segments — these functions price one transformer
layer and one full model step on a :class:`~repro.hw.spec.GpuSpec`,
optionally sharded with Megatron tensor parallelism.

Capability flags (``flash``, ``fused_layernorm``, ``cache_concat``) exist
so the baseline frameworks of Fig 11 can be priced through the *same*
formulas with their documented inefficiencies switched on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.kernels import KernelCostModel
from repro.hw.spec import FP16_BYTES
from repro.models.config import LlamaConfig
from repro.models.tp import TensorParallelConfig, SINGLE_GPU


@dataclass(frozen=True)
class StepWorkload:
    """The shape of one batched invocation.

    Attributes
    ----------
    prefill_lens:
        New-token counts of the prefill requests in the batch (Punica keeps
        at most one; baselines may prefill whole batches).
    decode_kv_lens:
        For each decode request, the KvCache length it attends over
        (past tokens; the new token adds one).
    lora_segments:
        Token-level SGMV segment sizes, or ``None`` when serving the bare
        backbone (the vLLM/FasterTransformer baselines).
    lora_rank:
        Rank of every LoRA model in the batch (16 in all paper experiments).
    """

    prefill_lens: tuple[int, ...] = ()
    decode_kv_lens: tuple[int, ...] = ()
    lora_segments: tuple[int, ...] | None = None
    lora_rank: int = 16

    def __post_init__(self) -> None:
        if any(l <= 0 for l in self.prefill_lens):
            raise ValueError(f"prefill lengths must be positive, got {self.prefill_lens}")
        if any(l < 0 for l in self.decode_kv_lens):
            raise ValueError(f"kv lengths must be nonnegative, got {self.decode_kv_lens}")
        if not self.prefill_lens and not self.decode_kv_lens:
            raise ValueError("workload must contain at least one request")
        if self.lora_segments is not None:
            if any(s <= 0 for s in self.lora_segments):
                raise ValueError("lora segments must be positive")
            if sum(self.lora_segments) != self.num_tokens:
                raise ValueError(
                    f"lora segments cover {sum(self.lora_segments)} tokens, "
                    f"batch has {self.num_tokens}"
                )
        if self.lora_rank <= 0:
            raise ValueError(f"lora_rank must be positive, got {self.lora_rank}")

    @property
    def num_tokens(self) -> int:
        """Tokens flowing through the dense projections this step."""
        return sum(self.prefill_lens) + len(self.decode_kv_lens)

    @property
    def batch_size(self) -> int:
        return len(self.prefill_lens) + len(self.decode_kv_lens)


@dataclass(frozen=True)
class PerfFlags:
    """Framework capability switches (all on = Punica; see baselines)."""

    flash_attention: bool = True
    fused_layernorm: bool = True
    cache_concat: bool = False
    """HF-style per-step KvCache reallocation (reads+writes the whole cache)."""
    framework_overhead_per_layer: float = 0.0
    """Extra eager-mode host time per layer (unoptimized frameworks)."""
    lora_impl: str = "sgmv"
    """Which batched LoRA operator the engine runs: "sgmv" (Punica),
    "gather_bmm", or "loop" — the Fig 8 comparison, end to end."""

    def __post_init__(self) -> None:
        if self.lora_impl not in ("sgmv", "gather_bmm", "loop"):
            raise ValueError(f"unknown lora_impl {self.lora_impl!r}")


PUNICA_FLAGS = PerfFlags()


def _lora_latency(
    kcm: KernelCostModel,
    work: StepWorkload,
    h_in: int,
    h_out: int,
    impl: str = "sgmv",
) -> float:
    """Batched LoRA addon for one projection under the chosen operator."""
    if work.lora_segments is None:
        return 0.0
    if impl == "sgmv":
        return kcm.lora_addon(work.lora_segments, h_in, h_out, work.lora_rank)
    if impl == "gather_bmm":
        return kcm.gather_bmm_lora(work.lora_segments, h_in, h_out, work.lora_rank)
    return kcm.loop_lora(work.lora_segments, h_in, h_out, work.lora_rank)


def transformer_layer_latency(
    config: LlamaConfig,
    kcm: KernelCostModel,
    work: StepWorkload,
    tp: TensorParallelConfig = SINGLE_GPU,
    flags: PerfFlags = PUNICA_FLAGS,
) -> float:
    """Latency of one transformer layer for ``work`` on one GPU (Fig 10).

    Sums: two norms, Q/K/V/O projections (+LoRA), prefill and decode
    attention kernels, the SwiGLU MLP (+LoRA), RoPE/residual elementwise
    passes, and — under tensor parallelism — the two all-reduces.
    """
    tp.validate_for(config)
    w = tp.world_size
    h = config.hidden_size
    kv_dim_shard = max(config.kv_dim // w, config.head_dim)
    inter_shard = config.intermediate_size // w
    heads_shard = tp.shard_heads(config)
    kv_heads_shard = tp.shard_kv_heads(config)
    tokens = work.num_tokens

    t = 0.0
    t += 2.0 * kcm.layernorm(fused=flags.fused_layernorm)

    # Attention block projections (column-parallel q/k/v, row-parallel o).
    t += kcm.gemm(tokens, h // w, h)  # q
    t += kcm.gemm(tokens, kv_dim_shard, h)  # k
    t += kcm.gemm(tokens, kv_dim_shard, h)  # v
    t += kcm.gemm(tokens, h, h // w)  # o
    t += _lora_latency(kcm, work, h, h // w, flags.lora_impl)  # q lora
    t += 2.0 * _lora_latency(kcm, work, h, kv_dim_shard, flags.lora_impl)  # k, v lora
    t += _lora_latency(kcm, work, h // w, h, flags.lora_impl)  # o lora

    # Self-attention kernels: one BatchPrefill per prefill request, one
    # BatchDecode over all decode requests (§5).
    for s in work.prefill_lens:
        t += kcm.attention_prefill(
            s, heads_shard, config.head_dim, kv_heads_shard, flash=flags.flash_attention
        )
    if work.decode_kv_lens:
        t += kcm.attention_decode(
            [l + 1 for l in work.decode_kv_lens],
            heads_shard,
            config.head_dim,
            kv_heads_shard,
        )

    # MLP (column-parallel gate/up, row-parallel down).
    t += 2.0 * kcm.gemm(tokens, inter_shard, h)  # gate, up
    t += kcm.gemm(tokens, h, inter_shard)  # down
    t += 2.0 * _lora_latency(kcm, work, h, inter_shard, flags.lora_impl)  # gate, up lora
    t += _lora_latency(kcm, work, inter_shard, h, flags.lora_impl)  # down lora

    # RoPE + SiLU + two residual adds, all bandwidth-bound elementwise.
    t += 4.0 * kcm.elementwise(tokens * h * FP16_BYTES / w)

    # HF-style cache concatenation: the whole layer cache is copied.
    if flags.cache_concat:
        cache_tokens = sum(work.decode_kv_lens) + sum(work.prefill_lens)
        cache_bytes = cache_tokens * 2 * kv_heads_shard * config.head_dim * FP16_BYTES
        t += kcm.elementwise(cache_bytes)

    t += tp.layer_allreduce_time(config, tokens)  # two all-reduces (method doubles)
    t += flags.framework_overhead_per_layer
    return t


def model_step_latency(
    config: LlamaConfig,
    kcm: KernelCostModel,
    work: StepWorkload,
    tp: TensorParallelConfig = SINGLE_GPU,
    flags: PerfFlags = PUNICA_FLAGS,
) -> float:
    """One full model invocation: all layers + embedding + LM head."""
    layer = transformer_layer_latency(config, kcm, work, tp=tp, flags=flags)
    t = config.num_layers * layer
    # Embedding lookup for every input token.
    t += kcm.elementwise(work.num_tokens * config.hidden_size * FP16_BYTES)
    # LM head only for tokens that produce logits (one per request).
    t += kcm.gemm(work.batch_size, config.vocab_size // tp.world_size, config.hidden_size)
    t += kcm.layernorm(fused=flags.fused_layernorm)
    return t


def decode_step_workload(
    kv_lens: "list[int]",
    lora_segments: "list[int] | None" = None,
    lora_rank: int = 16,
) -> StepWorkload:
    """Convenience: a pure decode step over ``kv_lens`` requests."""
    return StepWorkload(
        prefill_lens=(),
        decode_kv_lens=tuple(kv_lens),
        lora_segments=tuple(lora_segments) if lora_segments is not None else None,
        lora_rank=lora_rank,
    )
