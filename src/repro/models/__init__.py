"""Llama-2 model family: configurations, a functional NumPy implementation,
per-step analytical performance, and Megatron tensor parallelism.

Two faces, per DESIGN.md §6:

* :class:`LlamaConfig` presets for 7B/13B/70B drive the *analytical* cost
  accounting used by every figure bench.
* :func:`tiny_config` + :class:`LlamaModel` form a real (toy-scale)
  transformer — RMSNorm, RoPE, SwiGLU, optional GQA — that actually
  generates tokens through the paged KvCache and batched SGMV LoRA paths,
  proving the serving semantics numerically.
"""

from repro.models.config import (
    LLAMA2_7B,
    LLAMA2_13B,
    LLAMA2_70B,
    LlamaConfig,
    tiny_config,
)
from repro.models.llama import LlamaModel, TokenBatch
from repro.models.perf import (
    PUNICA_FLAGS,
    PerfFlags,
    StepWorkload,
    decode_step_workload,
    model_step_latency,
    transformer_layer_latency,
)
from repro.models.tp import SINGLE_GPU, TensorParallelConfig
from repro.models.weights import LlamaWeights, random_llama_weights

__all__ = [
    "LLAMA2_13B",
    "LLAMA2_70B",
    "LLAMA2_7B",
    "LlamaConfig",
    "LlamaModel",
    "LlamaWeights",
    "PUNICA_FLAGS",
    "PerfFlags",
    "SINGLE_GPU",
    "StepWorkload",
    "TensorParallelConfig",
    "TokenBatch",
    "decode_step_workload",
    "model_step_latency",
    "random_llama_weights",
    "tiny_config",
    "transformer_layer_latency",
]
