"""Functional NumPy Llama with paged KvCache and batched multi-LoRA (SGMV).

This is a real transformer — RMSNorm, rotary embeddings, SwiGLU MLP,
optional grouped-query attention — executed exactly the way Punica's
runtime executes it (§5/§6):

* all tokens of one invocation (one prefill's prompt + one token per
  decode request) are concatenated along the sequence dimension;
* dense projections and the LoRA addon run *batched over all tokens*,
  with the LoRA addon computed by two SGMV launches over the plan's
  token-level segments;
* attention runs per request against the paged KvCache
  (:class:`~repro.kvcache.pool.PagedKvData`), prefill and decode through
  the same storage.

At toy scale this proves the serving semantics numerically;
:func:`reference_forward_full` is the no-cache, single-request gold
standard the incremental path is tested against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.batch import BatchPlan
from repro.core.lora import LoraRegistry
from repro.core.ops import add_lora_sgmv
from repro.kvcache.pool import PagedKvData
from repro.models.weights import LlamaLayerWeights, LlamaWeights


def rmsnorm(x: np.ndarray, weight: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Root-mean-square LayerNorm (the variant Llama uses)."""
    scale = np.sqrt(np.mean(x * x, axis=-1, keepdims=True) + eps)
    return x / scale * weight


def silu(x: np.ndarray) -> np.ndarray:
    return x / (1.0 + np.exp(-x))


def rope_rotate(x: np.ndarray, positions: np.ndarray, theta: float) -> np.ndarray:
    """Apply rotary position embeddings.

    ``x`` is ``(tokens, heads, head_dim)``; ``positions`` is ``(tokens,)``.
    Pairs ``(x[2i], x[2i+1])`` are rotated by ``pos * theta^(-2i/d)``.
    """
    tokens, _, head_dim = x.shape
    if head_dim % 2 != 0:
        raise ValueError(f"head_dim must be even for RoPE, got {head_dim}")
    half = head_dim // 2
    freq = theta ** (-np.arange(half, dtype=np.float64) / half)
    angles = positions[:, None].astype(np.float64) * freq[None, :]  # (tokens, half)
    cos = np.cos(angles)[:, None, :]
    sin = np.sin(angles)[:, None, :]
    x_even, x_odd = x[..., 0::2], x[..., 1::2]
    out = np.empty_like(x)
    out[..., 0::2] = x_even * cos - x_odd * sin
    out[..., 1::2] = x_even * sin + x_odd * cos
    return out


def causal_attention(q: np.ndarray, k: np.ndarray, v: np.ndarray, q_positions: np.ndarray) -> np.ndarray:
    """Multi-head attention of queries over a K/V history.

    ``q``: ``(n_q, H, D)``; ``k``/``v``: ``(H, S, D)``; query ``i`` may
    attend to history positions ``<= q_positions[i]``. Returns
    ``(n_q, H, D)``.
    """
    head_dim = q.shape[-1]
    scores = np.einsum("qhd,hsd->hqs", q, k) / np.sqrt(head_dim)
    key_pos = np.arange(k.shape[1])
    mask = key_pos[None, :] > q_positions[:, None]  # (n_q, S)
    scores = np.where(mask[None, :, :], -np.inf, scores)
    scores -= scores.max(axis=-1, keepdims=True)
    weights = np.exp(scores)
    weights /= weights.sum(axis=-1, keepdims=True)
    return np.einsum("hqs,hsd->qhd", weights, v)


@dataclass(frozen=True)
class TokenBatch:
    """One model invocation's inputs, aligned with a :class:`BatchPlan`.

    ``token_ids`` holds every input token in plan order (prefill prompts
    concatenated, then one token per decode request); ``past_lens[i]`` is
    how many tokens of ``plan.entries[i]``'s sequence are already in the
    KvCache (0 for a fresh prefill).
    """

    plan: BatchPlan
    token_ids: np.ndarray
    past_lens: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.token_ids.ndim != 1:
            raise ValueError("token_ids must be 1-D")
        if len(self.token_ids) != self.plan.total_tokens:
            raise ValueError(
                f"{len(self.token_ids)} token ids for a {self.plan.total_tokens}-token plan"
            )
        if len(self.past_lens) != len(self.plan.entries):
            raise ValueError("past_lens must align with plan entries")
        if any(p < 0 for p in self.past_lens):
            raise ValueError("past_lens must be nonnegative")

    def positions(self) -> np.ndarray:
        """Absolute sequence position of every input token."""
        pos = np.empty(self.plan.total_tokens, dtype=np.int64)
        cursor = 0
        for entry, past in zip(self.plan.entries, self.past_lens):
            pos[cursor : cursor + entry.num_tokens] = past + np.arange(entry.num_tokens)
            cursor += entry.num_tokens
        return pos

    def entry_token_slices(self) -> list[slice]:
        """Token-range of each entry, in plan order."""
        slices = []
        cursor = 0
        for entry in self.plan.entries:
            slices.append(slice(cursor, cursor + entry.num_tokens))
            cursor += entry.num_tokens
        return slices


class LlamaModel:
    """The functional backbone + multi-LoRA execution engine."""

    def __init__(
        self,
        weights: LlamaWeights,
        kv: PagedKvData,
        registry: LoraRegistry | None = None,
    ):
        cfg = weights.config
        if kv.num_layers != cfg.num_layers or kv.num_kv_heads != cfg.num_kv_heads:
            raise ValueError("KvCache geometry does not match the model config")
        if kv.head_dim != cfg.head_dim:
            raise ValueError("KvCache head_dim does not match the model config")
        self.weights = weights
        self.config = cfg
        self.kv = kv
        self.registry = registry

    # ------------------------------------------------------------------
    def _lora_addon(
        self,
        y: np.ndarray,
        h: np.ndarray,
        plan: BatchPlan,
        layer: int,
        proj: str,
    ) -> None:
        """Add the batched LoRA delta for one projection via SGMV in place.

        Uses the zero-padded stack so tenants of *different* ranks batch
        into one launch (exact; identical to the strict stack when ranks
        are uniform).
        """
        if self.registry is None:
            return
        wa, wb = self.registry.stack_padded(list(plan.segment_lora_ids), layer, proj)
        add_lora_sgmv(y, h, wa, wb, plan.seg)

    def _project(
        self, h: np.ndarray, lw: LlamaLayerWeights, plan: BatchPlan, layer: int, proj: str
    ) -> np.ndarray:
        """Backbone GEMM plus SGMV LoRA addon for one projection."""
        y = h @ lw.projection(proj)
        self._lora_addon(y, h, plan, layer, proj)
        return y

    # ------------------------------------------------------------------
    def forward(self, batch: TokenBatch) -> np.ndarray:
        """Run one batched invocation; returns next-token logits per entry.

        Side effect: writes every input token's K/V into the paged cache
        (pages must already be allocated by the caller — the engine does
        this on admission/append).
        """
        cfg, w = self.config, self.weights
        plan = batch.plan
        positions = batch.positions()
        slices = batch.entry_token_slices()
        group = cfg.num_heads // cfg.num_kv_heads

        x = w.embedding[batch.token_ids]
        for layer_idx, lw in enumerate(w.layers):
            resid = x
            h = rmsnorm(x, lw.input_norm)
            q = self._project(h, lw, plan, layer_idx, "q")
            k = self._project(h, lw, plan, layer_idx, "k")
            v = self._project(h, lw, plan, layer_idx, "v")

            q = q.reshape(-1, cfg.num_heads, cfg.head_dim)
            k = k.reshape(-1, cfg.num_kv_heads, cfg.head_dim)
            v = v.reshape(-1, cfg.num_kv_heads, cfg.head_dim)
            q = rope_rotate(q, positions, cfg.rope_theta)
            k = rope_rotate(k, positions, cfg.rope_theta)

            # Write this invocation's K/V into the paged cache.
            for entry, sl, past in zip(plan.entries, slices, batch.past_lens):
                for j, tok in enumerate(range(sl.start, sl.stop)):
                    self.kv.write_token(
                        entry.request_id, layer_idx, past + j, k[tok], v[tok]
                    )

            # Attention per request over its full (paged) history.
            attn = np.empty_like(q)
            for entry, sl, past in zip(plan.entries, slices, batch.past_lens):
                hist_len = past + entry.num_tokens
                k_hist, v_hist = self.kv.gather(entry.request_id, layer_idx, hist_len)
                if group > 1:
                    k_hist = np.repeat(k_hist, group, axis=0)
                    v_hist = np.repeat(v_hist, group, axis=0)
                attn[sl] = causal_attention(q[sl], k_hist, v_hist, positions[sl])

            attn_flat = attn.reshape(-1, cfg.num_heads * cfg.head_dim)
            o = self._project(attn_flat, lw, plan, layer_idx, "o")
            x = resid + o

            resid = x
            h = rmsnorm(x, lw.post_attn_norm)
            gate = self._project(h, lw, plan, layer_idx, "gate")
            up = self._project(h, lw, plan, layer_idx, "up")
            act = silu(gate) * up
            down = self._lora_down(act, lw, plan, layer_idx)
            x = resid + down

        x = rmsnorm(x, w.final_norm)
        last_token_idx = np.asarray([sl.stop - 1 for sl in slices])
        return x[last_token_idx] @ w.lm_head

    def _lora_down(
        self, act: np.ndarray, lw: LlamaLayerWeights, plan: BatchPlan, layer: int
    ) -> np.ndarray:
        y = act @ lw.w_down
        self._lora_addon(y, act, plan, layer, "down")
        return y


def reference_forward_full(
    weights: LlamaWeights,
    token_ids: np.ndarray,
    registry: LoraRegistry | None = None,
    lora_id: str | None = None,
) -> np.ndarray:
    """Gold standard: full-sequence forward for ONE request, no cache.

    Computes next-token logits for the last position by processing the
    whole history at once with dense causal attention, merging the LoRA
    delta directly into the weights (``W + A B``). The incremental paged
    path must match this exactly.
    """
    cfg = weights.config
    token_ids = np.asarray(token_ids)
    positions = np.arange(len(token_ids))
    group = cfg.num_heads // cfg.num_kv_heads

    def merged(lw: LlamaLayerWeights, layer_idx: int, proj: str) -> np.ndarray:
        base = lw.projection(proj)
        if registry is None or lora_id is None:
            return base
        return base + registry.get(lora_id).layers[layer_idx][proj].delta()

    x = weights.embedding[token_ids]
    for layer_idx, lw in enumerate(weights.layers):
        resid = x
        h = rmsnorm(x, lw.input_norm)
        q = (h @ merged(lw, layer_idx, "q")).reshape(-1, cfg.num_heads, cfg.head_dim)
        k = (h @ merged(lw, layer_idx, "k")).reshape(-1, cfg.num_kv_heads, cfg.head_dim)
        v = (h @ merged(lw, layer_idx, "v")).reshape(-1, cfg.num_kv_heads, cfg.head_dim)
        q = rope_rotate(q, positions, cfg.rope_theta)
        k = rope_rotate(k, positions, cfg.rope_theta)
        if group > 1:
            k = np.repeat(k, group, axis=1)
            v = np.repeat(v, group, axis=1)
        attn = causal_attention(
            q, np.swapaxes(k, 0, 1), np.swapaxes(v, 0, 1), positions
        )
        o = attn.reshape(-1, cfg.num_heads * cfg.head_dim) @ merged(lw, layer_idx, "o")
        x = resid + o
        resid = x
        h = rmsnorm(x, lw.post_attn_norm)
        act = silu(h @ merged(lw, layer_idx, "gate")) * (h @ merged(lw, layer_idx, "up"))
        x = resid + act @ merged(lw, layer_idx, "down")
    x = rmsnorm(x, weights.final_norm)
    return x[-1] @ weights.lm_head
