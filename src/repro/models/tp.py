"""Megatron-style tensor parallelism (Shoeybi et al., 2019).

The 70B experiment (§7.2, Fig 12) shards every transformer layer across 8
GPUs: Q/K/V/gate/up projections column-parallel, O/down row-parallel, one
all-reduce after the attention block and one after the MLP. LoRA weights
shard the same way as their base projections, so SGMV dimensions divide by
the world size exactly like the backbone GEMMs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.interconnect import InterconnectSpec
from repro.hw.spec import FP16_BYTES
from repro.models.config import LlamaConfig


@dataclass(frozen=True)
class TensorParallelConfig:
    """A tensor-parallel deployment of one model replica."""

    world_size: int
    interconnect: InterconnectSpec | None = None

    def __post_init__(self) -> None:
        if self.world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {self.world_size}")
        if self.world_size > 1 and self.interconnect is None:
            raise ValueError("world_size > 1 requires an interconnect spec")

    def validate_for(self, config: LlamaConfig) -> None:
        """Check the model shards evenly (Megatron's divisibility rules)."""
        w = self.world_size
        if config.num_heads % w != 0:
            raise ValueError(f"{config.num_heads} heads not divisible by tp={w}")
        if config.num_kv_heads % w != 0 and w % config.num_kv_heads != 0:
            raise ValueError(
                f"{config.num_kv_heads} kv heads incompatible with tp={w}"
            )
        if config.intermediate_size % w != 0:
            raise ValueError(
                f"intermediate size {config.intermediate_size} not divisible by tp={w}"
            )

    def shard_heads(self, config: LlamaConfig) -> int:
        """Attention heads computed per GPU."""
        return config.num_heads // self.world_size

    def shard_kv_heads(self, config: LlamaConfig) -> int:
        """KV heads per GPU (GQA heads replicate when tp > kv heads)."""
        return max(1, config.num_kv_heads // self.world_size)

    def weight_bytes_per_gpu(self, config: LlamaConfig) -> int:
        """Backbone fp16 bytes resident on each GPU of the group."""
        return config.weight_bytes() // self.world_size

    def layer_allreduce_time(self, config: LlamaConfig, num_tokens: int) -> float:
        """The two per-layer all-reduces over ``(tokens, hidden)`` activations."""
        if self.world_size == 1 or self.interconnect is None:
            return 0.0
        nbytes = num_tokens * config.hidden_size * FP16_BYTES
        return 2.0 * self.interconnect.allreduce_time(nbytes, self.world_size)


#: Single-GPU deployment (Testbed #1).
SINGLE_GPU = TensorParallelConfig(world_size=1)
