"""Backbone weights for the functional (toy-scale) Llama.

Weights are float32 NumPy arrays in *row-vector* convention: activations
are ``(tokens, features)`` and projections are applied as ``x @ W`` with
``W`` shaped ``(h_in, h_out)`` — the same convention as the LoRA addon
``y += x A B``, so merged-weight equivalence tests are a plain addition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.config import LlamaConfig
from repro.utils.rng import new_rng


@dataclass(frozen=True)
class LlamaLayerWeights:
    """One transformer layer's parameters."""

    wq: np.ndarray
    wk: np.ndarray
    wv: np.ndarray
    wo: np.ndarray
    w_gate: np.ndarray
    w_up: np.ndarray
    w_down: np.ndarray
    input_norm: np.ndarray
    post_attn_norm: np.ndarray

    def projection(self, name: str) -> np.ndarray:
        """Look up a projection by the LoRA target name (q/k/v/o/gate/up/down)."""
        table = {
            "q": self.wq,
            "k": self.wk,
            "v": self.wv,
            "o": self.wo,
            "gate": self.w_gate,
            "up": self.w_up,
            "down": self.w_down,
        }
        try:
            return table[name]
        except KeyError:
            raise KeyError(f"unknown projection {name!r}") from None


@dataclass(frozen=True)
class LlamaWeights:
    """Full backbone: embeddings, layers, final norm, LM head."""

    config: LlamaConfig
    embedding: np.ndarray
    layers: tuple[LlamaLayerWeights, ...]
    final_norm: np.ndarray
    lm_head: np.ndarray

    def __post_init__(self) -> None:
        cfg = self.config
        if self.embedding.shape != (cfg.vocab_size, cfg.hidden_size):
            raise ValueError(f"embedding shape {self.embedding.shape} wrong for {cfg.name}")
        if len(self.layers) != cfg.num_layers:
            raise ValueError(
                f"{len(self.layers)} layers supplied, config says {cfg.num_layers}"
            )
        if self.lm_head.shape != (cfg.hidden_size, cfg.vocab_size):
            raise ValueError(f"lm_head shape {self.lm_head.shape} wrong for {cfg.name}")


def random_llama_weights(
    config: LlamaConfig, seed: "int | np.random.Generator | None" = 0
) -> LlamaWeights:
    """Random backbone weights, scaled ~1/sqrt(fan_in) to keep activations sane."""
    rng = new_rng(seed)
    cfg = config

    def proj(h_in: int, h_out: int) -> np.ndarray:
        return (rng.standard_normal((h_in, h_out)) / np.sqrt(h_in)).astype(np.float64)

    dims = cfg.proj_dims()
    layers = []
    for _ in range(cfg.num_layers):
        layers.append(
            LlamaLayerWeights(
                wq=proj(*dims["q"]),
                wk=proj(*dims["k"]),
                wv=proj(*dims["v"]),
                wo=proj(*dims["o"]),
                w_gate=proj(*dims["gate"]),
                w_up=proj(*dims["up"]),
                w_down=proj(*dims["down"]),
                input_norm=np.ones(cfg.hidden_size),
                post_attn_norm=np.ones(cfg.hidden_size),
            )
        )
    return LlamaWeights(
        config=cfg,
        embedding=(rng.standard_normal((cfg.vocab_size, cfg.hidden_size))).astype(
            np.float64
        ),
        layers=tuple(layers),
        final_norm=np.ones(cfg.hidden_size),
        lm_head=proj(cfg.hidden_size, cfg.vocab_size),
    )
