"""GPU device specifications and calibration constants.

All constants that tie the analytical model to the paper's A100 testbeds
live here (single source of truth). DESIGN.md §5 documents how each was
derived from numbers reported in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.utils.units import GB, GIB, TB, US


@dataclass(frozen=True)
class GemvBandwidthModel:
    """Achieved HBM bandwidth of the SGMV GEMV schedule as a function of row length.

    Fig 9 of the paper shows per-LoRA incremental latency shrinking (per
    byte) as the rank grows: larger contiguous rows coalesce better. We use
    a saturating curve ``bw(r) = bw_max * r / (r + r_half)``; together with
    the per-segment host cost below it reproduces Fig 9's bs-64 rank sweep
    (72/75/89/118 us at ranks 8/16/32/64).
    """

    bw_max: float = 1_300 * GB
    r_half: float = 8.0

    def achieved(self, rank: int) -> float:
        """Achieved aggregate bandwidth (bytes/s) for rank-``rank`` rows."""
        if rank <= 0:
            raise ValueError(f"rank must be positive, got {rank}")
        return self.bw_max * rank / (rank + self.r_half)


@dataclass(frozen=True)
class GpuSpec:
    """An NVIDIA data-center GPU for the analytical cost model.

    Attributes
    ----------
    name:
        Human-readable device name.
    peak_fp16_flops:
        Peak dense fp16 tensor-core throughput, FLOP/s.
    hbm_bandwidth:
        Peak HBM bandwidth, bytes/s.
    hbm_capacity:
        Total device memory, bytes.
    num_sms:
        Streaming multiprocessor count (bounds kernel parallelism).
    kernel_launch_overhead:
        Fixed host-side cost of one kernel launch, seconds.
    framework_op_overhead:
        Extra per-operator cost of an *eager framework* dispatch (PyTorch
        Python -> ATen -> cuBLAS), paid by the Loop baseline once per
        matmul. Fused/captured kernels (SGMV, the serving engine's graph)
        do not pay it.
    sgmv_kernel_overhead:
        Device-side fixed cost of one SGMV launch (launch + the grid sync
        the Split-K schedule needs) when launched back-to-back inside the
        serving engine.
    op_dispatch_overhead:
        Host-side cost of dispatching one standalone custom op through the
        PyTorch extension layer — paid in the *microbenchmark* setting
        (Figs 8/9) but not in-engine. The paper's 37 us batch-1 full-LoRA
        latency = 2 launches x (kernel + dispatch) ~= 2 x 18 us.
    segment_host_cost:
        Host-side cost *per segment per standalone launch* of building the
        SGMV segment-pointer arrays. The serving engine computes segment
        indices once per model invocation and reuses them 7L times (§6),
        so this cost vanishes in-engine; in the Fig 8/9 microbenchmark it
        recurs on every op call and produces the near-linear latency growth
        with the number of distinct LoRA models.
    gemm_efficiency:
        Fraction of peak tensor-core FLOP/s a large dense GEMM achieves.
    attention_bandwidth_efficiency:
        Fraction of HBM bandwidth achieved by batch-decode attention kernels
        (FlashInfer-style); attention reads are more scattered than GEMM
        weight streams.
    tc_bandwidth_efficiency:
        Fraction of HBM bandwidth achieved by the tensor-core SGMV schedule
        when streaming LoRA weight tiles.
    gemv_bw:
        Saturating-bandwidth model for the GEMV (all-distinct) schedule.
    fused_layernorm_latency / unfused_layernorm_latency:
        Measured in the paper's §6: fusing LayerNorm reduced 110 us to 4 us.
    """

    name: str
    peak_fp16_flops: float
    hbm_bandwidth: float
    hbm_capacity: float
    num_sms: int = 108
    kernel_launch_overhead: float = 5 * US
    framework_op_overhead: float = 10 * US
    sgmv_kernel_overhead: float = 3.5 * US
    op_dispatch_overhead: float = 14.5 * US
    segment_host_cost: float = 0.15 * US
    gemm_efficiency: float = 0.62
    attention_bandwidth_efficiency: float = 0.55
    tc_bandwidth_efficiency: float = 0.65
    gemv_bw: GemvBandwidthModel = field(default_factory=GemvBandwidthModel)
    fused_layernorm_latency: float = 4 * US
    unfused_layernorm_latency: float = 110 * US

    def __post_init__(self) -> None:
        for attr in ("peak_fp16_flops", "hbm_bandwidth", "hbm_capacity", "num_sms"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")

    def with_overrides(self, **kwargs: object) -> "GpuSpec":
        """Return a copy with selected fields replaced (for ablations)."""
        return replace(self, **kwargs)  # type: ignore[arg-type]


@dataclass(frozen=True)
class HwSpec(GpuSpec):
    """A :class:`GpuSpec` priced for heterogeneous-fleet planning.

    Adds a *relative* ``cost_per_hour`` (unitless dollars; the a100-80g
    preset anchors 1.0) so the control plane can compare fleets at equal
    spend. The named presets deliberately span the fitness axes the SLO
    router discriminates on: H100 is the FLOPs-heavy part (prefill), the
    L4 class is the cheap low-bandwidth part (light decode), and A100-80G
    sits in between with the paper's calibrated constants.
    """

    cost_per_hour: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.cost_per_hour <= 0:
            raise ValueError(
                f"cost_per_hour must be positive, got {self.cost_per_hour}"
            )

    @classmethod
    def preset(cls, name: str) -> "HwSpec":
        """Return a named fleet preset (``a100-80g`` | ``h100`` | ``l4``)."""
        try:
            return _HW_PRESETS[name]
        except KeyError:
            known = ", ".join(sorted(_HW_PRESETS))
            raise ValueError(f"unknown HwSpec preset {name!r} (known: {known})") from None

    @classmethod
    def preset_names(cls) -> "tuple[str, ...]":
        return tuple(sorted(_HW_PRESETS))


_HW_PRESETS: "dict[str, HwSpec]" = {
    # The paper's testbed part, at the reference price point.
    "a100-80g": HwSpec(
        name="A100-SXM4-80GB",
        peak_fp16_flops=312 * TB,
        hbm_bandwidth=1_935 * GB,
        hbm_capacity=80 * GIB,
        cost_per_hour=1.0,
    ),
    # H100 SXM: ~2x dense fp16 FLOPs and ~1.7x HBM bandwidth over A100,
    # at roughly twice the rental price — the prefill-fitness part.
    "h100": HwSpec(
        name="H100-SXM5-80GB",
        peak_fp16_flops=624 * TB,
        hbm_bandwidth=3_350 * GB,
        hbm_capacity=80 * GIB,
        num_sms=132,
        cost_per_hour=2.0,
    ),
    # L4-class inference part: modest FLOPs, narrow GDDR6 bus, 24 GB —
    # cheap capacity for short-context decode working sets.
    "l4": HwSpec(
        name="L4-24GB",
        peak_fp16_flops=121 * TB,
        hbm_bandwidth=300 * GB,
        hbm_capacity=24 * GIB,
        num_sms=58,
        cost_per_hour=0.25,
    ),
}


#: Testbed #1: one A100 80GB SXM (1 935 GB/s HBM).
A100_80G = GpuSpec(
    name="A100-SXM4-80GB",
    peak_fp16_flops=312 * TB,  # 312 TFLOP/s
    hbm_bandwidth=1_935 * GB,
    hbm_capacity=80 * GIB,
)

#: Testbed #2: HGX A100 40GB (1 555 GB/s HBM), 8 per server, NvSwitch.
A100_40G = GpuSpec(
    name="A100-SXM4-40GB",
    peak_fp16_flops=312 * TB,
    hbm_bandwidth=1_555 * GB,
    hbm_capacity=40 * GIB,
)

#: Bytes per element for fp16 — the paper serves all models in 16-bit.
FP16_BYTES = 2
