"""Host-to-device transfer model (on-demand LoRA weight loading, paper §5.2).

The paper reports that loading one layer's LoRA weights over PCIe Gen4 x16
takes ~50 us and a whole 7B-scale LoRA model ~2 ms, and that these copies
are asynchronous so they overlap with compute. We model a PCIe link with an
effective bandwidth and a fixed per-transfer latency, plus a ``TransferPlan``
describing when an async copy that starts at time t completes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.units import GB, US
from repro.utils.validation import check_nonnegative, check_positive


@dataclass(frozen=True)
class PcieSpec:
    """A host-device PCIe link.

    ``effective_bandwidth`` is the achieved (not theoretical) bandwidth of a
    pinned-memory cudaMemcpyAsync; Gen4 x16 peaks at 32 GB/s and achieves
    roughly 25 GB/s in practice.
    """

    name: str
    effective_bandwidth: float
    latency: float = 10 * US

    def __post_init__(self) -> None:
        check_positive("effective_bandwidth", self.effective_bandwidth)
        check_nonnegative("latency", self.latency)

    def transfer_time(self, nbytes: float) -> float:
        """Duration of one host-to-device copy of ``nbytes`` bytes."""
        check_nonnegative("nbytes", nbytes)
        if nbytes == 0:
            return 0.0
        return self.latency + nbytes / self.effective_bandwidth


PCIE_GEN4_X16 = PcieSpec(name="PCIe Gen4 x16", effective_bandwidth=25 * GB)


@dataclass(frozen=True)
class TransferPlan:
    """An asynchronous copy issued at ``start`` finishing at ``finish``.

    The loader issues one of these per LoRA model fetch; the engine lets the
    GPU keep running the current batch and only admits the new request once
    ``finish`` has passed (paper §5.2's "join the batch naturally").
    """

    nbytes: float
    start: float
    finish: float

    def __post_init__(self) -> None:
        check_nonnegative("nbytes", self.nbytes)
        if self.finish < self.start:
            raise ValueError("finish must be >= start")

    @property
    def duration(self) -> float:
        return self.finish - self.start

    def done_by(self, t: float) -> bool:
        """True if the copy has completed at time ``t``."""
        return t >= self.finish


def plan_transfer(spec: PcieSpec, nbytes: float, start: float) -> TransferPlan:
    """Schedule an async host-to-device copy on ``spec`` starting at ``start``."""
    return TransferPlan(nbytes=nbytes, start=start, finish=start + spec.transfer_time(nbytes))
