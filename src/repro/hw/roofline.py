"""Roofline model (Williams et al., CACM 2009) utilities.

The paper's Fig 7 places the SGMV kernel on an A100 roofline: x-axis
arithmetic intensity (FLOP/byte), y-axis achieved FLOP/s, bounded by the
memory-bandwidth diagonal and the peak-compute ceiling. These helpers
compute the bound, the latency implied by it, and series of
(intensity, achieved) points for plotting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.spec import GpuSpec
from repro.utils.validation import check_nonnegative, check_positive


@dataclass(frozen=True)
class RooflinePoint:
    """One measured/modelled kernel placed on the roofline."""

    label: str
    flop: float
    io_bytes: float
    latency: float

    def __post_init__(self) -> None:
        check_nonnegative("flop", self.flop)
        check_positive("io_bytes", self.io_bytes)
        check_positive("latency", self.latency)

    @property
    def arithmetic_intensity(self) -> float:
        """FLOP per byte of memory traffic."""
        return self.flop / self.io_bytes

    @property
    def achieved_flops(self) -> float:
        """Achieved throughput, FLOP/s."""
        return self.flop / self.latency


def roofline_bound(spec: GpuSpec, intensity: float) -> float:
    """The attainable FLOP/s at ``intensity`` FLOP/byte on ``spec``.

    ``min(peak, intensity * bandwidth)`` — the classic two-segment roof.
    """
    check_nonnegative("intensity", intensity)
    return min(spec.peak_fp16_flops, intensity * spec.hbm_bandwidth)


def roofline_latency(spec: GpuSpec, flop: float, io_bytes: float) -> float:
    """Ideal latency of a kernel moving ``io_bytes`` and computing ``flop``.

    The larger of the compute time and the memory time; no overheads. The
    kernel models in :mod:`repro.hw.kernels` add launch cost and efficiency
    factors on top of this bound.
    """
    check_nonnegative("flop", flop)
    check_nonnegative("io_bytes", io_bytes)
    return max(flop / spec.peak_fp16_flops, io_bytes / spec.hbm_bandwidth)


def roofline_series(
    spec: GpuSpec, intensities: "list[float]"
) -> "list[tuple[float, float]]":
    """(intensity, attainable FLOP/s) pairs for drawing the roof itself."""
    return [(x, roofline_bound(spec, x)) for x in intensities]


def ridge_point(spec: GpuSpec) -> float:
    """Arithmetic intensity where the memory roof meets the compute roof."""
    return spec.peak_fp16_flops / spec.hbm_bandwidth


def roofline_ascii(
    spec: GpuSpec,
    points: "list[RooflinePoint]",
    width: int = 72,
    height: int = 20,
) -> str:
    """Render a log-log roofline chart with ``points`` as ASCII art.

    The roof is drawn with ``/`` (bandwidth slope) and ``-`` (compute
    ceiling); each point is marked with the first character of its label.
    Made for terminals — the Fig 7 CLI output uses it.
    """
    import math

    if not points:
        raise ValueError("need at least one point to plot")
    if width < 20 or height < 6:
        raise ValueError("plot too small to be legible")

    xs = [p.arithmetic_intensity for p in points]
    ys = [p.achieved_flops for p in points]
    x_lo = math.log10(min(xs)) - 0.3
    x_hi = max(math.log10(max(xs)), math.log10(ridge_point(spec))) + 0.5
    y_hi = math.log10(spec.peak_fp16_flops) + 0.2
    y_lo = min(math.log10(min(ys)), y_hi - 4.0) - 0.3

    def col(x_log: float) -> int:
        return int((x_log - x_lo) / (x_hi - x_lo) * (width - 1))

    def row(y_log: float) -> int:
        # Row 0 is the top of the plot.
        frac = (y_log - y_lo) / (y_hi - y_lo)
        return (height - 1) - int(frac * (height - 1))

    grid = [[" "] * width for _ in range(height)]

    # The roof itself.
    for c in range(width):
        x_log = x_lo + (x_hi - x_lo) * c / (width - 1)
        bound = roofline_bound(spec, 10**x_log)
        r = row(math.log10(bound))
        if 0 <= r < height:
            ridge = math.log10(ridge_point(spec))
            grid[r][c] = "-" if x_log >= ridge else "/"

    # The measured points (drawn after, so they sit on top of the roof).
    for p in points:
        r = row(math.log10(p.achieved_flops))
        c = col(math.log10(p.arithmetic_intensity))
        if 0 <= r < height and 0 <= c < width:
            grid[r][c] = p.label[0] if p.label else "*"

    top = f"{10**y_hi:.1e} FLOP/s"
    bottom = f"{10**y_lo:.1e}"
    lines = [top]
    lines += ["|" + "".join(line) for line in grid]
    lines.append("+" + "-" * width)
    lines.append(
        f"{bottom}  x: {10**x_lo:.2g} .. {10**x_hi:.2g} FLOP/byte (log), "
        f"ridge {ridge_point(spec):.0f}"
    )
    return "\n".join(lines)
