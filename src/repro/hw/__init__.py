"""Analytical GPU hardware models.

The paper evaluates on NVIDIA A100 GPUs. This environment has no GPU, so
latency comes from an analytical model calibrated against the measurements
the paper itself reports (see DESIGN.md §5). The model is intentionally
simple — roofline terms plus launch overheads plus a saturating-bandwidth
GEMV schedule — because those are exactly the effects the paper's §4/§7.1
analysis attributes its results to.
"""

from repro.hw.interconnect import NVLINK_A100, InterconnectSpec
from repro.hw.kernels import KernelCostModel, SgmvWorkload
from repro.hw.pcie import PCIE_GEN4_X16, PcieSpec, TransferPlan
from repro.hw.roofline import RooflinePoint, roofline_latency, roofline_series
from repro.hw.spec import A100_40G, A100_80G, GpuSpec, HwSpec

__all__ = [
    "A100_40G",
    "A100_80G",
    "GpuSpec",
    "HwSpec",
    "InterconnectSpec",
    "KernelCostModel",
    "NVLINK_A100",
    "PCIE_GEN4_X16",
    "PcieSpec",
    "RooflinePoint",
    "SgmvWorkload",
    "TransferPlan",
    "roofline_latency",
    "roofline_series",
]
