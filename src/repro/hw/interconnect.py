"""GPU-to-GPU interconnect model for tensor parallelism (paper §7.2, Fig 12).

Testbed #2 uses HGX A100 servers with NvSwitch. Megatron-style tensor
parallelism performs two all-reduces per transformer layer (one after the
attention output projection, one after the MLP down projection). We model an
all-reduce of n bytes across k GPUs with the standard ring cost
``2 * (k-1)/k * n / bus_bandwidth`` plus a fixed per-operation latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.units import GB, US
from repro.utils.validation import check_nonnegative, check_positive


@dataclass(frozen=True)
class InterconnectSpec:
    """A symmetric GPU interconnect (NvLink/NvSwitch)."""

    name: str
    bus_bandwidth: float
    """Per-GPU uni-directional bus bandwidth, bytes/s."""
    latency: float = 8 * US
    """Fixed latency of one collective operation (launch + sync)."""

    def __post_init__(self) -> None:
        check_positive("bus_bandwidth", self.bus_bandwidth)
        check_nonnegative("latency", self.latency)

    def allreduce_time(self, nbytes: float, world_size: int) -> float:
        """Time for a ring all-reduce of ``nbytes`` across ``world_size`` GPUs."""
        check_nonnegative("nbytes", nbytes)
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        if world_size == 1 or nbytes == 0:
            return 0.0
        wire = 2.0 * (world_size - 1) / world_size * nbytes / self.bus_bandwidth
        return self.latency + wire

    def allgather_time(self, nbytes: float, world_size: int) -> float:
        """Time for an all-gather producing ``nbytes`` total on each GPU."""
        check_nonnegative("nbytes", nbytes)
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        if world_size == 1 or nbytes == 0:
            return 0.0
        wire = (world_size - 1) / world_size * nbytes / self.bus_bandwidth
        return self.latency + wire

    def transfer_time(self, nbytes: float) -> float:
        """Time for a point-to-point copy of ``nbytes`` between two GPUs.

        Unlike the collectives there is no world-size scaling: one sender
        streams to one receiver over the full per-GPU link. Small messages
        are latency-dominated (``latency`` covers launch + sync of the
        copy engine); a 0-byte transfer costs nothing.
        """
        check_nonnegative("nbytes", nbytes)
        if nbytes == 0:
            return 0.0
        return self.latency + nbytes / self.bus_bandwidth


#: NvSwitch on HGX A100: 600 GB/s bidirectional NvLink per GPU; we use the
#: ~250 GB/s effective uni-directional figure typical of NCCL all-reduce,
#: and NCCL's ~25 us small-message all-reduce latency (decode-batch
#: activations are tiny, so this latency term dominates TP overhead).
NVLINK_A100 = InterconnectSpec(
    name="NvSwitch (HGX A100)", bus_bandwidth=250 * GB, latency=25 * US
)

#: PCIe Gen4 x16 peer-to-peer: ~32 GB/s raw, ~25 GB/s effective after
#: protocol overhead, with a higher launch latency than NvLink since p2p
#: copies bounce through the root complex on most server topologies.
#: This is the slow option for the disaggregated KV handoff path.
PCIE_GEN4_P2P = InterconnectSpec(
    name="PCIe Gen4 x16 p2p", bus_bandwidth=25 * GB, latency=50 * US
)
