"""Analytical latency model of the GPU kernels Punica executes.

Each method returns the modelled wall-clock latency (seconds) of one kernel
launch on a :class:`~repro.hw.spec.GpuSpec`. The models follow the paper's
own analysis (§4 kernel schedules, §7.1 roofline/IO accounting):

* ``gemm`` — backbone dense projections; tensor-core roofline with an
  efficiency factor, IO counts weights + activations.
* ``sgmv`` — one SGMV launch. Two schedules, as in the paper: when every
  segment holds a single token the kernel degrades to grouped GEMV and is
  bound by a *saturating* achieved bandwidth that grows with the thin
  dimension (coalescing); otherwise the tensor-core schedule streams each
  LoRA's weight tile once and is bound by HBM bandwidth at tensor-core
  streaming efficiency.
* ``attention_prefill`` / ``attention_decode`` — FlashAttention-style
  (IO-optimal) and naive (materialized score matrix) variants.
* ``gather`` / ``bmm`` — the Gather-BMM baseline's building blocks; Gather
  reads ``n`` weight tiles and writes ``s_n`` copies, which is exactly the
  extra IO the paper charges it with.
* ``layernorm`` — fused (4 us) vs unfused (110 us), §6.

The model is deliberately *not* a cycle simulator: the paper's conclusions
rest on FLOP/IO/parallelism arguments, and those are what we encode.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.hw.spec import FP16_BYTES, GpuSpec
from repro.utils.fastpath import fastpath_enabled
from repro.utils.validation import check_positive


def sgmv_flop(segments: Sequence[int], h_in: int, h_out: int) -> float:
    """FLOP count of one SGMV launch (paper §7.1): ``s_n * h_in * h_out * 2``."""
    s_n = int(sum(segments))
    return float(s_n) * h_in * h_out * 2.0


def sgmv_io_bytes(segments: Sequence[int], h_in: int, h_out: int) -> float:
    """IO bytes of one SGMV launch (paper §7.1).

    ``[s_n * (h_in + h_out) + n * h_in * h_out] * 2`` — every token's input
    and output vector once, plus each distinct LoRA weight tile once.
    """
    s_n = int(sum(segments))
    n = len(segments)
    return (float(s_n) * (h_in + h_out) + float(n) * h_in * h_out) * FP16_BYTES


@dataclass(frozen=True)
class SgmvWorkload:
    """One SGMV launch: ``segments[i]`` tokens hit LoRA model ``i``.

    This mirrors the paper's segment-index vector ``s``: the batch is
    partitioned into consecutive runs, one per distinct LoRA model.
    """

    segments: tuple[int, ...]
    h_in: int
    h_out: int

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError("SGMV workload needs at least one segment")
        if any(s <= 0 for s in self.segments):
            raise ValueError(f"segment sizes must be positive, got {self.segments}")
        check_positive("h_in", self.h_in)
        check_positive("h_out", self.h_out)

    @property
    def batch_size(self) -> int:
        return int(sum(self.segments))

    @property
    def num_models(self) -> int:
        return len(self.segments)

    @property
    def flop(self) -> float:
        return sgmv_flop(self.segments, self.h_in, self.h_out)

    @property
    def io_bytes(self) -> float:
        return sgmv_io_bytes(self.segments, self.h_in, self.h_out)

    @property
    def arithmetic_intensity(self) -> float:
        return self.flop / self.io_bytes

    @property
    def all_distinct(self) -> bool:
        """True when every request targets its own LoRA (GEMV schedule)."""
        return all(s == 1 for s in self.segments)


_MEMO_LIMIT = 1 << 16
"""Distinct-argument cap per cost model; reached only by adversarial
workloads, in which case the memo is cleared and rebuilt."""


class KernelCostModel:
    """Latency model for every kernel the Punica runtime invokes.

    With ``memoize`` on (the fast-path default), the pure per-kernel
    latency functions cache their results keyed on their arguments. A
    memo hit returns the exact float the formula produced the first time,
    so memoisation is bit-identical to recomputation — the property the
    fast-path differential suite relies on. ``memoize=False`` restores
    the reference (recompute-everything) behaviour.
    """

    def __init__(self, spec: GpuSpec, memoize: "bool | None" = None):
        self.spec = spec
        self._memo: "dict | None" = {} if fastpath_enabled(memoize) else None

    def _memo_get(self, key):
        memo = self._memo
        if memo is None:
            return None
        return memo.get(key)

    def _memo_put(self, key, value: float) -> float:
        memo = self._memo
        if memo is not None:
            if len(memo) >= _MEMO_LIMIT:
                memo.clear()
            memo[key] = value
        return value

    # ------------------------------------------------------------------
    # Dense projections (backbone)
    # ------------------------------------------------------------------
    def gemm(self, m: int, n: int, k: int) -> float:
        """Dense fp16 GEMM ``(m,k) @ (k,n)``.

        IO counts the weight matrix, input and output activations. For the
        decode stage ``m`` is the batch size (small), so the weight stream
        dominates — exactly the low-utilization regime Fig 1 shows.
        """
        hit = self._memo_get(("gemm", m, n, k))
        if hit is not None:
            return hit
        if min(m, n, k) <= 0:
            raise ValueError(f"GEMM dims must be positive, got {(m, n, k)}")
        spec = self.spec
        flop = 2.0 * m * n * k
        io = float(m * k + k * n + m * n) * FP16_BYTES
        t_compute = flop / (spec.peak_fp16_flops * spec.gemm_efficiency)
        t_memory = io / (spec.hbm_bandwidth * spec.tc_bandwidth_efficiency)
        return self._memo_put(
            ("gemm", m, n, k),
            spec.kernel_launch_overhead + max(t_compute, t_memory),
        )

    # ------------------------------------------------------------------
    # SGMV
    # ------------------------------------------------------------------
    def sgmv(self, work: SgmvWorkload, standalone: bool = False) -> float:
        """One SGMV launch (shrink *or* expand half of the LoRA addon).

        ``standalone=True`` prices the Fig 8/9 microbenchmark setting: the
        op is dispatched by itself through the PyTorch extension layer, so
        each launch pays host dispatch on top of the kernel. In-engine
        (default) launches are back-to-back and pay only the kernel cost.
        """
        spec = self.spec
        overhead = spec.sgmv_kernel_overhead
        if standalone:
            # Host dispatch plus per-call segment-index construction; the
            # engine amortizes both (segment indices reused 7L times, §6).
            overhead += spec.op_dispatch_overhead
            overhead += spec.segment_host_cost * work.num_models
        if work.all_distinct:
            return overhead + self._sgmv_gemv_time(work)
        return overhead + self._sgmv_tc_time(work)

    def _sgmv_gemv_time(self, work: SgmvWorkload) -> float:
        """GEMV schedule: each segment is one matrix-vector product.

        IO-bound with *coalescing-limited* achieved bandwidth: the thin
        dimension (the LoRA rank) sets the contiguous read length, so the
        achieved bandwidth follows the saturating fit in
        :class:`~repro.hw.spec.GemvBandwidthModel`.
        """
        spec = self.spec
        rank = min(work.h_in, work.h_out)
        weight_io = float(work.num_models) * work.h_in * work.h_out * FP16_BYTES
        token_io = float(work.batch_size) * (work.h_in + work.h_out) * FP16_BYTES
        bw = min(spec.gemv_bw.achieved(rank), spec.hbm_bandwidth)
        return (weight_io + token_io) / bw

    def _sgmv_tc_time(self, work: SgmvWorkload) -> float:
        """Tensor-core schedule: each LoRA weight tile streamed once.

        The expand kernel splits the output dimension across thread blocks;
        the shrink kernel uses Split-K. Both stream every distinct weight
        tile exactly once, so the memory term uses the paper's IO formula at
        tensor-core streaming efficiency; the compute term is the dense
        roofline.
        """
        spec = self.spec
        t_memory = work.io_bytes / (spec.hbm_bandwidth * spec.tc_bandwidth_efficiency)
        t_compute = work.flop / (spec.peak_fp16_flops * spec.gemm_efficiency)
        return max(t_memory, t_compute)

    def lora_addon(
        self,
        segments: Sequence[int],
        h_in: int,
        h_out: int,
        rank: int,
        standalone: bool = False,
    ) -> float:
        """Full batched LoRA addon ``y += x A B`` = shrink launch + expand launch.

        Memoized on the segment *aggregates* ``(sum, count)`` rather than
        the full tuple: both SGMV schedules depend on the segment vector
        only through ``s_n`` and ``n`` (see :func:`sgmv_flop` /
        :func:`sgmv_io_bytes`; the GEMV schedule applies iff ``s_n == n``),
        and the standalone dispatch surcharge scales with ``n``. Two
        different segmentations with equal aggregates therefore price
        through the identical float operations, so the coarser key is
        bit-identical and hits across batches whose LoRA membership
        shuffles without changing size or distinct-model count.
        """
        segs = tuple(int(s) for s in segments)
        s_n = sum(segs)
        key = ("lora_addon", s_n, len(segs), h_in, h_out, rank, standalone)
        hit = self._memo_get(key)
        if hit is not None:
            return hit
        shrink = SgmvWorkload(segments=segs, h_in=h_in, h_out=rank)
        expand = SgmvWorkload(segments=segs, h_in=rank, h_out=h_out)
        return self._memo_put(
            key,
            self.sgmv(shrink, standalone=standalone)
            + self.sgmv(expand, standalone=standalone),
        )

    # ------------------------------------------------------------------
    # Baseline LoRA operator implementations (paper §7.1, Fig 8)
    # ------------------------------------------------------------------
    def loop_lora(self, segments: Sequence[int], h_in: int, h_out: int, rank: int) -> float:
        """PyTorch for-loop baseline: one pair of GEMMs per distinct LoRA.

        Each iteration pays eager-mode framework dispatch on top of the
        kernel itself — the reason the paper's Loop line is off the chart
        on multi-LoRA workloads.
        """
        key = ("loop_lora", tuple(segments), h_in, h_out, rank)
        hit = self._memo_get(key)
        if hit is not None:
            return hit
        total = 0.0
        for seg in segments:
            if seg <= 0:
                raise ValueError(f"segment sizes must be positive, got {segments}")
            total += self.gemm(seg, rank, h_in) + self.gemm(seg, h_out, rank)
            total += 2 * self.spec.framework_op_overhead
        return self._memo_put(key, total)

    def gather(self, n_models: int, s_n: int, h_in: int, h_out: int) -> float:
        """Gather step of Gather-BMM: stack per-token weight copies.

        Reads ``n * h_in * h_out`` weight elements, writes ``s_n * h_in *
        h_out`` stacked copies — the extra IO the paper charges this
        baseline with.
        """
        spec = self.spec
        read = float(n_models) * h_in * h_out * FP16_BYTES
        write = float(s_n) * h_in * h_out * FP16_BYTES
        return spec.kernel_launch_overhead + (read + write) / (spec.hbm_bandwidth * 0.85)

    def bmm(self, batch: int, m: int, n: int, k: int) -> float:
        """``torch.bmm``: ``batch`` independent ``(m,k)@(k,n)`` products.

        With ``m == 1`` (decode) this is a batch of GEMVs; cuBLAS achieves
        modest bandwidth there, modelled with the GEMV saturating curve.
        """
        spec = self.spec
        flop = 2.0 * batch * m * n * k
        io = float(batch) * (m * k + k * n + m * n) * FP16_BYTES
        if m == 1:
            bw = min(spec.gemv_bw.achieved(min(n, k)), spec.hbm_bandwidth)
            t_memory = io / bw
        else:
            t_memory = io / (spec.hbm_bandwidth * spec.tc_bandwidth_efficiency)
        t_compute = flop / (spec.peak_fp16_flops * spec.gemm_efficiency)
        return spec.kernel_launch_overhead + max(t_compute, t_memory)

    def gather_bmm_lora(
        self, segments: Sequence[int], h_in: int, h_out: int, rank: int
    ) -> float:
        """Gather-BMM baseline for the full LoRA addon (2x gather + 2x bmm).

        Only exists as a microbenchmark comparator, so the four torch ops
        always pay host dispatch, as in the Fig 8 measurement.
        """
        key = ("gather_bmm_lora", tuple(segments), h_in, h_out, rank)
        hit = self._memo_get(key)
        if hit is not None:
            return hit
        n = len(segments)
        s_n = int(sum(segments))
        t = self.gather(n, s_n, h_in, rank) + self.bmm(s_n, 1, rank, h_in)
        t += self.gather(n, s_n, rank, h_out) + self.bmm(s_n, 1, h_out, rank)
        return self._memo_put(key, t + 4 * self.spec.op_dispatch_overhead)

    # ------------------------------------------------------------------
    # Attention
    # ------------------------------------------------------------------
    def attention_prefill(
        self,
        seq_len: int,
        num_heads: int,
        head_dim: int,
        num_kv_heads: int | None = None,
        flash: bool = True,
    ) -> float:
        """Self-attention over one prefill sequence of ``seq_len`` tokens.

        Flash-style kernels avoid materializing the ``s x s`` score matrix,
        so IO is just Q/K/V/O; the naive variant (HF baseline) reads and
        writes the score matrix twice (softmax in between).
        """
        key = ("attn_prefill", seq_len, num_heads, head_dim, num_kv_heads, flash)
        hit = self._memo_get(key)
        if hit is not None:
            return hit
        if seq_len <= 0:
            raise ValueError(f"seq_len must be positive, got {seq_len}")
        spec = self.spec
        kv_heads = num_kv_heads if num_kv_heads is not None else num_heads
        flop = 4.0 * seq_len * seq_len * head_dim * num_heads
        qo_io = 2.0 * seq_len * num_heads * head_dim * FP16_BYTES
        kv_io = 2.0 * seq_len * kv_heads * head_dim * FP16_BYTES
        io = qo_io + kv_io
        eff = spec.gemm_efficiency
        if not flash:
            # Score matrix written post-QK^T, read+written by softmax, read by PV.
            io += 4.0 * seq_len * seq_len * num_heads * FP16_BYTES
            eff *= 0.6
        t_compute = flop / (spec.peak_fp16_flops * eff)
        t_memory = io / (spec.hbm_bandwidth * spec.attention_bandwidth_efficiency)
        return self._memo_put(
            key, spec.kernel_launch_overhead + max(t_compute, t_memory)
        )

    def attention_decode(
        self,
        kv_lens: Sequence[int],
        num_heads: int,
        head_dim: int,
        num_kv_heads: int | None = None,
    ) -> float:
        """Batched decode attention (FlashInfer-style, no padding).

        Each request reads its entire K and V history once; the op is
        bandwidth-bound (Dao et al. 2022), so latency is the KvCache bytes
        over achieved bandwidth.
        """
        spec = self.spec
        kv_heads = num_kv_heads if num_kv_heads is not None else num_heads
        total_kv = float(sum(kv_lens))
        if total_kv < 0 or any(l < 0 for l in kv_lens):
            raise ValueError(f"kv lengths must be nonnegative, got {kv_lens}")
        io = 2.0 * total_kv * kv_heads * head_dim * FP16_BYTES
        io += 2.0 * len(kv_lens) * num_heads * head_dim * FP16_BYTES  # q in, o out
        t_memory = io / (spec.hbm_bandwidth * spec.attention_bandwidth_efficiency)
        return spec.kernel_launch_overhead + t_memory

    def attention_verify(
        self,
        chunk_len: int,
        past_len: int,
        num_heads: int,
        head_dim: int,
        num_kv_heads: int | None = None,
        flash: bool = True,
    ) -> float:
        """Chunked attention of a speculative verify: ``chunk_len`` query
        tokens (the draft plus the bonus slot) attend causally over
        ``past_len`` cached tokens plus the chunk itself.

        This is the piece :meth:`attention_prefill` cannot price — a
        prefill has no past, a verify is dominated by it: the K/V history
        is streamed once per chunk (like decode) while the chunk's own
        causal block adds the prefill-style quadratic term.
        """
        key = (
            "attn_verify", chunk_len, past_len, num_heads, head_dim,
            num_kv_heads, flash,
        )
        hit = self._memo_get(key)
        if hit is not None:
            return hit
        if chunk_len <= 0:
            raise ValueError(f"chunk_len must be positive, got {chunk_len}")
        if past_len < 0:
            raise ValueError(f"past_len must be nonnegative, got {past_len}")
        spec = self.spec
        kv_heads = num_kv_heads if num_kv_heads is not None else num_heads
        total_keys = past_len + chunk_len
        # Q@K^T and P@V over the full history, for every chunk query.
        flop = 4.0 * chunk_len * total_keys * head_dim * num_heads
        qo_io = 2.0 * chunk_len * num_heads * head_dim * FP16_BYTES
        kv_io = 2.0 * total_keys * kv_heads * head_dim * FP16_BYTES
        io = qo_io + kv_io
        eff = spec.gemm_efficiency
        if not flash:
            io += 4.0 * chunk_len * total_keys * num_heads * FP16_BYTES
            eff *= 0.6
        t_compute = flop / (spec.peak_fp16_flops * eff)
        t_memory = io / (spec.hbm_bandwidth * spec.attention_bandwidth_efficiency)
        return self._memo_put(
            key, spec.kernel_launch_overhead + max(t_compute, t_memory)
        )

    def attention_decode_total(
        self,
        total_kv: float,
        batch: int,
        num_heads: int,
        head_dim: int,
        num_kv_heads: int | None = None,
    ) -> float:
        """:meth:`attention_decode` evaluated from the aggregate alone.

        The decode-attention cost depends on the per-request lengths only
        through their sum and count, so the engine's steady decode lane
        maintains the sum incrementally instead of rebuilding the length
        list every step. The arithmetic mirrors :meth:`attention_decode`
        op for op, so the result is bit-identical.
        """
        spec = self.spec
        kv_heads = num_kv_heads if num_kv_heads is not None else num_heads
        io = 2.0 * total_kv * kv_heads * head_dim * FP16_BYTES
        io += 2.0 * batch * num_heads * head_dim * FP16_BYTES  # q in, o out
        t_memory = io / (spec.hbm_bandwidth * spec.attention_bandwidth_efficiency)
        return spec.kernel_launch_overhead + t_memory

    # ------------------------------------------------------------------
    # Small ops
    # ------------------------------------------------------------------
    def layernorm(self, fused: bool = True) -> float:
        """One (RMS)LayerNorm over the batch (paper §6: 110 us -> 4 us fused)."""
        spec = self.spec
        return spec.fused_layernorm_latency if fused else spec.unfused_layernorm_latency

    def elementwise(self, nbytes: float) -> float:
        """A bandwidth-bound elementwise pass (residual add, RoPE, SiLU)."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be nonnegative, got {nbytes}")
        spec = self.spec
        return spec.kernel_launch_overhead + 2.0 * nbytes / (spec.hbm_bandwidth * 0.85)
