"""Ablation: disaggregated prefill/decode vs colocated serving.

The same decode-heavy trace is served two ways on four GPUs:

* **colocated** — the stock 4-GPU cluster: every engine runs prefills and
  decodes, so each prefill invocation (prompt-length compute) stalls the
  decodes batched with it;
* **disagg** — a 2-prefill + 2-decode split (docs/disagg.md): prefills
  never share a batch with steady decodes, at the price of one paged KV
  handoff per request over the interconnect.

The table reports the serving-level consequences: time-to-first-token
(the handoff makes it *worse* for disagg — the transfer sits on the
critical path and shows up in the `transfer` latency tile), and p50/p99
inter-token latency (*better* for disagg — decode GPUs never absorb a
prefill stall). That is exactly the TTFT-vs-smoothness trade the
disaggregation literature reports.
"""

from __future__ import annotations

from repro.bench.reporting import FigureTable
from repro.cluster.disagg import INTERCONNECTS, DisaggConfig, DisaggSimulator
from repro.cluster.simulator import ClusterSimulator, SimulationResult
from repro.hw.interconnect import InterconnectSpec
from repro.models.config import LLAMA2_7B
from repro.obs.analysis import breakdown_totals, compute_breakdowns
from repro.obs.tracer import EventKind, Tracer
from repro.runtime.backend import SimulatedBackend
from repro.runtime.engine import EngineConfig, GpuEngine
from repro.utils.units import MS
from repro.workloads.arrivals import PoissonArrivals, constant_rate
from repro.workloads.lengths import ShareGptLengths
from repro.workloads.trace import Trace, generate_trace

NUM_GPUS = 4
RATE = 60.0
DURATION = 20.0
MAX_BATCH = 8
DECODE_BATCH = 2 * MAX_BATCH
"""Slot parity: the colocated pool decodes in 4x8 slots, the decode pool
in 2x16 — same cluster-wide decode concurrency, so per-step batch depth
(and its latency) is comparable and the measured gap isolates prefill
interference."""
PROMPT_LEN = 384
RESPONSE_LEN = 16
"""Decode-heavy mix: ~94% of invocations are decode steps, but the long
prompts make each prefill invocation an expensive stall for the decodes
batched with it (prefill_batch_limit=1, §5: one prompt can ride along
with every step whenever the queue is non-empty). The high arrival rate
keeps a prefill in flight on every colocated GPU most of the time, which
is exactly the interference disaggregation removes."""


def _trace(seed: int) -> Trace:
    lengths = ShareGptLengths(
        max_prompt_len=PROMPT_LEN, max_response_len=RESPONSE_LEN
    )
    arrivals = PoissonArrivals(rate=constant_rate(RATE), duration=DURATION)
    return generate_trace(
        int(RATE * DURATION) + 32, "skewed", seed=seed,
        lengths=lengths, arrivals=arrivals,
    )


def _engine(gpu_id: str, max_batch: int = MAX_BATCH) -> GpuEngine:
    return GpuEngine(
        gpu_id,
        SimulatedBackend(LLAMA2_7B, step_overhead=0.0),
        EngineConfig(max_batch_size=max_batch),
    )


def run_colocated(seed: int = 0) -> "tuple[SimulationResult, Tracer]":
    tracer = Tracer()
    sim = ClusterSimulator(
        [_engine(f"gpu{i}") for i in range(NUM_GPUS)], tracer=tracer
    )
    return sim.run(_trace(seed)), tracer


def run_disaggregated(
    seed: int = 0, interconnect: "InterconnectSpec | None" = None
) -> "tuple[SimulationResult, Tracer, DisaggSimulator]":
    tracer = Tracer()
    sim = DisaggSimulator(
        [_engine(f"p{i}") for i in range(NUM_GPUS // 2)],
        [_engine(f"d{i}", DECODE_BATCH) for i in range(NUM_GPUS // 2)],
        config=DisaggConfig(
            interconnect=interconnect or INTERCONNECTS["nvlink"],
            decode_queue_limit=4 * DECODE_BATCH,
        ),
        tracer=tracer,
    )
    return sim.run(_trace(seed)), tracer, sim


def inter_token_latencies(tracer: Tracer) -> "list[float]":
    """Per-request mean inter-token latency (TPOT), one value per request.

    Computed from the trace as the mean gap between that request's
    consecutive decode steps, the standard time-per-output-token metric.
    The prefill->first-decode gap is excluded on purpose: that is TTFT
    territory (and where disagg pays its transfer), not decode smoothness.
    A colocated request's gaps absorb every prefill its engine ran while
    it was decoding; a disaggregated request's never do.
    """
    per: "dict[str, list[float]]" = {}
    for e in tracer.by_kind(EventKind.DECODE_STEP):
        per.setdefault(e.request_id, []).append(e.time)
    tpots: "list[float]" = []
    for times in per.values():
        if len(times) < 2:
            continue
        times.sort()
        tpots.append((times[-1] - times[0]) / (len(times) - 1))
    return tpots


def percentile(values: "list[float]", q: float) -> float:
    if not values:
        raise ValueError("no values to take a percentile of")
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1))))
    return ordered[idx]


def _mean_ttft(result: SimulationResult) -> float:
    ttfts = [
        r.time_to_first_token()
        for r in result.requests
        if r.first_token_time is not None
    ]
    return sum(ttfts) / len(ttfts) if ttfts else 0.0


def _summarize(result: SimulationResult, tracer: Tracer) -> "dict[str, float]":
    tpots = inter_token_latencies(tracer)
    totals = breakdown_totals(compute_breakdowns(tracer))
    return {
        "finished": result.finished_requests,
        "tok_s": result.metrics.total_tokens() / result.duration,
        "mean_ttft_ms": _mean_ttft(result) / MS,
        "p50_itl_ms": percentile(tpots, 50.0) / MS,
        "p99_itl_ms": percentile(tpots, 99.0) / MS,
        "transfer_s": totals.get("transfer", 0.0),
    }


def run_disagg_ablation(
    seed: int = 0, interconnect_name: str = "nvlink"
) -> FigureTable:
    interconnect = INTERCONNECTS[interconnect_name]
    colo_result, colo_tracer = run_colocated(seed)
    dis_result, dis_tracer, dis_sim = run_disaggregated(seed, interconnect)
    table = FigureTable(
        figure_id="Ablation disagg",
        title=(
            f"Colocated 4-GPU vs 2-prefill+2-decode over "
            f"{interconnect.name} ({RATE:.0f} req/s, "
            f"{PROMPT_LEN}-token prompts, {RESPONSE_LEN}-token responses)"
        ),
        headers=[
            "mode", "finished", "tok_s", "mean_ttft_ms",
            "p50_itl_ms", "p99_itl_ms", "transfer_s",
        ],
    )
    for mode, stats in (
        ("colocated", _summarize(colo_result, colo_tracer)),
        ("disagg", _summarize(dis_result, dis_tracer)),
    ):
        table.add_row(
            mode, stats["finished"], stats["tok_s"], stats["mean_ttft_ms"],
            stats["p50_itl_ms"], stats["p99_itl_ms"], stats["transfer_s"],
        )
    m = dis_sim.metrics
    table.add_note(
        f"disagg: {m.kv_transfer_count()} KV handoffs "
        f"({m.kv_transfer_seconds():.4f}s on the wire), "
        f"{m.colocated_fallback_count()} colocated fallbacks"
    )
    table.add_note(
        "disagg trades TTFT (the handoff sits on the critical path) for "
        "inter-token smoothness (decode GPUs never absorb a prefill stall)"
    )
    return table
