"""Figure 9: SGMV LoRA operator latency across LoRA ranks 8/16/32/64.

Paper shape: batch-1 latency ~42 us for all ranks; Distinct at batch 64
rises with rank (72/75/89/118 us); with any weight sharing (Uniform,
Skewed, Identical) latency stays ~42-45 us across all batch sizes.
"""

from __future__ import annotations

from repro.bench.reporting import FigureTable
from repro.hw.kernels import KernelCostModel
from repro.hw.spec import A100_80G, GpuSpec
from repro.utils.units import US
from repro.workloads.popularity import POPULARITY_NAMES, segment_sizes_for

BATCH_SIZES = (1, 2, 4, 8, 16, 32, 64)
RANKS = (8, 16, 32, 64)
H = 4096


def run_fig09(
    gpu: GpuSpec = A100_80G,
    ranks: "tuple[int, ...]" = RANKS,
    batch_sizes: "tuple[int, ...]" = BATCH_SIZES,
) -> FigureTable:
    kcm = KernelCostModel(gpu)
    table = FigureTable(
        figure_id="Figure 9",
        title=f"SGMV latency vs LoRA rank, h={H} ({gpu.name})",
        headers=["distribution", "rank", "batch_size", "sgmv_us"],
    )
    for dist in POPULARITY_NAMES:
        for rank in ranks:
            for bs in batch_sizes:
                segs = segment_sizes_for(dist, bs)
                t = kcm.lora_addon(segs, H, H, rank, standalone=True)
                table.add_row(dist, rank, bs, t / US)
    table.add_note("paper: distinct bs64 = 72/75/89/118 us at ranks 8/16/32/64")
    return table
