"""Ablation: throughput dip and recovery after an injected GPU crash.

A 4-GPU cluster serves a constant-rate trace; halfway through, one GPU
crashes. The §5.3 evict + re-prefill path re-places its in-flight
requests on the survivors, so aggregate throughput dips (a quarter of the
compute is gone, and re-prefills burn tokens already paid for) and then
settles at the 3-GPU steady state instead of collapsing. The table puts
the healthy and crashed runs side by side per time bucket — the cluster
analogue of the paper's Fig 13 middle panel, under chaos.
"""

from __future__ import annotations

from repro.bench.reporting import FigureTable
from repro.cluster.faults import FaultInjector
from repro.cluster.scheduler import SchedulerConfig
from repro.cluster.simulator import ClusterSimulator, SimulationResult
from repro.models.config import LLAMA2_7B
from repro.runtime.backend import SimulatedBackend
from repro.runtime.engine import EngineConfig, GpuEngine
from repro.workloads.arrivals import PoissonArrivals, constant_rate
from repro.workloads.lengths import ShareGptLengths
from repro.workloads.trace import generate_trace

NUM_GPUS = 4
DURATION = 120.0
RATE = 16.0
"""Chosen so the 4-GPU pool runs near its ~2000 tok/s capacity: after the
crash the 3 survivors saturate (~1570 tok/s), making the dip visible."""
CRASH_TIME = 60.0
BUCKET = 10.0
MAX_BATCH = 8


def _build_cluster(fault_injector=None) -> ClusterSimulator:
    engines = [
        GpuEngine(
            f"gpu{i:02d}",
            SimulatedBackend(LLAMA2_7B, step_overhead=0.0),
            EngineConfig(max_batch_size=MAX_BATCH),
        )
        for i in range(NUM_GPUS)
    ]
    return ClusterSimulator(
        engines,
        SchedulerConfig(migration_interval=10.0),
        fault_injector=fault_injector,
    )


def _trace(seed: int):
    lengths = ShareGptLengths(max_prompt_len=128, max_response_len=128)
    arrivals = PoissonArrivals(rate=constant_rate(RATE), duration=DURATION)
    return generate_trace(
        int(DURATION * RATE) + 64, "skewed", seed=seed,
        lengths=lengths, arrivals=arrivals,
    )


def run_faults_simulation(
    seed: int = 0, crash_time: float = CRASH_TIME
) -> "tuple[SimulationResult, SimulationResult, FaultInjector]":
    """Run the healthy baseline and the crash run on the same trace."""
    healthy = _build_cluster().run(_trace(seed))
    injector = FaultInjector.crash_at(crash_time, seed=seed)
    crashed = _build_cluster(fault_injector=injector).run(_trace(seed))
    return healthy, crashed, injector


def run_faults_ablation(
    seed: int = 0, crash_time: float = CRASH_TIME
) -> FigureTable:
    healthy, crashed, injector = run_faults_simulation(seed, crash_time)
    duration = max(healthy.duration, crashed.duration)
    table = FigureTable(
        figure_id="Ablation faults",
        title=(
            f"GPU crash at t={crash_time:.0f}s on a {NUM_GPUS}-GPU pool "
            f"({RATE:.0f} req/s, re-place via §5.3 evict + re-prefill)"
        ),
        headers=["t_start_s", "healthy_tok_s", "crashed_tok_s", "ratio"],
    )
    h_series = dict(healthy.metrics.throughput_series(BUCKET, duration))
    c_series = dict(crashed.metrics.throughput_series(BUCKET, duration))
    for t in sorted(h_series):
        h, c = h_series[t], c_series.get(t, 0.0)
        table.add_row(t, h, c, c / h if h > 0 else 0.0)
    m = crashed.metrics
    table.add_note(
        f"crash run: {crashed.finished_requests}/{len(crashed.requests)} "
        f"finished, {crashed.failed_requests} shed | "
        f"{m.fault_count()} fault, {m.replacement_count()} re-placed, "
        f"recovery {m.mean_recovery_latency():.2f}s | "
        f"healthy: {healthy.finished_requests}/{len(healthy.requests)}"
    )
    table.add_note(
        "ratio < 1 right after the crash (lost GPU + re-prefill tax), "
        "then recovers toward the 3/4-capacity steady state"
    )
    return table
