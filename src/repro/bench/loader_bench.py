"""§5.2 table: on-demand LoRA model loading latency over PCIe.

The paper reports ~50 us per layer and ~2 ms for a whole model on PCIe
Gen4 x16, and argues that since a decode step takes ~30 ms the simple
whole-model asynchronous load hides entirely behind one step.
"""

from __future__ import annotations

from repro.bench.reporting import FigureTable
from repro.hw.kernels import KernelCostModel
from repro.hw.pcie import PCIE_GEN4_X16, PcieSpec
from repro.hw.spec import A100_80G
from repro.models.config import LLAMA2_7B, LLAMA2_13B, LLAMA2_70B, LlamaConfig
from repro.models.perf import decode_step_workload, model_step_latency
from repro.utils.units import MS, US


def run_loader_bench(
    configs: "tuple[LlamaConfig, ...]" = (LLAMA2_7B, LLAMA2_13B, LLAMA2_70B),
    pcie: PcieSpec = PCIE_GEN4_X16,
    rank: int = 16,
) -> FigureTable:
    kcm = KernelCostModel(A100_80G)
    table = FigureTable(
        figure_id="§5.2",
        title=f"On-demand LoRA load latency over {pcie.name} (rank {rank})",
        headers=[
            "model", "layer_load_us", "model_load_ms",
            "decode_step_ms_bs32", "load_hidden_by_one_step",
        ],
    )
    for config in configs:
        layer_bytes = config.lora_bytes(rank) / config.num_layers
        layer_t = pcie.transfer_time(layer_bytes)
        model_t = pcie.transfer_time(config.lora_bytes(rank))
        step_t = model_step_latency(
            config, kcm, decode_step_workload([512] * 32, lora_segments=[1] * 32)
        )
        table.add_row(
            config.name, layer_t / US, model_t / MS, step_t / MS,
            "yes" if model_t < step_t else "no",
        )
    table.add_note("paper: ~50us/layer, ~2ms/model, ~30ms/decode step (7B)")
    return table
