"""Figure 12: Llama-2 70B with 8-way tensor parallelism — Punica vs vLLM.

Testbed #2: HGX A100-40G, Megatron TP over 8 GPUs via NvSwitch. Paper
shape: Punica sustains ~441-446 tok/s on every popularity distribution;
vLLM matches on Identical (both use the same parallel scheme) but drops to
~21-25 tok/s with multiple LoRA models; backbone-only vLLM peaks ~457.
"""

from __future__ import annotations

from repro.baselines.framework import PUNICA, VLLM, FrameworkProfile, build_engine
from repro.bench.fig11_textgen import DEFAULT_REQUESTS, paper_scale
from repro.bench.reporting import FigureTable
from repro.hw.interconnect import NVLINK_A100
from repro.hw.spec import A100_40G, GpuSpec
from repro.models.config import LLAMA2_70B, LlamaConfig
from repro.models.tp import TensorParallelConfig
from repro.runtime.serve import requests_from_trace, serve_requests
from repro.workloads.popularity import POPULARITY_NAMES
from repro.workloads.trace import generate_trace


def run_fig12(
    config: LlamaConfig = LLAMA2_70B,
    gpu: GpuSpec = A100_40G,
    world_size: int = 8,
    systems: "tuple[FrameworkProfile, ...]" = (VLLM, PUNICA),
    n_requests: int | None = None,
    seed: int = 0,
) -> FigureTable:
    if n_requests is None:
        n_requests = 1000 if paper_scale() else DEFAULT_REQUESTS
    tp = TensorParallelConfig(world_size=world_size, interconnect=NVLINK_A100)
    table = FigureTable(
        figure_id="Figure 12",
        title=f"{config.name} with {world_size}-way TP ({gpu.name}), {n_requests} requests",
        headers=["distribution", "system", "throughput_tok_s", "mean_batch"],
    )
    for dist in POPULARITY_NAMES:
        trace = generate_trace(n_requests, dist, seed=seed)
        for profile in systems:
            engine = build_engine(profile, config, gpu=gpu, tp=tp)
            result = serve_requests(engine, requests_from_trace(trace), keep_steps=True)
            table.add_row(dist, profile.name, result.throughput, result.mean_batch_size)
    table.add_note(
        "paper: Punica 441-446 tok/s everywhere; vLLM 21-25 tok/s multi-LoRA, "
        "~457 tok/s backbone-only Identical"
    )
    return table
