"""Figure 8: LoRA operator microbenchmark — Loop vs Gather-BMM vs SGMV.

Latency (us) of the full batched LoRA addon on h=4096, rank 16, across the
four popularity distributions, batch sizes 1-64, in the standalone-op
setting the paper measures. Gather and BMM are also reported separately,
as in the paper's dagger footnote. Paper endpoints: SGMV 37 us (bs 1),
~75-116 us (Distinct bs 64), ~40 us (Identical bs 64); Loop and Gather-BMM
far above on multi-LoRA workloads.
"""

from __future__ import annotations

from repro.bench.reporting import FigureTable
from repro.hw.kernels import KernelCostModel
from repro.hw.spec import A100_80G, GpuSpec
from repro.utils.units import US
from repro.workloads.popularity import POPULARITY_NAMES, segment_sizes_for

BATCH_SIZES = (1, 2, 4, 8, 16, 32, 64)
H = 4096
RANK = 16


def run_fig08(
    gpu: GpuSpec = A100_80G,
    batch_sizes: "tuple[int, ...]" = BATCH_SIZES,
    h: int = H,
    rank: int = RANK,
) -> FigureTable:
    kcm = KernelCostModel(gpu)
    table = FigureTable(
        figure_id="Figure 8",
        title=f"LoRA operator latency, h={h}, rank={rank} ({gpu.name})",
        headers=[
            "distribution", "batch_size",
            "loop_us", "gather_bmm_us", "sgmv_us", "gather_us", "bmm_us",
        ],
    )
    for dist in POPULARITY_NAMES:
        for bs in batch_sizes:
            segs = segment_sizes_for(dist, bs)
            n, s_n = len(segs), sum(segs)
            loop = kcm.loop_lora(segs, h, h, rank)
            gbmm = kcm.gather_bmm_lora(segs, h, h, rank)
            sgmv = kcm.lora_addon(segs, h, h, rank, standalone=True)
            gather = kcm.gather(n, s_n, h, rank) + kcm.gather(n, s_n, rank, h)
            bmm = kcm.bmm(s_n, 1, rank, h) + kcm.bmm(s_n, 1, h, rank)
            table.add_row(dist, bs, loop / US, gbmm / US, sgmv / US, gather / US, bmm / US)
    table.add_note("paper: SGMV 37us at bs1; Identical stays ~40us at bs64")
    return table
