"""Figure 13: cluster deployment — 16 GPUs, ramp-up/ramp-down Poisson load.

The paper runs one hour on 16 A100-40G GPUs serving 7B with Zipf-1.5 LoRA
popularity: request rate ramps up then down (upper panel), aggregate token
throughput follows it (middle panel), and per-GPU batch-size timelines
(lower panel) show GPUs running at the max batch size when busy and
draining to idle as load falls — the consolidation property.

Default scale is shortened (fewer GPUs, minutes not an hour) so the bench
runs in seconds; ``REPRO_PAPER_SCALE=1`` restores 16 GPUs / 1 hour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.fig11_textgen import paper_scale
from repro.bench.reporting import FigureTable
from repro.cluster.scheduler import SchedulerConfig
from repro.cluster.simulator import ClusterSimulator, SimulationResult
from repro.hw.spec import A100_40G, GpuSpec
from repro.models.config import LLAMA2_7B, LlamaConfig
from repro.runtime.backend import SimulatedBackend
from repro.runtime.engine import EngineConfig, GpuEngine
from repro.workloads.arrivals import PoissonArrivals, RampProfile
from repro.workloads.trace import generate_trace


@dataclass(frozen=True)
class Fig13Scale:
    num_gpus: int
    duration: float
    peak_rate: float
    bucket: float


QUICK = Fig13Scale(num_gpus=6, duration=240.0, peak_rate=10.0, bucket=20.0)
PAPER = Fig13Scale(num_gpus=16, duration=3600.0, peak_rate=16.0, bucket=120.0)


def build_cluster(
    num_gpus: int,
    config: LlamaConfig = LLAMA2_7B,
    gpu: GpuSpec = A100_40G,
    max_batch_size: int = 32,
    scheduler_config: SchedulerConfig | None = None,
    fast_path: bool | None = None,
) -> ClusterSimulator:
    engines = [
        GpuEngine(
            f"gpu{i:02d}",
            SimulatedBackend(config, gpu=gpu, fast_path=fast_path),
            EngineConfig(max_batch_size=max_batch_size),
            fast_path=fast_path,
        )
        for i in range(num_gpus)
    ]
    return ClusterSimulator(engines, scheduler_config, fast_path=fast_path)


def run_fig13_simulation(
    scale: Fig13Scale | None = None,
    config: LlamaConfig = LLAMA2_7B,
    gpu: GpuSpec = A100_40G,
    seed: int = 0,
    scheduler_config: SchedulerConfig | None = None,
    fast_path: bool | None = None,
) -> "tuple[SimulationResult, Fig13Scale]":
    scale = scale or (PAPER if paper_scale() else QUICK)
    arrivals = PoissonArrivals(
        rate=RampProfile(duration=scale.duration, peak_rate=scale.peak_rate,
                         hold_fraction=0.2),
        duration=scale.duration,
    )
    # Provision enough specs for the Poisson draw.
    n_specs = int(scale.duration * scale.peak_rate) + 64
    trace = generate_trace(n_specs, "skewed", seed=seed, arrivals=arrivals)
    sim = build_cluster(
        scale.num_gpus, config=config, gpu=gpu, scheduler_config=scheduler_config,
        fast_path=fast_path,
    )
    result = sim.run(trace)
    return result, scale


def run_fig13(
    scale: Fig13Scale | None = None,
    config: LlamaConfig = LLAMA2_7B,
    seed: int = 0,
) -> FigureTable:
    result, scale = run_fig13_simulation(scale=scale, config=config, seed=seed)
    table = FigureTable(
        figure_id="Figure 13",
        title=(
            f"Cluster deployment: {scale.num_gpus} GPUs, {scale.duration:.0f}s ramp, "
            f"{config.name}, Zipf-1.5"
        ),
        headers=["t_start_s", "req_per_s", "tok_per_s", "active_gpus", "mean_active_batch"],
    )
    duration = result.duration
    rate = dict(result.metrics.request_rate_series(scale.bucket, duration))
    tput = dict(result.metrics.throughput_series(scale.bucket, duration))
    per_gpu = {
        gid: dict(result.metrics.batch_size_series(gid, scale.bucket, duration))
        for gid in result.metrics.gpu_batch_size
    }
    for t in sorted(rate):
        batches = [per_gpu[g].get(t, 0.0) for g in per_gpu]
        active = [b for b in batches if b > 0]
        table.add_row(
            t, rate[t], tput.get(t, 0.0), len(active),
            sum(active) / len(active) if active else 0.0,
        )
    table.add_note(f"migrations performed: {result.num_migrations}")
    table.add_note(f"requests finished: {result.finished_requests}")
    table.add_note(
        "paper shape: busy GPUs run at max batch size; idle GPUs stay idle "
        "(releasable); throughput tracks the request-rate ramp"
    )
    return table
