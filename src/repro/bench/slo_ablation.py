"""Ablation: SLO attainment vs fleet shape at equal dollar cost.

Two fleets that bill identically (4.0 $/hr with the
:meth:`~repro.hw.spec.HwSpec.preset` price list) serve the same
prefill-heavy open-loop trace:

* **homo** — four A100-80Gs, the Punica deployment shape;
* **hetero** — one H100 + one A100-80G + four L4s: the same spend split
  into one fast prefill engine and a fleet of cheap decode engines.

Each fleet runs under two routers: the baseline FCFS pack rule
(:class:`~repro.cluster.simulator.ClusterSimulator`) and the SLO-aware
control plane (:class:`~repro.cluster.control.SloClusterSimulator`),
which places by modelled deadline headroom and sheds requests no engine
can serve in time. All four cells are scored against the *same*
:class:`~repro.cluster.control.ControlConfig` deadlines, so attainment
is comparable; a shed counts as a miss, so the router cannot buy
attainment by refusing work.

The headline claim (cmp-gated in CI through ``repro slo``): the
SLO-aware router on the heterogeneous fleet beats FCFS on the
homogeneous fleet at equal cost — deadline-aware placement converts the
same dollars into more attained requests by matching work to the engine
shape (big prefills to the H100, short decodes to the L4s).
"""

from __future__ import annotations

from repro.bench.disagg_ablation import percentile
from repro.bench.reporting import FigureTable
from repro.cluster.control import (
    ControlConfig,
    SloClusterSimulator,
    SloPolicy,
    score_requests,
)
from repro.cluster.simulator import ClusterSimulator, SimulationResult
from repro.hw.spec import HwSpec
from repro.models.config import LLAMA2_7B
from repro.runtime.backend import SimulatedBackend
from repro.runtime.engine import EngineConfig, GpuEngine
from repro.runtime.request import RequestState
from repro.utils.units import MS
from repro.workloads.lengths import ShareGptLengths
from repro.workloads.trace import Trace, open_loop_trace

FLEETS: "dict[str, tuple[str, ...]]" = {
    "homo 4xA100": ("a100-80g",) * 4,
    "hetero H100+A100+4xL4": ("h100", "a100-80g", "l4", "l4", "l4", "l4"),
}
"""Equal-cost fleets: 4 x 1.0 $/hr == 2.0 + 1.0 + 4 x 0.25 $/hr."""

RATE = 96.0
DURATION = 5.0
MAX_PROMPT = 768
MAX_RESPONSE = 24
"""Prefill-heavy open loop pushed past the 4xA100 saturation knee: long
prompts make placement quality (who prefills where) the dominant term in
TTFT — the H100 clears a long prompt in half an A100's time while an L4
takes ~2.6x longer — and past the knee FCFS queues blow the deadline
while headroom routing (plus shedding the hopeless tail) keeps the
attained fraction up."""

POLICY = SloPolicy(ttft_deadline=0.3, itl_deadline=0.12)


def _trace(seed: int) -> Trace:
    return open_loop_trace(
        rate=RATE, duration=DURATION, seed=seed,
        lengths=ShareGptLengths(
            max_prompt_len=MAX_PROMPT, max_response_len=MAX_RESPONSE
        ),
    )


def build_fleet(presets: "tuple[str, ...]", max_batch: int = 8) -> "list[GpuEngine]":
    return [
        GpuEngine(
            f"gpu{i:02d}",
            SimulatedBackend(LLAMA2_7B, gpu=HwSpec.preset(name)),
            EngineConfig(max_batch_size=max_batch),
        )
        for i, name in enumerate(presets)
    ]


def fleet_cost(presets: "tuple[str, ...]") -> float:
    return sum(HwSpec.preset(name).cost_per_hour for name in presets)


def run_cell(
    seed: int, presets: "tuple[str, ...]", router: str, control: ControlConfig
) -> SimulationResult:
    engines = build_fleet(presets)
    if router == "slo":
        sim = SloClusterSimulator(engines, control=control)
    else:
        sim = ClusterSimulator(engines)
    return sim.run(_trace(seed))


def _stats(result: SimulationResult, control: ControlConfig) -> "dict[str, float]":
    scored = score_requests(result.requests, control, result.duration)
    attained = sum(1 for _, ok in scored if ok)
    finished = [
        r for r in result.requests if r.state is RequestState.FINISHED
    ]
    ttfts = sorted(
        r.first_token_time - r.spec.arrival_time
        for r in finished
        if r.first_token_time is not None
    )
    itls = sorted(
        (r.finish_time - r.first_token_time) / (r.num_generated - 1)
        for r in finished
        if r.num_generated > 1 and r.first_token_time is not None
    )
    shed = sum(1 for r in result.requests if r.state is RequestState.FAILED)
    return {
        "attainment": attained / len(scored) if scored else 0.0,
        "shed": shed,
        "p50_ttft_ms": percentile(ttfts, 50.0) / MS if ttfts else 0.0,
        "p99_ttft_ms": percentile(ttfts, 99.0) / MS if ttfts else 0.0,
        "p99_itl_ms": percentile(itls, 99.0) / MS if itls else 0.0,
    }


def run_slo_ablation(
    seed: int = 0,
    ttft_deadline: float = POLICY.ttft_deadline,
    itl_deadline: float = POLICY.itl_deadline,
) -> FigureTable:
    control = ControlConfig(
        default_policy=SloPolicy(
            ttft_deadline=ttft_deadline, itl_deadline=itl_deadline
        )
    )
    table = FigureTable(
        figure_id="Ablation slo",
        title=(
            f"SLO attainment vs fleet shape at equal cost "
            f"(TTFT<={ttft_deadline}s, ITL<={itl_deadline}s, "
            f"rate={RATE}/s, prompts<={MAX_PROMPT})"
        ),
        headers=[
            "fleet", "router", "cost_hr", "attainment", "shed",
            "p50_ttft_ms", "p99_ttft_ms", "p99_itl_ms",
        ],
    )
    for fleet_name, presets in FLEETS.items():
        for router in ("fcfs", "slo"):
            result = run_cell(seed, presets, router, control)
            stats = _stats(result, control)
            table.add_row(
                fleet_name, router, fleet_cost(presets),
                stats["attainment"], stats["shed"], stats["p50_ttft_ms"],
                stats["p99_ttft_ms"], stats["p99_itl_ms"],
            )
    table.add_note(
        "all four cells score against the same deadlines; a shed request "
        "counts as a miss, so the SLO router cannot inflate attainment "
        "by refusing work"
    )
    table.add_note(
        "equal spend, different shape: deadline-headroom routing on the "
        "heterogeneous fleet beats FCFS on the homogeneous one"
    )
    return table
