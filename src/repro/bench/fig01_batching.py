"""Figure 1: batching effects in the prefill and decode stages.

Paper shape: prefill latency grows roughly linearly with batch size (the
GPU is already saturated); decode latency grows only mildly (11 -> 13 ms
for short sequences, 17 -> 34 ms for long ones over batch 1 -> 32 on a
Llama-2 7B / A100-80G).
"""

from __future__ import annotations

from repro.bench.reporting import FigureTable
from repro.hw.kernels import KernelCostModel
from repro.hw.spec import A100_80G, GpuSpec
from repro.models.config import LLAMA2_7B, LlamaConfig
from repro.models.perf import StepWorkload, model_step_latency
from repro.utils.units import MS

BATCH_SIZES = (1, 2, 4, 8, 16, 32)
SHORT_SEQ = 128
LONG_SEQ = 2048


def run_fig01(
    config: LlamaConfig = LLAMA2_7B,
    gpu: GpuSpec = A100_80G,
    batch_sizes: "tuple[int, ...]" = BATCH_SIZES,
) -> FigureTable:
    kcm = KernelCostModel(gpu)
    table = FigureTable(
        figure_id="Figure 1",
        title=f"Prefill vs decode batching latency ({config.name}, {gpu.name})",
        headers=["stage", "seq_len", "batch_size", "latency_ms"],
    )
    for seq_len in (SHORT_SEQ, LONG_SEQ):
        for bs in batch_sizes:
            work = StepWorkload(prefill_lens=(seq_len,) * bs)
            t = model_step_latency(config, kcm, work)
            table.add_row("prefill", seq_len, bs, t / MS)
    for seq_len in (SHORT_SEQ, LONG_SEQ):
        for bs in batch_sizes:
            work = StepWorkload(decode_kv_lens=(seq_len,) * bs)
            t = model_step_latency(config, kcm, work)
            table.add_row("decode", seq_len, bs, t / MS)
    table.add_note(
        "paper endpoints: decode 11->13 ms (short) and 17->34 ms (long) over bs 1->32"
    )
    return table
