"""Performance-regression gate for the fast-path simulation engine.

The fast path (``REPRO_FASTPATH``) exists to make the cluster simulator
cheap enough to iterate on, and its whole value evaporates if a refactor
quietly slows it back down. This module measures the Figure-13 cluster
scenario through both engine paths, cross-checks that they produced the
same simulation (the differential suite's bit-identity contract, asserted
again here on the summary), and compares the measurements against
thresholds checked into ``benchmarks/BENCH_perf.json``.

Three layers, so CI and humans share one code path:

* :func:`measure` — run the scenario through both paths and time them;
* :func:`evaluate_gate` — pure threshold logic (unit-testable, no clocks);
* :func:`run_perf_gate` — FigureTable wrapper for ``python -m repro perf``.

``benchmarks/bench_perf_gate.py`` is the CI entry point: it calls
:func:`measure` (twice under ``--check`` to bound run-to-run variance)
and fails the build on any gate violation.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from time import perf_counter

from repro.bench.fig13_cluster import QUICK, Fig13Scale, build_cluster, run_fig13_simulation
from repro.bench.reporting import FigureTable

#: Default location of the checked-in thresholds + last recorded numbers.
BENCH_JSON = pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "BENCH_perf.json"

#: Gate thresholds used when the JSON file is missing its ``thresholds``
#: key. ``min_requests_per_s`` is deliberately conservative: shared CI
#: runners are several times slower than a quiet workstation, and the
#: floor exists to catch order-of-magnitude regressions, not jitter.
DEFAULT_THRESHOLDS = {
    "min_speedup": 3.0,
    "min_requests_per_s": 150.0,
    "max_variance": 0.20,
    "budgets": {
        # The million-request scale-out smoke: a self-similar 2% slice of
        # ``fig13_1m`` (20k requests) through the fast path only, gated on
        # absolute wall-clock and event throughput. The full 1.0 fraction
        # is the ``scale``-marked CI job, budgeted separately.
        "fig13_1m": {
            "fraction": 0.02,
            "max_wall_s": 60.0,
            "min_events_per_s": 2000.0,
        },
    },
}


@dataclass(frozen=True)
class PerfMeasurement:
    """One timed fast-vs-reference run of the Figure-13 scenario."""

    scenario: str
    seed: int
    fast_wall_s: float
    ref_wall_s: float
    finished_requests: int
    tokens_generated: int
    events_processed: int
    sim_duration_s: float

    @property
    def speedup(self) -> float:
        return self.ref_wall_s / self.fast_wall_s

    @property
    def fast_requests_per_s(self) -> float:
        """Finished simulated requests per wall-clock second, fast path."""
        return self.finished_requests / self.fast_wall_s

    @property
    def fast_tokens_per_s(self) -> float:
        return self.tokens_generated / self.fast_wall_s

    def to_json(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "fast_wall_s": round(self.fast_wall_s, 4),
            "ref_wall_s": round(self.ref_wall_s, 4),
            "speedup": round(self.speedup, 3),
            "fast_requests_per_s": round(self.fast_requests_per_s, 1),
            "fast_tokens_per_s": round(self.fast_tokens_per_s, 1),
            "finished_requests": self.finished_requests,
            "tokens_generated": self.tokens_generated,
            "events_processed": self.events_processed,
            "sim_duration_s": self.sim_duration_s,
        }


def _summary(result) -> tuple:
    return (
        result.events_processed,
        result.finished_requests,
        result.failed_requests,
        result.tokens_generated,
        result.num_migrations,
        result.duration,
    )


def measure(
    seed: int = 0, scale: "Fig13Scale | None" = None, scenario: str = "fig13_quick"
) -> PerfMeasurement:
    """Time the Figure-13 cluster scenario through both engine paths.

    The reference run doubles as an equivalence check: if the two paths
    disagree on the simulation summary, the timing numbers are meaningless
    and we raise instead of reporting them.
    """
    scale = scale or QUICK
    t0 = perf_counter()
    fast, _ = run_fig13_simulation(scale=scale, seed=seed, fast_path=True)
    fast_wall = perf_counter() - t0
    t0 = perf_counter()
    ref, _ = run_fig13_simulation(scale=scale, seed=seed, fast_path=False)
    ref_wall = perf_counter() - t0
    if _summary(fast) != _summary(ref):
        raise AssertionError(
            "fast and reference paths diverged on the benchmark scenario: "
            f"{_summary(fast)} != {_summary(ref)} — timing numbers discarded"
        )
    return PerfMeasurement(
        scenario=scenario,
        seed=seed,
        fast_wall_s=fast_wall,
        ref_wall_s=ref_wall,
        finished_requests=fast.finished_requests,
        tokens_generated=fast.tokens_generated,
        events_processed=fast.events_processed,
        sim_duration_s=fast.duration,
    )


@dataclass(frozen=True)
class BudgetMeasurement:
    """One fast-path-only budget run of a :class:`ScaleScenario` slice.

    Scale runs gate on *absolute* wall-clock and event throughput rather
    than a fast/ref speedup: at a million requests the reference path
    would dominate CI time while proving nothing the differential suite
    does not already pin.
    """

    scenario: str
    seed: int
    fraction: float
    n_requests: int
    gen_wall_s: float
    fast_wall_s: float
    finished_requests: int
    failed_requests: int
    tokens_generated: int
    events_processed: int
    sim_duration_s: float

    @property
    def events_per_s(self) -> float:
        return self.events_processed / self.fast_wall_s

    @property
    def fast_requests_per_s(self) -> float:
        return self.finished_requests / self.fast_wall_s

    def to_json(self) -> dict:
        return {
            "kind": "budget",
            "scenario": self.scenario,
            "seed": self.seed,
            "fraction": self.fraction,
            "n_requests": self.n_requests,
            "gen_wall_s": round(self.gen_wall_s, 4),
            "fast_wall_s": round(self.fast_wall_s, 4),
            "events_per_s": round(self.events_per_s, 1),
            "fast_requests_per_s": round(self.fast_requests_per_s, 1),
            "finished_requests": self.finished_requests,
            "failed_requests": self.failed_requests,
            "tokens_generated": self.tokens_generated,
            "events_processed": self.events_processed,
            "sim_duration_s": self.sim_duration_s,
        }


def measure_scale(
    seed: int = 0, fraction: "float | None" = None, scenario=None
) -> BudgetMeasurement:
    """Time a self-similar slice of the ``fig13_1m`` scenario, fast path only.

    Every request must terminate (finish or fail) — a scale run that
    silently drops requests would make the wall-clock number meaningless.
    """
    from repro.workloads.scale import FIG13_1M, scale_trace

    scenario = scenario or FIG13_1M
    budgets = DEFAULT_THRESHOLDS["budgets"].get(scenario.name, {})
    if fraction is None:
        fraction = budgets.get("fraction", 1.0)
    t0 = perf_counter()
    trace = scale_trace(scenario, fraction=fraction, seed=seed)
    gen_wall = perf_counter() - t0
    sim = build_cluster(
        scenario.num_gpus, max_batch_size=scenario.max_batch_size, fast_path=True
    )
    t0 = perf_counter()
    result = sim.run(trace)
    fast_wall = perf_counter() - t0
    terminal = result.finished_requests + result.failed_requests
    if terminal != len(trace):
        raise AssertionError(
            f"scale run dropped requests: {terminal} terminal of {len(trace)}"
        )
    return BudgetMeasurement(
        scenario=scenario.name,
        seed=seed,
        fraction=fraction,
        n_requests=len(trace),
        gen_wall_s=gen_wall,
        fast_wall_s=fast_wall,
        finished_requests=result.finished_requests,
        failed_requests=result.failed_requests,
        tokens_generated=result.tokens_generated,
        events_processed=result.events_processed,
        sim_duration_s=result.duration,
    )


def evaluate_budget(
    measurements: "list[BudgetMeasurement]", budgets: "dict | None" = None
) -> "list[str]":
    """Pure budget logic: violations against per-scenario wall budgets."""
    if not measurements:
        raise ValueError("evaluate_budget needs at least one measurement")
    table = dict(DEFAULT_THRESHOLDS["budgets"])
    table.update(budgets or {})
    failures: "list[str]" = []
    for m in measurements:
        budget = table.get(m.scenario)
        if budget is None:
            failures.append(f"no budget recorded for scenario {m.scenario!r}")
            continue
        max_wall = budget.get("max_wall_s")
        if max_wall is not None and m.fast_wall_s > max_wall:
            failures.append(
                f"{m.scenario}: wall {m.fast_wall_s:.1f}s over budget {max_wall:.1f}s"
            )
        floor = budget.get("min_events_per_s")
        if floor is not None and m.events_per_s < floor:
            failures.append(
                f"{m.scenario}: {m.events_per_s:.0f} events/s below floor {floor:.0f}"
            )
    return failures


def evaluate_gate(
    measurements: "list[PerfMeasurement]", thresholds: "dict | None" = None
) -> "list[str]":
    """Pure gate logic: return the list of violations (empty = pass).

    With two or more measurements the run-to-run variance of the fast
    wall-clock is bounded too — a noisy runner should fail loudly rather
    than let a lucky sample mask a real regression (or vice versa).
    """
    if not measurements:
        raise ValueError("evaluate_gate needs at least one measurement")
    th = dict(DEFAULT_THRESHOLDS)
    th.update(thresholds or {})
    failures: "list[str]" = []
    worst_speedup = min(m.speedup for m in measurements)
    if worst_speedup < th["min_speedup"]:
        failures.append(
            f"speedup {worst_speedup:.2f}x below floor {th['min_speedup']:.2f}x"
        )
    worst_rps = min(m.fast_requests_per_s for m in measurements)
    if worst_rps < th["min_requests_per_s"]:
        failures.append(
            f"fast-path throughput {worst_rps:.0f} req/s below floor "
            f"{th['min_requests_per_s']:.0f} req/s"
        )
    if len(measurements) >= 2:
        walls = [m.fast_wall_s for m in measurements]
        variance = (max(walls) - min(walls)) / min(walls)
        if variance > th["max_variance"]:
            failures.append(
                f"run-to-run variance {variance:.1%} exceeds "
                f"{th['max_variance']:.0%} — runner too noisy to gate on"
            )
    return failures


def load_thresholds(path: "pathlib.Path | None" = None) -> dict:
    """Thresholds from the checked-in JSON, with defaults filled in."""
    path = path or BENCH_JSON
    th = dict(DEFAULT_THRESHOLDS)
    th["budgets"] = {k: dict(v) for k, v in th["budgets"].items()}
    if path.exists():
        data = json.loads(path.read_text())
        loaded = dict(data.get("thresholds", {}))
        # Per-scenario budgets merge key-by-key; a checked-in file that
        # overrides one scenario's wall budget keeps the others' defaults.
        for name, budget in loaded.pop("budgets", {}).items():
            th["budgets"].setdefault(name, {}).update(budget)
        th.update(loaded)
    return th


def write_results(
    measurements: "list[PerfMeasurement]",
    path: "pathlib.Path | None" = None,
    thresholds: "dict | None" = None,
) -> dict:
    """Serialise measurements (plus the active thresholds) to JSON."""
    path = path or BENCH_JSON
    payload = {
        "thresholds": dict(thresholds or load_thresholds(path)),
        "results": [m.to_json() for m in measurements],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


#: Scenario names ``run_perf_gate`` (and ``repro perf --scenario``) accepts.
SCENARIOS = ("fig13_quick", "fig13_1m", "all")


def run_perf_gate(
    seed: int = 0,
    rounds: int = 1,
    scale: "Fig13Scale | None" = None,
    json_path: "pathlib.Path | None" = None,
    write_json: bool = False,
    scenario: str = "fig13_quick",
) -> "tuple[FigureTable, list[str]]":
    """Run the gate and render a FigureTable (the ``repro perf`` command).

    ``scenario`` picks the measurement kind: ``fig13_quick`` is the
    fast-vs-reference speedup gate, ``fig13_1m`` the scale-out wall
    budget (fast path only), ``all`` both.
    """
    if scenario not in SCENARIOS:
        raise ValueError(f"unknown scenario {scenario!r}; choose from {SCENARIOS}")
    thresholds = load_thresholds(json_path)
    table = FigureTable(
        figure_id="Perf gate",
        title=(
            f"Fast-path perf gate: {scenario}, seed {seed}, {rounds} round(s)"
        ),
        headers=[
            "scenario", "round", "fast_wall_s", "ref_wall_s", "speedup",
            "fast_req_per_s", "events_per_s",
        ],
    )
    failures: "list[str]" = []
    recorded: list = []
    if scenario in ("fig13_quick", "all"):
        measurements = [measure(seed=seed, scale=scale) for _ in range(rounds)]
        for i, m in enumerate(measurements):
            table.add_row(
                m.scenario, i, m.fast_wall_s, m.ref_wall_s, m.speedup,
                m.fast_requests_per_s, m.events_processed / m.fast_wall_s,
            )
        failures += evaluate_gate(measurements, thresholds)
        recorded += measurements
        table.add_note(
            f"speedup thresholds: >= {thresholds['min_speedup']}x, "
            f"throughput >= {thresholds['min_requests_per_s']} req/s, "
            f"variance <= {thresholds['max_variance']:.0%}"
        )
    if scenario in ("fig13_1m", "all"):
        budget_runs = [measure_scale(seed=seed)]
        for m in budget_runs:
            table.add_row(
                m.scenario, 0, m.fast_wall_s, "-", "-",
                m.fast_requests_per_s, m.events_per_s,
            )
        failures += evaluate_budget(budget_runs, thresholds["budgets"])
        recorded += budget_runs
        b = thresholds["budgets"].get("fig13_1m", {})
        table.add_note(
            f"fig13_1m budget (fraction {b.get('fraction')}): wall <= "
            f"{b.get('max_wall_s')}s, events/s >= {b.get('min_events_per_s')}"
        )
    table.add_note(
        "gate: PASS" if not failures else "gate: FAIL — " + "; ".join(failures)
    )
    if write_json:
        write_results(recorded, json_path, thresholds)
    return table, failures
