"""Performance-regression gate for the fast-path simulation engine.

The fast path (``REPRO_FASTPATH``) exists to make the cluster simulator
cheap enough to iterate on, and its whole value evaporates if a refactor
quietly slows it back down. This module measures the Figure-13 cluster
scenario through both engine paths, cross-checks that they produced the
same simulation (the differential suite's bit-identity contract, asserted
again here on the summary), and compares the measurements against
thresholds checked into ``benchmarks/BENCH_perf.json``.

Three layers, so CI and humans share one code path:

* :func:`measure` — run the scenario through both paths and time them;
* :func:`evaluate_gate` — pure threshold logic (unit-testable, no clocks);
* :func:`run_perf_gate` — FigureTable wrapper for ``python -m repro perf``.

``benchmarks/bench_perf_gate.py`` is the CI entry point: it calls
:func:`measure` (twice under ``--check`` to bound run-to-run variance)
and fails the build on any gate violation.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from time import perf_counter

from repro.bench.fig13_cluster import QUICK, Fig13Scale, run_fig13_simulation
from repro.bench.reporting import FigureTable

#: Default location of the checked-in thresholds + last recorded numbers.
BENCH_JSON = pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "BENCH_perf.json"

#: Gate thresholds used when the JSON file is missing its ``thresholds``
#: key. ``min_requests_per_s`` is deliberately conservative: shared CI
#: runners are several times slower than a quiet workstation, and the
#: floor exists to catch order-of-magnitude regressions, not jitter.
DEFAULT_THRESHOLDS = {
    "min_speedup": 3.0,
    "min_requests_per_s": 150.0,
    "max_variance": 0.20,
}


@dataclass(frozen=True)
class PerfMeasurement:
    """One timed fast-vs-reference run of the Figure-13 scenario."""

    scenario: str
    seed: int
    fast_wall_s: float
    ref_wall_s: float
    finished_requests: int
    tokens_generated: int
    events_processed: int
    sim_duration_s: float

    @property
    def speedup(self) -> float:
        return self.ref_wall_s / self.fast_wall_s

    @property
    def fast_requests_per_s(self) -> float:
        """Finished simulated requests per wall-clock second, fast path."""
        return self.finished_requests / self.fast_wall_s

    @property
    def fast_tokens_per_s(self) -> float:
        return self.tokens_generated / self.fast_wall_s

    def to_json(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "fast_wall_s": round(self.fast_wall_s, 4),
            "ref_wall_s": round(self.ref_wall_s, 4),
            "speedup": round(self.speedup, 3),
            "fast_requests_per_s": round(self.fast_requests_per_s, 1),
            "fast_tokens_per_s": round(self.fast_tokens_per_s, 1),
            "finished_requests": self.finished_requests,
            "tokens_generated": self.tokens_generated,
            "events_processed": self.events_processed,
            "sim_duration_s": self.sim_duration_s,
        }


def _summary(result) -> tuple:
    return (
        result.events_processed,
        result.finished_requests,
        result.failed_requests,
        result.tokens_generated,
        result.num_migrations,
        result.duration,
    )


def measure(
    seed: int = 0, scale: "Fig13Scale | None" = None, scenario: str = "fig13_quick"
) -> PerfMeasurement:
    """Time the Figure-13 cluster scenario through both engine paths.

    The reference run doubles as an equivalence check: if the two paths
    disagree on the simulation summary, the timing numbers are meaningless
    and we raise instead of reporting them.
    """
    scale = scale or QUICK
    t0 = perf_counter()
    fast, _ = run_fig13_simulation(scale=scale, seed=seed, fast_path=True)
    fast_wall = perf_counter() - t0
    t0 = perf_counter()
    ref, _ = run_fig13_simulation(scale=scale, seed=seed, fast_path=False)
    ref_wall = perf_counter() - t0
    if _summary(fast) != _summary(ref):
        raise AssertionError(
            "fast and reference paths diverged on the benchmark scenario: "
            f"{_summary(fast)} != {_summary(ref)} — timing numbers discarded"
        )
    return PerfMeasurement(
        scenario=scenario,
        seed=seed,
        fast_wall_s=fast_wall,
        ref_wall_s=ref_wall,
        finished_requests=fast.finished_requests,
        tokens_generated=fast.tokens_generated,
        events_processed=fast.events_processed,
        sim_duration_s=fast.duration,
    )


def evaluate_gate(
    measurements: "list[PerfMeasurement]", thresholds: "dict | None" = None
) -> "list[str]":
    """Pure gate logic: return the list of violations (empty = pass).

    With two or more measurements the run-to-run variance of the fast
    wall-clock is bounded too — a noisy runner should fail loudly rather
    than let a lucky sample mask a real regression (or vice versa).
    """
    if not measurements:
        raise ValueError("evaluate_gate needs at least one measurement")
    th = dict(DEFAULT_THRESHOLDS)
    th.update(thresholds or {})
    failures: "list[str]" = []
    worst_speedup = min(m.speedup for m in measurements)
    if worst_speedup < th["min_speedup"]:
        failures.append(
            f"speedup {worst_speedup:.2f}x below floor {th['min_speedup']:.2f}x"
        )
    worst_rps = min(m.fast_requests_per_s for m in measurements)
    if worst_rps < th["min_requests_per_s"]:
        failures.append(
            f"fast-path throughput {worst_rps:.0f} req/s below floor "
            f"{th['min_requests_per_s']:.0f} req/s"
        )
    if len(measurements) >= 2:
        walls = [m.fast_wall_s for m in measurements]
        variance = (max(walls) - min(walls)) / min(walls)
        if variance > th["max_variance"]:
            failures.append(
                f"run-to-run variance {variance:.1%} exceeds "
                f"{th['max_variance']:.0%} — runner too noisy to gate on"
            )
    return failures


def load_thresholds(path: "pathlib.Path | None" = None) -> dict:
    """Thresholds from the checked-in JSON, with defaults filled in."""
    path = path or BENCH_JSON
    th = dict(DEFAULT_THRESHOLDS)
    if path.exists():
        data = json.loads(path.read_text())
        th.update(data.get("thresholds", {}))
    return th


def write_results(
    measurements: "list[PerfMeasurement]",
    path: "pathlib.Path | None" = None,
    thresholds: "dict | None" = None,
) -> dict:
    """Serialise measurements (plus the active thresholds) to JSON."""
    path = path or BENCH_JSON
    payload = {
        "thresholds": dict(thresholds or load_thresholds(path)),
        "results": [m.to_json() for m in measurements],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def run_perf_gate(
    seed: int = 0,
    rounds: int = 1,
    scale: "Fig13Scale | None" = None,
    json_path: "pathlib.Path | None" = None,
    write_json: bool = False,
) -> "tuple[FigureTable, list[str]]":
    """Run the gate and render a FigureTable (the ``repro perf`` command)."""
    thresholds = load_thresholds(json_path)
    measurements = [measure(seed=seed, scale=scale) for _ in range(rounds)]
    table = FigureTable(
        figure_id="Perf gate",
        title=(
            f"Fast-path perf gate: fig13 cluster scenario, seed {seed}, "
            f"{rounds} round(s)"
        ),
        headers=[
            "round", "fast_wall_s", "ref_wall_s", "speedup",
            "fast_req_per_s", "fast_tok_per_s",
        ],
    )
    for i, m in enumerate(measurements):
        table.add_row(
            i, m.fast_wall_s, m.ref_wall_s, m.speedup,
            m.fast_requests_per_s, m.fast_tokens_per_s,
        )
    failures = evaluate_gate(measurements, thresholds)
    table.add_note(
        f"thresholds: speedup >= {thresholds['min_speedup']}x, "
        f"throughput >= {thresholds['min_requests_per_s']} req/s, "
        f"variance <= {thresholds['max_variance']:.0%}"
    )
    table.add_note(
        "gate: PASS" if not failures else "gate: FAIL — " + "; ".join(failures)
    )
    if write_json:
        write_results(measurements, json_path, thresholds)
    return table, failures
