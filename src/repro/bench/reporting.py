"""Figure output containers and rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.utils.tables import format_table


@dataclass
class FigureTable:
    """One reproduced figure/table: the rows the paper plots, plus notes."""

    figure_id: str
    title: str
    headers: Sequence[str]
    rows: list[Sequence[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        header = f"== {self.figure_id}: {self.title} =="
        body = format_table(list(self.headers), self.rows)
        parts = [header, body]
        if self.notes:
            parts.append("\n".join(f"  note: {n}" for n in self.notes))
        return "\n".join(parts)

    def column(self, name: str) -> list[object]:
        """Extract one column by header name (for assertions in benches)."""
        idx = list(self.headers).index(name)
        return [row[idx] for row in self.rows]
