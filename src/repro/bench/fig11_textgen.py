"""Figure 11: single-GPU text generation — Punica vs four baselines.

Serves a ShareGPT-length closed-loop trace FCFS on one A100-80G at max
batch size 32, for the 7B and 13B models, across the four popularity
distributions. Paper headline: Punica ~1044 tok/s (7B) and ~693 tok/s
(13B) on every workload; baselines collapse to batch-size ~1 on
multi-LoRA workloads (12x gap); vLLM backbone-only slightly ahead of
Punica on Identical (1140 vs 1044 tok/s).

The paper's 1000-request trace takes a couple of minutes of simulation in
pure Python; ``n_requests`` defaults lower so the bench stays snappy. Set
``REPRO_PAPER_SCALE=1`` to run the full thing.
"""

from __future__ import annotations

import os

from repro.baselines.framework import ALL_SYSTEMS, FrameworkProfile, build_engine
from repro.bench.reporting import FigureTable
from repro.hw.spec import A100_80G, GpuSpec
from repro.models.config import LLAMA2_7B, LLAMA2_13B, LlamaConfig
from repro.runtime.serve import requests_from_trace, serve_requests
from repro.workloads.popularity import POPULARITY_NAMES
from repro.workloads.trace import generate_trace

DEFAULT_REQUESTS = 120


def paper_scale() -> bool:
    return os.environ.get("REPRO_PAPER_SCALE", "") not in ("", "0")


def run_fig11(
    configs: "tuple[LlamaConfig, ...]" = (LLAMA2_7B, LLAMA2_13B),
    gpu: GpuSpec = A100_80G,
    systems: "tuple[FrameworkProfile, ...]" = ALL_SYSTEMS,
    n_requests: int | None = None,
    seed: int = 0,
) -> FigureTable:
    if n_requests is None:
        n_requests = 1000 if paper_scale() else DEFAULT_REQUESTS
    table = FigureTable(
        figure_id="Figure 11",
        title=f"Single-GPU text generation, {n_requests} requests ({gpu.name})",
        headers=["model", "distribution", "system", "throughput_tok_s", "mean_batch"],
    )
    for config in configs:
        for dist in POPULARITY_NAMES:
            trace = generate_trace(n_requests, dist, seed=seed)
            for profile in systems:
                engine = build_engine(profile, config, gpu=gpu)
                result = serve_requests(
                    engine, requests_from_trace(trace), keep_steps=True
                )
                table.add_row(
                    config.name, dist, profile.name,
                    result.throughput, result.mean_batch_size,
                )
    table.add_note(
        "paper: Punica 1044 (7B) / 693 (13B) tok/s on all workloads; "
        "baselines ~70-90 tok/s on Distinct; vLLM 1140/789 on Identical"
    )
    return table
