"""Figure 10: transformer layer latency with the LoRA operator incorporated.

7B and 13B layer latency at sequence lengths 512 and 2048, batch 1-32,
four popularity distributions. Paper shape: latency nearly identical
across workloads (the LoRA addon is small relative to dense projections +
attention); batching effect stronger at the shorter sequence length (+72%
over bs 1->32 at seq 512 for 7B).
"""

from __future__ import annotations

from repro.bench.reporting import FigureTable
from repro.hw.kernels import KernelCostModel
from repro.hw.spec import A100_80G, GpuSpec
from repro.models.config import LLAMA2_7B, LLAMA2_13B, LlamaConfig
from repro.models.perf import StepWorkload, transformer_layer_latency
from repro.utils.units import US
from repro.workloads.popularity import POPULARITY_NAMES, segment_sizes_for

BATCH_SIZES = (1, 2, 4, 8, 16, 32)
SEQ_LENS = (512, 2048)


def run_fig10(
    configs: "tuple[LlamaConfig, ...]" = (LLAMA2_7B, LLAMA2_13B),
    gpu: GpuSpec = A100_80G,
    seq_lens: "tuple[int, ...]" = SEQ_LENS,
    batch_sizes: "tuple[int, ...]" = BATCH_SIZES,
) -> FigureTable:
    kcm = KernelCostModel(gpu)
    table = FigureTable(
        figure_id="Figure 10",
        title=f"Transformer layer latency with LoRA ({gpu.name})",
        headers=["model", "seq_len", "distribution", "batch_size", "layer_us"],
    )
    for config in configs:
        for seq_len in seq_lens:
            for dist in POPULARITY_NAMES:
                for bs in batch_sizes:
                    segs = tuple(segment_sizes_for(dist, bs))
                    work = StepWorkload(
                        decode_kv_lens=(seq_len,) * bs, lora_segments=segs
                    )
                    t = transformer_layer_latency(config, kcm, work)
                    table.add_row(config.name, seq_len, dist, bs, t / US)
    table.add_note("paper: +72% over bs 1->32 at seq 512 (7B); workloads nearly equal")
    return table
