"""Ablation: speculative decoding ITL vs acceptance rate vs batch size.

The same closed-loop decode workload is served with the speculative lane
disarmed (the baseline) and armed at a sweep of acceptance rates, across
several batch sizes. Every speculative round pays a fixed overhead — the
``draft_len`` cheap draft steps plus a verify invocation priced as a
short prefill of ``draft_len + 1``-token chunks — and earns back
``accepted + 1`` committed tokens. That is the MagicDec trade-off curve:

* at **high acceptance** the burst amortizes the overhead and effective
  inter-token latency drops well below the baseline decode step;
* at **low acceptance** most drafts are rejected and rolled back, so the
  round costs more than the one token it commits — speculation *loses*;
* growing the **batch** raises the verify cost (the chunked-prefill side
  scales with batch x chunk tokens) faster than the decode baseline, so
  the break-even acceptance rate climbs with batch size.

``repro spec`` renders this table from the CLI;
``benchmarks/bench_ablation_spec.py`` checks the shape and saves
``benchmarks/results/ablation_spec.txt``.
"""

from __future__ import annotations

from repro.bench.disagg_ablation import inter_token_latencies
from repro.bench.reporting import FigureTable
from repro.models.config import LLAMA2_7B
from repro.obs.tracer import EventKind, Tracer
from repro.runtime.backend import SimulatedBackend
from repro.runtime.engine import EngineConfig, GpuEngine
from repro.runtime.serve import ServeResult, requests_from_trace, serve_requests
from repro.runtime.spec import SpecConfig
from repro.utils.units import MS
from repro.workloads.lengths import ShareGptLengths
from repro.workloads.trace import Trace, generate_trace

BATCH_SIZES = (1, 8, 32)
ACCEPTANCE_RATES = (0.2, 0.5, 0.8, 0.95)
DRAFT_LEN = 4
PROMPT_LEN = 128
RESPONSE_LEN = 64
"""Decode-heavy closed loop: every request is present from t=0 and decodes
to its response limit, so once the short prefill phase drains, every
invocation is a pure decode batch of exactly ``batch`` requests — the
regime where the speculative lane engages on every step."""


def _trace(seed: int, batch: int) -> Trace:
    lengths = ShareGptLengths(
        max_prompt_len=PROMPT_LEN, max_response_len=RESPONSE_LEN
    )
    return generate_trace(batch, "distinct", seed=seed, lengths=lengths)


def run_one(
    seed: int, batch: int, spec: "SpecConfig | None"
) -> "tuple[ServeResult, Tracer]":
    """Serve the closed-loop batch on one engine; spec arms the lane."""
    engine = GpuEngine(
        "gpu0",
        SimulatedBackend(LLAMA2_7B, step_overhead=0.0),
        EngineConfig(max_batch_size=batch, spec=spec),
    )
    tracer = Tracer()
    result = serve_requests(
        engine, requests_from_trace(_trace(seed, batch)), tracer=tracer
    )
    return result, tracer


def _mean_itl_ms(tracer: Tracer) -> float:
    tpots = inter_token_latencies(tracer)
    if not tpots:
        return 0.0
    return sum(tpots) / len(tpots) / MS


def _mean_accepted(tracer: Tracer) -> float:
    verifies = tracer.by_kind(EventKind.SPEC_VERIFY)
    if not verifies:
        return 0.0
    return sum(e.attrs["accepted"] for e in verifies) / len(verifies)


def run_spec_ablation(
    seed: int = 0,
    draft_len: int = DRAFT_LEN,
    batch_sizes: "tuple[int, ...]" = BATCH_SIZES,
    acceptance_rates: "tuple[float, ...]" = ACCEPTANCE_RATES,
) -> FigureTable:
    table = FigureTable(
        figure_id="Ablation spec",
        title=(
            f"Speculative decoding ITL vs acceptance rate vs batch size "
            f"(draft_len={draft_len}, {PROMPT_LEN}-token prompts, "
            f"{RESPONSE_LEN}-token responses)"
        ),
        headers=[
            "batch", "acceptance", "itl_ms", "baseline_itl_ms",
            "speedup", "mean_accepted", "rounds",
        ],
    )
    for batch in batch_sizes:
        base_result, base_tracer = run_one(seed, batch, None)
        base_itl = _mean_itl_ms(base_tracer)
        for rate in acceptance_rates:
            spec = SpecConfig(
                draft_len=draft_len, acceptance_rate=rate, seed=seed
            )
            result, tracer = run_one(seed, batch, spec)
            itl = _mean_itl_ms(tracer)
            table.add_row(
                batch,
                rate,
                itl,
                base_itl,
                base_itl / itl if itl > 0 else 0.0,
                _mean_accepted(tracer),
                len(tracer.by_kind(EventKind.SPEC_DRAFT)),
            )
    table.add_note(
        "speedup = baseline decode ITL / speculative ITL on the same "
        "workload; > 1 means speculation wins"
    )
    table.add_note(
        "the break-even acceptance rate climbs with batch size: the "
        "chunked verify grows with batch x (draft_len + 1) tokens while "
        "the baseline decode step grows only with batch (MagicDec)"
    )
    return table
