"""Ablation: tiered adapter cache and prefetching (cold-start latency).

Punica §5.2 measures the raw cost of an on-demand LoRA load; this ablation
measures what the *adapter lifecycle subsystem* does to that cost at the
cluster level. Each GPU runs a :class:`~repro.adapters.pool.UnifiedMemoryPool`
(KvCache and adapter weights share one byte budget, S-LoRA-style) sized so
only a handful of adapters fit GPU-side at once; a Zipf-skewed open-loop
trace then exercises the DISK -> HOST -> GPU ladder. The sweep toggles the
popularity-driven prefetcher and the host staging budget and reports mean
time-to-first-token next to the hit-tier breakdown — the headline row pair
is prefetch-off vs prefetch-on, where staging hot adapters ahead of demand
moves the disk leg (and often the PCIe leg) off the critical path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adapters import (
    AdapterRegistry,
    HostTierSpec,
    PrefetchConfig,
    Prefetcher,
    UnifiedMemoryPool,
    register_trace_adapters,
)
from repro.bench.fig11_textgen import paper_scale
from repro.bench.reporting import FigureTable
from repro.cluster.scheduler import SchedulerConfig
from repro.cluster.simulator import ClusterSimulator, SimulationResult
from repro.models.config import LLAMA2_7B, LlamaConfig
from repro.runtime.backend import SimulatedBackend
from repro.runtime.engine import EngineConfig, GpuEngine
from repro.utils.units import MS
from repro.workloads.trace import Trace, open_loop_trace


@dataclass(frozen=True)
class AdapterCacheScale:
    """Workload + memory sizing for one ablation run."""

    num_gpus: int = 2
    rate: float = 6.0
    duration: float = 90.0
    kv_budget_tokens: int = 20_000
    """KvCache tokens the unified budget is sized for (beyond adapter slots)."""
    gpu_adapter_slots: int = 4
    """Adapters the unified budget fits alongside a full KvCache."""
    rank: int = 16
    max_batch_size: int = 32
    alpha: float = 1.1
    """Zipf decay; 1.1 gives a long adapter tail (~10x the adapters of the
    paper's 1.5 at this trace size), which is what a cold-start study needs."""


QUICK = AdapterCacheScale()
PAPER = AdapterCacheScale(num_gpus=4, rate=12.0, duration=600.0)

DEFAULT_PREFETCH = PrefetchConfig(interval=0.25, host_topk=32, gpu_topk=2)
"""Bench default: stage aggressively (host RAM is cheap), promote gently."""


def build_adapter_cluster(
    trace: Trace,
    scale: AdapterCacheScale | None = None,
    config: LlamaConfig = LLAMA2_7B,
    prefetch: bool = True,
    host_slots: "int | None" = None,
    prefetch_config: "PrefetchConfig | None" = None,
    scheduler_config: "SchedulerConfig | None" = None,
) -> "tuple[ClusterSimulator, AdapterRegistry, Prefetcher | None]":
    """A cluster of unified-pool engines sharing one adapter registry.

    The per-GPU budget is ``kv_budget_tokens`` of KvCache plus
    ``gpu_adapter_slots`` adapters' worth of bytes — enough KvCache that the
    batch is never starved, few enough adapter slots that the Zipf tail
    forces evictions. ``host_slots`` bounds the host staging tier (``None``
    = unbounded host RAM). The trace's per-adapter counts seed the registry
    popularity priors, so the prefetcher has a signal from t=0.
    """
    scale = scale or QUICK
    adapter_bytes = float(config.lora_bytes(scale.rank))
    host = HostTierSpec(
        capacity_bytes=host_slots * adapter_bytes if host_slots else None
    )
    registry = AdapterRegistry(host=host)
    register_trace_adapters(registry, trace, config, rank=scale.rank)
    bytes_per_token = config.kv_bytes_per_token()
    capacity = (
        scale.kv_budget_tokens * bytes_per_token
        + scale.gpu_adapter_slots * adapter_bytes
    )
    engines = []
    for i in range(scale.num_gpus):
        gpu_id = f"gpu{i:02d}"
        pool = UnifiedMemoryPool(
            capacity_bytes=capacity,
            page_size=16,
            bytes_per_token=bytes_per_token,
            registry=registry,
            gpu_id=gpu_id,
        )
        backend = SimulatedBackend(
            config, lora_rank=scale.rank, unified_pool=pool
        )
        engines.append(
            GpuEngine(
                gpu_id,
                backend,
                EngineConfig(max_batch_size=scale.max_batch_size),
                loader=pool,
            )
        )
    prefetcher = (
        Prefetcher(registry, prefetch_config or DEFAULT_PREFETCH)
        if prefetch
        else None
    )
    sim = ClusterSimulator(
        engines, scheduler_config, registry=registry, prefetcher=prefetcher
    )
    return sim, registry, prefetcher


def mean_ttft(result: SimulationResult) -> float:
    """Mean time-to-first-token over requests that produced one (seconds)."""
    ttfts = [
        r.time_to_first_token()
        for r in result.requests
        if r.first_token_time is not None
    ]
    return sum(ttfts) / len(ttfts) if ttfts else 0.0


def mean_cold_ttft(result: SimulationResult) -> float:
    """Mean TTFT of each adapter's *first* request — the cold-start cost the
    prefetcher attacks; later requests mostly hit warm tiers either way."""
    first: dict[str, float] = {}
    for r in sorted(result.requests, key=lambda r: r.spec.arrival_time):
        if r.first_token_time is not None and r.lora_id not in first:
            first[r.lora_id] = r.time_to_first_token()
    return sum(first.values()) / len(first) if first else 0.0


def run_adapter_cache_ablation(
    scale: AdapterCacheScale | None = None,
    config: LlamaConfig = LLAMA2_7B,
    seed: int = 0,
) -> FigureTable:
    """Sweep prefetch on/off and the host staging budget on one trace."""
    scale = scale or (PAPER if paper_scale() else QUICK)
    trace = open_loop_trace(
        rate=scale.rate, duration=scale.duration, distribution="skewed",
        seed=seed, alpha=scale.alpha,
    )
    variants = [
        ("no-prefetch", False, None),
        ("prefetch", True, None),
        ("prefetch+small-host", True, max(2, scale.gpu_adapter_slots * 2)),
    ]
    table = FigureTable(
        figure_id="Ablation adapter-cache",
        title=(
            f"Tiered adapter cache: {scale.num_gpus} GPUs, "
            f"{scale.gpu_adapter_slots} GPU adapter slots, {config.name}, "
            f"Zipf-{scale.alpha}, {trace.num_lora_models} adapters"
        ),
        headers=[
            "variant", "cold_ttft_ms", "mean_ttft_ms", "gpu_hits", "host_hits",
            "disk_hits", "evictions", "prefetch_acc", "pcie_busy_s",
        ],
    )
    for label, prefetch, host_slots in variants:
        sim, _, _ = build_adapter_cluster(
            trace, scale=scale, config=config,
            prefetch=prefetch, host_slots=host_slots,
        )
        result = sim.run(trace)
        hits = result.metrics.adapter_hit_counts()
        table.add_row(
            label,
            mean_cold_ttft(result) / MS,
            mean_ttft(result) / MS,
            hits["gpu"], hits["host"], hits["disk"],
            result.metrics.eviction_count(),
            result.metrics.prefetch_accuracy(),
            result.metrics.pcie_busy_seconds(),
        )
    table.add_note(
        "unified pool: KvCache and adapter weights share one per-GPU byte "
        "budget (S-LoRA); prefetcher stages hot adapters host-side and "
        "promotes over idle PCIe (CaraServe)"
    )
    table.add_note(
        "disk hits pay staging + PCIe; host hits only PCIe; gpu hits are free"
    )
    return table
