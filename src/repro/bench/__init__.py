"""Figure/table runners: one module per evaluation artifact of the paper.

Each ``run_figXX`` function computes the figure's series and returns a
:class:`~repro.bench.reporting.FigureTable` whose ``render()`` prints the
same rows the paper plots. The pytest-benchmark files under
``benchmarks/`` call these, print the tables, and additionally measure the
wall-clock of the real NumPy kernels.
"""

from repro.bench.adapter_cache import run_adapter_cache_ablation
from repro.bench.disagg_ablation import run_disagg_ablation
from repro.bench.faults_ablation import run_faults_ablation
from repro.bench.fig01_batching import run_fig01
from repro.bench.fig07_roofline import run_fig07
from repro.bench.fig08_lora_ops import run_fig08
from repro.bench.fig09_rank import run_fig09
from repro.bench.fig10_layer import run_fig10
from repro.bench.fig11_textgen import run_fig11
from repro.bench.fig12_tp70b import run_fig12
from repro.bench.fig13_cluster import run_fig13
from repro.bench.loader_bench import run_loader_bench
from repro.bench.reporting import FigureTable
from repro.bench.slo_ablation import run_slo_ablation
from repro.bench.spec_ablation import run_spec_ablation

__all__ = [
    "FigureTable",
    "run_adapter_cache_ablation",
    "run_disagg_ablation",
    "run_faults_ablation",
    "run_fig01",
    "run_fig07",
    "run_fig08",
    "run_fig09",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "run_loader_bench",
    "run_slo_ablation",
    "run_spec_ablation",
]
