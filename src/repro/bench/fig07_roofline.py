"""Figure 7: roofline plot of the SGMV kernel.

Places the SGMV expand launch (h_in=16, h_out=4096, the paper's case
study) on the A100 roofline for batch sizes 1-64 under the four popularity
distributions. Paper shape: Distinct keeps constant arithmetic intensity
and climbs vertically (more parallelism); Identical rides the memory-
bandwidth diagonal; Uniform/Skewed sit in between.
"""

from __future__ import annotations

from repro.bench.reporting import FigureTable
from repro.hw.kernels import KernelCostModel, SgmvWorkload
from repro.hw.roofline import RooflinePoint, ridge_point, roofline_ascii, roofline_bound
from repro.hw.spec import A100_80G, GpuSpec
from repro.utils.units import TB
from repro.workloads.popularity import POPULARITY_NAMES, segment_sizes_for

BATCH_SIZES = (1, 2, 4, 8, 16, 32, 64)
H_IN, H_OUT = 16, 4096


def run_fig07(
    gpu: GpuSpec = A100_80G,
    batch_sizes: "tuple[int, ...]" = BATCH_SIZES,
) -> FigureTable:
    kcm = KernelCostModel(gpu)
    table = FigureTable(
        figure_id="Figure 7",
        title=f"SGMV roofline (h_in={H_IN}, h_out={H_OUT}, {gpu.name})",
        headers=[
            "distribution", "batch_size", "intensity_flop_per_byte",
            "achieved_tflops", "roof_tflops",
        ],
    )
    for dist in POPULARITY_NAMES:
        for bs in batch_sizes:
            segs = tuple(segment_sizes_for(dist, bs))
            work = SgmvWorkload(segments=segs, h_in=H_IN, h_out=H_OUT)
            latency = kcm.sgmv(work, standalone=True)
            intensity = work.arithmetic_intensity
            table.add_row(
                dist, bs, intensity,
                work.flop / latency / TB,
                roofline_bound(gpu, intensity) / TB,
            )
    table.add_note(f"ridge point: {ridge_point(gpu):.1f} FLOP/byte")
    table.add_note(
        "paper shape: Distinct = constant intensity rising with parallelism; "
        "Identical rides the bandwidth diagonal"
    )
    return table


def fig07_ascii_plot(
    gpu: GpuSpec = A100_80G,
    batch_sizes: "tuple[int, ...]" = BATCH_SIZES,
) -> str:
    """The Fig 7 scatter as terminal art (d/u/s/i = the four workloads)."""
    kcm = KernelCostModel(gpu)
    points = []
    for dist in POPULARITY_NAMES:
        for bs in batch_sizes:
            segs = tuple(segment_sizes_for(dist, bs))
            work = SgmvWorkload(segments=segs, h_in=H_IN, h_out=H_OUT)
            points.append(
                RooflinePoint(
                    label=dist,
                    flop=work.flop,
                    io_bytes=work.io_bytes,
                    latency=kcm.sgmv(work, standalone=True),
                )
            )
    return roofline_ascii(gpu, points)
