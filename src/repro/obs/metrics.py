"""Unified metrics registry: counter / gauge / histogram primitives.

One :class:`MetricsRegistry` per simulation run unifies the counters that
used to be scattered across :class:`~repro.cluster.metrics.ClusterMetrics`,
the adapter store and the fault layer behind a single ``repro_`` namespace.
Registries are deliberately *instance-scoped* — there is no module-level
default registry, so two back-to-back runs can never bleed state into each
other (the reset-isolation regression test in
tests/test_metrics_parity.py holds this line).

Exports: :meth:`MetricsRegistry.to_json` (a plain dict for archiving next
to results) and :meth:`MetricsRegistry.render_prometheus` (the Prometheus
text exposition format, for scraping a live deployment).
"""

from __future__ import annotations

import math
from typing import Any

DEFAULT_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)
"""Prometheus' classic latency buckets (seconds)."""


def _validate_name(name: str) -> None:
    if not name or not all(c.isalnum() or c == "_" for c in name):
        raise ValueError(f"metric name must be [a-zA-Z0-9_]+, got {name!r}")


def _label_key(
    label_names: "tuple[str, ...]", labels: "dict[str, str]"
) -> "tuple[str, ...]":
    if len(labels) != len(label_names):
        raise ValueError(
            f"expected labels {sorted(label_names)}, got {sorted(labels)}"
        )
    try:
        return tuple(str(labels[n]) for n in label_names)
    except KeyError:
        raise ValueError(
            f"expected labels {sorted(label_names)}, got {sorted(labels)}"
        ) from None


def _render_labels(label_names: "tuple[str, ...]", key: "tuple[str, ...]") -> str:
    if not label_names:
        return ""
    inner = ",".join(f'{n}="{v}"' for n, v in zip(label_names, key))
    return "{" + inner + "}"


class Counter:
    """Monotonically increasing sum, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, help: str, label_names: "tuple[str, ...]" = ()):
        _validate_name(name)
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._values: "dict[tuple[str, ...], float]" = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        key = _label_key(self.label_names, labels)
        self._values[key] = self._values.get(key, 0.0) + float(amount)

    def inc_key(self, key: "tuple[str, ...]", amount: float = 1.0) -> None:
        """:meth:`inc` with a pre-resolved label key — for per-step hot
        paths where label-name validation per call would dominate."""
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self._values[key] = self._values.get(key, 0.0) + float(amount)

    def value(self, **labels: str) -> float:
        return self._values.get(_label_key(self.label_names, labels), 0.0)

    def total(self) -> float:
        """Sum over every label combination."""
        return float(sum(self._values.values()))

    def to_json_obj(self) -> "dict[str, Any]":
        return {
            "kind": self.kind,
            "help": self.help,
            "values": {
                ",".join(k) if k else "": v
                for k, v in sorted(self._values.items())
            },
        }

    def render(self) -> "list[str]":
        lines = []
        for key in sorted(self._values):
            labels = _render_labels(self.label_names, key)
            lines.append(f"{self.name}{labels} {self._values[key]}")
        if not self._values and not self.label_names:
            lines.append(f"{self.name} 0.0")
        return lines


class Gauge(Counter):
    """A value that can go up and down (last write wins per label set)."""

    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        self._values[_label_key(self.label_names, labels)] = float(value)

    def set_key(self, key: "tuple[str, ...]", value: float) -> None:
        """:meth:`set` with a pre-resolved label key (hot paths)."""
        self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_key(self.label_names, labels)
        self._values[key] = self._values.get(key, 0.0) + float(amount)

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)


class Histogram:
    """Cumulative-bucket histogram with sum and count (Prometheus shape)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        buckets: "tuple[float, ...]" = DEFAULT_BUCKETS,
    ):
        _validate_name(name)
        if not buckets or any(b <= a for b, a in zip(buckets[1:], buckets)):
            raise ValueError(f"buckets must be strictly increasing: {buckets}")
        self.name = name
        self.help = help
        self.buckets = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # last = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.sum += value
        self.count += 1
        for i, upper in enumerate(self.buckets):
            if value <= upper:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_json_obj(self) -> "dict[str, Any]":
        return {
            "kind": self.kind,
            "help": self.help,
            "buckets": list(self.buckets),
            "bucket_counts": list(self.bucket_counts),
            "sum": self.sum,
            "count": self.count,
        }

    def render(self) -> "list[str]":
        lines = []
        cumulative = 0
        for upper, n in zip(self.buckets, self.bucket_counts):
            cumulative += n
            lines.append(f'{self.name}_bucket{{le="{upper}"}} {cumulative}')
        cumulative += self.bucket_counts[-1]
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{self.name}_sum {self.sum}")
        lines.append(f"{self.name}_count {self.count}")
        return lines


class MetricsRegistry:
    """Get-or-create registry for one run's metrics.

    ``counter``/``gauge``/``histogram`` are idempotent on the name: the
    first call creates the instrument, later calls return it (and reject a
    kind or label mismatch, which would silently fork the namespace).
    """

    def __init__(self, namespace: str = "repro"):
        _validate_name(namespace)
        self.namespace = namespace
        self._metrics: "dict[str, Counter | Gauge | Histogram]" = {}

    def __contains__(self, name: str) -> bool:
        return self._qualify(name) in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def _qualify(self, name: str) -> str:
        prefix = self.namespace + "_"
        return name if name.startswith(prefix) else prefix + name

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        name = self._qualify(name)
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise ValueError(
                    f"{name} already registered as {existing.kind}, "
                    f"cannot re-register as {cls.kind}"
                )
            expect = kwargs.get("label_names")
            if expect is not None and tuple(expect) != existing.label_names:
                raise ValueError(
                    f"{name} registered with labels {existing.label_names}, "
                    f"got {tuple(expect)}"
                )
            return existing
        metric = cls(name, help, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(
        self, name: str, help: str = "", labels: "tuple[str, ...]" = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, label_names=tuple(labels))

    def gauge(
        self, name: str, help: str = "", labels: "tuple[str, ...]" = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, label_names=tuple(labels))

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: "tuple[float, ...]" = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=tuple(buckets))

    def get(self, name: str) -> "Counter | Gauge | Histogram":
        return self._metrics[self._qualify(name)]

    def names(self) -> list[str]:
        return sorted(self._metrics)

    # -- export ----------------------------------------------------------
    def to_json(self) -> "dict[str, Any]":
        """Plain-dict snapshot (stable key order) for JSON archiving."""
        return {
            name: self._metrics[name].to_json_obj() for name in self.names()
        }

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format."""
        out = []
        for name in self.names():
            metric = self._metrics[name]
            if metric.help:
                out.append(f"# HELP {name} {metric.help}")
            out.append(f"# TYPE {name} {metric.kind}")
            out.extend(metric.render())
        return "\n".join(out) + ("\n" if out else "")

    def assert_finite(self) -> None:
        """Sanity guard for exports: no NaN/inf ever leaves the registry."""
        for name in self.names():
            metric = self._metrics[name]
            values = (
                [metric.sum]
                if isinstance(metric, Histogram)
                else list(metric._values.values())
            )
            for v in values:
                if not math.isfinite(v):
                    raise ValueError(f"{name} holds a non-finite value {v}")
