"""Seeded serving scenarios shared by the golden-trace harness and CLI.

Each scenario builds a workload + serving stack from nothing but a seed,
runs it with a fresh :class:`~repro.obs.tracer.Tracer`, and returns the
trace plus the run's metrics. The three scenarios cover the stack's three
regimes:

* ``single_gpu`` — mixed prefill/decode continuous batching on one engine
  (the Fig 11 path, via :func:`~repro.runtime.serve.serve_requests`);
* ``cluster_migration`` — a 4-GPU cluster under load with consolidation
  migration enabled (the Fig 13 / §5.3 path);
* ``faults`` — the same cluster under a scripted fault plan (crash,
  slowdown, PCIe stall) exercising the recovery machinery;
* ``disagg`` — a role-split 2-prefill/2-decode pool with paged KV
  handoffs over NvLink, sized so backpressure forces some colocated
  fallbacks (the docs/disagg.md path);
* ``serve`` — the async serving frontend's admission + lifecycle layer
  driven deterministically on the simulator's own event loop: client
  connections open through the :class:`~repro.serve.gateway.ServeGateway`
  (tight per-tenant limits so 429-style sheds fire), a seeded subset
  disconnects mid-stream (the cancel-propagation path), and the trace
  carries the CONNECT/DISCONNECT lifecycle (docs/serving.md);
* ``spec`` — a single engine with the speculative decoding lane armed,
  so the trace carries SPEC_DRAFT/SPEC_VERIFY/SPEC_ROLLBACK rounds and
  multi-token decode bursts (docs/speculative.md);
* ``slo`` — the full control plane on a heterogeneous elastic fleet:
  the SLO router admits by deadline headroom (SLO_ADMIT / SLO_SHED) and
  the predictive autoscaler grows and drains the pool (SCALE_UP /
  SCALE_DOWN) under a burst that outruns the initial capacity
  (docs/slo.md).

``tests/test_trace_golden.py`` replays these against checked-in JSONL
fixtures; ``repro trace`` runs them from the shell. Keep them small —
golden diffs should be reviewable — and above all *deterministic*: no
wall-clock, no unseeded randomness.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from repro.cluster.disagg import DisaggConfig, DisaggSimulator
from repro.cluster.faults import FaultInjector, FaultKind, FaultSpec
from repro.cluster.metrics import ClusterMetrics
from repro.cluster.scheduler import SchedulerConfig
from repro.cluster.simulator import ClusterSimulator
from repro.models.config import LLAMA2_7B
from repro.obs.tracer import Tracer
from repro.runtime.backend import SimulatedBackend
from repro.runtime.engine import EngineConfig, GpuEngine
from repro.runtime.request import Request
from repro.runtime.serve import requests_from_trace, serve_requests
from repro.runtime.spec import SpecConfig
from repro.workloads.arrivals import PoissonArrivals, constant_rate
from repro.workloads.lengths import ShareGptLengths
from repro.workloads.trace import Trace, generate_trace


@dataclass
class ScenarioResult:
    """One scenario run: the trace, the workload and the metrics."""

    name: str
    tracer: Tracer
    requests: "list[Request]"
    metrics: "ClusterMetrics | None"
    """None for the single-GPU driver (it has no ClusterMetrics)."""


def _short_lengths() -> ShareGptLengths:
    return ShareGptLengths(max_prompt_len=48, max_response_len=8)


def _open_loop(seed: int, rate: float, duration: float) -> Trace:
    arrivals = PoissonArrivals(rate=constant_rate(rate), duration=duration)
    return generate_trace(
        int(rate * duration) + 16, "skewed", seed=seed,
        lengths=_short_lengths(), arrivals=arrivals,
    )


def _engine(
    gpu_id: str,
    max_batch_size: int,
    step_overhead: float = 0.0,
    fast_path: "bool | None" = None,
) -> GpuEngine:
    # The inflated step overhead slows "GPUs" down so a few-second trace
    # saturates the pool — queueing and consolidation migration fire
    # without thousands of decode events bloating the golden fixtures.
    return GpuEngine(
        gpu_id,
        SimulatedBackend(LLAMA2_7B, step_overhead=step_overhead,
                         fast_path=fast_path),
        EngineConfig(max_batch_size=max_batch_size),
        fast_path=fast_path,
    )


def run_single_gpu(seed: int = 0, fast_path: "bool | None" = None) -> ScenarioResult:
    """Mixed prefill/decode on one engine: arrivals stagger so prefills
    join live decode batches (the §5 continuous-batching property)."""
    trace = _open_loop(seed, rate=2.0, duration=8.0)
    requests = requests_from_trace(trace)
    tracer = Tracer()
    serve_requests(
        _engine("gpu00", max_batch_size=8, fast_path=fast_path),
        requests, tracer=tracer,
    )
    return ScenarioResult("single_gpu", tracer, requests, metrics=None)


def _cluster(
    tracer: Tracer, fault_injector=None, fast_path: "bool | None" = None
) -> ClusterSimulator:
    return ClusterSimulator(
        [
            _engine(f"gpu{i:02d}", max_batch_size=4, step_overhead=0.1,
                    fast_path=fast_path)
            for i in range(4)
        ],
        SchedulerConfig(migration_interval=1.0, light_load_fraction=0.5),
        fault_injector=fault_injector,
        tracer=tracer,
        fast_path=fast_path,
    )


def run_cluster_migration(
    seed: int = 0, fast_path: "bool | None" = None
) -> ScenarioResult:
    """4-GPU cluster loaded past its capacity: requests queue FCFS, and
    the tail drains unevenly enough for consolidation migration to fire
    (§5.3)."""
    trace = _open_loop(seed, rate=16.0, duration=4.0)
    tracer = Tracer()
    result = _cluster(tracer, fast_path=fast_path).run(trace)
    return ScenarioResult(
        "cluster_migration", tracer, result.requests, metrics=result.metrics
    )


def run_faults(seed: int = 0, fast_path: "bool | None" = None) -> ScenarioResult:
    """The cluster under a scripted fault plan: a slowdown window, a PCIe
    stall, then a mid-run GPU crash recovered via §5.3 re-placement."""
    trace = _open_loop(seed, rate=12.0, duration=4.0)
    injector = FaultInjector(
        [
            FaultSpec(kind=FaultKind.GPU_SLOWDOWN, time=1.0, duration=1.0,
                      factor=4.0),
            FaultSpec(kind=FaultKind.PCIE_STALL, time=1.5, duration=0.5),
            FaultSpec(kind=FaultKind.GPU_CRASH, time=2.0),
        ],
        seed=seed,
    )
    tracer = Tracer()
    result = _cluster(tracer, fault_injector=injector,
                      fast_path=fast_path).run(trace)
    return ScenarioResult("faults", tracer, result.requests, metrics=result.metrics)


def run_disagg(seed: int = 0, fast_path: "bool | None" = None) -> ScenarioResult:
    """Disaggregated 2-prefill/2-decode pool: every request prefills on
    the prefill pool, hands its KV pages off over NvLink, and decodes on
    the decode GPU with the best adapter locality. The tight decode queue
    bound forces some colocated fallbacks under the load spike."""
    trace = _open_loop(seed, rate=12.0, duration=4.0)
    tracer = Tracer()
    sim = DisaggSimulator(
        [_engine(f"gpu{i:02d}", max_batch_size=4, step_overhead=0.1,
                 fast_path=fast_path) for i in range(2)],
        [_engine(f"gpu{i:02d}", max_batch_size=4, step_overhead=0.1,
                 fast_path=fast_path) for i in range(2, 4)],
        config=DisaggConfig(decode_queue_limit=2),
        tracer=tracer,
        fast_path=fast_path,
    )
    result = sim.run(trace)
    return ScenarioResult("disagg", tracer, result.requests, metrics=result.metrics)


def run_serve(seed: int = 0, fast_path: "bool | None" = None) -> ScenarioResult:
    """The serving frontend's deterministic half: connections arrive on
    the simulator's event loop, pass per-tenant admission (rate + bounded
    in-flight, tight enough that some shed), and a fixed subset of
    clients disconnects mid-stream — CANCEL ``reason="disconnect"``
    reaches the engine. No asyncio anywhere: the same gateway the TCP
    server drives, clocked entirely by virtual time."""
    from repro.cluster.frontend import Frontend
    from repro.serve.gateway import ServeGateway
    from repro.serve.limits import AdmissionController, TenantPolicy
    from repro.serve.metrics import ServeMetrics

    trace = _open_loop(seed, rate=10.0, duration=4.0)
    tracer = Tracer()
    sim = _cluster(tracer, fast_path=fast_path)
    frontend = Frontend(sim)
    gateway = ServeGateway(
        frontend,
        AdmissionController(
            default_policy=TenantPolicy(rate=3.0, burst=2.0, max_inflight=5),
            max_total_inflight=24,
        ),
        metrics=ServeMetrics(),
        tracer=tracer,
    )

    def make_open(spec, index: int):
        def action(now: float) -> None:
            stream, _ = gateway.open(
                tenant=spec.lora_id, lora_id=spec.lora_id,
                prompt_len=spec.prompt_len, response_len=spec.response_len,
                now=now, request_id=spec.request_id,
            )
            if stream is not None and index % 7 == 3:
                # Every 7th admitted arrival slot walks away mid-stream.
                sim.loop.schedule(
                    now + 0.6,
                    lambda t, rid=spec.request_id: gateway.client_close(rid, t),
                )

        return action

    for i, spec in enumerate(trace):
        sim.loop.schedule(spec.arrival_time, make_open(spec, i))

    def poll_tick(now: float) -> None:
        gateway.poll(now)
        if sim.work_remaining() or gateway.open_streams():
            sim.loop.schedule(now + 0.25, poll_tick)

    sim.loop.schedule(0.25, poll_tick)
    sim.loop.run()
    gateway.poll(sim.now)
    return ScenarioResult(
        "serve", tracer, list(sim._requests.values()), metrics=sim.metrics
    )


def run_spec(seed: int = 0, fast_path: "bool | None" = None) -> ScenarioResult:
    """Single engine with the speculative lane armed: once the staggered
    prompt mix has prefilled, every pure-decode invocation becomes a
    draft/verify round — SPEC_DRAFT per round, SPEC_VERIFY and a
    multi-token DECODE_STEP burst per request, and SPEC_ROLLBACK whenever
    the geometric acceptance model rejects draft tokens and their KV
    slots roll back (docs/speculative.md)."""
    trace = _open_loop(seed, rate=2.0, duration=8.0)
    requests = requests_from_trace(trace)
    tracer = Tracer()
    engine = GpuEngine(
        "gpu00",
        SimulatedBackend(LLAMA2_7B, fast_path=fast_path),
        EngineConfig(
            max_batch_size=8,
            spec=SpecConfig(draft_len=4, acceptance_rate=0.7, seed=seed),
        ),
        fast_path=fast_path,
    )
    serve_requests(engine, requests, tracer=tracer)
    return ScenarioResult("spec", tracer, requests, metrics=None)


def run_slo(seed: int = 0, fast_path: "bool | None" = None) -> ScenarioResult:
    """The SLO control plane on a heterogeneous elastic fleet: the pool
    starts at one (slowed-down) A100 and the burst outruns it, so the
    EWMA autoscaler provisions L4/A100 capacity (SCALE_UP), the router
    places by deadline headroom (SLO_ADMIT), requests whose remaining
    budget drops below the optimistic floor are refused (SLO_SHED +
    SHED), and the drain tail releases the pool back to its floor
    (SCALE_DOWN)."""
    from repro.cluster.control import (
        ControlConfig, PredictiveConfig, PredictiveElasticSimulator, SloPolicy,
    )
    from repro.cluster.elastic import ElasticConfig
    from repro.hw.spec import HwSpec

    presets = ("a100-80g", "l4", "a100-80g")

    def factory(gpu_id: str) -> GpuEngine:
        spec = HwSpec.preset(presets[int(gpu_id[3:]) % len(presets)])
        return GpuEngine(
            gpu_id,
            SimulatedBackend(LLAMA2_7B, gpu=spec, step_overhead=0.1,
                             fast_path=fast_path),
            EngineConfig(max_batch_size=4),
            fast_path=fast_path,
        )

    trace = _open_loop(seed, rate=10.0, duration=3.0)
    tracer = Tracer()
    sim = PredictiveElasticSimulator(
        factory,
        elastic_config=ElasticConfig(
            min_gpus=1, max_gpus=3, provision_delay=0.8,
            release_idle_after=0.5, check_interval=0.25,
        ),
        predictive=PredictiveConfig(service_rate_per_gpu=4.0),
        control=ControlConfig(
            default_policy=SloPolicy(ttft_deadline=0.6, itl_deadline=0.25),
        ),
        tracer=tracer,
        fast_path=fast_path,
    )
    result = sim.run_elastic(trace)
    return ScenarioResult(
        "slo", tracer, result.base.requests, metrics=result.base.metrics
    )


SCENARIOS: "dict[str, Callable[..., ScenarioResult]]" = {
    "single_gpu": run_single_gpu,
    "cluster_migration": run_cluster_migration,
    "faults": run_faults,
    "disagg": run_disagg,
    "serve": run_serve,
    "spec": run_spec,
    "slo": run_slo,
}


def run_scenario(
    name: str, seed: int = 0, fast_path: "bool | None" = None
) -> ScenarioResult:
    try:
        runner = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; pick one of {sorted(SCENARIOS)}"
        ) from None
    return runner(seed, fast_path=fast_path)
