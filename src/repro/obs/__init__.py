"""Observability: request-level tracing, unified metrics, trace analysis.

The serving stack (engine, scheduler, simulator, frontend, fault injector,
adapter store) emits typed :class:`~repro.obs.tracer.TraceEvent` records
into a :class:`~repro.obs.tracer.Tracer` while a
:class:`~repro.obs.metrics.MetricsRegistry` unifies every counter behind
one namespace with JSON and Prometheus-text export. Traces are fully
deterministic under a fixed seed, which is what the golden-trace harness
in ``tests/test_trace_golden.py`` locks down (docs/observability.md).
"""

from repro.obs.analysis import (
    RequestBreakdown,
    breakdown_table,
    compute_breakdowns,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import EventKind, TraceEvent, Tracer

_LAZY = ("SCENARIOS", "ScenarioResult", "run_scenario")


def __getattr__(name: str):
    # scenarios imports the cluster stack, which itself imports the tracer
    # — loading it lazily keeps `repro.obs.tracer` importable from runtime
    # modules without a cycle.
    if name in _LAZY:
        from repro.obs import scenarios

        return getattr(scenarios, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Counter",
    "EventKind",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RequestBreakdown",
    "SCENARIOS",
    "ScenarioResult",
    "TraceEvent",
    "Tracer",
    "breakdown_table",
    "compute_breakdowns",
    "run_scenario",
]
