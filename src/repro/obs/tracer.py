"""Structured request-level tracing (the §6 per-request timelines).

Every component of the serving stack emits typed, timestamped
:class:`TraceEvent` records into one :class:`Tracer`: the cluster
simulator stamps SUBMIT/SHED, the scheduler QUEUE/MIGRATE, the engine
PLACE/PREFILL/DECODE_STEP/FINISH (plus SPEC_DRAFT/SPEC_VERIFY/
SPEC_ROLLBACK when the speculative lane is armed), the fault injector FAULT, the frontend
CANCEL, the adapter store ADAPTER_LOAD, the disaggregated serving
layer KV_TRANSFER_START/KV_TRANSFER_DONE, and the async serving frontend
CONNECT/DISCONNECT (plus SHED for door rejections). Timestamps come from the
simulated clock, so under a fixed seed a trace is *byte-identical* across
runs — the property the golden-trace harness (tests/test_trace_golden.py)
turns into a whole-stack regression fixture.

Serialization is canonical JSONL: one event per line, keys sorted,
minimal separators, floats via ``repr`` round-tripping (see
docs/observability.md for the schema).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any


class EventKind(enum.Enum):
    """The event taxonomy — one request's life, plus cluster-level marks."""

    SUBMIT = "SUBMIT"
    """Request arrival reached the cluster (attrs: lora, prompt, response)."""
    QUEUE = "QUEUE"
    """Request entered (or re-entered) the FCFS wait queue (attrs: reason)."""
    PLACE = "PLACE"
    """Request admitted onto a GPU engine's working set."""
    PREFILL = "PREFILL"
    """Prefill invocation finished (time = step end; attrs: start, tokens)."""
    DECODE_STEP = "DECODE_STEP"
    """One decode token landed (time = step end; attrs: start, token_index)."""
    ADAPTER_LOAD = "ADAPTER_LOAD"
    """Demand adapter load on a GPU (attrs: lora, tier, copy_s, nbytes)."""
    MIGRATE = "MIGRATE"
    """Consolidation moved the request (attrs: source, target)."""
    KV_TRANSFER_START = "KV_TRANSFER_START"
    """Paged KV handoff left the prefill GPU (attrs: nbytes, duration,
    link, target hints; gpu_id = source GPU)."""
    KV_TRANSFER_DONE = "KV_TRANSFER_DONE"
    """Paged KV handoff landed; the request awaits decode admission
    (attrs: nbytes; gpu_id = source GPU the bytes came from)."""
    CONNECT = "CONNECT"
    """Serving frontend opened a client stream (attrs: conn, tenant;
    request_id is None — the connection may be shed before any request
    exists, so connection lifecycle never joins a request timeline)."""
    DISCONNECT = "DISCONNECT"
    """Serving frontend closed a client stream (attrs: conn, tenant,
    cause = served | client | shed; request_id is None)."""
    FAULT = "FAULT"
    """Injected fault fired (attrs: fault, applied; request_id is None)."""
    SPEC_DRAFT = "SPEC_DRAFT"
    """Speculative round drafted tokens for a decode batch (time = round
    end; attrs: start, batch, draft_len; request_id is None)."""
    SPEC_VERIFY = "SPEC_VERIFY"
    """One request's draft verified against the target model (attrs:
    start, proposed, accepted, committed)."""
    SPEC_ROLLBACK = "SPEC_ROLLBACK"
    """Rejected draft tokens released their KV slots (attrs: tokens,
    pages — both counts of what was rolled back)."""
    SLO_ADMIT = "SLO_ADMIT"
    """SLO router placed the request with positive modelled deadline
    headroom (attrs: headroom seconds, ttft predicted; emitted at the same
    timestamp as the companion PLACE so attribution tiling is unchanged)."""
    SLO_SHED = "SLO_SHED"
    """SLO router rejected the request because no engine could meet its
    deadline even under the optimistic floor (attrs: reason, headroom;
    emitted at the same timestamp as the terminal SHED)."""
    SCALE_UP = "SCALE_UP"
    """Predictive autoscaler requested new capacity (attrs: forecast
    req/s, pool size before the grow, add count; request_id is None)."""
    SCALE_DOWN = "SCALE_DOWN"
    """Predictive autoscaler released an idle engine whose capacity the
    forecast no longer needs (attrs: forecast, pool; request_id is None,
    gpu_id = the released engine)."""
    CANCEL = "CANCEL"
    """Request cancelled (attrs: reason = user | deadline)."""
    FINISH = "FINISH"
    """Request completed normally (attrs: tokens)."""
    SHED = "SHED"
    """Request dropped with a FAILED terminal state (attrs: reason)."""


TERMINAL_KINDS = (EventKind.FINISH, EventKind.SHED, EventKind.CANCEL)
"""Kinds that end a request's timeline (CANCEL may be followed by a retry
re-SUBMIT, in which case the timeline continues)."""


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped, typed record in a request trace."""

    seq: int
    """Global emission order — ties on ``time`` replay deterministically."""
    time: float
    kind: EventKind
    request_id: "str | None" = None
    gpu_id: "str | None" = None
    attrs: "dict[str, Any]" = field(default_factory=dict)

    def to_json_obj(self) -> "dict[str, Any]":
        obj: "dict[str, Any]" = {
            "seq": self.seq, "t": self.time, "kind": self.kind.value,
        }
        if self.request_id is not None:
            obj["req"] = self.request_id
        if self.gpu_id is not None:
            obj["gpu"] = self.gpu_id
        if self.attrs:
            obj["attrs"] = self.attrs
        return obj

    @classmethod
    def from_json_obj(cls, obj: "dict[str, Any]") -> "TraceEvent":
        return cls(
            seq=int(obj["seq"]),
            time=float(obj["t"]),
            kind=EventKind(obj["kind"]),
            request_id=obj.get("req"),
            gpu_id=obj.get("gpu"),
            attrs=dict(obj.get("attrs", {})),
        )


class Tracer:
    """Collects :class:`TraceEvent` records from instrumentation hooks.

    A tracer is per-run state, like :class:`~repro.cluster.metrics.ClusterMetrics`:
    construct a fresh one per simulation and thread it through the
    components (``ClusterSimulator(..., tracer=...)`` does the threading).
    """

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self.events)

    def emit(
        self,
        time: float,
        kind: EventKind,
        request_id: "str | None" = None,
        gpu_id: "str | None" = None,
        **attrs: Any,
    ) -> TraceEvent:
        """Record one event; attrs must be JSON-serializable."""
        event = TraceEvent(
            seq=self._seq,
            time=float(time),
            kind=kind,
            request_id=request_id,
            gpu_id=gpu_id,
            attrs=attrs,
        )
        self.events.append(event)
        self._seq += 1
        return event

    # -- queries ---------------------------------------------------------
    def for_request(self, request_id: str) -> list[TraceEvent]:
        """One request's timeline, in causal (time, seq) order."""
        return sorted(
            (e for e in self.events if e.request_id == request_id),
            key=lambda e: (e.time, e.seq),
        )

    def request_ids(self) -> list[str]:
        return sorted({e.request_id for e in self.events if e.request_id})

    def by_kind(self, kind: EventKind) -> list[TraceEvent]:
        return [e for e in self.events if e.kind is kind]

    def sorted_events(self) -> list[TraceEvent]:
        """Every event in causal order (time, then emission order).

        Events appended late (e.g. adapter logs drained at run end) sort
        into their true timeline position; ``seq`` keeps ties stable.
        """
        return sorted(self.events, key=lambda e: (e.time, e.seq))

    # -- serialization ---------------------------------------------------
    def dumps_jsonl(self) -> str:
        """Canonical JSONL: sorted keys, compact separators, repr floats.

        Identical event sequences serialize to byte-identical text — the
        contract the golden fixtures and the CI trace-determinism job
        enforce.
        """
        lines = [
            json.dumps(e.to_json_obj(), sort_keys=True, separators=(",", ":"))
            for e in self.sorted_events()
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def dump_jsonl(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.dumps_jsonl())

    @classmethod
    def loads_jsonl(cls, text: str) -> "Tracer":
        tracer = cls()
        for line in text.splitlines():
            if not line.strip():
                continue
            event = TraceEvent.from_json_obj(json.loads(line))
            tracer.events.append(event)
            tracer._seq = max(tracer._seq, event.seq + 1)
        return tracer

    @classmethod
    def load_jsonl(cls, path) -> "Tracer":
        with open(path) as fh:
            return cls.loads_jsonl(fh.read())
