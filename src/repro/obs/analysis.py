"""Per-request latency attribution from a trace (the §6 breakdowns).

A request's end-to-end latency decomposes into six phases, reconstructed
by walking its event timeline:

* **queue** — SUBMIT (or a post-cancel wait) until first placement, plus
  the decode-admission wait after a disaggregated KV handoff lands;
* **load_stall** — on a GPU but waiting for the LoRA copy / prefill slot;
* **prefill** — inside prefill invocations;
* **decode** — inside decode invocations;
* **transfer** — paged KV handoff in flight between the prefill and
  decode pools (disaggregated mode only);
* **migration** — off-GPU after an eviction, migration or fault, until
  re-placed (the §5.3 re-prefill tax shows up as extra prefill time).

The walk closes one segment per event, so by construction the components
tile ``[submit, terminal]`` and sum to the end-to-end latency exactly —
an invariant the hypothesis suite (tests/test_trace_properties.py) checks
on every generated workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.tracer import EventKind, TraceEvent, Tracer
from repro.utils.tables import format_table

COMPONENTS = ("queue", "load_stall", "prefill", "decode", "transfer", "migration")


@dataclass
class RequestBreakdown:
    """Where one request's wall-clock time went."""

    request_id: str
    submit_time: float
    end_time: float
    terminal: str
    """"FINISH", "SHED" or "CANCEL" — how the timeline ended."""
    phases: "dict[str, float]" = field(
        default_factory=lambda: {c: 0.0 for c in COMPONENTS}
    )
    num_migrations: int = 0
    num_decode_steps: int = 0

    @property
    def total(self) -> float:
        """End-to-end latency (equals the sum of the phase components)."""
        return self.end_time - self.submit_time

    def components_sum(self) -> float:
        return sum(self.phases.values())

    def __getattr__(self, name: str):
        if name in COMPONENTS:
            return self.phases[name]
        raise AttributeError(name)


def compute_breakdowns(trace: "Tracer | list[TraceEvent]") -> "dict[str, RequestBreakdown]":
    """Reconstruct every request's latency breakdown from its events."""
    events = trace.events if isinstance(trace, Tracer) else list(trace)
    per_request: "dict[str, list[TraceEvent]]" = {}
    for event in sorted(events, key=lambda e: (e.time, e.seq)):
        if event.request_id is not None:
            per_request.setdefault(event.request_id, []).append(event)
    return {
        rid: _walk_timeline(rid, timeline)
        for rid, timeline in sorted(per_request.items())
    }


def _walk_timeline(request_id: str, timeline: "list[TraceEvent]") -> RequestBreakdown:
    first = timeline[0]
    if first.kind is not EventKind.SUBMIT:
        raise ValueError(
            f"{request_id}: timeline starts with {first.kind.value}, not SUBMIT"
        )
    bd = RequestBreakdown(
        request_id=request_id,
        submit_time=first.time,
        end_time=first.time,
        terminal="",
    )
    phase = "queue"
    cursor = first.time
    placed_once = False
    awaiting_decode = False
    """Between KV_TRANSFER_DONE and the decode-pool PLACE: the wait is
    admission queueing, not migration, even though the request was placed
    before."""

    def close(upto: float, into: str) -> float:
        # Clamp rather than reject overlap: a fault can displace a request
        # while its GPU's step is still in flight, so the step's events
        # (stamped at step *end*) land after the re-placement. The clamped
        # segments still tile [submit, terminal] exactly.
        bd.phases[into] += max(0.0, upto - cursor)
        return max(cursor, upto)

    for event in timeline[1:]:
        kind = event.kind
        if kind is EventKind.QUEUE:
            cursor = close(event.time, phase)
            phase = (
                "queue"
                if awaiting_decode or not placed_once
                else "migration"
            )
        elif kind is EventKind.PLACE:
            cursor = close(event.time, phase)
            phase = "load_stall"
            placed_once = True
            awaiting_decode = False
        elif kind is EventKind.PREFILL:
            start = float(event.attrs.get("start", event.time))
            cursor = close(start, phase)
            cursor = close(event.time, "prefill")
            phase = "decode"
        elif kind is EventKind.DECODE_STEP:
            if phase != "decode":
                # An imported request has no PREFILL on its decode GPU;
                # the adapter wait before its first decode invocation is
                # a load stall, closed at the step's start mark.
                start = float(event.attrs.get("start", event.time))
                cursor = close(start, phase)
            cursor = close(event.time, "decode")
            phase = "decode"
            bd.num_decode_steps += 1
        elif kind is EventKind.KV_TRANSFER_START:
            cursor = close(event.time, phase)
            phase = "transfer"
        elif kind is EventKind.KV_TRANSFER_DONE:
            cursor = close(event.time, "transfer")
            phase = "queue"
            awaiting_decode = True
        elif kind is EventKind.MIGRATE:
            cursor = close(event.time, phase)
            phase = "migration"
            bd.num_migrations += 1
        elif kind is EventKind.FINISH:
            cursor = close(event.time, phase)
            bd.terminal = "FINISH"
        elif kind is EventKind.SHED:
            cursor = close(event.time, phase)
            bd.terminal = "SHED"
        elif kind is EventKind.CANCEL:
            cursor = close(event.time, phase)
            bd.terminal = "CANCEL"
            # A retry may re-SUBMIT later; until then the request waits.
            phase = "queue"
        elif kind is EventKind.SUBMIT:
            # Retry re-submission: the backoff interval counted as queue.
            cursor = close(event.time, phase)
            bd.terminal = ""
            phase = "queue"
        # ADAPTER_LOAD / FAULT never carry a request_id; nothing to do.
        bd.end_time = max(bd.end_time, event.time)

    return bd


def breakdown_table(
    breakdowns: "dict[str, RequestBreakdown]", limit: "int | None" = None
) -> str:
    """Render per-request breakdowns as an aligned text table."""
    headers = [
        "request", "end_to_end_s", *(f"{c}_s" for c in COMPONENTS),
        "decode_steps", "migrations", "terminal",
    ]
    rows = []
    for rid, bd in sorted(breakdowns.items()):
        rows.append(
            [
                rid, f"{bd.total:.4f}",
                *(f"{bd.phases[c]:.4f}" for c in COMPONENTS),
                str(bd.num_decode_steps), str(bd.num_migrations),
                bd.terminal or "-",
            ]
        )
        if limit is not None and len(rows) >= limit:
            break
    return format_table(headers, rows)


def breakdown_totals(breakdowns: "dict[str, RequestBreakdown]") -> "dict[str, float]":
    """Aggregate phase seconds over every request (dashboard roll-up)."""
    totals = {c: 0.0 for c in COMPONENTS}
    for bd in breakdowns.values():
        for c in COMPONENTS:
            totals[c] += bd.phases[c]
    totals["end_to_end"] = sum(bd.total for bd in breakdowns.values())
    return totals
