"""Unified GPU memory pool: one byte budget shared by KvCache and adapters.

Punica sizes a standalone KvCache pool and (optionally) a separate LoRA
byte budget. S-LoRA's observation is that this split strands memory: at low
adapter diversity the adapter area idles while KvCache is starved, and vice
versa. :class:`UnifiedMemoryPool` carves **one** per-GPU byte budget that
both consumers draw from:

* KvCache pages go through the existing
  :class:`~repro.kvcache.pool.KvPool` (paged accounting is unchanged), but
  admission and append are additionally gated on the shared budget;
* adapter weights live in a :class:`~repro.adapters.store.GpuAdapterStore`
  whose budget is the same number, with KvCache usage counted as external;
* under KvCache pressure, unpinned adapters are evicted (demoted to the
  HOST tier) to free bytes — adapters pinned by in-flight requests never
  are, and KvCache admission that would require evicting a pinned adapter
  simply fails (the request queues or is routed elsewhere).

The invariant — ``kv_used_bytes + adapter_used_bytes <= capacity_bytes``
at every point of any load/evict/prefetch/append sequence — is what the
property tests exercise.
"""

from __future__ import annotations

from repro.adapters.registry import AdapterRegistry, Tier
from repro.adapters.store import AdapterEvent, GpuAdapterStore
from repro.hw.pcie import PCIE_GEN4_X16, PcieSpec, TransferPlan
from repro.kvcache.pool import KvPool


class UnifiedMemoryPool:
    """Shared KvCache + adapter byte budget for one GPU.

    Exposes both halves of the engine's memory interface: the ``kv_*``
    methods a backend delegates to, and the loader interface
    (:meth:`request_load` / :meth:`acquire` / :meth:`release` / ...) the
    engine's ``loader`` slot expects — pass the pool as both.
    """

    def __init__(
        self,
        capacity_bytes: float,
        page_size: int,
        bytes_per_token: int,
        pcie: PcieSpec = PCIE_GEN4_X16,
        registry: "AdapterRegistry | None" = None,
        gpu_id: str = "gpu0",
        serialize_pcie: bool = True,
    ):
        self.kv = KvPool(
            capacity_bytes=capacity_bytes,
            page_size=page_size,
            bytes_per_token=bytes_per_token,
        )
        self.capacity_bytes = float(capacity_bytes)
        self.page_size = page_size
        self.bytes_per_token = bytes_per_token
        self.page_bytes = page_size * bytes_per_token
        self.gpu_id = gpu_id
        self.adapters = GpuAdapterStore(
            pcie=pcie,
            capacity_bytes=capacity_bytes,
            registry=registry,
            gpu_id=gpu_id,
            serialize_pcie=serialize_pcie,
            external_used=self._kv_used,
        )

    def _kv_used(self) -> float:
        return float(self.kv.used_bytes())

    # -- shared accounting ----------------------------------------------
    def kv_used_bytes(self) -> float:
        return self._kv_used()

    def adapter_used_bytes(self) -> float:
        return self.adapters.used_bytes()

    def total_used_bytes(self) -> float:
        return self._kv_used() + self.adapters.used_bytes()

    def free_bytes(self) -> float:
        return self.capacity_bytes - self.total_used_bytes()

    def check_invariant(self) -> None:
        """Raise if the shared budget is overcommitted (test hook)."""
        total = self.total_used_bytes()
        if total > self.capacity_bytes + 1e-6:
            raise RuntimeError(
                f"{self.gpu_id}: unified pool overcommitted — "
                f"{self._kv_used():.0f} KvCache + "
                f"{self.adapters.used_bytes():.0f} adapter bytes exceed "
                f"the {self.capacity_bytes:.0f}-byte budget"
            )

    # -- KvCache interface (what a backend delegates to) ------------------
    def _pages_bytes(self, tokens: int) -> float:
        return float(-(-tokens // self.page_size) * self.page_bytes)

    def _append_bytes(self, seq_id: str) -> float:
        """Bytes one more token needs: a page's worth when the tail is full."""
        if self.kv.seq_len(seq_id) % self.page_size == 0:
            return float(self.page_bytes)
        return 0.0

    def kv_can_admit(self, prompt_len: int, headroom_tokens: int = 0) -> bool:
        if not self.kv.can_admit(prompt_len, headroom_tokens):
            return False
        needed = self._pages_bytes(prompt_len + headroom_tokens)
        return (
            self._kv_used() + needed + self.adapters.pinned_bytes()
            <= self.capacity_bytes
        )

    def kv_admit(self, seq_id: str, prompt_len: int) -> None:
        needed = self._pages_bytes(prompt_len)
        if not self.adapters.reclaim(needed):
            raise MemoryError(
                f"{self.gpu_id}: cannot free {needed:.0f} bytes for KvCache "
                f"admission of {seq_id!r}; every adapter is pinned"
            )
        self.kv.allocate(seq_id, prompt_len)

    def kv_can_append(self, seq_id: str) -> bool:
        if not self.kv.can_append_token(seq_id):
            return False
        needed = self._append_bytes(seq_id)
        if needed == 0.0:
            return True
        return (
            self._kv_used() + needed + self.adapters.pinned_bytes()
            <= self.capacity_bytes
        )

    def kv_append(self, seq_id: str) -> None:
        needed = self._append_bytes(seq_id)
        if needed and not self.adapters.reclaim(needed):
            raise MemoryError(
                f"{self.gpu_id}: cannot free a KvCache page for {seq_id!r}; "
                f"every adapter is pinned"
            )
        self.kv.append_token(seq_id)

    def kv_release(self, seq_id: str) -> None:
        if seq_id in self.kv:
            self.kv.free(seq_id)

    def kv_free_tokens(self) -> int:
        """Guaranteed-admittable tokens under both page and byte limits.

        Evictable (unpinned) adapter bytes count as free — the pool will
        demote them on demand.
        """
        budget_free = (
            self.capacity_bytes - self._kv_used() - self.adapters.pinned_bytes()
        )
        by_bytes = max(0, int(budget_free // self.bytes_per_token))
        return min(self.kv.free_tokens, by_bytes)

    # -- loader interface (what the engine's ``loader`` slot expects) -----
    def advance(self, now: float) -> None:
        self.adapters.advance(now)

    def request_load(self, lora_id: str, nbytes: float, now: float) -> TransferPlan:
        return self.adapters.request_load(lora_id, nbytes, now)

    def prefetch(self, lora_id: str, now: float, nbytes: "float | None" = None) -> bool:
        return self.adapters.prefetch(lora_id, now, nbytes)

    def acquire(self, lora_id: str, now: float) -> None:
        self.adapters.acquire(lora_id, now)

    def release(self, lora_id: str) -> None:
        self.adapters.release(lora_id)

    def is_resident(self, lora_id: str) -> bool:
        return self.adapters.is_resident(lora_id)

    def is_ready(self, lora_id: str, now: float) -> bool:
        return self.adapters.is_ready(lora_id, now)

    def ready_time(self, lora_id: str) -> float:
        return self.adapters.ready_time(lora_id)

    def resident_models(self) -> list[str]:
        return self.adapters.resident_models()

    def used_bytes(self) -> float:
        """Adapter bytes (loader-API semantics; see :meth:`total_used_bytes`)."""
        return self.adapters.used_bytes()

    def tier(self, lora_id: str) -> Tier:
        return self.adapters.tier(lora_id)

    def can_admit_adapter(self, lora_id: str, nbytes: float) -> bool:
        return self.adapters.can_admit_adapter(lora_id, nbytes)

    def pcie_idle(self, now: float) -> bool:
        return self.adapters.pcie_idle(now)

    @property
    def num_evictions(self) -> int:
        return self.adapters.num_evictions

    def drain_events(self) -> list[AdapterEvent]:
        return self.adapters.drain_events()
