"""Adapter lifecycle subsystem: tiered registry, unified pool, prefetching.

The pieces (S-LoRA / CaraServe lineage — see ``docs/adapters.md``):

* :mod:`repro.adapters.registry` — cluster-wide adapter metadata,
  popularity EWMAs, and the DISK -> HOST -> GPU tier state machine;
* :mod:`repro.adapters.store` — the per-GPU adapter cache
  (:class:`~repro.runtime.loader.LoraLoader` is now a thin shim over it);
* :mod:`repro.adapters.pool` — one per-GPU byte budget shared between the
  paged KvCache and adapter weights, with adapters evictable under
  KvCache pressure;
* :mod:`repro.adapters.prefetch` — popularity-driven host staging and
  speculative GPU promotion during idle PCIe windows.
"""

from repro.adapters.pool import UnifiedMemoryPool
from repro.adapters.prefetch import PrefetchConfig, Prefetcher
from repro.adapters.registry import (
    DEFAULT_HOST_TIER,
    AdapterMeta,
    AdapterRegistry,
    HostTierSpec,
    Tier,
    register_trace_adapters,
)
from repro.adapters.store import AdapterEvent, GpuAdapterStore

__all__ = [
    "AdapterEvent",
    "AdapterMeta",
    "AdapterRegistry",
    "DEFAULT_HOST_TIER",
    "GpuAdapterStore",
    "HostTierSpec",
    "PrefetchConfig",
    "Prefetcher",
    "Tier",
    "UnifiedMemoryPool",
    "register_trace_adapters",
]
