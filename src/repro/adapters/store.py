"""Per-GPU adapter cache: the GPU tier of the residency state machine.

:class:`GpuAdapterStore` is what :class:`~repro.runtime.loader.LoraLoader`
(the engine-facing shim) delegates to. It tracks which adapters are
resident on one GPU, their in-flight host -> GPU transfer plans, per-adapter
reference counts (an adapter is pinned while any request references it),
and LRU eviction under a byte budget.

Two things distinguish it from the old standalone loader:

* **Registry awareness** — with an :class:`~repro.adapters.registry.AdapterRegistry`
  attached, a load consults the adapter's tier: a HOST-staged adapter pays
  only the PCIe copy, a DISK-only adapter pays disk -> host staging first
  (chained into one :class:`~repro.hw.pcie.TransferPlan`), and byte sizes
  come from registry metadata (so mixed-rank adapters are priced correctly).
* **Shared-budget hooks** — ``external_used`` lets a
  :class:`~repro.adapters.pool.UnifiedMemoryPool` count KvCache bytes
  against the same budget, and :meth:`reclaim` lets KvCache pressure evict
  unpinned adapters (demoting them to the HOST tier).

The store also keeps an event log (loads by hit tier, evictions, prefetch
issues/hits, PCIe busy time) that the cluster simulator drains into
:class:`~repro.cluster.metrics.ClusterMetrics`.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import NamedTuple

from repro.adapters.registry import AdapterRegistry, Tier
from repro.hw.pcie import PCIE_GEN4_X16, PcieSpec, TransferPlan


class AdapterEvent(NamedTuple):
    """One timestamped adapter-lifecycle event for metrics ingestion."""

    time: float
    kind: str
    """"load" (value = source tier), "evict", "prefetch_issue",
    "prefetch_hit", or "pcie" (value = copy seconds)."""
    value: float


@dataclass
class _GpuEntry:
    nbytes: float
    plan: TransferPlan
    refcount: int = 0
    last_used: float = 0.0
    prefetched: bool = False


class GpuAdapterStore:
    """Tracks which LoRA adapters are resident on one GPU."""

    def __init__(
        self,
        pcie: PcieSpec = PCIE_GEN4_X16,
        capacity_bytes: "float | None" = None,
        registry: "AdapterRegistry | None" = None,
        gpu_id: str = "gpu0",
        serialize_pcie: bool = False,
        external_used: "Callable[[], float] | None" = None,
    ):
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError(f"capacity_bytes must be positive, got {capacity_bytes}")
        self.pcie = pcie
        self.capacity_bytes = capacity_bytes
        self.registry = registry
        self.gpu_id = gpu_id
        self.serialize_pcie = serialize_pcie
        self.external_used = external_used
        self._entries: dict[str, _GpuEntry] = {}
        self.clock = 0.0
        self.pcie_busy_until = 0.0
        self.num_evictions = 0
        self.events: list[AdapterEvent] = []
        self.tracer = None
        """Optional :class:`~repro.obs.tracer.Tracer` (the cluster
        simulator sets it) receiving one ADAPTER_LOAD event per demand
        load, tagged with the tier that satisfied it."""

    # -- queries ---------------------------------------------------------
    def is_resident(self, lora_id: str) -> bool:
        """Known to this GPU (copy may still be in flight)."""
        return lora_id in self._entries

    def is_ready(self, lora_id: str, now: float) -> bool:
        """Resident *and* the async copy has completed by ``now``."""
        entry = self._entries.get(lora_id)
        return entry is not None and entry.plan.done_by(now)

    def ready_time(self, lora_id: str) -> float:
        """When the adapter's copy finishes (raises if never requested)."""
        return self._require(lora_id).plan.finish

    def used_bytes(self) -> float:
        return sum(e.nbytes for e in self._entries.values())

    def pinned_bytes(self, now: "float | None" = None) -> float:
        """Bytes that cannot be reclaimed: referenced or still in flight."""
        t = self.clock if now is None else now
        return sum(
            e.nbytes
            for e in self._entries.values()
            if e.refcount > 0 or not e.plan.done_by(t)
        )

    def evictable_bytes(self, now: "float | None" = None) -> float:
        return self.used_bytes() - self.pinned_bytes(now)

    def resident_models(self) -> list[str]:
        return list(self._entries)

    def tier(self, lora_id: str) -> Tier:
        """This GPU's view of the adapter's residency tier.

        Without a registry the legacy assumption holds: every adapter's
        weights live in host RAM, so a non-resident adapter is HOST.
        """
        if lora_id in self._entries:
            return Tier.GPU
        if self.registry is None or lora_id not in self.registry:
            return Tier.HOST
        return Tier.HOST if self.registry.host_resident(lora_id) else Tier.DISK

    def pcie_idle(self, now: float) -> bool:
        """Whether no host -> GPU copy is (planned to be) in flight at ``now``."""
        return self.pcie_busy_until <= now

    # -- clock -----------------------------------------------------------
    def advance(self, now: float) -> None:
        """Advance the store's clock (used to judge in-flight transfers
        when eviction is triggered by callers that carry no timestamp)."""
        self.clock = max(self.clock, now)

    # -- loading ---------------------------------------------------------
    def adapter_nbytes(self, lora_id: str, default: float) -> float:
        """Registry byte size when known, else the caller's default."""
        if self.registry is not None and lora_id in self.registry:
            return self.registry.get(lora_id).nbytes
        return default

    def request_load(self, lora_id: str, nbytes: float, now: float) -> TransferPlan:
        """Ensure ``lora_id`` is (being) loaded; idempotent.

        Returns the transfer plan governing when it becomes usable. A
        repeated request returns the existing plan without a new copy. The
        hit tier (GPU / HOST / DISK) is recorded in the event log.
        """
        self.advance(now)
        nbytes = self.adapter_nbytes(lora_id, nbytes)
        entry = self._entries.get(lora_id)
        if entry is not None:
            entry.last_used = now
            if entry.prefetched:
                entry.prefetched = False
                self.events.append(AdapterEvent(now, "prefetch_hit", 1.0))
            self.events.append(AdapterEvent(now, "load", float(Tier.GPU)))
            self._trace_load(now, lora_id, Tier.GPU, entry.plan)
            return entry.plan
        source = self.tier(lora_id)
        host_ready = now
        if self.registry is not None and lora_id in self.registry:
            try:
                host_ready = self.registry.ensure_host(lora_id, now)
            except MemoryError:
                # Host staging tier is full of pinned entries (or smaller
                # than this adapter): stream the read through a bounce
                # buffer instead — pay the disk leg without keeping a
                # host-side copy.
                host_ready = now + self.registry.host.staging_time(nbytes)
        self._make_room(lora_id, nbytes, now)
        plan = self._issue_transfer(nbytes, now, host_ready)
        self._entries[lora_id] = _GpuEntry(nbytes=nbytes, plan=plan, last_used=now)
        if self.registry is not None and lora_id in self.registry:
            self.registry.note_gpu_resident(lora_id, self.gpu_id)
        self.events.append(AdapterEvent(now, "load", float(source)))
        self._trace_load(now, lora_id, source, plan)
        return plan

    def _trace_load(self, now: float, lora_id: str, tier: Tier, plan) -> None:
        if self.tracer is not None:
            from repro.obs.tracer import EventKind

            self.tracer.emit(
                now, EventKind.ADAPTER_LOAD, gpu_id=self.gpu_id,
                lora=lora_id, tier=tier.name.lower(),
                ready_in=max(0.0, plan.finish - now), nbytes=plan.nbytes,
            )

    # -- fault injection -------------------------------------------------
    def stall(self, now: float, extra: float) -> list[str]:
        """PCIe stall: push every unfinished transfer out by ``extra`` s.

        Models link-level interference (another tenant's DMA, a host NUMA
        hiccup). Returns the adapters whose plans moved, so callers can
        re-arm wakeups keyed on the old ready times.
        """
        if extra < 0:
            raise ValueError(f"stall must be nonnegative, got {extra}")
        self.advance(now)
        moved = []
        for lora_id, entry in self._entries.items():
            if not entry.plan.done_by(now):
                entry.plan = TransferPlan(
                    nbytes=entry.plan.nbytes,
                    start=entry.plan.start,
                    finish=entry.plan.finish + extra,
                )
                moved.append(lora_id)
        if moved:
            self.pcie_busy_until = max(self.pcie_busy_until, now) + extra
            self.events.append(AdapterEvent(now, "pcie", extra))
        return moved

    def fail_load(self, lora_id: str, now: float) -> bool:
        """Adapter-load failure: drop an entry so the copy must be reissued.

        Only unpinned entries can be dropped (pinned means some request in
        a working set still references the weights — the caller must
        displace those requests first). Returns whether the entry was
        dropped.
        """
        self.advance(now)
        entry = self._entries.get(lora_id)
        if entry is None or entry.refcount > 0:
            return False
        del self._entries[lora_id]
        if self.registry is not None and lora_id in self.registry:
            self.registry.note_gpu_evicted(lora_id, self.gpu_id)
        self.events.append(AdapterEvent(now, "evict", 1.0))
        return True

    def prefetch(self, lora_id: str, now: float, nbytes: "float | None" = None) -> bool:
        """Speculatively promote a HOST adapter to this GPU.

        Non-disruptive: succeeds only if the adapter fits in currently free
        budget (no eviction) — speculation must never displace demand state.
        Returns whether a copy was issued.
        """
        self.advance(now)
        if lora_id in self._entries:
            return False
        if nbytes is None:
            nbytes = self.adapter_nbytes(lora_id, 0.0)
        else:
            nbytes = self.adapter_nbytes(lora_id, nbytes)
        if nbytes <= 0:
            raise ValueError(
                f"prefetch of {lora_id!r} needs registry metadata or explicit nbytes"
            )
        if self.capacity_bytes is not None:
            external = self.external_used() if self.external_used else 0.0
            if self.used_bytes() + external + nbytes > self.capacity_bytes:
                return False
        host_ready = now
        if self.registry is not None and lora_id in self.registry:
            try:
                host_ready = self.registry.ensure_host(lora_id, now, prefetch=True)
            except MemoryError:
                return False  # speculation never evicts the host tier either
        plan = self._issue_transfer(nbytes, now, host_ready)
        self._entries[lora_id] = _GpuEntry(
            nbytes=nbytes, plan=plan, last_used=now, prefetched=True
        )
        if self.registry is not None and lora_id in self.registry:
            self.registry.note_gpu_resident(lora_id, self.gpu_id)
        self.events.append(AdapterEvent(now, "prefetch_issue", 1.0))
        return True

    def _issue_transfer(
        self, nbytes: float, now: float, host_ready: float
    ) -> TransferPlan:
        start = max(now, host_ready)
        if self.serialize_pcie:
            start = max(start, self.pcie_busy_until)
        copy_time = self.pcie.transfer_time(nbytes)
        finish = start + copy_time
        self.pcie_busy_until = max(self.pcie_busy_until, finish)
        self.events.append(AdapterEvent(start, "pcie", copy_time))
        return TransferPlan(nbytes=nbytes, start=now, finish=finish)

    # -- pinning ---------------------------------------------------------
    def acquire(self, lora_id: str, now: float) -> None:
        """Pin an adapter while a request using it is in the working set."""
        self.advance(now)
        entry = self._require(lora_id)
        entry.refcount += 1
        entry.last_used = now

    def release(self, lora_id: str) -> None:
        entry = self._require(lora_id)
        if entry.refcount <= 0:
            raise RuntimeError(f"release of unacquired LoRA model {lora_id!r}")
        entry.refcount -= 1

    def refcount(self, lora_id: str) -> int:
        return self._require(lora_id).refcount

    # -- admission & eviction -------------------------------------------
    def can_admit_adapter(self, lora_id: str, nbytes: float) -> bool:
        """Whether loading this adapter could succeed right now.

        Resident adapters are already accounted; otherwise the adapter's
        bytes must fit next to the external (KvCache) usage and the pinned
        adapters — unpinned ones count as reclaimable.
        """
        if lora_id in self._entries:
            return True
        if self.capacity_bytes is None:
            return True
        nbytes = self.adapter_nbytes(lora_id, nbytes)
        external = self.external_used() if self.external_used else 0.0
        return nbytes + external + self.pinned_bytes() <= self.capacity_bytes

    def reclaim(self, bytes_needed: float) -> bool:
        """Free budget for an external (KvCache) consumer of ``bytes_needed``.

        Evicts unpinned adapters LRU until the shared budget has room;
        returns False if pinned adapters make that impossible.
        """
        if self.capacity_bytes is None:
            return True
        external = self.external_used() if self.external_used else 0.0
        while self.used_bytes() + external + bytes_needed > self.capacity_bytes:
            if not self._evict_one(self.clock):
                return False
        return True

    def _make_room(self, lora_id: str, nbytes: float, now: float) -> None:
        if self.capacity_bytes is None:
            return
        if nbytes > self.capacity_bytes:
            raise MemoryError(
                f"adapter {lora_id!r} needs {nbytes:.0f} bytes but the "
                f"capacity is only {self.capacity_bytes:.0f} bytes; "
                f"it can never fit"
            )
        external = self.external_used() if self.external_used else 0.0
        while self.used_bytes() + external + nbytes > self.capacity_bytes:
            if not self._evict_one(now):
                raise MemoryError(
                    f"cannot fit {nbytes:.0f} bytes of LoRA weights for "
                    f"{lora_id!r}: {self.used_bytes():.0f} adapter bytes "
                    f"resident and all pinned or in flight"
                )

    def _evict_one(self, now: float) -> bool:
        """Evict the LRU unpinned, fully-loaded adapter (GPU -> HOST)."""
        victims = [
            (e.last_used, lid)
            for lid, e in self._entries.items()
            if e.refcount == 0 and e.plan.done_by(now)
        ]
        if not victims:
            return False
        _, victim = min(victims)
        del self._entries[victim]
        if self.registry is not None and victim in self.registry:
            self.registry.note_gpu_evicted(victim, self.gpu_id)
        self.num_evictions += 1
        self.events.append(AdapterEvent(now, "evict", 1.0))
        return True

    # -- metrics ---------------------------------------------------------
    def drain_events(self) -> list[AdapterEvent]:
        out = self.events
        self.events = []
        return out

    def _require(self, lora_id: str) -> _GpuEntry:
        try:
            return self._entries[lora_id]
        except KeyError:
            raise KeyError(f"LoRA model {lora_id!r} was never loaded") from None
