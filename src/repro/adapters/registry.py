"""Tiered adapter registry: metadata + DISK -> HOST -> GPU residency.

Punica (§5.2) loads LoRA weights on demand over PCIe but models adapter
residency as a flat per-GPU set. Serving *thousands* of adapters needs a
notion of where an adapter lives when it is not on a GPU: S-LoRA keeps a
host-RAM staging tier between disk and the GPUs, and CaraServe adds
popularity- and locality-aware placement on top. This module provides the
cluster-wide bookkeeping for that design:

* :class:`AdapterMeta` — per-adapter metadata (rank, dtype, byte size) plus
  popularity statistics (request count, EWMA arrival rate) fed from the
  workload's popularity distribution and live arrivals;
* :class:`Tier` — the three-tier residency state machine. An adapter is
  always DISK-resident; it may additionally be staged in HOST RAM and
  promoted into one or more GPUs' memory pools;
* :class:`HostTierSpec` — the disk -> host transfer latency model and the
  host-RAM staging budget (LRU-evicted, GPU-pinned entries excluded);
* :class:`AdapterRegistry` — the shared registry GPU-side stores
  (:class:`~repro.adapters.store.GpuAdapterStore`) and the
  :class:`~repro.adapters.prefetch.Prefetcher` coordinate through.

The host -> GPU leg of a promotion is planned by the per-GPU store using
:mod:`repro.hw.pcie`; this registry owns only the disk -> host leg.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.utils.units import GB, MS
from repro.utils.validation import check_nonnegative, check_positive

_MIN_INTERVAL = 1e-9
"""Floor on inter-arrival gaps so same-timestamp arrivals keep rates finite."""


class Tier(enum.IntEnum):
    """Where an adapter's weights live; higher is closer to the compute."""

    DISK = 0
    HOST = 1
    GPU = 2


@dataclass(frozen=True)
class HostTierSpec:
    """The disk -> host staging link plus the host-RAM adapter budget.

    ``bandwidth``/``latency`` model one sequential read of an adapter's
    safetensors file into pinned host memory. ``capacity_bytes`` bounds the
    host staging area; ``None`` means host RAM is effectively unbounded
    relative to adapter sizes (the common case on a 1 TB-RAM host).
    """

    name: str = "NVMe -> host RAM"
    bandwidth: float = 3 * GB
    latency: float = 0.5 * MS
    capacity_bytes: "float | None" = None

    def __post_init__(self) -> None:
        check_positive("bandwidth", self.bandwidth)
        check_nonnegative("latency", self.latency)
        if self.capacity_bytes is not None:
            check_positive("capacity_bytes", self.capacity_bytes)

    def staging_time(self, nbytes: float) -> float:
        """Duration of one disk -> host read of ``nbytes`` bytes."""
        check_nonnegative("nbytes", nbytes)
        if nbytes == 0:
            return 0.0
        return self.latency + nbytes / self.bandwidth


DEFAULT_HOST_TIER = HostTierSpec()


@dataclass
class AdapterMeta:
    """Metadata and popularity statistics for one registered LoRA adapter."""

    lora_id: str
    rank: int
    nbytes: float
    dtype_bytes: int = 2
    requests: int = 0
    last_request: "float | None" = None
    ewma_interval: "float | None" = None
    """EWMA of the inter-arrival gap; ``1 / ewma_interval`` is the rate."""

    def record_request(self, now: float, alpha: float) -> None:
        """Fold one arrival at ``now`` into the EWMA arrival rate."""
        if self.last_request is not None:
            dt = max(now - self.last_request, _MIN_INTERVAL)
            if self.ewma_interval is None:
                self.ewma_interval = dt
            else:
                self.ewma_interval = alpha * dt + (1.0 - alpha) * self.ewma_interval
        self.requests += 1
        self.last_request = now

    def rate(self, now: float) -> float:
        """Estimated arrivals/second at ``now``.

        The estimate decays for adapters that have gone quiet: the effective
        interval is at least the time since the last arrival, so a formerly
        hot adapter cools off rather than holding its peak rate forever.
        """
        if self.ewma_interval is None:
            return 0.0
        staleness = 0.0
        if self.last_request is not None:
            staleness = max(now - self.last_request, 0.0)
        return 1.0 / max(self.ewma_interval, staleness, _MIN_INTERVAL)

    def seed_rate(self, rate: float) -> None:
        """Install a prior arrival rate (e.g. from historical popularity)."""
        check_positive("rate", rate)
        self.ewma_interval = 1.0 / rate


@dataclass
class _HostEntry:
    """One adapter staged (or staging) in host RAM."""

    ready: float
    last_used: float
    prefetched: bool = False


class AdapterRegistry:
    """Cluster-wide adapter metadata, popularity, and host-tier residency.

    Per-GPU residency is owned by each GPU's
    :class:`~repro.adapters.store.GpuAdapterStore`; stores report promotions
    and evictions back here (:meth:`note_gpu_resident` /
    :meth:`note_gpu_evicted`) so :meth:`tier` answers cluster-wide locality
    queries for the scheduler.
    """

    def __init__(
        self,
        host: HostTierSpec = DEFAULT_HOST_TIER,
        ewma_alpha: float = 0.3,
    ):
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self.host = host
        self.ewma_alpha = ewma_alpha
        self._meta: dict[str, AdapterMeta] = {}
        self._host: dict[str, _HostEntry] = {}
        self._gpu: dict[str, set[str]] = {}
        self.host_stage_count = 0
        self.host_evictions = 0

    # -- metadata --------------------------------------------------------
    def register(
        self,
        lora_id: str,
        rank: int,
        nbytes: "float | None" = None,
        dtype_bytes: int = 2,
        config=None,
        prior_rate: "float | None" = None,
    ) -> AdapterMeta:
        """Register one adapter; idempotent for identical re-registration.

        ``nbytes`` may be given directly or derived from a
        :class:`~repro.models.config.LlamaConfig` via ``config.lora_bytes``.
        ``prior_rate`` seeds the popularity EWMA (requests/second) so the
        prefetcher has a signal before live traffic accumulates.
        """
        if rank <= 0:
            raise ValueError(f"rank must be positive, got {rank}")
        if nbytes is None:
            if config is None:
                raise ValueError("register needs nbytes or a model config")
            nbytes = float(config.lora_bytes(rank))
        check_positive("nbytes", nbytes)
        existing = self._meta.get(lora_id)
        if existing is not None:
            if existing.rank != rank or existing.nbytes != nbytes:
                raise ValueError(
                    f"adapter {lora_id!r} already registered with rank "
                    f"{existing.rank} / {existing.nbytes:.0f} bytes; "
                    f"conflicting rank {rank} / {nbytes:.0f} bytes"
                )
            return existing
        meta = AdapterMeta(
            lora_id=lora_id, rank=rank, nbytes=float(nbytes), dtype_bytes=dtype_bytes
        )
        if prior_rate is not None:
            meta.seed_rate(prior_rate)
        self._meta[lora_id] = meta
        return meta

    def get(self, lora_id: str) -> AdapterMeta:
        try:
            return self._meta[lora_id]
        except KeyError:
            raise KeyError(f"adapter {lora_id!r} is not registered") from None

    def __contains__(self, lora_id: str) -> bool:
        return lora_id in self._meta

    def __len__(self) -> int:
        return len(self._meta)

    def adapters(self) -> list[AdapterMeta]:
        return list(self._meta.values())

    # -- popularity ------------------------------------------------------
    def record_request(self, lora_id: str, now: float) -> None:
        """Feed one live arrival into the adapter's popularity EWMA."""
        self.get(lora_id).record_request(now, self.ewma_alpha)

    def hot_adapters(
        self, now: float, limit: "int | None" = None, min_rate: float = 0.0
    ) -> list[AdapterMeta]:
        """Adapters ordered hottest-first by EWMA rate (stable tie-break)."""
        ranked = sorted(
            (m for m in self._meta.values() if m.rate(now) > min_rate),
            key=lambda m: (-m.rate(now), -m.requests, m.lora_id),
        )
        return ranked if limit is None else ranked[:limit]

    # -- tier state machine ----------------------------------------------
    def tier(self, lora_id: str, gpu_id: "str | None" = None) -> Tier:
        """Current residency tier; with ``gpu_id`` the GPU test is per-GPU."""
        homes = self._gpu.get(lora_id, ())
        if (gpu_id in homes) if gpu_id is not None else bool(homes):
            return Tier.GPU
        if lora_id in self._host:
            return Tier.HOST
        return Tier.DISK

    def gpu_homes(self, lora_id: str) -> frozenset:
        """GPUs currently holding (or fetching) this adapter."""
        return frozenset(self._gpu.get(lora_id, ()))

    def host_resident(self, lora_id: str) -> bool:
        return lora_id in self._host

    def host_ready(self, lora_id: str) -> float:
        """When the host copy is (or will be) usable; raises if not staged."""
        entry = self._host.get(lora_id)
        if entry is None:
            raise KeyError(f"adapter {lora_id!r} is not staged host-side")
        return entry.ready

    def host_used_bytes(self) -> float:
        return sum(self._meta[lid].nbytes for lid in self._host)

    def host_resident_adapters(self) -> list[str]:
        return list(self._host)

    def ensure_host(self, lora_id: str, now: float, prefetch: bool = False) -> float:
        """DISK -> HOST transition (idempotent); returns the ready time.

        A fresh staging pays the disk -> host transfer
        (:meth:`HostTierSpec.staging_time`); re-requests just refresh LRU
        recency. Over-budget staging LRU-evicts unpinned host entries —
        entries are pinned while any GPU holds (or is fetching) the adapter
        or while their own disk read is still in flight.
        """
        meta = self.get(lora_id)
        entry = self._host.get(lora_id)
        if entry is not None:
            entry.last_used = now
            return entry.ready
        self._evict_host_for(meta.nbytes, lora_id, now)
        ready = now + self.host.staging_time(meta.nbytes)
        self._host[lora_id] = _HostEntry(ready=ready, last_used=now, prefetched=prefetch)
        self.host_stage_count += 1
        return ready

    def stage(self, lora_id: str, now: float) -> float:
        """Prefetch-path alias of :meth:`ensure_host`."""
        return self.ensure_host(lora_id, now, prefetch=True)

    def drop_host(self, lora_id: str) -> None:
        """Explicitly demote a host-staged adapter back to DISK."""
        self._host.pop(lora_id, None)

    def _host_pinned(self, lora_id: str, now: float) -> bool:
        return bool(self._gpu.get(lora_id)) or self._host[lora_id].ready > now

    def _evict_host_for(self, nbytes: float, lora_id: str, now: float) -> None:
        cap = self.host.capacity_bytes
        if cap is None:
            return
        if nbytes > cap:
            raise MemoryError(
                f"adapter {lora_id!r} needs {nbytes:.0f} bytes but the host "
                f"staging tier holds only {cap:.0f} bytes; it can never fit"
            )
        used = self.host_used_bytes()
        while used + nbytes > cap:
            victims = [
                (e.last_used, lid)
                for lid, e in self._host.items()
                if not self._host_pinned(lid, now)
            ]
            if not victims:
                raise MemoryError(
                    f"host staging tier full ({used:.0f}/{cap:.0f} bytes) and "
                    f"every staged adapter is GPU-pinned or in flight"
                )
            _, victim = min(victims)
            used -= self._meta[victim].nbytes
            del self._host[victim]
            self.host_evictions += 1

    # -- GPU residency notes (reported by per-GPU stores) -----------------
    def note_gpu_resident(self, lora_id: str, gpu_id: str) -> None:
        self._gpu.setdefault(lora_id, set()).add(gpu_id)

    def note_gpu_evicted(self, lora_id: str, gpu_id: str) -> None:
        homes = self._gpu.get(lora_id)
        if homes is not None:
            homes.discard(gpu_id)
            if not homes:
                del self._gpu[lora_id]


def register_trace_adapters(
    registry: AdapterRegistry,
    trace,
    config,
    rank: int = 16,
    seed_priors: bool = True,
) -> list[AdapterMeta]:
    """Register every adapter a trace references, with popularity priors.

    The per-adapter request counts of the trace (drawn from
    :mod:`repro.workloads.popularity`) seed each adapter's EWMA arrival
    rate as ``count / trace duration``, mirroring an operator bootstrapping
    the registry from historical traffic.
    """
    counts: dict[str, int] = {}
    for spec in trace:
        counts[spec.lora_id] = counts.get(spec.lora_id, 0) + 1
    duration = max(trace.duration, 1.0)
    metas = []
    for lora_id in sorted(counts):
        prior = counts[lora_id] / duration if seed_priors else None
        metas.append(
            registry.register(lora_id, rank=rank, config=config, prior_rate=prior)
        )
    return metas
