"""Popularity-driven adapter prefetching (CaraServe-style cold-start cuts).

A cold request for an adapter that lives only on DISK pays
disk -> host staging *plus* the host -> GPU PCIe copy before its prefill can
run. The :class:`Prefetcher` spends otherwise-idle resources to move that
cost off the critical path:

* **HOST staging** — the hottest adapters by registry EWMA arrival rate are
  kept staged in host RAM, so a demand load pays only the PCIe leg;
* **GPU promotion** — during idle PCIe windows (no copy in flight on that
  GPU), hot HOST-resident adapters are speculatively copied into free pool
  bytes. Promotions are non-disruptive: they never evict anything, and the
  unified pool reclaims them first under KvCache pressure;
* **Routing hints** — the cluster scheduler reports requests it had to
  queue, and their adapters are staged host-side immediately so the
  eventual placement starts warm.

Prefetch *accuracy* (issued promotions that a later demand load actually
hit) is tracked through the store event log into
:class:`~repro.cluster.metrics.ClusterMetrics`.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.adapters.registry import AdapterRegistry


@dataclass(frozen=True)
class PrefetchConfig:
    """Prefetch policy knobs."""

    interval: float = 0.5
    """Seconds between prefetch passes."""
    host_topk: int = 8
    """How many of the hottest adapters to keep HOST-staged."""
    gpu_topk: int = 2
    """Max speculative GPU promotions per GPU per pass."""
    min_rate: float = 0.0
    """Adapters at or below this EWMA rate (req/s) are never prefetched."""

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError(f"interval must be positive, got {self.interval}")
        if self.host_topk < 0 or self.gpu_topk < 0:
            raise ValueError("host_topk and gpu_topk must be >= 0")
        if self.min_rate < 0:
            raise ValueError(f"min_rate must be >= 0, got {self.min_rate}")


class Prefetcher:
    """Stages hot adapters host-side and promotes them in idle PCIe windows."""

    def __init__(
        self,
        registry: AdapterRegistry,
        config: "PrefetchConfig | None" = None,
    ):
        self.registry = registry
        self.config = config or PrefetchConfig()
        self._pools: dict[str, object] = {}
        self.num_staged = 0
        self.num_promoted = 0
        self.num_hints = 0

    def attach(self, pools: "Mapping[str, object]") -> None:
        """Register the per-GPU pools (or loaders) promotions go to."""
        self._pools = dict(pools)

    # -- scheduler hints --------------------------------------------------
    def hint_queued(self, lora_id: str, now: float) -> None:
        """A request for this adapter queued cluster-wide: stage it now so
        its eventual placement pays only the PCIe leg."""
        if lora_id in self.registry and not self.registry.host_resident(lora_id):
            if self._try_stage(lora_id, now):
                self.num_hints += 1

    def _try_stage(self, lora_id: str, now: float) -> bool:
        """Stage host-side; a full (all-pinned) host tier is a pass, not an
        error — speculation backs off, demand loads stream through."""
        try:
            self.registry.stage(lora_id, now)
            return True
        except MemoryError:
            return False

    # -- periodic pass ----------------------------------------------------
    def tick(self, now: float) -> "tuple[int, int]":
        """One prefetch pass; returns (host stagings, GPU promotions)."""
        cfg = self.config
        hot = self.registry.hot_adapters(
            now, limit=cfg.host_topk, min_rate=cfg.min_rate
        )
        staged = 0
        for meta in hot:
            if not self.registry.host_resident(meta.lora_id):
                if self._try_stage(meta.lora_id, now):
                    staged += 1
        promoted = 0
        for gpu_id in sorted(self._pools):
            pool = self._pools[gpu_id]
            if not pool.pcie_idle(now):
                continue  # demand traffic owns the link; stay out of its way
            done = 0
            for meta in hot:
                if done >= cfg.gpu_topk:
                    break
                if pool.is_resident(meta.lora_id):
                    continue
                if (
                    not self.registry.host_resident(meta.lora_id)
                    or self.registry.host_ready(meta.lora_id) > now
                ):
                    continue  # promote only from a settled host copy
                if pool.prefetch(meta.lora_id, now):
                    done += 1
            promoted += done
        self.num_staged += staged
        self.num_promoted += promoted
        return staged, promoted
