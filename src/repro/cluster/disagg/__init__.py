"""Disaggregated prefill/decode serving (see docs/disagg.md).

Splits the engine pool into a prefill pool and a decode pool: prefills run
on dedicated GPUs (so they never stall co-resident decodes), then each
request's paged KvCache is handed off over the interconnect to a decode
GPU picked by adapter working-set locality. See
:class:`~repro.cluster.disagg.simulator.DisaggSimulator`.
"""

from repro.cluster.disagg.config import INTERCONNECTS, DisaggConfig
from repro.cluster.disagg.simulator import DisaggSimulator

__all__ = ["DisaggConfig", "DisaggSimulator", "INTERCONNECTS"]
