"""Disaggregated prefill/decode cluster simulation.

:class:`DisaggSimulator` extends the colocated
:class:`~repro.cluster.simulator.ClusterSimulator` with a two-stage
request lifecycle (InfiniLoRA-style):

1. **Prefill** — new and re-queued requests route onto the *prefill pool*
   only (the scheduler's pack rule, restricted by engine role).
2. **Handoff** — the moment a request's prefill invocation completes, its
   paged KvCache is exported and a point-to-point transfer is scheduled,
   priced by :meth:`~repro.hw.interconnect.InterconnectSpec.transfer_time`
   over the configured link. The transfer is a real event-loop event, so
   the fast path's inline step coalescing disarms on it automatically.
3. **Decode admission** — on arrival the request is admitted onto the
   decode GPU with the best adapter locality (CaraServe-style, reusing
   the adapter store's residency tiers); if none can admit it, it waits
   FCFS in a decode queue drained as decode capacity frees up.

Backpressure falls back to colocated mode: when the decode pool is
saturated (queue + in-flight transfers at the configured bound) or gone,
a freshly prefilled request simply keeps decoding on its prefill GPU.

The first generated token travels with the KV pages — the decode GPU
delivers it with its first decode step (Splitwise-style accounting), so
time-to-first-token includes the handoff cost for transferred requests.

Fault story: a ``KV_TRANSFER_FAIL`` loses one in-flight handoff; the
request drops its KV copy and re-enters through the §5.3 evict +
re-prefill path. A decode-pool GPU crash re-places its requests through
the prefill pool; if the whole decode pool dies, waiting handoffs fall
back to re-prefill too.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.cluster.disagg.config import DisaggConfig
from repro.cluster.events import EventHandle
from repro.cluster.faults import FaultKind, FaultSpec
from repro.cluster.scheduler import SchedulerConfig
from repro.cluster.simulator import ClusterSimulator
from repro.obs.tracer import EventKind
from repro.runtime.request import Request, RequestState


@dataclass
class _Transfer:
    """One paged KV handoff in flight over the interconnect."""

    request: Request
    kv_tokens: int
    nbytes: float
    start: float
    source: str
    handle: EventHandle


class DisaggSimulator(ClusterSimulator):
    """Drives a role-split engine pool through a request trace."""

    def __init__(
        self,
        prefill_engines: "list",
        decode_engines: "list",
        config: DisaggConfig | None = None,
        scheduler_config=None,
        registry=None,
        prefetcher=None,
        fault_injector=None,
        tracer=None,
        fast_path: bool | None = None,
    ):
        if not prefill_engines:
            raise ValueError("disaggregated serving needs at least one prefill engine")
        if not decode_engines:
            raise ValueError("disaggregated serving needs at least one decode engine")
        for engine in prefill_engines:
            engine.role = "prefill"
        for engine in decode_engines:
            engine.role = "decode"
        engines = list(prefill_engines) + list(decode_engines)
        for engine in engines:
            if not hasattr(engine.backend, "kv_export"):
                raise TypeError(
                    f"engine {engine.gpu_id} backend lacks the KV handoff "
                    "interface (kv_export/kv_import)"
                )
        # Consolidation migrates via cancel + re-add (§5.3); the
        # scheduler's role-equality rule keeps every move inside its role
        # pool, so a caller may now opt in with ``consolidation=True``.
        # The default stays off: migration inside the prefill pool
        # re-prefills work that was about to be handed off anyway.
        if scheduler_config is None:
            scheduler_config = SchedulerConfig(consolidation=False)
        super().__init__(
            engines,
            scheduler_config=scheduler_config,
            registry=registry,
            prefetcher=prefetcher,
            fault_injector=fault_injector,
            tracer=tracer,
            fast_path=fast_path,
        )
        self.config = config or DisaggConfig()
        self._step_hook = self._on_step
        self._transfers: "dict[str, _Transfer]" = {}
        self._decode_queue: "list[tuple[float, int, Request, int]]" = []
        """FCFS by handoff completion time: (ready time, seq, request,
        kv tokens). Head-blocking like the scheduler's main queue."""
        self._decode_seq = 0
        self._colocated: "set[str]" = set()
        """Requests decoding on their prefill GPU (backpressure fallback);
        never exported again."""
        self.scheduler.migration_hook = self._on_migrate

    def _on_migrate(self, request, source_id: str, target_id: str) -> None:
        """Role-aware consolidation moved a request (§5.3 re-prefill on
        the target): its old colocation decision dies with its KvCache —
        after the move it is a fresh prefill on the target and eligible
        for export (or a fresh fallback decision) there."""
        self._colocated.discard(request.request_id)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def transfers_in_flight(self) -> int:
        return len(self._transfers)

    @property
    def decode_queue_depth(self) -> int:
        return sum(
            1 for _, _, r, _ in self._decode_queue if not r.state.is_terminal
        )

    def work_remaining(self) -> bool:
        if super().work_remaining():
            return True
        return bool(self._transfers) or self.decode_queue_depth > 0

    def _decode_pool_alive(self) -> bool:
        return any(
            self.scheduler._decode_capable(e) and getattr(e, "alive", True)
            for e in self.scheduler.engines.values()
        )

    def _decode_saturated(self) -> bool:
        backlog = len(self._transfers) + self.decode_queue_depth
        return (
            backlog >= self.config.decode_queue_limit
            or not self._decode_pool_alive()
        )

    # ------------------------------------------------------------------
    # Step hook: export finished prefills, drain the decode queue
    # ------------------------------------------------------------------
    def _on_step(self, gpu_id: str, engine, report) -> None:
        if engine.role == "prefill":
            for rid in report.evicted:
                # An evicted request re-prefills from scratch; its old
                # colocation decision dies with its KvCache.
                self._colocated.discard(rid)
            for rid in report.finished:
                self._colocated.discard(rid)
            end = report.end
            for req in engine.all_requests():
                rid = req.request_id
                if (
                    req.needs_prefill
                    or rid in self._colocated
                    or req.state is not RequestState.RUNNING
                ):
                    continue
                if self._decode_saturated():
                    self._colocated.add(rid)
                    self.metrics.record_colocated_fallback(report.start)
                    continue
                self._start_transfer(engine, rid, end)
        elif report.finished or report.evicted:
            # Decode capacity freed: admit waiting handoffs FCFS.
            self._drain_decode_queue(report.end)

    def _start_transfer(self, engine, request_id: str, now: float) -> None:
        request, kv_tokens = engine.export_request(request_id, now)
        if request.num_generated == 1:
            # The prefill-produced token travels with the pages; the
            # decode GPU delivers it, so TTFT includes the handoff.
            request.first_token_time = None
        nbytes = engine.backend.kv_bytes_of(kv_tokens)
        duration = self.config.interconnect.transfer_time(nbytes)
        if self.tracer is not None:
            self.tracer.emit(
                now, EventKind.KV_TRANSFER_START, request_id, engine.gpu_id,
                nbytes=nbytes, duration=duration, kv_tokens=kv_tokens,
                link=self.config.interconnect.name,
            )
        handle = self.loop.schedule(
            now + duration, self._make_transfer_done(request_id)
        )
        self._transfers[request_id] = _Transfer(
            request=request, kv_tokens=kv_tokens, nbytes=nbytes,
            start=now, source=engine.gpu_id, handle=handle,
        )

    def _make_transfer_done(self, request_id: str):
        def transfer_done(now: float) -> None:
            tr = self._transfers.pop(request_id)
            self.metrics.record_kv_transfer(now, now - tr.start, tr.nbytes)
            if self.tracer is not None:
                self.tracer.emit(
                    now, EventKind.KV_TRANSFER_DONE, request_id, tr.source,
                    nbytes=tr.nbytes,
                )
            req = tr.request
            if req.state.is_terminal:
                return
            heapq.heappush(
                self._decode_queue, (now, self._decode_seq, req, tr.kv_tokens)
            )
            self._decode_seq += 1
            handled = self._drain_decode_queue(now)
            if request_id not in handled and self.tracer is not None:
                self.tracer.emit(
                    now, EventKind.QUEUE, request_id, reason="decode_wait",
                    depth=self.decode_queue_depth,
                )

        return transfer_done

    def _drain_decode_queue(self, now: float) -> "list[str]":
        """Admit waiting handoffs FCFS (head-blocking); returns the ids
        that left the queue. With the decode pool gone entirely, waiters
        fall back to the §5.3 re-prefill path instead of starving."""
        handled: "list[str]" = []
        if not self._decode_queue:
            return handled
        if not self._decode_pool_alive():
            victims: "list[Request]" = []
            for _, _, req, _ in sorted(self._decode_queue):
                if req.state.is_terminal:
                    continue
                req.drop_kv()
                if self.tracer is not None:
                    self.tracer.emit(
                        now, EventKind.QUEUE, req.request_id,
                        reason="decode_pool_lost",
                    )
                victims.append(req)
                handled.append(req.request_id)
            self._decode_queue.clear()
            self._replace_requests(victims, now)
            return handled
        while self._decode_queue:
            _, _, req, kv_tokens = self._decode_queue[0]
            if req.state.is_terminal:
                heapq.heappop(self._decode_queue)
                continue
            gpu = self.scheduler.route_decode(req, kv_tokens)
            if gpu is None:
                break
            heapq.heappop(self._decode_queue)
            self.scheduler.engines[gpu].import_request(req, kv_tokens, now)
            handled.append(req.request_id)
            self._kick(gpu, now)
        return handled

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------
    def cancel(self, request, now=None, reason: str = "user") -> None:
        now = self.loop.now if now is None else now
        tr = self._transfers.pop(request.request_id, None)
        if tr is not None:
            # Mid-transfer: disarm the completion event; the pages are
            # dropped on arrival.
            tr.handle.cancel()
            request.mark_cancelled()
            if self.tracer is not None:
                self.tracer.emit(
                    now, EventKind.CANCEL, request.request_id, None,
                    reason=reason,
                )
            return
        self._colocated.discard(request.request_id)
        super().cancel(request, now, reason)
        # Cancelling a decode-pool request frees import capacity the
        # scheduler's main-queue drain knows nothing about.
        self._drain_decode_queue(now)

    # ------------------------------------------------------------------
    # Faults
    # ------------------------------------------------------------------
    def _apply_fault(self, spec: FaultSpec, now: float):
        gpu_id, applied = super()._apply_fault(spec, now)
        if applied and spec.kind is FaultKind.GPU_CRASH:
            # A decode-pool crash shrank import capacity — or killed the
            # pool entirely; reroute (or re-prefill) the waiters now.
            self._drain_decode_queue(now)
        return gpu_id, applied

    def _fail_transfer(self, spec: FaultSpec, now: float):
        candidates = [
            rid
            for rid, tr in self._transfers.items()
            if not tr.request.state.is_terminal
        ]
        rid = self.fault_injector.pick_transfer(candidates)
        if rid is None:
            return None, False
        tr = self._transfers.pop(rid)
        tr.handle.cancel()
        self.metrics.record_fault(now)
        self.metrics.record_kv_transfer_failure(now)
        req = tr.request
        req.drop_kv()
        if self.tracer is not None:
            self.tracer.emit(
                now, EventKind.QUEUE, rid, tr.source, reason="transfer_fail"
            )
        self._replace_requests([req], now)
        return tr.source, True
