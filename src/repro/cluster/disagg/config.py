"""Configuration for disaggregated prefill/decode serving."""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.interconnect import NVLINK_A100, PCIE_GEN4_P2P, InterconnectSpec

INTERCONNECTS: "dict[str, InterconnectSpec]" = {
    "nvlink": NVLINK_A100,
    "pcie": PCIE_GEN4_P2P,
}
"""Named point-to-point links the KV handoff can be priced with (the
``repro disagg --interconnect`` choices)."""


@dataclass(frozen=True)
class DisaggConfig:
    """Knobs of the disaggregated serving layer."""

    interconnect: InterconnectSpec = NVLINK_A100
    """Point-to-point link the paged KV handoff travels over; its
    :meth:`~repro.hw.interconnect.InterconnectSpec.transfer_time` prices
    each handoff by the request's KV bytes."""
    decode_queue_limit: int = 8
    """Backpressure bound: when in-flight handoffs plus requests waiting
    for decode admission reach this, newly prefilled requests fall back to
    colocated decode on their prefill GPU instead of transferring."""

    def __post_init__(self) -> None:
        if self.decode_queue_limit < 1:
            raise ValueError(
                f"decode_queue_limit must be >= 1, got {self.decode_queue_limit}"
            )
