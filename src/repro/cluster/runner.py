"""The GPU runner: command/event mediation around one engine (paper §6).

A :class:`GpuRunner` owns one :class:`~repro.runtime.engine.GpuEngine` and
exposes exactly the paper's process boundary: the scheduler *posts*
commands (add/cancel) into an inbox, the runner applies them at the next
step boundary (cancellation "is picked up after the GPU finishes running
the previous batch", §5.3), steps the engine, and emits typed events —
token chunks, finishes, evictions, acks — into an outbox the scheduler
drains. No other channel exists, so tests can assert the protocol carries
everything the system needs.
"""

from __future__ import annotations

from collections import deque

from repro.cluster.protocol import (
    AddRequest,
    CancelAck,
    CancelRequest,
    MessageLog,
    RequestEvicted,
    RequestFinished,
    StepStats,
    TokenChunk,
)
from repro.runtime.request import Request
from repro.workloads.trace import RequestSpec


class GpuRunner:
    """Message-driven wrapper over one GPU engine."""

    def __init__(self, engine, log: MessageLog | None = None):
        self.engine = engine
        self.log = log
        self._inbox: deque = deque()
        self._outbox: deque = deque()
        self._requests: dict[str, Request] = {}

    @property
    def gpu_id(self) -> str:
        return self.engine.gpu_id

    # ------------------------------------------------------------------
    # Scheduler-facing API
    # ------------------------------------------------------------------
    def post(self, command) -> None:
        """Enqueue a command; applied at the next step boundary."""
        if not isinstance(command, (AddRequest, CancelRequest)):
            raise TypeError(f"unknown command type {type(command).__name__}")
        if self.log is not None:
            self.log.record_command(command)
        self._inbox.append(command)

    def poll_events(self) -> list:
        """Drain and return all pending events, oldest first."""
        events = list(self._outbox)
        self._outbox.clear()
        return events

    def request(self, request_id: str) -> Request:
        """The runner-side request object (e.g. to re-place after eviction)."""
        return self._requests[request_id]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self, now: float) -> "float | None":
        """Apply queued commands, run one engine step, emit events.

        Returns the step's end time, or ``None`` if nothing ran.
        """
        self._apply_commands(now)
        report = self.engine.step(now)
        if report is None:
            return None
        for rid, tokens in report.committed_tokens().items():
            self._emit(TokenChunk(request_id=rid, tokens=tokens, time=report.end))
        for rid in report.finished:
            self._emit(
                RequestFinished(
                    request_id=rid,
                    time=report.end,
                    num_generated=self._requests[rid].num_generated,
                )
            )
        for rid in report.evicted:
            self._emit(RequestEvicted(request_id=rid, time=report.end))
        self._emit(
            StepStats(
                gpu_id=self.gpu_id,
                start=report.start,
                latency=report.latency,
                batch_size=report.batch_size,
                num_lora_segments=report.num_lora_segments,
            )
        )
        return report.end

    # ------------------------------------------------------------------
    def _apply_commands(self, now: float) -> None:
        while self._inbox:
            command = self._inbox.popleft()
            if isinstance(command, AddRequest):
                self._apply_add(command, now)
            else:
                self._apply_cancel(command, now)

    def _apply_add(self, command: AddRequest, now: float) -> None:
        rid = command.request_id
        req = self._requests.get(rid)
        if req is None:
            req = Request(
                spec=RequestSpec(
                    request_id=rid,
                    lora_id=command.lora_id,
                    arrival_time=now,
                    prompt_len=command.prompt_len,
                    response_len=command.response_len,
                ),
                prompt_tokens=(
                    list(command.prompt_tokens)
                    if command.prompt_tokens is not None
                    else None
                ),
            )
            req.generated_tokens.extend(command.generated_prefix)
            self._requests[rid] = req
        self.engine.add_request(req, now)

    def _apply_cancel(self, command: CancelRequest, now: float) -> None:
        self.engine.cancel(command.request_id, requeue=command.requeue)
        self._emit(CancelAck(request_id=command.request_id, time=now))
        if not command.requeue:
            self._requests.pop(command.request_id, None)

    def _emit(self, event) -> None:
        if self.log is not None:
            self.log.record_event(event)
        self._outbox.append(event)
