"""Discrete-event cluster simulation: trace in, Fig 13 panels out.

Each GPU runs back-to-back batches (KvCache affinity — the paper contrasts
this with Symphony's non-work-conserving scheduler): when a step finishes
at time t, the next step for that GPU is scheduled at t immediately if it
has work. Arrivals fire scheduler submissions; finished/evicted requests
trigger queue drains and re-placements; a periodic event runs the
consolidation migration pass.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.events import EventLoop
from repro.cluster.metrics import ClusterMetrics
from repro.cluster.scheduler import PunicaScheduler, SchedulerConfig
from repro.runtime.request import Request, RequestState
from repro.runtime.serve import requests_from_trace
from repro.workloads.trace import Trace


@dataclass
class SimulationResult:
    """Outcome of one cluster run."""

    duration: float
    metrics: ClusterMetrics
    requests: list[Request]
    num_migrations: int
    events_processed: int

    @property
    def tokens_generated(self) -> int:
        return int(self.metrics.total_tokens())

    @property
    def finished_requests(self) -> int:
        return sum(1 for r in self.requests if r.state is RequestState.FINISHED)

    @property
    def throughput(self) -> float:
        return self.tokens_generated / self.duration if self.duration > 0 else 0.0

    def mean_normalized_latency(self) -> float:
        lats = [
            r.normalized_latency()
            for r in self.requests
            if r.state is RequestState.FINISHED and r.num_generated > 0
        ]
        return sum(lats) / len(lats) if lats else 0.0

    def summary(self) -> str:
        """One human-readable line for logs and examples."""
        return (
            f"{self.finished_requests}/{len(self.requests)} requests, "
            f"{self.tokens_generated} tokens in {self.duration:.1f}s | "
            f"{self.throughput:.0f} tok/s | {self.num_migrations} migrations | "
            f"mean latency {self.mean_normalized_latency() * 1e3:.1f} ms/tok"
        )


class ClusterSimulator:
    """Drives a scheduler + engine pool through a request trace."""

    def __init__(
        self,
        engines: "list",
        scheduler_config: SchedulerConfig | None = None,
        registry=None,
        prefetcher=None,
    ):
        """``registry`` (an :class:`~repro.adapters.registry.AdapterRegistry`)
        receives per-adapter arrival feeds for popularity EWMAs;
        ``prefetcher`` (a :class:`~repro.adapters.prefetch.Prefetcher`) is
        attached to every engine's loader and ticked periodically."""
        self.scheduler = PunicaScheduler(engines, scheduler_config, prefetcher)
        self.loop = EventLoop()
        self.metrics = ClusterMetrics()
        self.registry = registry
        self.prefetcher = prefetcher
        if prefetcher is not None:
            prefetcher.attach(
                {
                    gid: e.loader
                    for gid, e in self.scheduler.engines.items()
                    if hasattr(e, "loader")
                }
            )
        self._requests: dict[str, Request] = {}
        self._gpu_busy: dict[str, bool] = {gid: False for gid in self.scheduler.engines}
        self._pending_arrivals = 0

    # ------------------------------------------------------------------
    def run(self, trace: Trace, until: float | None = None) -> SimulationResult:
        requests = requests_from_trace(trace)
        for req in requests:
            self._requests[req.request_id] = req
            self.schedule_arrival(req)
        cfg = self.scheduler.config
        if cfg.consolidation:
            self.loop.schedule(cfg.migration_interval, self._migration_tick)
        if self.prefetcher is not None:
            self.loop.schedule(0.0, self._prefetch_tick)
        end = self.loop.run(until=until)
        self._drain_adapter_events()
        return SimulationResult(
            duration=end,
            metrics=self.metrics,
            requests=requests,
            num_migrations=self.scheduler.num_migrations,
            events_processed=self.loop.processed,
        )

    # ------------------------------------------------------------------
    def schedule_arrival(self, req: Request) -> None:
        """Register one future request arrival on the event loop."""
        self._pending_arrivals += 1
        self.loop.schedule(req.spec.arrival_time, self._make_arrival(req))

    def work_remaining(self) -> bool:
        """Whether any request is still queued, running, or yet to arrive.

        Periodic ticks (migration, autoscaling) key their rescheduling on
        this — not on ``loop.pending``, which would count the ticks
        themselves and livelock the loop.
        """
        if self._pending_arrivals > 0 or self.scheduler.queue_depth > 0:
            return True
        return any(not e.is_idle for e in self.scheduler.engines.values())

    def _make_arrival(self, req: Request):
        def arrival(now: float) -> None:
            self._pending_arrivals -= 1
            self.metrics.record_arrival(now)
            if self.registry is not None and req.lora_id in self.registry:
                self.registry.record_request(req.lora_id, now)
            gpu = self.scheduler.submit(req, now)
            if gpu is not None:
                self._kick(gpu, now)

        return arrival

    def _prefetch_tick(self, now: float) -> None:
        self.prefetcher.tick(now)
        if self.work_remaining():
            self.loop.schedule(
                now + self.prefetcher.config.interval, self._prefetch_tick
            )

    def _drain_adapter_events(self) -> None:
        """Fold every engine loader's adapter event log into the metrics."""
        events = []
        for engine in self.scheduler.engines.values():
            drain = getattr(getattr(engine, "loader", None), "drain_events", None)
            if drain is not None:
                events.extend(drain())
        if events:
            self.metrics.ingest_adapter_events(events)

    def _migration_tick(self, now: float) -> None:
        moved = self.scheduler.consolidate(now)
        if moved:
            for gid in self.scheduler.engines:
                self._kick(gid, now)
        if self.work_remaining():
            self.loop.schedule(
                now + self.scheduler.config.migration_interval, self._migration_tick
            )

    def _kick(self, gpu_id: str, now: float) -> None:
        """Ensure a step event is scheduled for an idle-but-loaded GPU."""
        if self._gpu_busy[gpu_id]:
            return
        engine = self.scheduler.engines[gpu_id]
        if engine.is_idle:
            return
        self._gpu_busy[gpu_id] = True
        self.loop.schedule(now, self._make_step(gpu_id))

    def _make_step(self, gpu_id: str):
        def step(now: float) -> None:
            engine = self.scheduler.engines[gpu_id]
            report = engine.step(now)
            if report is None:
                # Blocked on an in-flight LoRA load: wake when it lands.
                self._gpu_busy[gpu_id] = False
                wake = engine.next_ready_time()
                if wake is not None and not engine.is_idle:
                    self._gpu_busy[gpu_id] = True
                    self.loop.schedule(max(wake, now), self._make_step(gpu_id))
                return

            end = report.end
            self.metrics.record_step(
                gpu_id, report.start, report.tokens_generated, report.batch_size
            )
            if report.finished or report.evicted:
                for rid in report.evicted:
                    target = self.scheduler.submit(self._requests[rid], end)
                    if target is not None:
                        self._kick(target, end)
                placed = self.scheduler.drain_queue(end)
                for gid in set(placed):
                    self._kick(gid, end)

            if engine.is_idle:
                self._gpu_busy[gpu_id] = False
            else:
                self.loop.schedule(end, self._make_step(gpu_id))

        return step
