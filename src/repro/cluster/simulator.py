"""Discrete-event cluster simulation: trace in, Fig 13 panels out.

Each GPU runs back-to-back batches (KvCache affinity — the paper contrasts
this with Symphony's non-work-conserving scheduler): when a step finishes
at time t, the next step for that GPU is scheduled at t immediately if it
has work. Arrivals fire scheduler submissions; finished/evicted requests
trigger queue drains and re-placements; a periodic event runs the
consolidation migration pass.

With a :class:`~repro.cluster.faults.FaultInjector` attached, injected
faults are applied at their scheduled times: a crashed GPU leaves the pool
and its in-flight requests are re-placed through the same evict +
re-prefill path migration uses (§5.3); requests are shed with a FAILED
terminal state only when no surviving capacity remains (docs/faults.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.events import EventHandle, EventLoop
from repro.cluster.faults import FaultInjector, FaultKind, FaultSpec
from repro.cluster.metrics import ClusterMetrics
from repro.cluster.scheduler import PunicaScheduler, SchedulerConfig
from repro.obs.tracer import EventKind, Tracer
from repro.cluster.vector import VectorDecodeLane
from repro.runtime.request import Request, RequestState
from repro.runtime.serve import requests_from_trace
from repro.utils.fastpath import fastpath_enabled
from repro.workloads.trace import Trace


@dataclass
class SimulationResult:
    """Outcome of one cluster run."""

    duration: float
    metrics: ClusterMetrics
    requests: list[Request]
    num_migrations: int
    events_processed: int

    @property
    def tokens_generated(self) -> int:
        return int(self.metrics.total_tokens())

    @property
    def finished_requests(self) -> int:
        return sum(1 for r in self.requests if r.state is RequestState.FINISHED)

    @property
    def failed_requests(self) -> int:
        return sum(1 for r in self.requests if r.state is RequestState.FAILED)

    @property
    def throughput(self) -> float:
        return self.tokens_generated / self.duration if self.duration > 0 else 0.0

    def mean_normalized_latency(self) -> float:
        lats = [
            r.normalized_latency()
            for r in self.requests
            if r.state is RequestState.FINISHED and r.num_generated > 0
        ]
        return sum(lats) / len(lats) if lats else 0.0

    def summary(self) -> str:
        """One human-readable line for logs and examples."""
        return (
            f"{self.finished_requests}/{len(self.requests)} requests, "
            f"{self.tokens_generated} tokens in {self.duration:.1f}s | "
            f"{self.throughput:.0f} tok/s | {self.num_migrations} migrations | "
            f"mean latency {self.mean_normalized_latency() * 1e3:.1f} ms/tok"
        )


class ClusterSimulator:
    """Drives a scheduler + engine pool through a request trace."""

    def __init__(
        self,
        engines: "list",
        scheduler_config: SchedulerConfig | None = None,
        registry=None,
        prefetcher=None,
        fault_injector: "FaultInjector | None" = None,
        tracer: "Tracer | None" = None,
        fast_path: bool | None = None,
    ):
        """``registry`` (an :class:`~repro.adapters.registry.AdapterRegistry`)
        receives per-adapter arrival feeds for popularity EWMAs;
        ``prefetcher`` (a :class:`~repro.adapters.prefetch.Prefetcher`) is
        attached to every engine's loader and ticked periodically;
        ``fault_injector`` (a :class:`~repro.cluster.faults.FaultInjector`)
        schedules deterministic faults the simulator applies and recovers
        from; ``tracer`` (a :class:`~repro.obs.tracer.Tracer`) is threaded
        through the scheduler, engines, adapter stores and injector so the
        whole run emits one request-level event stream."""
        self.scheduler = PunicaScheduler(engines, scheduler_config, prefetcher,
                                         tracer=tracer)
        self.fast_path = fastpath_enabled(fast_path)
        self.loop = EventLoop(fast_path=self.fast_path)
        self.metrics = ClusterMetrics()
        self.registry = registry
        self.prefetcher = prefetcher
        self.fault_injector = fault_injector
        self.tracer = tracer
        if tracer is not None:
            for engine in self.scheduler.engines.values():
                if hasattr(engine, "tracer"):
                    engine.tracer = tracer
                store = getattr(getattr(engine, "loader", None), "store", None)
                if store is not None:
                    store.tracer = tracer
            if fault_injector is not None:
                fault_injector.tracer = tracer
        if prefetcher is not None:
            prefetcher.attach(
                {
                    gid: e.loader
                    for gid, e in self.scheduler.engines.items()
                    if hasattr(e, "loader")
                }
            )
        self._requests: dict[str, Request] = {}
        self._gpu_busy: dict[str, bool] = {gid: False for gid in self.scheduler.engines}
        self._step_actions: dict[str, "object"] = {}
        """One reusable step closure per GPU — scheduling thousands of
        decode continuations must not allocate a fresh closure each."""
        self._vector_lane = self.fast_path and tracer is None
        """Gen-2 lane: commit whole steady decode runs through one set of
        vectorized array ops. Requires an untraced run (the per-step lane
        pins traced event streams byte-for-byte) and is further gated per
        attempt on hooks and in-flight fault recoveries."""
        self._step_handles: dict[str, EventHandle] = {}
        """The pending step event per busy GPU. The cross-engine merge
        lane consumes these to replay interleaved decode ticks inline;
        entries are dropped when their event fires."""
        self._vector = VectorDecodeLane(self)
        self.inline_steps = 0
        """Steps run inline by the batched-decode fast lane instead of
        through the heap (diagnostic only — kept out of the metrics
        registry so differential runs compare equal)."""
        self._pending_arrivals = 0
        self._recovering: list[tuple[float, list[Request]]] = []
        """(fault time, displaced requests) sets not yet fully re-admitted."""
        self._step_hook = None
        """Optional ``(gpu_id, engine, report) -> None`` called after each
        step's finish/evict handling — the disaggregated subsystem's
        export/drain hook. ``None`` keeps the colocated hot loop at one
        falsy attribute test per step."""

    @property
    def now(self) -> float:
        """The simulated clock — what the serving bridge warps to wall time."""
        return self.loop.now

    # ------------------------------------------------------------------
    def run(self, trace: Trace, until: float | None = None) -> SimulationResult:
        requests = requests_from_trace(trace)
        for req in requests:
            self._requests[req.request_id] = req
            self.schedule_arrival(req)
        cfg = self.scheduler.config
        if cfg.consolidation:
            self.loop.schedule(cfg.migration_interval, self._migration_tick)
        if self.prefetcher is not None:
            self.loop.schedule(0.0, self._prefetch_tick)
        if self.fault_injector is not None:
            self.fault_injector.arm(self.loop, self._apply_fault)
        end = self.loop.run(until=until)
        self._drain_adapter_events()
        return SimulationResult(
            duration=end,
            metrics=self.metrics,
            requests=requests,
            num_migrations=self.scheduler.num_migrations,
            events_processed=self.loop.processed,
        )

    # ------------------------------------------------------------------
    def schedule_arrival(self, req: Request, at: "float | None" = None) -> None:
        """Register one future request arrival on the event loop.

        ``at`` overrides the spec's arrival time — the frontend's retry
        path resubmits a request at failure time + backoff, not at its
        original arrival.
        """
        self._pending_arrivals += 1
        time = req.spec.arrival_time if at is None else at
        self.loop.schedule(time, self._make_arrival(req))

    def work_remaining(self) -> bool:
        """Whether any request is still queued, running, or yet to arrive.

        Periodic ticks (migration, autoscaling) key their rescheduling on
        this — not on ``loop.pending``, which would count the ticks
        themselves and livelock the loop.
        """
        if self._pending_arrivals > 0 or self.scheduler.queue_depth > 0:
            return True
        return any(not e.is_idle for e in self.scheduler.engines.values())

    def _make_arrival(self, req: Request):
        def arrival(now: float) -> None:
            self._pending_arrivals -= 1
            if req.state.is_terminal:
                # Cancelled (or failed) before the simulated arrival: the
                # stale event must not reach the scheduler — submitting a
                # CANCELLED request used to crash mark_running and with it
                # the whole event loop.
                return
            self.metrics.record_arrival(now)
            if self.tracer is not None:
                self.tracer.emit(
                    now, EventKind.SUBMIT, req.request_id,
                    lora=req.lora_id, prompt=req.spec.prompt_len,
                    response=req.spec.response_len, retries=req.num_retries,
                )
            if self.registry is not None and req.lora_id in self.registry:
                self.registry.record_request(req.lora_id, now)
            if not self.scheduler.engines:
                self._shed(req, now, "shed: no GPUs in the pool")
                return
            gpu = self.scheduler.submit(req, now)
            if gpu is not None:
                self._kick(gpu, now)

        return arrival

    # ------------------------------------------------------------------
    # Cancellation (user disconnect — frontends call this)
    # ------------------------------------------------------------------
    def cancel(
        self, request: Request, now: "float | None" = None, reason: str = "user"
    ) -> None:
        """Cancel a request wherever it is, then re-admit queued work.

        The drain kick is load-bearing: cancelling the last running request
        frees batch/KvCache capacity, but no step report fires for it, so
        without an explicit drain the FCFS queue would stay stranded until
        some other request finished — forever, if none was running.
        """
        now = self.loop.now if now is None else now
        gpu = self.scheduler.cancel(request)
        if self.tracer is not None:
            self.tracer.emit(
                now, EventKind.CANCEL, request.request_id, gpu, reason=reason
            )
        placed = self.scheduler.drain_queue(now)
        for gid in set(placed):
            self._kick(gid, now)

    def _prefetch_tick(self, now: float) -> None:
        self.prefetcher.tick(now)
        if self.work_remaining():
            self.loop.schedule(
                now + self.prefetcher.config.interval, self._prefetch_tick
            )

    def _drain_adapter_events(self) -> None:
        """Fold every engine loader's adapter event log into the metrics."""
        events = []
        for engine in self.scheduler.engines.values():
            drain = getattr(getattr(engine, "loader", None), "drain_events", None)
            if drain is not None:
                events.extend(drain())
        if events:
            self.metrics.ingest_adapter_events(events)

    def _migration_tick(self, now: float) -> None:
        moved = self.scheduler.consolidate(now)
        if moved:
            for gid in self.scheduler.engines:
                self._kick(gid, now)
        if self.work_remaining():
            self.loop.schedule(
                now + self.scheduler.config.migration_interval, self._migration_tick
            )

    def _kick(self, gpu_id: str, now: float) -> None:
        """Ensure a step event is scheduled for an idle-but-loaded GPU."""
        if self._gpu_busy[gpu_id]:
            return
        engine = self.scheduler.engines[gpu_id]
        if engine.is_idle:
            return
        self._gpu_busy[gpu_id] = True
        self._step_handles[gpu_id] = self.loop.schedule(
            now, self._step_action(gpu_id)
        )

    def _step_action(self, gpu_id: str):
        """The cached step closure for one GPU (see ``_step_actions``)."""
        action = self._step_actions.get(gpu_id)
        if action is None:
            action = self._step_actions[gpu_id] = self._make_step(gpu_id)
        return action

    def _make_step(self, gpu_id: str):
        def step(now: float) -> None:
            self._step_handles.pop(gpu_id, None)
            while True:
                engine = self.scheduler.engines.get(gpu_id)
                if engine is None or not getattr(engine, "alive", True):
                    # The GPU crashed (or was released) after this step event
                    # was armed; its requests were already re-placed.
                    self._gpu_busy.pop(gpu_id, None)
                    return
                # Window-start merge: this tick is already paid for (its
                # event just fired, or the gen-1 continuation advanced to
                # it), and when other engines' decode ticks interleave
                # with ours the merge lane replays the whole window in
                # pop order instead of stepping scalar, one event each.
                if (
                    self._vector_lane
                    and self._step_handles
                    and self._step_hook is None
                    and not self._recovering
                    and engine.fast_path
                    and engine.steady_ready()
                ):
                    merged = self._vector.try_merge(gpu_id, engine, now, entry=True)
                    if merged:
                        self.inline_steps += merged
                        return
                report = engine.step(now)
                if report is None:
                    # Blocked on an in-flight LoRA load: wake when it lands.
                    self._gpu_busy[gpu_id] = False
                    wake = engine.next_ready_time()
                    if wake is not None and not engine.is_idle:
                        self._gpu_busy[gpu_id] = True
                        self._step_handles[gpu_id] = self.loop.schedule(
                            max(wake, now), self._step_action(gpu_id)
                        )
                    return

                end = report.end
                self.metrics.record_step(
                    gpu_id, report.start, report.tokens_generated, report.batch_size
                )
                if report.finished or report.evicted:
                    for rid in report.evicted:
                        target = self.scheduler.submit(self._requests[rid], end)
                        if target is not None:
                            self._kick(target, end)
                    placed = self.scheduler.drain_queue(end)
                    for gid in set(placed):
                        self._kick(gid, end)

                if self._step_hook is not None:
                    self._step_hook(gpu_id, engine, report)

                if engine.is_idle:
                    self._gpu_busy[gpu_id] = False
                    if self._recovering:
                        self._check_recoveries(end)
                    return

                # This GPU's next step is due at `end`. The fast lane runs
                # it inline when it would be the very next event anyway:
                # strictly earlier than every pending event (a tie loses to
                # the already-enqueued event by seq order) and inside the
                # loop's until/max_events budget. Any interleaved arrival,
                # fault, kick or migration tick lands in the queue first and
                # forces the general path, so coalescing cannot reorder
                # cross-cutting events.
                peek = self.loop.peek_time()
                if self.fast_path:
                    # Gen-2 vectorized lanes: when the engine is armed for
                    # steady decode, price a whole run of future steps in
                    # one set of array ops and commit however many the
                    # event window and loop budget admit. Each committed
                    # step is identical to a single inline steady step —
                    # the run is capped so no finish, eviction or
                    # headroom fallback can occur inside it — so this
                    # only changes how many Python iterations the same
                    # simulation takes. Hooked (disaggregated) and
                    # mid-recovery simulations keep the per-step lane:
                    # their bookkeeping observes individual steps.
                    vector_ok = (
                        self._vector_lane
                        and self._step_hook is None
                        and not self._recovering
                        and engine.fast_path
                    )
                    if peek is None or end < peek:
                        if vector_ok:
                            starts = engine.steady_run_candidate(end, peek)
                            if starts is not None:
                                n = self.loop.try_advance_run(starts)
                                if n:
                                    end, batch = engine.commit_steady_run(n)
                                    self.metrics.record_step_run(
                                        gpu_id, starts[:n], batch, batch
                                    )
                                    self.inline_steps += n
                                    peek = self.loop.peek_time()
                        if (
                            peek is None or end < peek
                        ) and self.loop.try_advance(end):
                            self.inline_steps += 1
                            if self._recovering:
                                self._check_recoveries(end)
                            now = end
                            continue
                    elif vector_ok:
                        # Dense regime: another engine's decode tick is
                        # due before this one's, so the single-engine
                        # window is empty. Replay the interleaved ticks
                        # of every steady engine through the merge lane;
                        # on success all successor events (this engine's
                        # included) are scheduled and this action is done.
                        merged = self._vector.try_merge(gpu_id, engine, end)
                        if merged:
                            self.inline_steps += merged
                            return
                self._step_handles[gpu_id] = self.loop.schedule(
                    end, self._step_action(gpu_id)
                )
                if self._recovering:
                    self._check_recoveries(end)
                return

        return step

    # ------------------------------------------------------------------
    # Fault application and recovery (docs/faults.md)
    # ------------------------------------------------------------------
    def _apply_fault(self, spec: FaultSpec, now: float) -> "tuple[str | None, bool]":
        """Apply one injected fault; returns (target gpu, applied?)."""
        inj = self.fault_injector
        engines = self.scheduler.engines
        if spec.kind is FaultKind.GPU_CRASH:
            gpu_id = spec.gpu_id or inj.pick_gpu(engines)
            engine = engines.get(gpu_id) if gpu_id is not None else None
            if engine is None or not getattr(engine, "alive", True):
                return gpu_id, False
            if len(engines) == 1 and not inj.allow_last_gpu_crash:
                return gpu_id, False
            self.metrics.record_fault(now)
            displaced = self.scheduler.fail_engine(gpu_id, now)
            self._gpu_busy.pop(gpu_id, None)
            self._replace_requests(displaced, now)
            return gpu_id, True

        if spec.kind is FaultKind.GPU_SLOWDOWN:
            gpu_id = spec.gpu_id or inj.pick_gpu(engines)
            engine = engines.get(gpu_id) if gpu_id is not None else None
            if engine is None or not getattr(engine, "alive", True):
                return gpu_id, False
            self.metrics.record_fault(now)
            engine.slowdown_factor = max(engine.slowdown_factor, spec.factor)

            def restore(_t: float, engine=engine) -> None:
                engine.slowdown_factor = 1.0

            self.loop.schedule(now + spec.duration, restore)
            return gpu_id, True

        if spec.kind is FaultKind.PCIE_STALL:
            gpu_id = spec.gpu_id or inj.pick_gpu(engines)
            engine = engines.get(gpu_id) if gpu_id is not None else None
            stall = getattr(getattr(engine, "loader", None), "stall_pcie", None)
            if engine is None or not getattr(engine, "alive", True) or stall is None:
                return gpu_id, False
            self.metrics.record_fault(now)
            stall(now, spec.duration)
            # Step events armed on the pre-stall ready time fire early,
            # see the load still in flight, and re-arm on the new time —
            # but only if one was armed at all; kick to be safe.
            self._kick(gpu_id, now)
            return gpu_id, True

        if spec.kind is FaultKind.ADAPTER_LOAD_FAIL:
            gpu_id, lora_id = self._pick_load_failure(spec, now)
            if gpu_id is None or lora_id is None:
                return gpu_id, False
            engine = engines[gpu_id]
            self.metrics.record_fault(now)
            # Displace the pending requests waiting on the failed copy
            # (they hold the only pins an in-flight adapter can have),
            # then drop the entry so a re-placement reissues the load.
            victims = [
                r
                for r in engine.all_requests()
                if r.needs_prefill and r.lora_id == lora_id
            ]
            for req in victims:
                engine.cancel(req.request_id, requeue=True)
            engine.loader.fail_load(lora_id, now)
            self._replace_requests(victims, now)
            return gpu_id, True

        if spec.kind is FaultKind.KV_TRANSFER_FAIL:
            return self._fail_transfer(spec, now)

        raise ValueError(f"unknown fault kind {spec.kind!r}")

    def _fail_transfer(self, spec: FaultSpec, now: float) -> "tuple[str | None, bool]":
        """Lose one in-flight KV handoff. The colocated simulator has no
        transfers, so the fault is dropped (``applied=False``); the
        disaggregated simulator overrides this."""
        return spec.gpu_id, False

    def _pick_load_failure(
        self, spec: FaultSpec, now: float
    ) -> "tuple[str | None, str | None]":
        """Resolve the (gpu, adapter) target of an ADAPTER_LOAD_FAIL."""
        inj = self.fault_injector
        engines = self.scheduler.engines
        if spec.gpu_id is not None:
            candidates = {spec.gpu_id: engines.get(spec.gpu_id)}
        else:
            candidates = {
                gid: e
                for gid, e in engines.items()
                if getattr(e, "alive", True)
                and getattr(getattr(e, "loader", None), "inflight_models", None)
                and e.loader.inflight_models(now)
            }
        if not candidates or any(e is None for e in candidates.values()):
            return spec.gpu_id, None
        gpu_id = spec.gpu_id or inj.pick_gpu(candidates, prefer_busy=False)
        engine = candidates[gpu_id]
        lora_id = spec.lora_id or inj.pick_inflight_lora(engine, now)
        return gpu_id, lora_id

    def _replace_requests(self, displaced: "list[Request]", now: float) -> None:
        """Re-place requests a fault knocked off their GPU (§5.3 re-prefill),
        shedding only when no surviving capacity remains."""
        if not displaced:
            return
        if not self.scheduler.engines:
            for req in displaced + self.scheduler.drain_all_queued():
                self._shed(req, now, "shed: no GPUs in the pool")
            return
        for req in displaced:
            self.metrics.record_replacement(now)
            gpu = self.scheduler.submit(req, now)
            if gpu is not None:
                self._kick(gpu, now)
        placed = self.scheduler.drain_queue(now)
        for gid in set(placed):
            self._kick(gid, now)
        self._recovering.append((now, list(displaced)))
        self._check_recoveries(now)

    def _shed(self, request: Request, now: float, reason: str) -> None:
        request.mark_failed(reason)
        self.metrics.record_shed(now)
        if self.tracer is not None:
            self.tracer.emit(
                now, EventKind.SHED, request.request_id, reason=reason
            )

    def _check_recoveries(self, now: float) -> None:
        """Record recovery latency once a fault's displaced set is fully
        re-admitted (no survivor still waiting in the FCFS queue)."""
        still_pending = []
        for fault_time, reqs in self._recovering:
            if any(r.state is RequestState.QUEUED for r in reqs):
                still_pending.append((fault_time, reqs))
            else:
                self.metrics.record_recovery(now, now - fault_time)
        self._recovering = still_pending
