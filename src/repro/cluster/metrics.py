"""Time-series metrics for cluster experiments (the three panels of Fig 13,
plus the adapter-lifecycle panels the tiered cache ablation plots).

Every counter here also feeds a per-run
:class:`~repro.obs.metrics.MetricsRegistry` under the unified ``repro_``
namespace, so one registry snapshot (JSON or Prometheus text) covers the
cluster, adapter and fault counters that used to live in three places.
Both the time series and the registry are *instance* state created in
``__init__`` — nothing module-level survives a run, so two back-to-back
simulations report identical numbers (tests/test_metrics_parity.py's
reset-isolation test pins this)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.adapters.registry import Tier
from repro.obs.metrics import MetricsRegistry
from repro.utils.fastpath import coarse_dt as _coarse_dt_env


class TimeSeries:
    """Sparse (time, value) samples with bucketed aggregation.

    Storage is a pair of growable ``float64`` arrays (amortised-O(1)
    appends, O(run) bulk :meth:`extend`) rather than Python lists — the
    per-step recording path is hot enough in million-request runs that
    list-of-float boxing dominated. ``times``/``values`` expose trimmed
    array views; equality compares contents, so differential tests keep
    their ``series_a == series_b`` shape.
    """

    __slots__ = ("_times", "_values", "_n")

    def __init__(self) -> None:
        self._times = np.empty(16, dtype=np.float64)
        self._values = np.empty(16, dtype=np.float64)
        self._n = 0

    @property
    def times(self) -> np.ndarray:
        return self._times[: self._n]

    @property
    def values(self) -> np.ndarray:
        return self._values[: self._n]

    def _grow(self, need: int) -> None:
        cap = len(self._times)
        if need <= cap:
            return
        while cap < need:
            cap *= 2
        self._times = np.resize(self._times, cap)
        self._values = np.resize(self._values, cap)

    def record(self, t: float, v: float) -> None:
        n = self._n
        if n and t < self._times[n - 1]:
            raise ValueError(
                f"samples must be time-ordered: {t} < {self._times[n - 1]}"
            )
        self._grow(n + 1)
        self._times[n] = t
        self._values[n] = v
        self._n = n + 1

    def record_unordered(self, t: float, v: float) -> None:
        """Insert a sample keeping time order.

        The SLO router records at two interleaved clocks: loop events,
        and step-completion times the fast path's inline coalescing runs
        ahead of the loop. The occasional out-of-order sample pays an
        O(n) shift; ties keep insertion order so replays stay stable.
        """
        n = self._n
        if not n or t >= self._times[n - 1]:
            self.record(t, v)
            return
        idx = int(np.searchsorted(self._times[:n], t, side="right"))
        self._grow(n + 1)
        self._times[idx + 1 : n + 1] = self._times[idx:n]
        self._values[idx + 1 : n + 1] = self._values[idx:n]
        self._times[idx] = t
        self._values[idx] = v
        self._n = n + 1

    def extend(self, times, values) -> None:
        """Bulk-append an already time-ordered run of samples."""
        k = len(times)
        if k == 0:
            return
        times = np.asarray(times, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if np.any(times[1:] < times[:-1]) or (
            self._n and times[0] < self._times[self._n - 1]
        ):
            raise ValueError("bulk samples must be time-ordered")
        n = self._n
        self._grow(n + k)
        self._times[n : n + k] = times
        self._values[n : n + k] = values
        self._n = n + k

    def __len__(self) -> int:
        return self._n

    def __eq__(self, other) -> bool:
        if not isinstance(other, TimeSeries):
            return NotImplemented
        return np.array_equal(self.times, other.times) and np.array_equal(
            self.values, other.values
        )

    def __repr__(self) -> str:
        return f"TimeSeries(n={self._n})"

    def bucket_sum(self, bucket: float, duration: float) -> "list[tuple[float, float]]":
        """Sum of values per bucket — e.g. tokens/s when divided by bucket."""
        return self._bucket(bucket, duration, np.sum)

    def bucket_mean(self, bucket: float, duration: float) -> "list[tuple[float, float]]":
        return self._bucket(bucket, duration, lambda a: float(np.mean(a)) if len(a) else 0.0)

    def _bucket(self, bucket: float, duration: float, agg) -> "list[tuple[float, float]]":
        if bucket <= 0 or duration <= 0:
            raise ValueError("bucket and duration must be positive")
        edges = np.arange(0.0, duration + bucket, bucket)
        times = self.times
        values = self.values
        # ``times`` is sorted (record enforces it), so one searchsorted pass
        # finds every bucket boundary: O(samples + buckets) instead of one
        # boolean mask per bucket. Each slice holds exactly the samples in
        # [lo, hi), in recording order, so aggregates are bit-identical to
        # the masked version.
        cuts = np.searchsorted(times, edges, side="left")
        out = []
        for i in range(len(edges) - 1):
            out.append(
                (float(edges[i]), float(agg(values[cuts[i]:cuts[i + 1]])))
            )
        return out

    def value_at(self, t: float) -> float:
        """Step-function lookup: the last recorded value at or before ``t``."""
        i = int(np.searchsorted(self.times, t, side="right")) - 1
        return float(self._values[i]) if i >= 0 else 0.0


#: Deadline-headroom buckets (seconds). Deadlines are sub-second, so the
#: interesting resolution is around zero; negative buckets keep the
#: expected-miss placements distinguishable from comfortable admits.
SLO_HEADROOM_BUCKETS = (
    -1.0, -0.5, -0.1, 0.0, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


@dataclass
class ClusterMetrics:
    """Everything Fig 13 plots, collected during one simulation run."""

    arrivals: TimeSeries = field(default_factory=TimeSeries)
    """(time, 1) per request arrival — bucket_sum/bucket = request rate."""
    tokens: TimeSeries = field(default_factory=TimeSeries)
    """(step end, tokens generated that step) — bucket_sum/bucket = tok/s."""
    gpu_batch_size: dict[str, TimeSeries] = field(default_factory=dict)
    """Per-GPU (step start, invocation batch size) — Fig 13 lower panel."""
    adapter_loads: TimeSeries = field(default_factory=TimeSeries)
    """(time, hit tier) per demand adapter load: 2 GPU, 1 HOST, 0 DISK."""
    adapter_evictions: TimeSeries = field(default_factory=TimeSeries)
    """(time, 1) per adapter demoted out of a GPU pool."""
    prefetch_issues: TimeSeries = field(default_factory=TimeSeries)
    """(time, 1) per speculative GPU promotion issued."""
    prefetch_hits: TimeSeries = field(default_factory=TimeSeries)
    """(time, 1) per prefetched adapter a later demand load actually used."""
    pcie_busy: TimeSeries = field(default_factory=TimeSeries)
    """(copy start, copy seconds) per host->GPU transfer — busy time."""
    faults_injected: TimeSeries = field(default_factory=TimeSeries)
    """(time, 1) per fault the injector actually applied."""
    replacements: TimeSeries = field(default_factory=TimeSeries)
    """(time, 1) per in-flight request re-placed after a fault (§5.3
    evict + re-prefill used as the recovery mechanism)."""
    sheds: TimeSeries = field(default_factory=TimeSeries)
    """(time, 1) per request shed with a FAILED terminal state because no
    surviving capacity could ever absorb it."""
    recoveries: TimeSeries = field(default_factory=TimeSeries)
    """(recovery time, seconds since the fault) — one sample per fault
    whose displaced requests all reached a GPU (or terminal state) again."""
    kv_transfers: TimeSeries = field(default_factory=TimeSeries)
    """(transfer completion time, transfer seconds) per paged KV handoff
    between the prefill and decode pools (disaggregated mode)."""
    kv_transfer_failures: TimeSeries = field(default_factory=TimeSeries)
    """(time, 1) per KV handoff lost to an injected transfer fault; the
    request falls back to the §5.3 re-prefill path."""
    colocated_fallbacks: TimeSeries = field(default_factory=TimeSeries)
    """(time, 1) per prefilled request kept on its prefill GPU because the
    decode pool was saturated (disaggregated mode's escape hatch)."""
    slo_admits: TimeSeries = field(default_factory=TimeSeries)
    """(placement time, modelled deadline headroom in seconds) per request
    the SLO router placed — negative headroom means a best-effort
    placement the model expected to miss."""
    slo_sheds: TimeSeries = field(default_factory=TimeSeries)
    """(time, 1) per request the SLO router refused because no engine
    could meet its deadline even under the optimistic floor."""
    slo_outcomes: TimeSeries = field(default_factory=TimeSeries)
    """(terminal time, 1 attained / 0 missed) per request scored against
    its TTFT/ITL deadlines at run end."""
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    """The unified per-run registry every record_* call also feeds (the
    tests/test_metrics_parity.py contract keeps both views exactly equal)."""
    coarse_dt: float | None = None
    """Coarse time-step for statistics-only runs: when > 0, bulk step
    recordings collapse per-step series samples into ``coarse_dt``-wide
    buckets (sums for tokens, last-value for batch size). Registry totals
    stay exact; only series *density* changes. ``None`` reads the
    ``REPRO_COARSE_DT`` environment switch; ``0`` forces exact sampling."""

    def __post_init__(self) -> None:
        if self.coarse_dt is None:
            self.coarse_dt = _coarse_dt_env()
        if not self.coarse_dt or self.coarse_dt <= 0:
            self.coarse_dt = None
        # Declare the full instrument schema up front so a snapshot of an
        # idle run still exposes every metric (at zero) rather than a
        # namespace that grows as events happen to occur.
        r = self.registry
        r.counter("requests_arrived_total", "request arrivals at the cluster")
        # Bound handles for record_step, the per-invocation hot path: the
        # registry lookup + label validation per call would otherwise cost
        # more than the recording itself.
        self._tokens_counter = r.counter(
            "tokens_generated_total", "tokens generated by engine steps"
        )
        self._steps_counter = r.counter(
            "engine_steps_total", "batched invocations per GPU", labels=("gpu",)
        )
        self._batch_gauge = r.gauge(
            "gpu_batch_size", "latest invocation batch size", labels=("gpu",)
        )
        r.counter("adapter_loads_total", "demand adapter loads by hit tier",
                  labels=("tier",))
        r.counter("adapter_evictions_total",
                  "adapters demoted out of a GPU pool")
        r.counter("adapter_prefetch_issues_total",
                  "speculative GPU promotions")
        r.counter("adapter_prefetch_hits_total",
                  "prefetched adapters a demand load used")
        r.counter("pcie_busy_seconds_total", "host->GPU link busy time")
        r.histogram("pcie_transfer_seconds",
                    "per-transfer host->GPU copy time")
        r.counter("faults_injected_total", "faults the injector applied")
        r.counter("replacements_total",
                  "in-flight requests re-placed after a fault")
        r.counter("sheds_total", "requests shed with a FAILED terminal state")
        r.histogram("recovery_latency_seconds",
                    "seconds from fault injection to full re-admission")
        r.counter("kv_transfers_total",
                  "paged KV handoffs between prefill and decode pools")
        r.counter("kv_transfer_bytes_total",
                  "bytes of KV history moved over the interconnect")
        r.histogram("kv_transfer_seconds", "per-handoff interconnect time")
        r.counter("kv_transfer_failures_total",
                  "KV handoffs lost to transfer faults (re-prefill)")
        r.counter("disagg_colocated_fallbacks_total",
                  "prefilled requests decoded in place: decode pool full")
        r.counter("slo_attained_total",
                  "requests that met their TTFT and ITL deadlines")
        r.counter("slo_missed_total",
                  "requests that blew a deadline or never finished")
        r.counter("slo_sheds_total",
                  "requests the SLO router refused: no feasible placement")
        r.histogram("slo_deadline_headroom_seconds",
                    "modelled TTFT headroom at placement (negative = the "
                    "cost model already expected a miss)",
                    buckets=SLO_HEADROOM_BUCKETS)

    def record_arrival(self, t: float) -> None:
        self.arrivals.record(t, 1.0)
        self.registry.counter(
            "requests_arrived_total", "request arrivals at the cluster"
        ).inc()

    def record_step(self, gpu_id: str, start: float, tokens: int, batch_size: int) -> None:
        ftokens = float(tokens)
        fbatch = float(batch_size)
        self.tokens.record(start, ftokens)
        series = self.gpu_batch_size.get(gpu_id)
        if series is None:
            series = self.gpu_batch_size.setdefault(gpu_id, TimeSeries())
        series.record(start, fbatch)
        key = (gpu_id,)
        self._tokens_counter.inc_key((), ftokens)
        self._steps_counter.inc_key(key)
        self._batch_gauge.set_key(key, fbatch)

    def record_step_run(
        self, gpu_id: str, starts: np.ndarray, tokens_per_step: int,
        batch_size: int,
    ) -> None:
        """Bulk :meth:`record_step` for a steady decode run.

        ``starts`` holds the K step-start times of a run in which every
        step generated ``tokens_per_step`` tokens on a constant batch of
        ``batch_size``. Equivalent to K ``record_step`` calls: the series
        get the same K samples (token counts and step counts are small
        integers, so K unit/``tokens_per_step`` float adds equal one add
        of the product exactly), and the gauge keeps the last value.

        Under :attr:`coarse_dt` the two series are downsampled: one
        sample per dt-bucket carrying the bucket's token *sum* (so any
        ``bucket_sum`` at resolution >= dt is unchanged) and the bucket's
        last batch size. Registry totals are never coarsened.
        """
        k = len(starts)
        if k == 0:
            return
        ftokens = float(tokens_per_step)
        fbatch = float(batch_size)
        dt = self.coarse_dt
        if dt is None:
            self.tokens.extend(starts, np.full(k, ftokens))
            series = self.gpu_batch_size.get(gpu_id)
            if series is None:
                series = self.gpu_batch_size.setdefault(gpu_id, TimeSeries())
            series.extend(starts, np.full(k, fbatch))
        else:
            bucket_ids = np.floor_divide(starts, dt)
            _, first = np.unique(bucket_ids, return_index=True)
            # Stamp each bucket's sample at the bucket's *first* step time
            # (not the bucket start): monotone past any exact scalar
            # sample recorded earlier in the same bucket, and still inside
            # the bucket, so bucket_sum at resolution >= dt is unchanged.
            bucket_times = starts[first]
            counts = np.diff(np.append(first, k))
            self.tokens.extend(bucket_times, counts * ftokens)
            series = self.gpu_batch_size.get(gpu_id)
            if series is None:
                series = self.gpu_batch_size.setdefault(gpu_id, TimeSeries())
            series.extend(bucket_times, np.full(len(first), fbatch))
        key = (gpu_id,)
        self._tokens_counter.inc_key((), ftokens * k)
        self._steps_counter.inc_key(key, float(k))
        self._batch_gauge.set_key(key, fbatch)

    def record_step_merge(
        self,
        times: np.ndarray,
        tokens_per_step: np.ndarray,
        per_gpu,
    ) -> None:
        """Bulk :meth:`record_step` for a cross-engine merged decode run.

        ``times``/``tokens_per_step`` are the pop-ordered (non-decreasing)
        step samples across *all* merged engines — exactly the sequence of
        ``record_step`` calls the per-event path would have made against
        the global token series. ``per_gpu`` is an iterable of
        ``(gpu_id, starts, batch_size)`` triples carrying each engine's
        own (already ascending) step starts for its per-GPU series and
        registry counters.

        Under :attr:`coarse_dt` both series families are downsampled to
        one sample per dt-bucket (token sums, last batch size); registry
        totals are never coarsened.
        """
        k = len(times)
        if k == 0:
            return
        dt = self.coarse_dt
        if dt is None:
            self.tokens.extend(times, tokens_per_step)
        else:
            bucket_ids = np.floor_divide(times, dt)
            _, first = np.unique(bucket_ids, return_index=True)
            self.tokens.extend(
                times[first],
                np.add.reduceat(tokens_per_step, first),
            )
        for gpu_id, starts, batch_size in per_gpu:
            n = len(starts)
            if n == 0:
                continue
            fbatch = float(batch_size)
            series = self.gpu_batch_size.get(gpu_id)
            if series is None:
                series = self.gpu_batch_size.setdefault(gpu_id, TimeSeries())
            if dt is None:
                series.extend(starts, np.full(n, fbatch))
            else:
                bucket_ids = np.floor_divide(starts, dt)
                _, first = np.unique(bucket_ids, return_index=True)
                series.extend(starts[first], np.full(len(first), fbatch))
            key = (gpu_id,)
            self._tokens_counter.inc_key((), fbatch * n)
            self._steps_counter.inc_key(key, float(n))
            self._batch_gauge.set_key(key, fbatch)

    # -- adapter lifecycle ------------------------------------------------
    def record_adapter_load(self, t: float, tier: "Tier | int") -> None:
        self.adapter_loads.record(t, float(int(tier)))
        self.registry.counter(
            "adapter_loads_total", "demand adapter loads by hit tier",
            labels=("tier",),
        ).inc(tier=Tier(int(tier)).name.lower())

    def record_adapter_eviction(self, t: float) -> None:
        self.adapter_evictions.record(t, 1.0)
        self.registry.counter(
            "adapter_evictions_total", "adapters demoted out of a GPU pool"
        ).inc()

    def record_prefetch_issue(self, t: float) -> None:
        self.prefetch_issues.record(t, 1.0)
        self.registry.counter(
            "adapter_prefetch_issues_total", "speculative GPU promotions"
        ).inc()

    def record_prefetch_hit(self, t: float) -> None:
        self.prefetch_hits.record(t, 1.0)
        self.registry.counter(
            "adapter_prefetch_hits_total",
            "prefetched adapters a demand load used",
        ).inc()

    def record_pcie_transfer(self, t: float, duration: float) -> None:
        self.pcie_busy.record(t, float(duration))
        self.registry.counter(
            "pcie_busy_seconds_total", "host->GPU link busy time"
        ).inc(float(duration))
        self.registry.histogram(
            "pcie_transfer_seconds", "per-transfer host->GPU copy time"
        ).observe(float(duration))

    # -- fault tolerance --------------------------------------------------
    def record_fault(self, t: float) -> None:
        self.faults_injected.record(t, 1.0)
        self.registry.counter(
            "faults_injected_total", "faults the injector applied"
        ).inc()

    def record_replacement(self, t: float) -> None:
        self.replacements.record(t, 1.0)
        self.registry.counter(
            "replacements_total",
            "in-flight requests re-placed after a fault",
        ).inc()

    def record_shed(self, t: float) -> None:
        self.sheds.record(t, 1.0)
        self.registry.counter(
            "sheds_total", "requests shed with a FAILED terminal state"
        ).inc()

    def record_recovery(self, t: float, latency: float) -> None:
        self.recoveries.record(t, float(latency))
        self.registry.histogram(
            "recovery_latency_seconds",
            "seconds from fault injection to full re-admission",
        ).observe(float(latency))

    # -- disaggregated prefill/decode ------------------------------------
    def record_kv_transfer(self, t: float, duration: float, nbytes: float) -> None:
        """One paged KV handoff completed at ``t`` after ``duration`` on
        the wire (recorded at completion so the series stays monotone)."""
        self.kv_transfers.record(t, float(duration))
        self.registry.counter(
            "kv_transfers_total",
            "paged KV handoffs between prefill and decode pools",
        ).inc()
        self.registry.counter(
            "kv_transfer_bytes_total",
            "bytes of KV history moved over the interconnect",
        ).inc(float(nbytes))
        self.registry.histogram(
            "kv_transfer_seconds", "per-handoff interconnect time"
        ).observe(float(duration))

    def record_kv_transfer_failure(self, t: float) -> None:
        self.kv_transfer_failures.record(t, 1.0)
        self.registry.counter(
            "kv_transfer_failures_total",
            "KV handoffs lost to transfer faults (re-prefill)",
        ).inc()

    def record_colocated_fallback(self, t: float) -> None:
        self.colocated_fallbacks.record(t, 1.0)
        self.registry.counter(
            "disagg_colocated_fallbacks_total",
            "prefilled requests decoded in place: decode pool full",
        ).inc()

    # -- SLO control plane -------------------------------------------------
    def record_slo_admit(self, t: float, headroom: float) -> None:
        """SLO router placed a request with ``headroom`` seconds of
        modelled TTFT slack (may be negative for best-effort placements)."""
        self.slo_admits.record_unordered(t, float(headroom))
        self.registry.histogram(
            "slo_deadline_headroom_seconds",
            "modelled TTFT headroom at placement (negative = the "
            "cost model already expected a miss)",
            buckets=SLO_HEADROOM_BUCKETS,
        ).observe(float(headroom))

    def record_slo_shed(self, t: float) -> None:
        self.slo_sheds.record_unordered(t, 1.0)
        self.registry.counter(
            "slo_sheds_total",
            "requests the SLO router refused: no feasible placement",
        ).inc()

    def record_slo_outcome(self, t: float, attained: bool) -> None:
        self.slo_outcomes.record(t, 1.0 if attained else 0.0)
        if attained:
            self.registry.counter(
                "slo_attained_total",
                "requests that met their TTFT and ITL deadlines",
            ).inc()
        else:
            self.registry.counter(
                "slo_missed_total",
                "requests that blew a deadline or never finished",
            ).inc()

    def ingest_adapter_events(self, events) -> None:
        """Fold store event logs (see
        :class:`~repro.adapters.store.AdapterEvent`) into the time series.

        Events from several GPU stores interleave arbitrarily; they are
        sorted here so the monotone-time invariant of each series holds.
        """
        for ev in sorted(events):
            if ev.kind == "load":
                self.record_adapter_load(ev.time, int(ev.value))
            elif ev.kind == "evict":
                self.record_adapter_eviction(ev.time)
            elif ev.kind == "prefetch_issue":
                self.record_prefetch_issue(ev.time)
            elif ev.kind == "prefetch_hit":
                self.record_prefetch_hit(ev.time)
            elif ev.kind == "pcie":
                self.record_pcie_transfer(ev.time, ev.value)
            else:
                raise ValueError(f"unknown adapter event kind {ev.kind!r}")

    # -- series -----------------------------------------------------------
    def request_rate_series(self, bucket: float, duration: float):
        return [(t, v / bucket) for t, v in self.arrivals.bucket_sum(bucket, duration)]

    def throughput_series(self, bucket: float, duration: float):
        return [(t, v / bucket) for t, v in self.tokens.bucket_sum(bucket, duration)]

    def batch_size_series(self, gpu_id: str, bucket: float, duration: float):
        series = self.gpu_batch_size.get(gpu_id, TimeSeries())
        return series.bucket_mean(bucket, duration)

    def pcie_utilization_series(self, bucket: float, duration: float):
        """Fraction of each bucket the host->GPU link spent copying weights."""
        return [
            (t, v / bucket) for t, v in self.pcie_busy.bucket_sum(bucket, duration)
        ]

    # -- summaries ---------------------------------------------------------
    def total_tokens(self) -> float:
        return float(np.sum(self.tokens.values)) if len(self.tokens) else 0.0

    def adapter_hit_counts(self) -> dict[str, int]:
        """Demand loads by the tier that satisfied them."""
        counts = {"gpu": 0, "host": 0, "disk": 0}
        names = {Tier.GPU: "gpu", Tier.HOST: "host", Tier.DISK: "disk"}
        for v in self.adapter_loads.values:
            counts[names[Tier(int(v))]] += 1
        return counts

    def adapter_gpu_hit_rate(self) -> float:
        """Fraction of demand loads that found the adapter GPU-resident."""
        if not len(self.adapter_loads):
            return 0.0
        counts = self.adapter_hit_counts()
        return counts["gpu"] / len(self.adapter_loads.values)

    def eviction_count(self) -> int:
        return len(self.adapter_evictions)

    def prefetch_accuracy(self) -> float:
        """Fraction of speculative promotions a demand load later used."""
        if not len(self.prefetch_issues):
            return 0.0
        return len(self.prefetch_hits) / len(self.prefetch_issues)

    def pcie_busy_seconds(self) -> float:
        return float(np.sum(self.pcie_busy.values)) if len(self.pcie_busy) else 0.0

    def fault_count(self) -> int:
        return len(self.faults_injected)

    def replacement_count(self) -> int:
        return len(self.replacements)

    def shed_count(self) -> int:
        return len(self.sheds)

    def mean_recovery_latency(self) -> float:
        """Mean seconds from fault injection until every displaced request
        was running again (or reached a terminal state)."""
        if not len(self.recoveries):
            return 0.0
        return float(np.mean(self.recoveries.values))

    def kv_transfer_count(self) -> int:
        return len(self.kv_transfers)

    def kv_transfer_seconds(self) -> float:
        """Total interconnect time spent on KV handoffs."""
        if not len(self.kv_transfers):
            return 0.0
        return float(np.sum(self.kv_transfers.values))

    def kv_transfer_failure_count(self) -> int:
        return len(self.kv_transfer_failures)

    def colocated_fallback_count(self) -> int:
        return len(self.colocated_fallbacks)

    def slo_shed_count(self) -> int:
        return len(self.slo_sheds)

    def slo_attained_count(self) -> int:
        return int(np.sum(self.slo_outcomes.values)) if len(self.slo_outcomes) else 0

    def slo_missed_count(self) -> int:
        return len(self.slo_outcomes) - self.slo_attained_count()

    def slo_attainment(self) -> float:
        """Fraction of scored requests that met both deadlines."""
        if not len(self.slo_outcomes):
            return 0.0
        return self.slo_attained_count() / len(self.slo_outcomes)

    def mean_admit_headroom(self) -> float:
        if not len(self.slo_admits):
            return 0.0
        return float(np.mean(self.slo_admits.values))
