"""Time-series metrics for cluster experiments (the three panels of Fig 13)."""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

import numpy as np


@dataclass
class TimeSeries:
    """Sparse (time, value) samples with bucketed aggregation."""

    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def record(self, t: float, v: float) -> None:
        if self.times and t < self.times[-1]:
            raise ValueError(f"samples must be time-ordered: {t} < {self.times[-1]}")
        self.times.append(t)
        self.values.append(v)

    def __len__(self) -> int:
        return len(self.times)

    def bucket_sum(self, bucket: float, duration: float) -> "list[tuple[float, float]]":
        """Sum of values per bucket — e.g. tokens/s when divided by bucket."""
        return self._bucket(bucket, duration, np.sum)

    def bucket_mean(self, bucket: float, duration: float) -> "list[tuple[float, float]]":
        return self._bucket(bucket, duration, lambda a: float(np.mean(a)) if len(a) else 0.0)

    def _bucket(self, bucket: float, duration: float, agg) -> "list[tuple[float, float]]":
        if bucket <= 0 or duration <= 0:
            raise ValueError("bucket and duration must be positive")
        edges = np.arange(0.0, duration + bucket, bucket)
        times = np.asarray(self.times)
        values = np.asarray(self.values)
        out = []
        for lo, hi in zip(edges[:-1], edges[1:]):
            mask = (times >= lo) & (times < hi)
            out.append((float(lo), float(agg(values[mask]))))
        return out

    def value_at(self, t: float) -> float:
        """Step-function lookup: the last recorded value at or before ``t``."""
        i = bisect.bisect_right(self.times, t) - 1
        return self.values[i] if i >= 0 else 0.0


@dataclass
class ClusterMetrics:
    """Everything Fig 13 plots, collected during one simulation run."""

    arrivals: TimeSeries = field(default_factory=TimeSeries)
    """(time, 1) per request arrival — bucket_sum/bucket = request rate."""
    tokens: TimeSeries = field(default_factory=TimeSeries)
    """(step end, tokens generated that step) — bucket_sum/bucket = tok/s."""
    gpu_batch_size: dict[str, TimeSeries] = field(default_factory=dict)
    """Per-GPU (step start, invocation batch size) — Fig 13 lower panel."""

    def record_arrival(self, t: float) -> None:
        self.arrivals.record(t, 1.0)

    def record_step(self, gpu_id: str, start: float, tokens: int, batch_size: int) -> None:
        self.tokens.record(start, float(tokens))
        self.gpu_batch_size.setdefault(gpu_id, TimeSeries()).record(start, float(batch_size))

    def request_rate_series(self, bucket: float, duration: float):
        return [(t, v / bucket) for t, v in self.arrivals.bucket_sum(bucket, duration)]

    def throughput_series(self, bucket: float, duration: float):
        return [(t, v / bucket) for t, v in self.tokens.bucket_sum(bucket, duration)]

    def batch_size_series(self, gpu_id: str, bucket: float, duration: float):
        series = self.gpu_batch_size.get(gpu_id, TimeSeries())
        return series.bucket_mean(bucket, duration)

    def total_tokens(self) -> float:
        return float(np.sum(self.tokens.values)) if self.tokens.values else 0.0
