"""The Punica cluster scheduler (§5.1, §5.3).

Routing rule for a new (or re-queued) request: among GPUs that (1) have not
reached the max batch size and (2) have enough KvCache memory, pick the one
with the *largest* working set; break ties by highest GPU UUID. If none
qualifies, queue FCFS. The deliberately anti-balancing rule keeps busy GPUs
busy and lets lightly loaded GPUs drain to idle, enabling cluster scale-down.

Consolidation migration: periodically, requests on lightly loaded GPUs are
migrated (cancel + re-add, §5.3) onto busier GPUs that can absorb them,
freeing the source GPU entirely.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.obs.tracer import EventKind, Tracer
from repro.runtime.request import Request, RequestState

DEFAULT_MAX_BATCH_SIZE = 32
"""Fallback when no engine in the pool exposes ``.config`` (test doubles,
exotic backends): the paper's profiled A100 sweet spot (§5.1)."""


@dataclass(frozen=True)
class SchedulerConfig:
    """Cluster scheduling knobs."""

    migration_interval: float = 10.0
    """Seconds between consolidation passes (§3 "periodically migrates")."""
    consolidation: bool = True
    """Disable to ablate migration (bench_ablation_scheduler)."""
    light_load_fraction: float = 0.5
    """A GPU below this fraction of max batch size counts as lightly loaded."""
    routing: str = "pack"
    """"pack" = Punica's largest-working-set rule (§5.1); "spread" = classic
    least-loaded balancing, kept as an ablation of the design choice."""
    locality_aware: bool = True
    """Break working-set ties by adapter residency tier (GPU > HOST > DISK)
    before the highest-UUID rule, so routing prefers GPUs that can skip all
    or part of the adapter load (CaraServe-style locality)."""

    def __post_init__(self) -> None:
        if self.migration_interval <= 0:
            raise ValueError("migration_interval must be positive")
        if not 0.0 < self.light_load_fraction <= 1.0:
            raise ValueError("light_load_fraction must be in (0, 1]")
        if self.routing not in ("pack", "spread"):
            raise ValueError(f"unknown routing policy {self.routing!r}")


class PunicaScheduler:
    """Routes requests over a pool of engines; owns the FCFS wait queue."""

    def __init__(
        self,
        engines: "list",
        config: SchedulerConfig | None = None,
        prefetcher=None,
        tracer: "Tracer | None" = None,
    ):
        if not engines:
            raise ValueError("scheduler needs at least one GPU engine")
        ids = [e.gpu_id for e in engines]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate GPU ids: {ids}")
        self.engines = {e.gpu_id: e for e in engines}
        self.config = config or SchedulerConfig()
        self.prefetcher = prefetcher
        self.tracer = tracer
        """Optional :class:`~repro.obs.tracer.Tracer` receiving QUEUE and
        MIGRATE events (engines emit their own PLACE/step events)."""
        """Optional :class:`~repro.adapters.prefetch.Prefetcher` that gets
        routing hints (queued requests' adapters are staged host-side)."""
        self._queue: list[tuple[float, int, Request]] = []
        self._queue_seq = 0
        self.num_migrations = 0
        self.num_queued_total = 0
        self.migration_hook = None
        """Optional ``(request, source_id, target_id) -> None`` called
        after each consolidation move — the disaggregated simulator uses
        it to keep its colocation bookkeeping consistent under
        role-aware consolidation."""

    # ------------------------------------------------------------------
    # Elastic pool membership (§5.1: allocate/deallocate GPU servers)
    # ------------------------------------------------------------------
    def add_engine(self, engine) -> None:
        """Bring a newly provisioned GPU into the pool."""
        if engine.gpu_id in self.engines:
            raise ValueError(f"GPU {engine.gpu_id} already in the pool")
        self.engines[engine.gpu_id] = engine

    def remove_engine(self, gpu_id: str):
        """Release an *idle* GPU back to the cloud provider."""
        engine = self.engines.get(gpu_id)
        if engine is None:
            raise KeyError(f"GPU {gpu_id} not in the pool")
        if not engine.is_idle:
            raise RuntimeError(f"cannot release busy GPU {gpu_id}")
        if len(self.engines) == 1:
            raise RuntimeError("cannot release the last GPU")
        return self.engines.pop(gpu_id)

    def fail_engine(self, gpu_id: str, now: float) -> "list[Request]":
        """A GPU died: drop it from the pool and return its displaced
        requests (QUEUED with their generated prefix preserved) so the
        caller can re-place them via the §5.3 evict + re-prefill path.

        Unlike :meth:`remove_engine` this succeeds on a *busy* GPU — that
        is the whole point — and may empty the pool (the caller sheds what
        cannot be re-placed).
        """
        engine = self.engines.pop(gpu_id, None)
        if engine is None:
            raise KeyError(f"GPU {gpu_id} not in the pool")
        displaced = engine.fail(now)
        if self.tracer is not None:
            for req in displaced:
                self.tracer.emit(
                    now, EventKind.QUEUE, req.request_id, gpu_id, reason="fault"
                )
        return displaced

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def total_working_set(self) -> int:
        return sum(e.working_set_size for e in self.engines.values())

    def idle_gpus(self) -> list[str]:
        return [gid for gid, e in self.engines.items() if e.is_idle]

    # ------------------------------------------------------------------
    def submit(self, request: Request, now: float) -> "str | None":
        """Route a request; returns the chosen GPU id or None if queued.

        Terminal requests are dropped, not routed: a user may cancel before
        the simulated arrival fires, and routing a CANCELLED request into
        ``engine.add_request`` would crash its ``mark_running`` transition.
        """
        if request.state.is_terminal:
            return None
        gpu = self._route(request)
        if gpu is None:
            heapq.heappush(
                self._queue, (request.spec.arrival_time, self._queue_seq, request)
            )
            self._queue_seq += 1
            self.num_queued_total += 1
            if self.prefetcher is not None:
                self.prefetcher.hint_queued(request.lora_id, now)
            if self.tracer is not None:
                self.tracer.emit(
                    now, EventKind.QUEUE, request.request_id,
                    reason="no_capacity", depth=len(self._queue),
                )
            return None
        self.engines[gpu].add_request(request, now)
        return gpu

    def _adapter_locality(self, engine, request: Request) -> int:
        """Residency tier of the request's adapter on ``engine`` (2 GPU /
        1 HOST / 0 DISK); 0 when disabled or the engine has no tier view."""
        if not self.config.locality_aware:
            return 0
        tier_of = getattr(engine, "adapter_tier", None)
        return tier_of(request.lora_id) if tier_of is not None else 0

    @staticmethod
    def _prefill_capable(engine) -> bool:
        """Whether an engine may run prefills — everything except pure
        decode-pool members (engines without a role are colocated)."""
        return getattr(engine, "role", "both") != "decode"

    @staticmethod
    def _decode_capable(engine) -> bool:
        return getattr(engine, "role", "both") != "prefill"

    def _route(self, request: Request) -> "str | None":
        """§5.1: largest working set among feasible GPUs; ties -> adapter
        locality (GPU-resident beats HOST-staged beats DISK-only), then
        max UUID.

        Under the "spread" ablation the sign of the load term flips to
        least-loaded-first (ties still -> locality, then max UUID), the
        conventional balancing rule the paper argues against for
        consolidation.

        New and re-queued requests need a prefill, so pure decode-pool
        engines are never candidates here; they admit work only through
        :meth:`route_decode`.
        """
        candidates = [
            (e.working_set_size, self._adapter_locality(e, request), gid)
            for gid, e in self.engines.items()
            if self._prefill_capable(e) and e.can_accept(request)
        ]
        if not candidates:
            return None
        if self.config.routing == "pack":
            # lexicographic: working set, then locality, then UUID
            _, _, gpu = max(candidates)
        else:
            load = min(ws for ws, _, _ in candidates)
            _, gpu = max(
                (loc, gid) for ws, loc, gid in candidates if ws == load
            )
        return gpu

    def route_decode(self, request: Request, kv_tokens: int) -> "str | None":
        """Pick the decode GPU for a request whose KV handoff completed.

        CaraServe-style adapter locality leads: a GPU already holding the
        adapter skips the load stall entirely, which on the decode path is
        the dominant admission cost (the KV pages arrive either way). Ties
        fall back to Punica's pack rule (largest working set), then max
        UUID. Returns None when no decode-capable engine can admit the
        imported history right now.
        """
        candidates = [
            (self._adapter_locality(e, request), e.working_set_size, gid)
            for gid, e in self.engines.items()
            if self._decode_capable(e) and e.can_accept_import(request, kv_tokens)
        ]
        if not candidates:
            return None
        _, _, gpu = max(candidates)
        return gpu

    def drain_queue(self, now: float) -> list[str]:
        """Place queued requests FCFS as capacity frees up; head blocks."""
        placed = []
        while self._queue:
            _, _, request = self._queue[0]
            if request.state.is_terminal:
                heapq.heappop(self._queue)
                continue
            gpu = self._route(request)
            if gpu is None:
                break
            heapq.heappop(self._queue)
            self.engines[gpu].add_request(request, now)
            placed.append(gpu)
        return placed

    # ------------------------------------------------------------------
    def handle_evictions(self, request_ids: "list[str]", requests, now: float) -> None:
        """Re-place requests the engine evicted under memory pressure.

        "The scheduling for the evicted request is the same as adding a new
        request" (§5.3).
        """
        for rid in request_ids:
            self.submit(requests[rid], now)

    def cancel(self, request: Request) -> "str | None":
        """User cancellation: drop from whichever GPU or queue holds it.

        Returns the GPU the request was running on (None if it was only
        queued or not yet arrived). Callers that own an event loop must
        drain the FCFS queue afterwards — the freed batch slot and KvCache
        pages admit nobody by themselves (see ClusterSimulator.cancel).
        """
        for gid, engine in self.engines.items():
            if engine.has_request(request.request_id):
                engine.cancel(request.request_id)
                return gid
        # Purge any queue entry eagerly: a later retry may reset this
        # request back to QUEUED, and a stale heap entry would then place
        # it twice. Lazy skipping in drain_queue remains as defense.
        before = len(self._queue)
        self._queue = [
            entry for entry in self._queue
            if entry[2].request_id != request.request_id
        ]
        if len(self._queue) != before:
            heapq.heapify(self._queue)
        request.mark_cancelled()
        return None

    def drain_all_queued(self) -> "list[Request]":
        """Empty the FCFS queue, returning the live requests it held (the
        shed path: the caller marks them FAILED when no capacity remains)."""
        out = [
            r for _, _, r in sorted(self._queue) if not r.state.is_terminal
        ]
        self._queue.clear()
        return out

    # ------------------------------------------------------------------
    def consolidate(self, now: float) -> int:
        """Migrate requests off lightly loaded GPUs onto busier ones.

        Sources are scanned lightest-first; each of their requests moves to
        the busiest other GPU that can accept it (same routing rule as new
        requests). Returns the number of requests migrated.
        """
        if not self.config.consolidation:
            return 0
        moved = 0
        threshold = max(
            1, int(self.config.light_load_fraction * self._max_batch_size())
        )
        order = sorted(
            (e.working_set_size, gid)
            for gid, e in self.engines.items()
            if 0 < e.working_set_size < threshold
        )
        for _, source_id in order:
            source = self.engines[source_id]
            for request in source.all_requests():
                target = self._migration_target(source_id, request)
                if target is None:
                    continue
                if self.tracer is not None:
                    self.tracer.emit(
                        now, EventKind.MIGRATE, request.request_id, source_id,
                        target=target,
                    )
                source.cancel(request.request_id, requeue=True)
                self.engines[target].add_request(request, now)
                moved += 1
                self.num_migrations += 1
                if self.migration_hook is not None:
                    self.migration_hook(request, source_id, target)
        return moved

    def _migration_target(self, source_id: str, request: Request) -> "str | None":
        """Busiest other GPU *of the source's role* that can absorb the
        request and is busier than the source (otherwise migrating would
        un-consolidate). The role-equality requirement makes consolidation
        role-aware: in a disaggregated pool requests consolidate within
        their role pool instead of leaking across the prefill/decode
        split (colocated pools all carry role ``"both"``, so the check is
        an identity there)."""
        source = self.engines[source_id]
        source_role = getattr(source, "role", "both")
        candidates = [
            (e.working_set_size, self._adapter_locality(e, request), gid)
            for gid, e in self.engines.items()
            if gid != source_id
            and getattr(e, "role", "both") == source_role
            and e.working_set_size > source.working_set_size
            and e.can_accept(request)
        ]
        if not candidates:
            return None
        _, _, gpu = max(candidates)
        return gpu

    # ------------------------------------------------------------------
    def _max_batch_size(self) -> int:
        """Largest engine batch size, falling back to the paper default
        when no engine exposes ``.config`` (the empty-generator ValueError
        this used to raise took down consolidation under test doubles)."""
        return max(
            (
                e.config.max_batch_size
                for e in self.engines.values()
                if hasattr(e, "config")
            ),
            default=DEFAULT_MAX_BATCH_SIZE,
        )

    def scaling_hint(self) -> str:
        """Cloud elasticity signal (§5.1): grow, shrink, or hold the pool."""
        max_bs = self._max_batch_size()
        light = [
            e for e in self.engines.values()
            if e.working_set_size < self.config.light_load_fraction * max_bs
        ]
        if not light or self.queue_depth > 0:
            return "scale-up"
        if self.idle_gpus():
            return "scale-down"
        return "hold"
