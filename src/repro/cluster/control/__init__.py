"""SLO-aware control plane for heterogeneous GPU fleets.

Three threads share one cost model (:mod:`repro.cluster.control.costmodel`):

1. **SLO-aware admission/routing** (:class:`SloRouter`) — requests carry
   TTFT/ITL deadlines; placement maximises modelled deadline headroom
   instead of Punica's pack rule, queued work drains earliest-deadline-
   first, and a request is shed only when no engine could meet its
   deadline even under the optimistic (empty-fleet) floor.
2. **Heterogeneous fleets** — :class:`~repro.hw.spec.HwSpec` presets
   (A100-80G / H100 / L4) mix in one pool; the shared cost model prices
   each candidate engine with its own spec, so prefill-heavy work lands
   on high-FLOPs parts and long-decode work on high-bandwidth parts
   without any per-device special cases in the router.
3. **Predictive autoscaling** (:class:`PredictiveElasticSimulator`) —
   EWMA arrival-rate forecasting drives warm-up-cost-aware grow/shrink
   of the pool, extending :mod:`repro.cluster.elastic`; role rebalancing
   flips idle engines across the prefill/decode split under drift.

See docs/slo.md for the cost model, deadline semantics and autoscaler
policy. The control plane is strictly opt-in: no existing simulator
constructs any of these classes, so every pre-existing golden trace is
byte-identical with this package present.
"""

from repro.cluster.control.autoscaler import (
    EwmaForecast,
    PredictiveConfig,
    PredictiveElasticSimulator,
    rebalance_roles,
)
from repro.cluster.control.config import ControlConfig, SloPolicy
from repro.cluster.control.costmodel import FleetCostModel, LatencyEstimate
from repro.cluster.control.router import SloRouter
from repro.cluster.control.simulator import (
    SloClusterSimulator,
    SloDisaggSimulator,
    install_slo_router,
    score_requests,
    slo_attainment,
)

__all__ = [
    "ControlConfig",
    "EwmaForecast",
    "FleetCostModel",
    "LatencyEstimate",
    "PredictiveConfig",
    "PredictiveElasticSimulator",
    "SloClusterSimulator",
    "SloDisaggSimulator",
    "SloPolicy",
    "SloRouter",
    "install_slo_router",
    "rebalance_roles",
    "score_requests",
    "slo_attainment",
]
