"""The shared fleet cost model: predicted TTFT/ITL per candidate engine.

One model serves all three control-plane threads (router, decode
admission, autoscaler), so their decisions cannot disagree about what a
placement costs. Predictions reuse the calibrated analytical pricing in
:mod:`repro.models.perf` against each engine's own
:class:`~repro.hw.spec.GpuSpec`/:class:`~repro.hw.spec.HwSpec` — that is
the whole heterogeneity story: an H100 candidate quotes a cheaper prefill
and an L4 candidate a dearer long-context decode through the *same*
formulas, and per-role fitness falls out of the arithmetic.

The prediction is an **admission prior**, not a simulation: it prices the
batch the engine would run *right now* and folds queueing in as coarse,
documented terms. It is deliberately optimistic-but-monotone — good
enough to rank candidates and to detect hopeless requests, cheap enough
to evaluate per (request, engine) pair at submit time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.control.config import ControlConfig
from repro.models.perf import StepWorkload, model_step_latency
from repro.runtime.request import Request

#: Residency-tier load-stall priors (seconds): the paper's §5.2 ~2 ms
#: host->GPU PCIe copy for a rank-16 7B adapter, and a 16x multiple for a
#: cold DISK hit (NVMe read + host staging before the PCIe copy).
HOST_LOAD_SECONDS = 0.002
DISK_LOAD_SECONDS = 0.032


@dataclass(frozen=True)
class LatencyEstimate:
    """Predicted service quality of placing one request on one engine."""

    ttft: float
    """Predicted seconds until the request's first token on this engine."""
    itl: float
    """Predicted steady inter-token seconds once it joins the batch."""
    ttft_headroom: float
    """``ttft_deadline - elapsed - ttft`` (negative = modelled miss)."""
    itl_headroom: float
    """``itl_deadline - itl`` (negative = modelled miss)."""
    fitness: float
    """min of the deadline-normalized headrooms — the router's sort key.
    Normalizing by each deadline makes TTFT and ITL slack comparable, so
    one score ranks a fast-prefill part against a fast-decode part."""


class FleetCostModel:
    """Prices candidate placements across a (possibly mixed) engine pool."""

    def __init__(
        self,
        control: "ControlConfig | None" = None,
        host_load_seconds: float = HOST_LOAD_SECONDS,
        disk_load_seconds: float = DISK_LOAD_SECONDS,
    ) -> None:
        self.control = control or ControlConfig()
        self.host_load_seconds = host_load_seconds
        self.disk_load_seconds = disk_load_seconds
        self._floor_cache: "dict[tuple[str, int, int], float]" = {}

    # -- pieces ----------------------------------------------------------
    def load_stall(self, engine, request: Request) -> float:
        """Adapter residency cost: GPU-resident adapters are free, HOST
        pays one PCIe copy, DISK pays the cold-read prior."""
        tier_of = getattr(engine, "adapter_tier", None)
        tier = tier_of(request.lora_id) if tier_of is not None else 0
        if tier >= 2:
            return 0.0
        return self.host_load_seconds if tier == 1 else self.disk_load_seconds

    def _running_kv_lens(self, engine) -> "list[int]":
        return [
            r.kv_len for r in engine.all_requests() if not r.needs_prefill
        ]

    def _pending_prefill_lens(self, engine, request: Request) -> "list[int]":
        return [
            r.effective_prompt_len
            for r in engine.all_requests()
            if r.needs_prefill and r.request_id != request.request_id
        ]

    def _price(self, backend, work: StepWorkload) -> float:
        return (
            model_step_latency(
                backend.config, backend.cost_model, work,
                tp=backend.tp, flags=backend.flags,
            )
            + backend.step_overhead
        )

    def _segments(self, backend, prefill_tokens: int, decodes: int):
        if not getattr(backend, "serve_lora", False):
            return None
        segs: "list[int]" = []
        if prefill_tokens:
            segs.append(prefill_tokens)
        segs.extend([1] * decodes)
        return tuple(segs)

    # -- predictions -----------------------------------------------------
    def predict_ttft(self, engine, request: Request) -> float:
        """Seconds from placement to the request's first token.

        Terms: adapter load stall + one mixed prefill invocation (the
        request's full effective prompt alongside the engine's current
        decodes — Punica batches prefill with running decodes, §5) + a
        queue-depth term charging one solo prefill step for every request
        already waiting to prefill on this engine (the engine prefills at
        most one per invocation, so pending prefills serialize ahead of
        ours — a coarse upper-ish prior, documented in docs/slo.md).
        """
        backend = engine.backend
        prompt = max(1, request.effective_prompt_len)
        running = self._running_kv_lens(engine)
        work = StepWorkload(
            prefill_lens=(prompt,),
            decode_kv_lens=tuple(running),
            lora_segments=self._segments(backend, prompt, len(running)),
            lora_rank=backend.lora_rank,
        )
        t = self.load_stall(engine, request) + self._price(backend, work)
        for other in self._pending_prefill_lens(engine, request):
            t += self._price(
                backend,
                StepWorkload(
                    prefill_lens=(max(1, other),),
                    lora_segments=self._segments(backend, max(1, other), 0),
                    lora_rank=backend.lora_rank,
                ),
            )
        return t

    def predict_itl(self, engine, request: Request) -> float:
        """Steady per-token seconds once the request decodes here: one
        all-decode invocation over the engine's running batch plus this
        request attending over its own prompt-length history."""
        backend = engine.backend
        kv_lens = self._running_kv_lens(engine)
        kv_lens.append(max(1, request.effective_prompt_len))
        work = StepWorkload(
            decode_kv_lens=tuple(kv_lens),
            lora_segments=self._segments(backend, 0, len(kv_lens)),
            lora_rank=backend.lora_rank,
        )
        return self._price(backend, work)

    def estimate(self, engine, request: Request, now: float) -> LatencyEstimate:
        """Full candidate scoring against the request's tenant policy."""
        policy = self.control.policy_for(request.lora_id)
        elapsed = max(0.0, now - request.spec.arrival_time)
        ttft = self.predict_ttft(engine, request)
        itl = self.predict_itl(engine, request)
        ttft_headroom = policy.ttft_deadline - elapsed - ttft
        itl_headroom = policy.itl_deadline - itl
        fitness = min(
            ttft_headroom / policy.ttft_deadline,
            itl_headroom / policy.itl_deadline,
        )
        return LatencyEstimate(
            ttft=ttft, itl=itl,
            ttft_headroom=ttft_headroom, itl_headroom=itl_headroom,
            fitness=fitness,
        )

    # -- the optimistic floor (hopelessness test) ------------------------
    def optimistic_floor(self, engine, request: Request) -> float:
        """The best TTFT this engine could ever offer the request: a solo
        prefill on an empty batch with the adapter already GPU-resident.
        Cached per (device, prompt, rank) — it is placement-state-free."""
        backend = engine.backend
        prompt = max(1, request.effective_prompt_len)
        key = (backend.gpu.name, prompt, backend.lora_rank)
        cached = self._floor_cache.get(key)
        if cached is None:
            cached = self._price(
                backend,
                StepWorkload(
                    prefill_lens=(prompt,),
                    lora_segments=self._segments(backend, prompt, 0),
                    lora_rank=backend.lora_rank,
                ),
            )
            self._floor_cache[key] = cached
        return cached

    def best_floor(self, engines, request: Request) -> "float | None":
        """Minimum optimistic floor over a candidate pool (None if empty)."""
        floors = [
            self.optimistic_floor(e, request)
            for e in engines
            if getattr(e, "alive", True)
        ]
        return min(floors) if floors else None

    # -- fleet pricing ---------------------------------------------------
    @staticmethod
    def engine_cost_per_hour(engine) -> float:
        """Relative dollar rate of one engine (1.0 when its spec predates
        :class:`~repro.hw.spec.HwSpec` and carries no price)."""
        return float(getattr(engine.backend.gpu, "cost_per_hour", 1.0))

    @classmethod
    def fleet_cost_per_hour(cls, engines) -> float:
        return sum(cls.engine_cost_per_hour(e) for e in engines)
