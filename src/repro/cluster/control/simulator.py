"""SLO-aware simulator shells: the control plane over existing engines.

Nothing here forks the discrete-event machinery — each class swaps the
FCFS :class:`~repro.cluster.scheduler.PunicaScheduler` for an
:class:`~repro.cluster.control.router.SloRouter` (every simulator closure
looks the scheduler up dynamically, so the swap is safe at construction
time) and scores SLO outcomes at run end. Run-end scoring is deliberate:
a per-step hook would disarm the gen-2 vector decode lane
(``_step_hook`` presence gates it), and the attainment verdict only
needs terminal timestamps anyway.
"""

from __future__ import annotations

import heapq

from repro.cluster.control.config import ControlConfig
from repro.cluster.control.costmodel import FleetCostModel
from repro.cluster.control.router import SloRouter
from repro.cluster.disagg.simulator import DisaggSimulator
from repro.cluster.simulator import ClusterSimulator, SimulationResult
from repro.runtime.request import Request, RequestState
from repro.workloads.trace import Trace


def install_slo_router(
    sim: ClusterSimulator,
    control: "ControlConfig | None" = None,
    cost: "FleetCostModel | None" = None,
) -> SloRouter:
    """Replace ``sim``'s scheduler with an SLO router over the same pool.

    Call at construction time (before any request is queued); returns the
    installed router. The router's shed path is wired to the simulator's
    standard ``_shed`` (FAILED terminal state + SHED event + metrics).
    """
    old = sim.scheduler
    if old.queue_depth:
        raise RuntimeError("install the SLO router before submitting work")
    router = SloRouter(
        list(old.engines.values()),
        config=old.config,
        prefetcher=old.prefetcher,
        tracer=old.tracer,
        control=control,
        cost=cost,
        metrics=sim.metrics,
    )
    router.on_shed = lambda req, now: sim._shed(
        req, now, "shed: deadline infeasible"
    )
    sim.scheduler = router
    return router


# ---------------------------------------------------------------------------
# Outcome scoring (docs/slo.md deadline semantics)
# ---------------------------------------------------------------------------
def score_requests(
    requests: "list[Request]", control: ControlConfig, duration: float
) -> "list[tuple[float, bool]]":
    """Per-request SLO verdicts as (terminal time, attained) pairs.

    FINISHED requests attain when their TTFT met the tenant deadline and
    their mean decode ITL met the per-token deadline; FAILED (shed) and
    still-live requests are misses, stamped at run end. CANCELLED
    requests are excluded — a user disconnect is not an operator miss.
    Output is time-sorted so it can feed a monotone series directly.
    """
    scored: "list[tuple[float, bool]]" = []
    for r in requests:
        if r.state is RequestState.CANCELLED:
            continue
        policy = control.policy_for(r.lora_id)
        if r.state is RequestState.FINISHED:
            t = r.finish_time if r.finish_time is not None else duration
            ttft_ok = (
                r.first_token_time is not None
                and r.first_token_time - r.spec.arrival_time
                <= policy.ttft_deadline
            )
            if (
                r.num_generated > 1
                and r.first_token_time is not None
                and r.finish_time is not None
            ):
                itl = (r.finish_time - r.first_token_time) / (
                    r.num_generated - 1
                )
            else:
                itl = 0.0
            scored.append((t, ttft_ok and itl <= policy.itl_deadline))
        else:
            scored.append((duration, False))
    scored.sort(key=lambda e: e[0])
    return scored


def slo_attainment(
    requests: "list[Request]", control: ControlConfig, duration: float
) -> float:
    """Fraction of scored requests meeting both deadlines — usable on any
    run's request list, which is how the ablation scores FCFS baselines
    against the same policies."""
    scored = score_requests(requests, control, duration)
    if not scored:
        return 0.0
    return sum(1 for _, ok in scored if ok) / len(scored)


def _record_outcomes(result: SimulationResult, control: ControlConfig) -> None:
    for t, attained in score_requests(
        result.requests, control, result.duration
    ):
        result.metrics.record_slo_outcome(t, attained)


# ---------------------------------------------------------------------------
class SloClusterSimulator(ClusterSimulator):
    """Colocated cluster simulator under SLO-aware control."""

    def __init__(self, engines: "list", control: "ControlConfig | None" = None,
                 scheduler_config=None, **kwargs):
        super().__init__(engines, scheduler_config=scheduler_config, **kwargs)
        self.control = control or ControlConfig()
        install_slo_router(self, self.control)

    def run(self, trace: Trace, until: "float | None" = None) -> SimulationResult:
        result = super().run(trace, until=until)
        _record_outcomes(result, self.control)
        return result


class SloDisaggSimulator(DisaggSimulator):
    """Disaggregated simulator under SLO-aware control.

    Subsumes the FCFS decode queue: waiting KV handoffs admit
    earliest-deadline-first with no head blocking, and a waiter whose
    TTFT deadline has already passed is shed instead of occupying decode
    capacity it can no longer use.
    """

    def __init__(self, prefill_engines: "list", decode_engines: "list",
                 control: "ControlConfig | None" = None, **kwargs):
        super().__init__(prefill_engines, decode_engines, **kwargs)
        self.control = control or ControlConfig()
        install_slo_router(self, self.control)

    def run(self, trace: Trace, until: "float | None" = None) -> SimulationResult:
        result = super().run(trace, until=until)
        _record_outcomes(result, self.control)
        return result

    def _drain_decode_queue(self, now: float) -> "list[str]":
        if not self._decode_queue:
            return []
        if not self._decode_pool_alive():
            # Total decode-pool loss keeps the base fallback: drop the KV
            # copies and re-enter through the §5.3 re-prefill path.
            return super()._drain_decode_queue(now)
        router = self.scheduler
        handled: "list[str]" = []
        keep: "list[tuple[float, int, Request, int]]" = []
        entries = sorted(
            self._decode_queue,
            key=lambda e: (router._deadline(e[2]), e[0], e[1]),
        )
        for entry in entries:
            _, _, req, kv_tokens = entry
            if req.state.is_terminal:
                continue
            # Shed only waiters still owed their first token: a request
            # whose TTFT already landed (handoff after a mid-decode
            # migration) keeps its place however late the clock runs.
            if (
                router.control.shed_infeasible
                and req.first_token_time is None
                and now > router._deadline(req)
            ):
                router._shed_slo(req, now)
                handled.append(req.request_id)
                continue
            gpu = router.route_decode(req, kv_tokens)
            if gpu is None:
                keep.append(entry)
                continue
            router.engines[gpu].import_request(req, kv_tokens, now)
            handled.append(req.request_id)
            self._kick(gpu, now)
        self._decode_queue = keep
        heapq.heapify(self._decode_queue)
        return handled
