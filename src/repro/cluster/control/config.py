"""Deadline policies and control-plane knobs.

Deadline semantics (docs/slo.md): a request attains its SLO when

* **TTFT** — its first token lands within ``ttft_deadline`` seconds of
  its arrival (queue wait, adapter load, prefill and any KV handoff all
  count), and
* **ITL** — its mean inter-token latency over the decode phase stays at
  or under ``itl_deadline`` seconds per token.

Policies attach per tenant (= LoRA adapter id, the multi-tenancy unit of
the paper); ``default_policy`` covers everyone else. Requests themselves
stay policy-free — :class:`~repro.runtime.request.RequestSpec` is part of
the frozen trace contract, and the deadline is the *tenant's* contract
with the operator, not a per-message field.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping


@dataclass(frozen=True)
class SloPolicy:
    """One tenant's latency contract."""

    ttft_deadline: float = 1.0
    """Seconds from arrival to the first generated token."""
    itl_deadline: float = 0.050
    """Seconds per token over the decode phase (mean)."""

    def __post_init__(self) -> None:
        if self.ttft_deadline <= 0:
            raise ValueError(
                f"ttft_deadline must be positive, got {self.ttft_deadline}"
            )
        if self.itl_deadline <= 0:
            raise ValueError(
                f"itl_deadline must be positive, got {self.itl_deadline}"
            )


@dataclass(frozen=True)
class ControlConfig:
    """Control-plane configuration shared by router and autoscaler."""

    default_policy: SloPolicy = field(default_factory=SloPolicy)
    per_tenant: "Mapping[str, SloPolicy]" = field(default_factory=dict)
    """Overrides keyed by LoRA adapter id."""
    shed_infeasible: bool = True
    """Refuse (FAILED terminal state) requests whose remaining deadline
    budget is below the fleet's optimistic floor. With False the router
    keeps them queued best-effort — useful for ablating shed policy."""

    def policy_for(self, lora_id: str) -> SloPolicy:
        return self.per_tenant.get(lora_id, self.default_policy)
