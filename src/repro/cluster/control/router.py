"""SLO-aware admission and routing (thread (a) of the control plane).

:class:`SloRouter` replaces Punica's pack rule and FCFS queue with
deadline-headroom placement over the shared
:class:`~repro.cluster.control.costmodel.FleetCostModel`:

* **Placement** ranks every feasible engine by modelled fitness (the
  min-normalized-headroom score), so a prefill-heavy request prefers the
  high-FLOPs part and a long-decode request the high-bandwidth part of a
  mixed fleet. Placement is best-effort: when every candidate's headroom
  is negative the *least bad* one still wins — the prediction is a
  coarse prior, and parking the request in a queue can only lose more
  budget.
* **Queueing** is earliest-deadline-first with no head blocking: any
  queued request that fits is placed on a drain pass, and a queued
  request whose remaining budget falls below the fleet's optimistic
  floor is shed instead of waiting for a miss.
* **Shedding** happens only on provable hopelessness: no engine in the
  pool could meet the deadline even solo on an empty batch. The shed is
  surfaced as an SLO_SHED trace event plus the standard FAILED terminal
  path (via :attr:`SloRouter.on_shed`).
"""

from __future__ import annotations

import heapq

from repro.cluster.control.config import ControlConfig
from repro.cluster.control.costmodel import FleetCostModel
from repro.cluster.scheduler import PunicaScheduler, SchedulerConfig
from repro.obs.tracer import EventKind, Tracer
from repro.runtime.request import Request


class SloRouter(PunicaScheduler):
    """Deadline-headroom router over a (possibly heterogeneous) pool.

    Queue entries are ``(absolute deadline, seq, request)`` — the same
    3-tuple shape as the base FCFS heap, so the inherited ``cancel`` and
    ``drain_all_queued`` bookkeeping keeps working unchanged.
    """

    def __init__(
        self,
        engines: "list",
        config: "SchedulerConfig | None" = None,
        prefetcher=None,
        tracer: "Tracer | None" = None,
        control: "ControlConfig | None" = None,
        cost: "FleetCostModel | None" = None,
        metrics=None,
    ):
        super().__init__(engines, config, prefetcher, tracer=tracer)
        self.control = control or ControlConfig()
        self.cost = cost or FleetCostModel(self.control)
        self.metrics = metrics
        """Optional :class:`~repro.cluster.metrics.ClusterMetrics` fed the
        SLO admit/shed series (the simulator install wires this)."""
        self.on_shed = None
        """``(request, now) -> None`` terminal-shed callback; the owning
        simulator points this at its ``_shed`` path so refused requests
        get the standard FAILED state + SHED event + sheds_total count."""
        self.num_slo_sheds = 0

    # ------------------------------------------------------------------
    def _deadline(self, request: Request) -> float:
        policy = self.control.policy_for(request.lora_id)
        return request.spec.arrival_time + policy.ttft_deadline

    def _remaining_budget(self, request: Request, now: float) -> float:
        return self._deadline(request) - now

    def _place_best(self, request: Request, now: float) -> "str | None":
        """Admit onto the highest-fitness feasible engine (ties break to
        adapter locality, then max UUID, like the base rule)."""
        best = None
        for gid, engine in self.engines.items():
            if not self._prefill_capable(engine) or not engine.can_accept(request):
                continue
            est = self.cost.estimate(engine, request, now)
            key = (est.fitness, self._adapter_locality(engine, request), gid)
            if best is None or key > best[0]:
                best = (key, gid, est)
        if best is None:
            return None
        _, gpu, est = best
        self.engines[gpu].add_request(request, now)
        if self.tracer is not None:
            self.tracer.emit(
                now, EventKind.SLO_ADMIT, request.request_id, gpu,
                headroom=round(est.ttft_headroom, 9),
                ttft=round(est.ttft, 9),
            )
        if self.metrics is not None:
            self.metrics.record_slo_admit(now, est.ttft_headroom)
        return gpu

    def _hopeless(self, request: Request, now: float) -> bool:
        """No engine could meet the TTFT deadline even solo and empty."""
        floor = self.cost.best_floor(
            [e for e in self.engines.values() if self._prefill_capable(e)],
            request,
        )
        if floor is None:
            return True
        return self._remaining_budget(request, now) < floor

    def _shed_slo(self, request: Request, now: float) -> None:
        self.num_slo_sheds += 1
        if self.tracer is not None:
            self.tracer.emit(
                now, EventKind.SLO_SHED, request.request_id,
                reason="deadline_infeasible",
                budget=round(self._remaining_budget(request, now), 9),
            )
        if self.metrics is not None:
            self.metrics.record_slo_shed(now)
        if self.on_shed is not None:
            self.on_shed(request, now)
        else:
            request.mark_failed("shed: deadline infeasible")

    # ------------------------------------------------------------------
    def submit(self, request: Request, now: float) -> "str | None":
        if request.state.is_terminal:
            return None
        gpu = self._place_best(request, now)
        if gpu is not None:
            return gpu
        if self.control.shed_infeasible and self._hopeless(request, now):
            self._shed_slo(request, now)
            return None
        heapq.heappush(
            self._queue, (self._deadline(request), self._queue_seq, request)
        )
        self._queue_seq += 1
        self.num_queued_total += 1
        if self.prefetcher is not None:
            self.prefetcher.hint_queued(request.lora_id, now)
        if self.tracer is not None:
            self.tracer.emit(
                now, EventKind.QUEUE, request.request_id,
                reason="slo_wait", depth=len(self._queue),
            )
        return None

    def drain_queue(self, now: float) -> "list[str]":
        """EDF drain with no head blocking: place whatever fits, shed
        whatever has become hopeless, keep the rest in deadline order."""
        if not self._queue:
            return []
        placed: "list[str]" = []
        keep: "list[tuple[float, int, Request]]" = []
        while self._queue:
            entry = heapq.heappop(self._queue)
            request = entry[2]
            if request.state.is_terminal:
                continue
            gpu = self._place_best(request, now)
            if gpu is not None:
                placed.append(gpu)
                continue
            if self.control.shed_infeasible and self._hopeless(request, now):
                self._shed_slo(request, now)
                continue
            keep.append(entry)
        self._queue = keep
        heapq.heapify(self._queue)
        return placed

    def route_decode(self, request: Request, kv_tokens: int) -> "str | None":
        """ITL-fitness-first decode admission: the engine whose predicted
        inter-token latency leaves the most deadline headroom wins (ties
        -> adapter locality -> largest working set -> max UUID). Subsumes
        the adapter-locality-first rule: on a homogeneous idle pool every
        candidate quotes the same ITL and locality decides, exactly as
        before."""
        policy = self.control.policy_for(request.lora_id)
        best = None
        for gid, engine in self.engines.items():
            if not self._decode_capable(engine) or not engine.can_accept_import(
                request, kv_tokens
            ):
                continue
            itl_headroom = policy.itl_deadline - self.cost.predict_itl(
                engine, request
            )
            key = (
                itl_headroom,
                self._adapter_locality(engine, request),
                engine.working_set_size,
                gid,
            )
            if best is None or key > best[0]:
                best = (key, gid)
        return best[1] if best is not None else None
