"""Predictive autoscaling (thread (c) of the control plane).

Extends :class:`~repro.cluster.elastic.ElasticClusterSimulator`: instead
of reacting to the instantaneous §5.1 scaling hint, the pool tracks an
EWMA forecast of the arrival rate and sizes itself to
``forecast * (1 + headroom) / service_rate_per_gpu``, growing by several
GPUs in one tick when a burst lands and shrinking only when the forecast
says the remaining pool still covers demand **and** the candidate engine
has amortized its warm-up (a GPU released before it served for at least
one provisioning delay paid its warm-up for nothing). Scale decisions
emit SCALE_UP / SCALE_DOWN trace events carrying the forecast that drove
them.

:func:`rebalance_roles` is the drift corrector for disaggregated pools:
it flips idle engines across the prefill/decode split toward whichever
side is backlogged.
"""

from __future__ import annotations

import math

from repro.cluster.control.config import ControlConfig
from repro.cluster.control.simulator import _record_outcomes, install_slo_router
from repro.cluster.elastic import ElasticClusterSimulator, ElasticConfig, ElasticResult
from repro.obs.tracer import EventKind
from repro.workloads.trace import Trace

from dataclasses import dataclass


class EwmaForecast:
    """Exponentially weighted moving average of a sampled rate."""

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.value = 0.0
        self._primed = False

    def update(self, sample: float) -> float:
        if not self._primed:
            self.value = float(sample)
            self._primed = True
        else:
            self.value = self.alpha * float(sample) + (1 - self.alpha) * self.value
        return self.value


@dataclass(frozen=True)
class PredictiveConfig:
    """Knobs of the forecast-driven pool sizing."""

    ewma_alpha: float = 0.3
    """Forecast smoothing: higher chases bursts, lower rides them out."""
    service_rate_per_gpu: float = 4.0
    """Requests/s one engine is budgeted to absorb (capacity planning
    constant; calibrate per workload from a steady-state run)."""
    headroom_fraction: float = 0.2
    """Spare capacity provisioned above the forecast."""

    def __post_init__(self) -> None:
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.service_rate_per_gpu <= 0:
            raise ValueError("service_rate_per_gpu must be positive")
        if self.headroom_fraction < 0:
            raise ValueError("headroom_fraction must be nonnegative")


class PredictiveElasticSimulator(ElasticClusterSimulator):
    """Elastic pool sized by arrival forecasts instead of load hints.

    With ``control`` given, the SLO router is installed over the pool and
    run results are scored for attainment — the full three-thread control
    plane in one simulator.
    """

    def __init__(
        self,
        engine_factory,
        elastic_config: "ElasticConfig | None" = None,
        scheduler_config=None,
        predictive: "PredictiveConfig | None" = None,
        control: "ControlConfig | None" = None,
        **kwargs,
    ):
        super().__init__(
            engine_factory, elastic_config, scheduler_config, **kwargs
        )
        self.predictive = predictive or PredictiveConfig()
        self.control = control
        if control is not None:
            install_slo_router(self, control)
        self._forecast = EwmaForecast(self.predictive.ewma_alpha)
        self._arrivals_seen = 0

    def run_elastic(self, trace: Trace, until: "float | None" = None) -> ElasticResult:
        result = super().run_elastic(trace, until=until)
        if self.control is not None:
            _record_outcomes(result.base, self.control)
        return result

    # ------------------------------------------------------------------
    def _autoscale_tick(self, now: float) -> None:
        cfg = self.predictive
        total = len(self.metrics.arrivals)
        sample = (total - self._arrivals_seen) / self.elastic.check_interval
        self._arrivals_seen = total
        forecast = self._forecast.update(sample)
        demand = forecast * (1.0 + cfg.headroom_fraction)
        desired = max(
            self.elastic.min_gpus,
            min(
                self.elastic.max_gpus,
                math.ceil(demand / cfg.service_rate_per_gpu),
            ),
        )
        # A standing queue means the forecast under-calls actual service
        # cost; never size below what the reactive hint would demand.
        if (
            self.scheduler.queue_depth > 0
            and desired <= self._pool_size() < self.elastic.max_gpus
        ):
            desired = self._pool_size() + 1
        pool = self._pool_size()
        if desired > pool:
            add = desired - pool
            if self.tracer is not None:
                self.tracer.emit(
                    now, EventKind.SCALE_UP,
                    forecast=round(forecast, 9), pool=pool, add=add,
                )
            for _ in range(add):
                self._provisioning += 1
                self._scale_ups += 1
                self.loop.schedule(
                    now + self.elastic.provision_delay, self._activate_gpu
                )
        elif desired < len(self.scheduler.engines):
            self._release_surplus(now, desired, forecast)
        self._update_idle_marks(now)
        # Keep ticking until the pool has drained back to its floor —
        # the shrink tail would otherwise freeze at whatever size the
        # last in-flight request left it.
        if (
            self.work_remaining()
            or self._provisioning > 0
            or len(self.scheduler.engines) > self.elastic.min_gpus
        ):
            self.loop.schedule(
                now + self.elastic.check_interval, self._autoscale_tick
            )

    def _release_surplus(self, now: float, desired: int, forecast: float) -> None:
        """Shrink toward ``desired``, releasing only engines that are
        idle past the grace period and have amortized their warm-up."""
        floor = max(self.elastic.min_gpus, desired)
        for gid in list(self.scheduler.engines):
            if len(self.scheduler.engines) <= floor:
                break
            engine = self.scheduler.engines[gid]
            idle_since = self._idle_since.get(gid)
            lease = self._leases.get(gid)
            if (
                engine.is_idle
                and idle_since is not None
                and now - idle_since >= self.elastic.release_idle_after
                and lease is not None
                and now - lease.start >= self.elastic.provision_delay
            ):
                pool = len(self.scheduler.engines)
                self.scheduler.remove_engine(gid)
                self._gpu_busy.pop(gid, None)
                self._idle_since.pop(gid, None)
                self._leases[gid].end = now
                del self._leases[gid]
                self._releases += 1
                if self.tracer is not None:
                    self.tracer.emit(
                        now, EventKind.SCALE_DOWN, gpu_id=gid,
                        forecast=round(forecast, 9), pool=pool,
                    )


def rebalance_roles(scheduler, decode_backlog: int) -> "str | None":
    """Flip one idle engine across the prefill/decode split under drift.

    With handoffs backlogged and no prefill queue, an idle prefill engine
    becomes a decode engine; with the prefill queue backlogged and no
    decode waiters, an idle decode engine flips back. Returns the flipped
    gpu id (or None). One flip per call keeps the correction damped — the
    caller decides the cadence.
    """
    def idle_of(role: str) -> "str | None":
        for gid in sorted(scheduler.engines):
            e = scheduler.engines[gid]
            if getattr(e, "role", "both") == role and e.is_idle:
                return gid
        return None

    if decode_backlog > 0 and scheduler.queue_depth == 0:
        gid = idle_of("prefill")
        new_role = "decode"
    elif scheduler.queue_depth > 0 and decode_backlog == 0:
        gid = idle_of("decode")
        new_role = "prefill"
    else:
        return None
    if gid is None:
        return None
    scheduler.engines[gid].role = new_role
    return gid
