"""Fault injection for the cluster runtime (chaos engineering the §5.3 path).

Punica's migration mechanism — cancel a request, re-prefill it on another
GPU over prompt + generated prefix — is exactly the machinery a production
cluster needs to survive GPU failures. This module makes faults a
first-class, *deterministic* input to the simulation so that recovery can
be tested and benchmarked like any other scheduling property:

* :class:`FaultKind` — the fault taxonomy: a GPU crashing outright, a GPU
  slowing down (thermal throttling / noisy neighbour), an adapter load
  failing mid-copy (corrupt weights, NFS hiccup), and a PCIe stall
  delaying every in-flight host->GPU transfer on one server.
* :class:`FaultSpec` — one scheduled fault. ``gpu_id=None`` means "pick a
  live, non-idle GPU at fire time" using the injector's seeded RNG, so a
  random plan stays meaningful even as the pool shrinks.
* :class:`FaultInjector` — an ordered, seedable fault schedule. It is
  driven by event-loop ticks: the simulator arms one tick per fault time,
  and the tick hands the due :class:`FaultSpec` back to the simulator,
  which applies it (see ``ClusterSimulator._apply_fault``). Identical
  seed + trace => identical fault sequence => bit-identical simulations.

The injector deliberately knows nothing about engines or schedulers; it
only produces *what* fails and *when*. The recovery policy (re-place via
evict + re-prefill, shed with a FAILED terminal state only when no
capacity remains) lives in the scheduler/simulator — see docs/faults.md.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field


class FaultKind(enum.Enum):
    GPU_CRASH = "gpu_crash"
    """The GPU dies: engine leaves the pool, its requests are re-placed."""
    GPU_SLOWDOWN = "gpu_slowdown"
    """Step latency multiplied by ``factor`` for ``duration`` seconds."""
    ADAPTER_LOAD_FAIL = "adapter_load_fail"
    """One in-flight adapter copy fails; its requests are re-placed."""
    PCIE_STALL = "pcie_stall"
    """Every in-flight adapter copy on one GPU slips by ``duration`` s."""
    KV_TRANSFER_FAIL = "kv_transfer_fail"
    """One in-flight paged KV handoff is lost; the request drops its KV
    copy and falls back to the §5.3 re-prefill path (disaggregated mode
    only — a no-op under the colocated simulator)."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault."""

    kind: FaultKind
    time: float
    gpu_id: "str | None" = None
    """Target GPU; None = injector picks a live (preferably busy) GPU."""
    duration: float = 5.0
    """Slowdown window / PCIe stall length (seconds)."""
    factor: float = 4.0
    """Latency multiplier while a GPU_SLOWDOWN is active."""
    lora_id: "str | None" = None
    """Adapter whose load fails; None = any copy in flight on the target."""

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"fault time must be nonnegative, got {self.time}")
        if self.duration < 0:
            raise ValueError(f"duration must be nonnegative, got {self.duration}")
        if self.factor < 1.0:
            raise ValueError(f"slowdown factor must be >= 1, got {self.factor}")


@dataclass
class InjectedFault:
    """Audit-log entry: what actually fired, where, and when."""

    spec: FaultSpec
    gpu_id: "str | None"
    time: float
    applied: bool
    """False when the fault found no valid target (e.g. last-GPU crash
    guard, no copy in flight to fail) and was dropped."""


class FaultInjector:
    """Deterministic, seedable fault schedule driven by event-loop ticks.

    Construct with an explicit script of :class:`FaultSpec`, or use
    :meth:`random_plan` to draw one from a seed. The simulator calls
    :meth:`arm` once at run start (one tick per distinct fault time) and
    :meth:`pick_gpu` / :meth:`pick_inflight_lora` when a spec left the
    target open.
    """

    def __init__(
        self,
        specs: "list[FaultSpec] | None" = None,
        seed: int = 0,
        allow_last_gpu_crash: bool = False,
    ):
        self.specs = sorted(specs or [], key=lambda s: s.time)
        self.seed = seed
        self.allow_last_gpu_crash = allow_last_gpu_crash
        """Crashing the last live GPU sheds every in-flight request; keep
        it off unless the test explicitly exercises the shed path."""
        self._rng = random.Random(seed)
        self.injected: list[InjectedFault] = []
        self.tracer = None
        """Optional :class:`~repro.obs.tracer.Tracer` (the simulator sets
        it) receiving one FAULT event per fired tick, applied or not."""

    # ------------------------------------------------------------------
    @classmethod
    def random_plan(
        cls,
        seed: int,
        duration: float,
        num_faults: int = 4,
        kinds: "tuple[FaultKind, ...]" = (
            FaultKind.GPU_CRASH,
            FaultKind.GPU_SLOWDOWN,
            FaultKind.ADAPTER_LOAD_FAIL,
            FaultKind.PCIE_STALL,
        ),
        warmup_fraction: float = 0.1,
    ) -> "FaultInjector":
        """Draw ``num_faults`` faults uniformly over the middle of the run.

        Times avoid the first/last ``warmup_fraction`` of the horizon so
        faults land while the cluster is actually loaded.
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        if not kinds:
            raise ValueError("need at least one fault kind")
        rng = random.Random(seed)
        lo = duration * warmup_fraction
        hi = duration * (1.0 - warmup_fraction)
        specs = [
            FaultSpec(kind=rng.choice(kinds), time=rng.uniform(lo, hi))
            for _ in range(num_faults)
        ]
        return cls(specs, seed=seed)

    @classmethod
    def crash_at(cls, time: float, gpu_id: "str | None" = None, seed: int = 0):
        """Convenience: a single GPU crash — the canonical chaos test."""
        return cls([FaultSpec(kind=FaultKind.GPU_CRASH, time=time, gpu_id=gpu_id)],
                   seed=seed)

    # ------------------------------------------------------------------
    def arm(self, loop, apply) -> None:
        """Schedule one tick per fault on ``loop``; each tick calls
        ``apply(spec, now)`` and records the outcome in :attr:`injected`."""
        for spec in self.specs:
            loop.schedule(spec.time, self._make_tick(spec, apply))

    def _make_tick(self, spec: FaultSpec, apply):
        def tick(now: float) -> None:
            gpu_id, applied = apply(spec, now)
            self.injected.append(
                InjectedFault(spec=spec, gpu_id=gpu_id, time=now, applied=applied)
            )
            if self.tracer is not None:
                from repro.obs.tracer import EventKind

                self.tracer.emit(
                    now, EventKind.FAULT, gpu_id=gpu_id,
                    fault=spec.kind.value, applied=applied,
                )

        return tick

    # ------------------------------------------------------------------
    # Target selection (seeded — identical runs pick identical victims)
    # ------------------------------------------------------------------
    def pick_gpu(self, engines: "dict[str, object]", prefer_busy: bool = True) -> "str | None":
        """Pick a live target GPU; busy GPUs preferred so faults matter."""
        live = [gid for gid, e in engines.items() if getattr(e, "alive", True)]
        if not live:
            return None
        if prefer_busy:
            busy = [gid for gid in live if not engines[gid].is_idle]
            if busy:
                live = busy
        return self._rng.choice(sorted(live))

    def pick_inflight_lora(self, engine, now: float) -> "str | None":
        """Pick one adapter whose copy is still in flight on ``engine``."""
        loader = getattr(engine, "loader", None)
        inflight = getattr(loader, "inflight_models", None)
        if inflight is None:
            return None
        candidates = sorted(inflight(now))
        return self._rng.choice(candidates) if candidates else None

    def pick_transfer(self, request_ids) -> "str | None":
        """Pick one in-flight KV handoff (by request id) to lose."""
        candidates = sorted(request_ids)
        return self._rng.choice(candidates) if candidates else None

    # ------------------------------------------------------------------
    def summary(self) -> str:
        applied = sum(1 for f in self.injected if f.applied)
        return f"{applied}/{len(self.injected)} faults applied (seed {self.seed})"
