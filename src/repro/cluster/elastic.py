"""Elastic GPU pool: the §5.1 cloud allocation policy, simulated.

The paper: "(1) If no lightly loaded GPU exists in the cluster, Punica
should request more GPUs. (2) Punica can return the GPU resources for GPU
servers with no load." This module runs the Fig 13 machinery with a pool
that actually grows and shrinks: scale-up requests take a provisioning
delay to land; GPUs idle beyond a grace period are released. The headline
metric is **GPU-seconds provisioned** — what a cloud tenant pays —
compared against a statically sized pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

from repro.cluster.simulator import ClusterSimulator, SimulationResult
from repro.runtime.serve import requests_from_trace
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class ElasticConfig:
    """Knobs of the autoscaler."""

    min_gpus: int = 1
    max_gpus: int = 16
    provision_delay: float = 30.0
    """Seconds from the scale-up decision until the new GPU serves."""
    release_idle_after: float = 20.0
    """A GPU idle this long is returned to the provider."""
    check_interval: float = 5.0

    def __post_init__(self) -> None:
        if not 1 <= self.min_gpus <= self.max_gpus:
            raise ValueError("need 1 <= min_gpus <= max_gpus")
        if self.provision_delay < 0 or self.release_idle_after < 0:
            raise ValueError("delays must be nonnegative")
        if self.check_interval <= 0:
            raise ValueError("check_interval must be positive")


@dataclass
class GpuLease:
    """One provisioned GPU's billing window."""

    gpu_id: str
    start: float
    end: "float | None" = None

    def seconds(self, horizon: float) -> float:
        return (self.end if self.end is not None else horizon) - self.start


@dataclass
class ElasticResult:
    """SimulationResult plus the elasticity accounting."""

    base: SimulationResult
    leases: list[GpuLease] = field(default_factory=list)
    scale_ups: int = 0
    releases: int = 0

    def gpu_seconds(self) -> float:
        return sum(lease.seconds(self.base.duration) for lease in self.leases)

    def peak_pool_size(self) -> int:
        events = []
        for lease in self.leases:
            events.append((lease.start, 1))
            events.append((lease.end if lease.end is not None else float("inf"), -1))
        events.sort()
        cur = peak = 0
        for _, delta in events:
            cur += delta
            peak = max(peak, cur)
        return peak


class ElasticClusterSimulator(ClusterSimulator):
    """Cluster simulator whose GPU pool follows the §5.1 scaling hints."""

    def __init__(
        self,
        engine_factory: Callable[[str], object],
        elastic_config: ElasticConfig | None = None,
        scheduler_config=None,
        registry=None,
        prefetcher=None,
        fault_injector=None,
        tracer=None,
        fast_path: bool | None = None,
    ):
        self.elastic = elastic_config or ElasticConfig()
        self.engine_factory = engine_factory
        self._next_gpu_index = self.elastic.min_gpus
        initial = [engine_factory(f"gpu{i:02d}") for i in range(self.elastic.min_gpus)]
        super().__init__(
            initial,
            scheduler_config,
            registry=registry,
            prefetcher=prefetcher,
            fault_injector=fault_injector,
            tracer=tracer,
            fast_path=fast_path,
        )
        self._leases: dict[str, GpuLease] = {
            e.gpu_id: GpuLease(gpu_id=e.gpu_id, start=0.0) for e in initial
        }
        self._lease_log: list[GpuLease] = list(self._leases.values())
        self._idle_since: dict[str, float] = {e.gpu_id: 0.0 for e in initial}
        self._provisioning = 0
        self._scale_ups = 0
        self._releases = 0

    # ------------------------------------------------------------------
    def run_elastic(self, trace: Trace, until: float | None = None) -> ElasticResult:
        requests = requests_from_trace(trace)
        for req in requests:
            self._requests[req.request_id] = req
            self.schedule_arrival(req)
        cfg = self.scheduler.config
        if cfg.consolidation:
            self.loop.schedule(cfg.migration_interval, self._migration_tick)
        self.loop.schedule(self.elastic.check_interval, self._autoscale_tick)
        end = self.loop.run(until=until)
        base = SimulationResult(
            duration=end,
            metrics=self.metrics,
            requests=requests,
            num_migrations=self.scheduler.num_migrations,
            events_processed=self.loop.processed,
        )
        return ElasticResult(
            base=base,
            leases=self._lease_log,
            scale_ups=self._scale_ups,
            releases=self._releases,
        )

    # ------------------------------------------------------------------
    def _pool_size(self) -> int:
        return len(self.scheduler.engines) + self._provisioning

    def _autoscale_tick(self, now: float) -> None:
        hint = self.scheduler.scaling_hint()
        if hint == "scale-up" and self._pool_size() < self.elastic.max_gpus:
            self._provisioning += 1
            self._scale_ups += 1
            self.loop.schedule(now + self.elastic.provision_delay, self._activate_gpu)
        elif hint == "scale-down":
            self._release_idle(now)
        self._update_idle_marks(now)
        if self.work_remaining() or self._provisioning > 0:
            self.loop.schedule(now + self.elastic.check_interval, self._autoscale_tick)

    def _update_idle_marks(self, now: float) -> None:
        for gid, engine in self.scheduler.engines.items():
            if engine.is_idle:
                self._idle_since.setdefault(gid, now)
            else:
                self._idle_since.pop(gid, None)

    def _activate_gpu(self, now: float) -> None:
        self._provisioning -= 1
        gpu_id = f"gpu{self._next_gpu_index:02d}"
        self._next_gpu_index += 1
        engine = self.engine_factory(gpu_id)
        if self.tracer is not None:
            # Engines provisioned mid-run need the same tracer threading
            # the initial pool got in ClusterSimulator.__init__.
            if hasattr(engine, "tracer"):
                engine.tracer = self.tracer
            store = getattr(getattr(engine, "loader", None), "store", None)
            if store is not None:
                store.tracer = self.tracer
        self.scheduler.add_engine(engine)
        self._gpu_busy[gpu_id] = False
        lease = GpuLease(gpu_id=gpu_id, start=now)
        self._leases[gpu_id] = lease
        self._lease_log.append(lease)
        self._idle_since[gpu_id] = now
        placed = self.scheduler.drain_queue(now)
        for gid in set(placed):
            self._kick(gid, now)

    def _release_idle(self, now: float) -> None:
        for gid in list(self.scheduler.engines):
            if len(self.scheduler.engines) <= self.elastic.min_gpus:
                break
            engine = self.scheduler.engines[gid]
            idle_since = self._idle_since.get(gid)
            if (
                engine.is_idle
                and idle_since is not None
                and now - idle_since >= self.elastic.release_idle_after
            ):
                self.scheduler.remove_engine(gid)
                self._gpu_busy.pop(gid, None)
                self._idle_since.pop(gid, None)
                self._leases[gid].end = now
                del self._leases[gid]
                self._releases += 1
