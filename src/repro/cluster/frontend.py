"""Frontend: the client-facing API of Figure 2's architecture.

The paper's frontends expose a RESTful API, forward requests to the
scheduler, and stream generated tokens back (runner -> scheduler ->
frontend -> user). In this reproduction the frontend is an in-process
facade over the cluster simulator: clients submit prompts (optionally at a
future simulated time), register per-request token callbacks, and may
cancel in flight. Token streaming rides the engine step reports.

Fault tolerance (docs/faults.md): a submission may carry a per-request
``deadline``; if the request has not finished by then, the frontend
cancels it wherever it is and retries with exponential backoff, up to
``max_retries`` times, after which the request surfaces as FAILED on its
:class:`RequestHandle`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from collections.abc import Callable

from repro.cluster.events import EventHandle
from repro.cluster.simulator import ClusterSimulator
from repro.runtime.request import Request, RequestState
from repro.workloads.trace import RequestSpec

TokenCallback = Callable[[str, int, float], None]
"""(request_id, token, time) — invoked for every streamed token."""


@dataclass
class RequestHandle:
    """The client's view of one submitted request."""

    request: Request
    streamed: list[tuple[int, float]] = field(default_factory=list)
    deadline: "float | None" = None
    """Seconds from (each) arrival the request may take before the
    frontend cancels and retries it."""
    max_retries: int = 0
    retry_backoff: float = 1.0
    """Base backoff: the k-th retry waits retry_backoff * 2**k seconds."""
    on_token: "TokenCallback | None" = None
    """Per-request streaming callback — the serving frontend's token fan-out
    (one asyncio queue per open stream) without paying a global-callback
    dispatch per token per connection."""
    _deadline_event: "EventHandle | None" = field(default=None, repr=False)

    @property
    def request_id(self) -> str:
        return self.request.request_id

    @property
    def state(self) -> RequestState:
        return self.request.state

    @property
    def tokens(self) -> list[int]:
        return [t for t, _ in self.streamed]

    @property
    def failed(self) -> bool:
        return self.request.state is RequestState.FAILED

    @property
    def failure_reason(self) -> "str | None":
        return self.request.failure_reason

    @property
    def retries_used(self) -> int:
        return self.request.num_retries

    def is_done(self) -> bool:
        return self.request.state.is_terminal


class Frontend:
    """Client API over a :class:`ClusterSimulator`."""

    def __init__(self, simulator: ClusterSimulator):
        self.simulator = simulator
        self._handles: dict[str, RequestHandle] = {}
        self._active: dict[str, RequestHandle] = {}
        """Handles that may still stream tokens. Terminal handles are
        pruned from here (never from ``_handles``) so the per-step
        streaming sweep scales with open streams, not with every request
        ever submitted — the serving frontend holds hundreds of
        connections over long runs."""
        self._callbacks: list[TokenCallback] = []
        self._ids = itertools.count()
        self._install_streaming_hook()

    # ------------------------------------------------------------------
    def on_token(self, callback: TokenCallback) -> None:
        """Register a streaming callback (fired once per generated token)."""
        self._callbacks.append(callback)

    def submit(
        self,
        lora_id: str,
        prompt_len: int,
        response_len: int,
        at_time: float = 0.0,
        prompt_tokens: "list[int] | None" = None,
        request_id: str | None = None,
        deadline: "float | None" = None,
        max_retries: int = 0,
        retry_backoff: float = 1.0,
        on_token: "TokenCallback | None" = None,
    ) -> RequestHandle:
        """Submit a request arriving at ``at_time`` (simulated clock).

        With a ``deadline`` (seconds from arrival), the frontend enforces
        it: a request still unfinished when the deadline fires is cancelled
        and — while retries remain — resubmitted after an exponential
        backoff, keeping any generated prefix (the §5.3 re-prefill pays
        for it). Out of retries, the handle surfaces FAILED.
        """
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if retry_backoff <= 0:
            raise ValueError(f"retry_backoff must be positive, got {retry_backoff}")
        rid = request_id or f"fe-{next(self._ids):05d}"
        if rid in self._handles:
            raise ValueError(f"request id {rid!r} already submitted")
        spec = RequestSpec(
            request_id=rid,
            lora_id=lora_id,
            arrival_time=at_time,
            prompt_len=prompt_len,
            response_len=response_len,
        )
        request = Request(spec=spec, prompt_tokens=prompt_tokens)
        handle = RequestHandle(
            request=request,
            deadline=deadline,
            max_retries=max_retries,
            retry_backoff=retry_backoff,
            on_token=on_token,
        )
        self._handles[rid] = handle
        self._active[rid] = handle
        self.simulator._requests[rid] = request
        self.simulator.schedule_arrival(request)
        if deadline is not None:
            self._arm_deadline(handle, at_time)
        return handle

    def cancel(self, request_id: str, reason: str = "user") -> None:
        """User disconnection: drop the request wherever it currently is.

        ``reason`` lands on the CANCEL trace event — the serving frontend
        passes ``"disconnect"`` so a dropped connection is attributable in
        the trace all the way down at the engine.
        """
        handle = self._handles.get(request_id)
        if handle is None:
            raise KeyError(f"unknown request {request_id!r}")
        if handle.is_done():
            return
        if handle._deadline_event is not None:
            handle._deadline_event.cancel()
        self.simulator.cancel(handle.request, reason=reason)

    # ------------------------------------------------------------------
    # Deadlines and bounded retry (docs/faults.md)
    # ------------------------------------------------------------------
    def _arm_deadline(self, handle: RequestHandle, arrival: float) -> None:
        handle._deadline_event = self.simulator.loop.schedule(
            arrival + handle.deadline, self._make_deadline(handle)
        )

    def _make_deadline(self, handle: RequestHandle):
        def fire(now: float) -> None:
            request = handle.request
            if request.state.is_terminal:
                return
            self.simulator.cancel(request, now, reason="deadline")
            if request.num_retries >= handle.max_retries:
                request.mark_failed(
                    f"deadline exceeded after {request.num_retries} retries"
                )
                return
            backoff = handle.retry_backoff * (2.0 ** request.num_retries)
            request.reset_for_retry()
            self.simulator.schedule_arrival(request, at=now + backoff)
            self._arm_deadline(handle, now + backoff)

        return fire

    def run(self, until: float | None = None) -> float:
        """Advance the simulated cluster until quiescent (or ``until``)."""
        return self.simulator.loop.run(until=until)

    def handle(self, request_id: str) -> RequestHandle:
        return self._handles[request_id]

    # ------------------------------------------------------------------
    def _install_streaming_hook(self) -> None:
        """Wrap the simulator's step factory to observe every report."""
        original = self.simulator._make_step

        def make_step_with_streaming(gpu_id: str):
            inner = original(gpu_id)

            def step(now: float) -> None:
                # Snapshot per-request token counts to detect new tokens.
                inner(now)
                # The report isn't returned; read streamed tokens off the
                # request objects instead (cheap and exact).
                done: "list[str] | None" = None
                for handle in self._active.values():
                    req = handle.request
                    already = len(handle.streamed)
                    new = req.generated_tokens[already:]
                    for tok in new:
                        stamp = req.first_token_time if already == 0 else now
                        handle.streamed.append((tok, stamp if stamp is not None else now))
                        for cb in self._callbacks:
                            cb(req.request_id, tok, now)
                        if handle.on_token is not None:
                            handle.on_token(req.request_id, tok, now)
                        already += 1
                    # Prune only after streaming: a request's last token
                    # lands in the same step that finishes it. Retrying
                    # requests return to QUEUED, not a terminal state, so
                    # they stay active through their whole retry budget.
                    if handle.is_done():
                        if done is None:
                            done = []
                        done.append(req.request_id)
                if done:
                    for rid in done:
                        del self._active[rid]

            return step

        self.simulator._make_step = make_step_with_streaming  # type: ignore[assignment]
