"""A minimal discrete-event loop.

Events are ``(time, seq, action)`` triples in a binary heap; ``seq`` breaks
ties deterministically in scheduling order, which keeps whole simulations
reproducible under a fixed seed. Actions may schedule further events.
:meth:`EventLoop.schedule` returns an :class:`EventHandle` so timers that
become moot (a request's deadline after it finished, a retry after a
cancel) can be disarmed instead of firing as no-ops.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from dataclasses import dataclass, field


@dataclass
class EventHandle:
    """Disarmable reference to one scheduled event."""

    time: float
    cancelled: bool = field(default=False)

    def cancel(self) -> None:
        """Disarm: the loop drops the event instead of running its action."""
        self.cancelled = True


class EventLoop:
    """Deterministic discrete-event executor."""

    def __init__(self) -> None:
        self._heap: list[
            tuple[float, int, Callable[[float], None], EventHandle]
        ] = []
        self._seq = 0
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def pending(self) -> int:
        return len(self._heap)

    @property
    def processed(self) -> int:
        return self._processed

    def schedule(self, time: float, action: Callable[[float], None]) -> EventHandle:
        """Enqueue ``action`` to run at ``time`` (must not be in the past)."""
        if time < self._now - 1e-12:
            raise ValueError(f"cannot schedule at {time} before now={self._now}")
        handle = EventHandle(time=time)
        heapq.heappush(self._heap, (time, self._seq, action, handle))
        self._seq += 1
        return handle

    def schedule_after(
        self, delay: float, action: Callable[[float], None]
    ) -> EventHandle:
        if delay < 0:
            raise ValueError(f"delay must be nonnegative, got {delay}")
        return self.schedule(self._now + delay, action)

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Process events in time order; returns the final clock.

        Stops when the heap is empty, the next event is beyond ``until``
        (left enqueued), or ``max_events`` have been processed.
        """
        while self._heap:
            if max_events is not None and self._processed >= max_events:
                break
            time, _, action, handle = self._heap[0]
            if until is not None and time > until:
                self._now = until
                return self._now
            heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self._now = time
            action(time)
            self._processed += 1
        if until is not None:
            self._now = max(self._now, until)
        return self._now
