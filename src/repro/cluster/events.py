"""A minimal discrete-event loop.

Events are ``(time, seq, action)`` triples in a binary heap; ``seq`` breaks
ties deterministically in scheduling order, which keeps whole simulations
reproducible under a fixed seed. Actions may schedule further events.
:meth:`EventLoop.schedule` returns an :class:`EventHandle` so timers that
become moot (a request's deadline after it finished, a retry after a
cancel) can be disarmed instead of firing as no-ops.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from dataclasses import dataclass, field


@dataclass
class EventHandle:
    """Disarmable reference to one scheduled event."""

    time: float
    cancelled: bool = field(default=False)

    def cancel(self) -> None:
        """Disarm: the loop drops the event instead of running its action."""
        self.cancelled = True


class EventLoop:
    """Deterministic discrete-event executor."""

    def __init__(self) -> None:
        self._heap: list[
            tuple[float, int, Callable[[float], None], EventHandle]
        ] = []
        self._seq = 0
        self._now = 0.0
        self._processed = 0
        self._until: float | None = None
        self._max_events: int | None = None
        self._running = False

    @property
    def now(self) -> float:
        return self._now

    @property
    def pending(self) -> int:
        return len(self._heap)

    @property
    def processed(self) -> int:
        return self._processed

    def schedule(self, time: float, action: Callable[[float], None]) -> EventHandle:
        """Enqueue ``action`` to run at ``time`` (must not be in the past)."""
        if time < self._now - 1e-12:
            raise ValueError(f"cannot schedule at {time} before now={self._now}")
        handle = EventHandle(time=time)
        heapq.heappush(self._heap, (time, self._seq, action, handle))
        self._seq += 1
        return handle

    def schedule_after(
        self, delay: float, action: Callable[[float], None]
    ) -> EventHandle:
        if delay < 0:
            raise ValueError(f"delay must be nonnegative, got {delay}")
        return self.schedule(self._now + delay, action)

    def peek_time(self) -> float | None:
        """Time of the next live event, or ``None`` when the heap is empty.

        Cancelled heads are pruned in passing — in :meth:`run` they would
        be popped and skipped without touching the clock or the processed
        count, so discarding them here changes nothing observable. The
        fast lane compares a step's end against this: strictly earlier
        means running it inline is exactly what the loop would do next.
        """
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def try_advance(self, time: float) -> bool:
        """Account one event processed inline at ``time`` (the fast lane).

        Returns False — and changes nothing — when the loop is not inside
        :meth:`run`, ``time`` lies beyond the active ``until`` horizon, or
        the ``max_events`` budget is spent; the caller must then fall back
        to scheduling a real event so the heap ends up in the same state
        the slow path would leave. On success the clock and the processed
        count move exactly as if the event had gone through the heap.
        """
        if time < self._now - 1e-12:
            raise ValueError(f"cannot advance to {time} before now={self._now}")
        if not self._running:
            return False
        if self._until is not None and time > self._until:
            return False
        if self._max_events is not None and self._processed >= self._max_events:
            return False
        self._now = max(self._now, time)
        self._processed += 1
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Process events in time order; returns the final clock.

        Stops when the heap is empty, the next event is beyond ``until``
        (left enqueued), or ``max_events`` have been processed.
        """
        self._until = until
        self._max_events = max_events
        self._running = True
        try:
            while self._heap:
                if max_events is not None and self._processed >= max_events:
                    break
                time, _, action, handle = self._heap[0]
                if until is not None and time > until:
                    self._now = until
                    return self._now
                heapq.heappop(self._heap)
                if handle.cancelled:
                    continue
                self._now = time
                action(time)
                self._processed += 1
            if until is not None:
                self._now = max(self._now, until)
            return self._now
        finally:
            self._until = None
            self._max_events = None
            self._running = False
