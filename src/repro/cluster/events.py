"""A minimal discrete-event loop.

Events are ``(time, seq, action)`` triples; ``seq`` breaks ties
deterministically in scheduling order, which keeps whole simulations
reproducible under a fixed seed. Actions may schedule further events.
:meth:`EventLoop.schedule` returns an :class:`EventHandle` so timers that
become moot (a request's deadline after it finished, a retry after a
cancel) can be disarmed instead of firing as no-ops.

Two queue disciplines back the loop, selected by ``fast_path``:

* a binary heap (the reference discipline), and
* a :class:`CalendarQueue` — a bucketed scheduler tuned for the dense,
  near-monotone timestamp stream a decode-heavy simulation produces.

Both implement the identical total order ``(time, seq)``; the tie-break
contract (equal times pop in scheduling order) is part of the public
determinism guarantee and is pinned by a property test against a heap
oracle (``tests/test_calendar_queue.py``).
"""

from __future__ import annotations

import heapq
from bisect import insort
from collections.abc import Callable
from dataclasses import dataclass, field
from math import floor

from repro.utils.fastpath import fastpath_enabled


@dataclass
class EventHandle:
    """Disarmable reference to one scheduled event.

    ``seq`` is the event's scheduling sequence number — the tie-break key
    the queue uses for equal times. The cross-engine merge lane reads it
    to replay the exact pop order the queue would produce.
    """

    time: float
    cancelled: bool = field(default=False)
    seq: int = field(default=-1)

    def cancel(self) -> None:
        """Disarm: the loop drops the event instead of running its action."""
        self.cancelled = True


# An event record. Tuple comparison never reaches the (uncomparable)
# action element because ``seq`` is unique.
_Item = tuple[float, int, Callable[[float], None], EventHandle]


class HeapQueue:
    """The reference queue: a plain binary heap over ``(time, seq)``."""

    def __init__(self) -> None:
        self._heap: list[_Item] = []

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, item: _Item) -> None:
        heapq.heappush(self._heap, item)

    def peek(self) -> _Item | None:
        """Smallest live item, pruning cancelled heads in passing."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
        return heap[0] if heap else None

    def pop(self) -> _Item:
        return heapq.heappop(self._heap)


class CalendarQueue:
    """A bucketed priority queue over ``(time, seq)`` keys.

    Items hash into fixed-width time buckets (a dict keyed by
    ``floor(time / width)``, so sparse regions cost nothing). Buckets
    stay unsorted until they become the *front* bucket, at which point
    one in-place sort orders them by ``(time, seq)`` — the same total
    order the heap discipline uses, including the scheduling-order
    tie-break. A small lazy min-heap over bucket *indices* finds the
    next nonempty bucket, so heap traffic is per-bucket, not per-event:
    in the dense-timestamp decode regime most pushes and pops are O(1)
    appends/pointer bumps.

    Late pushes into the already-sorted front bucket are placed with
    ``bisect.insort``; their keys always land at or after the read
    pointer because anything already consumed had a strictly smaller
    ``(time, seq)`` key. A push into a bucket *before* the current front
    (possible when the front sits far in the future) demotes the front
    back into an ordinary bucket and re-resolves.
    """

    def __init__(self, bucket_width: float = 0.25) -> None:
        if bucket_width <= 0:
            raise ValueError(f"bucket_width must be > 0, got {bucket_width}")
        self._width = bucket_width
        self._buckets: dict[int, list[_Item]] = {}
        self._index_heap: list[int] = []
        self._front: int | None = None
        self._pos = 0
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def _index(self, time: float) -> int:
        return floor(time / self._width)

    def push(self, item: _Item) -> None:
        idx = self._index(item[0])
        if idx == self._front:
            # Front bucket is sorted; keep it sorted. The new key is
            # strictly greater than every consumed key, so searching
            # from the read pointer is safe and keeps the insert cheap.
            insort(self._buckets[idx], item, lo=self._pos)
        else:
            bucket = self._buckets.get(idx)
            if bucket is None:
                self._buckets[idx] = [item]
                heapq.heappush(self._index_heap, idx)
            else:
                bucket.append(item)
            if self._front is not None and idx < self._front:
                self._demote_front()
        self._len += 1

    def _demote_front(self) -> None:
        """Return the partially-consumed front to ordinary-bucket status."""
        bucket = self._buckets.get(self._front, [])
        del bucket[: self._pos]
        if bucket:
            heapq.heappush(self._index_heap, self._front)
        else:
            self._buckets.pop(self._front, None)
        self._front = None
        self._pos = 0

    def _resolve_front(self) -> bool:
        """Sort the lowest nonempty bucket into front position."""
        if self._front is not None:
            return True
        heap = self._index_heap
        while heap:
            idx = heap[0]
            bucket = self._buckets.get(idx)
            if bucket is None:
                heapq.heappop(heap)  # stale entry for a drained bucket
                continue
            heapq.heappop(heap)
            bucket.sort(key=lambda it: (it[0], it[1]))
            self._front = idx
            self._pos = 0
            return True
        return False

    def peek(self) -> _Item | None:
        """Smallest live item, pruning cancelled heads in passing."""
        while self._resolve_front():
            bucket = self._buckets[self._front]
            while self._pos < len(bucket):
                item = bucket[self._pos]
                if not item[3].cancelled:
                    return item
                self._pos += 1
                self._len -= 1
            del self._buckets[self._front]
            self._front = None
            self._pos = 0
        return None

    def pop(self) -> _Item:
        item = self.peek()
        if item is None:
            raise IndexError("pop from an empty CalendarQueue")
        self._pos += 1
        self._len -= 1
        bucket = self._buckets[self._front]
        if self._pos >= len(bucket):
            del self._buckets[self._front]
            self._front = None
            self._pos = 0
        return item


class EventLoop:
    """Deterministic discrete-event executor.

    ``fast_path`` picks the queue discipline: the calendar queue when
    enabled (the default, via ``REPRO_FASTPATH``), the reference binary
    heap otherwise. Pop order is identical either way.
    """

    def __init__(
        self,
        fast_path: bool | None = None,
        bucket_width: float = 0.25,
    ) -> None:
        self.fast_path = fastpath_enabled(fast_path)
        self._queue: HeapQueue | CalendarQueue = (
            CalendarQueue(bucket_width) if self.fast_path else HeapQueue()
        )
        self._seq = 0
        self._now = 0.0
        self._processed = 0
        self._until: float | None = None
        self._max_events: int | None = None
        self._running = False

    @property
    def now(self) -> float:
        return self._now

    @property
    def pending(self) -> int:
        return len(self._queue)

    @property
    def processed(self) -> int:
        return self._processed

    def schedule(self, time: float, action: Callable[[float], None]) -> EventHandle:
        """Enqueue ``action`` to run at ``time`` (must not be in the past)."""
        if time < self._now - 1e-12:
            raise ValueError(f"cannot schedule at {time} before now={self._now}")
        handle = EventHandle(time=time, seq=self._seq)
        self._queue.push((time, self._seq, action, handle))
        self._seq += 1
        return handle

    def schedule_after(
        self, delay: float, action: Callable[[float], None]
    ) -> EventHandle:
        if delay < 0:
            raise ValueError(f"delay must be nonnegative, got {delay}")
        return self.schedule(self._now + delay, action)

    def peek_time(self) -> float | None:
        """Time of the next live event, or ``None`` when the queue is empty.

        Cancelled heads are pruned in passing — in :meth:`run` they would
        be popped and skipped without touching the clock or the processed
        count, so discarding them here changes nothing observable. The
        fast lane compares a step's end against this: strictly earlier
        means running it inline is exactly what the loop would do next.
        """
        item = self._queue.peek()
        return item[0] if item is not None else None

    def peek_time_excluding(self, skip_ids: "set[int]") -> float | None:
        """Time of the next live event whose handle id is not in ``skip_ids``.

        The merge lane uses this to find its horizon: the first event that
        is *not* one of the decode ticks it is about to replay inline.
        Skipped heads are popped and pushed back with their original
        ``(time, seq)`` keys, so queue order is untouched; the cost is
        O(len(skip_ids)) heap operations.
        """
        queue = self._queue
        popped: list[_Item] = []
        result: float | None = None
        while True:
            item = queue.peek()
            if item is None:
                break
            if id(item[3]) in skip_ids:
                popped.append(queue.pop())
                continue
            result = item[0]
            break
        for item in popped:
            queue.push(item)
        return result

    def merge_info(self) -> "tuple[float | None, int | None, int] | None":
        """State the merge lane needs: ``(until, budget_left, next_seq)``.

        Returns ``None`` outside :meth:`run` — merged pops would then have
        no budget to account against, so the caller must fall back to
        scheduling real events.
        """
        if not self._running:
            return None
        budget = (
            None
            if self._max_events is None
            else self._max_events - self._processed
        )
        return self._until, budget, self._seq

    def consume_merged(self, count: int, final_time: float) -> None:
        """Account ``count`` events replayed inline by the merge lane.

        The caller has already verified every replayed pop against the
        ``until`` horizon and the ``max_events`` budget (via
        :meth:`merge_info`), cancelled the real events it consumed, and is
        about to schedule their successors; this just moves the clock and
        the processed count exactly as the queue-driven pops would have.
        """
        self._now = max(self._now, final_time)
        self._processed += count

    def try_advance(self, time: float) -> bool:
        """Account one event processed inline at ``time`` (the fast lane).

        Returns False — and changes nothing — when the loop is not inside
        :meth:`run`, ``time`` lies beyond the active ``until`` horizon, or
        the ``max_events`` budget is spent; the caller must then fall back
        to scheduling a real event so the queue ends up in the same state
        the slow path would leave. On success the clock and the processed
        count move exactly as if the event had gone through the queue.
        """
        if time < self._now - 1e-12:
            raise ValueError(f"cannot advance to {time} before now={self._now}")
        if not self._running:
            return False
        if self._until is not None and time > self._until:
            return False
        if self._max_events is not None and self._processed >= self._max_events:
            return False
        self._now = max(self._now, time)
        self._processed += 1
        return True

    def try_advance_run(self, times) -> int:
        """Bulk :meth:`try_advance`: accept a sorted run of inline ticks.

        ``times`` is an ascending sequence of step-end times, all already
        verified by the caller to precede the next queued event. Returns
        how many lead entries fit inside the active ``until`` horizon and
        ``max_events`` budget — the clock and processed count advance by
        exactly that prefix, as if each tick had gone through
        :meth:`try_advance` one by one. Returns 0 outside :meth:`run`.
        """
        if not self._running:
            return 0
        n = len(times)
        if n and times[0] < self._now - 1e-12:
            raise ValueError(
                f"cannot advance to {times[0]} before now={self._now}"
            )
        if self._until is not None:
            # try_advance accepts time <= until; count the prefix that does.
            lo, hi = 0, n
            while lo < hi:
                mid = (lo + hi) // 2
                if times[mid] <= self._until:
                    lo = mid + 1
                else:
                    hi = mid
            n = lo
        if self._max_events is not None:
            n = min(n, self._max_events - self._processed)
        if n <= 0:
            return 0
        self._now = max(self._now, float(times[n - 1]))
        self._processed += n
        return n

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Process events in time order; returns the final clock.

        Stops when the queue is empty, the next event is beyond ``until``
        (left enqueued), or ``max_events`` have been processed.
        """
        self._until = until
        self._max_events = max_events
        self._running = True
        queue = self._queue
        try:
            while True:
                if max_events is not None and self._processed >= max_events:
                    break
                head = queue.peek()
                if head is None:
                    break
                time = head[0]
                if until is not None and time > until:
                    self._now = until
                    return self._now
                _, _, action, handle = queue.pop()
                self._now = time
                action(time)
                self._processed += 1
            if until is not None:
                self._now = max(self._now, until)
            return self._now
        finally:
            self._until = None
            self._max_events = None
            self._running = False
