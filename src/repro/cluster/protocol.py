"""Scheduler <-> runner message protocol (paper §6, Figure 2).

The real Punica runs the scheduler, frontends and per-server runners as
separate Rust processes connected by websockets; runners spawn one Python
subprocess per GPU and shuttle commands/results over pipes. This module
defines the typed messages of that protocol; :mod:`repro.cluster.runner`
implements the mediating runner. Keeping the protocol explicit lets tests
assert the wire-level guarantees the paper relies on: commands apply in
order, every generated token is streamed exactly once, and a cancel
acknowledges exactly one request (tests/test_cluster_runner.py and
tests/test_protocol_concurrency.py hold these lines).

The client-facing serving frontend mirrors this protocol one layer up:
:mod:`repro.serve.protocol` maps each wire frame onto a message here
(GenerateOp -> :class:`AddRequest`, CancelOp -> :class:`CancelRequest`,
token/end frames -> :class:`TokenChunk`/:class:`RequestFinished`), so the
same exactly-once guarantees hold end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# ---------------------------------------------------------------------------
# Commands: scheduler -> runner
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class AddRequest:
    """Attach a request to the runner's GPU (§5.1 placement decision)."""

    request_id: str
    lora_id: str
    prompt_len: int
    response_len: int
    prompt_tokens: "tuple[int, ...] | None" = None
    generated_prefix: "tuple[int, ...]" = ()
    """Tokens generated on a previous GPU (migration re-prefill, §5.3)."""

    def __post_init__(self) -> None:
        if self.prompt_len < 1 or self.response_len < 1:
            raise ValueError("prompt_len and response_len must be >= 1")


@dataclass(frozen=True)
class CancelRequest:
    """Remove a request (user disconnect, or migration step 1)."""

    request_id: str
    requeue: bool = False


Command = "AddRequest | CancelRequest"


# ---------------------------------------------------------------------------
# Events: runner -> scheduler
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TokenChunk:
    """Newly generated tokens streamed upward after one invocation."""

    request_id: str
    tokens: tuple[int, ...]
    time: float

    def __post_init__(self) -> None:
        if not self.tokens:
            raise ValueError("a token chunk must carry at least one token")


@dataclass(frozen=True)
class RequestFinished:
    """The request hit its stopping condition and left the batch (§5)."""

    request_id: str
    time: float
    num_generated: int


@dataclass(frozen=True)
class RequestEvicted:
    """Evicted under KvCache pressure; the scheduler must re-place it."""

    request_id: str
    time: float


@dataclass(frozen=True)
class CancelAck:
    """The cancel was picked up after the current batch (§5.3 semantics)."""

    request_id: str
    time: float


@dataclass(frozen=True)
class StepStats:
    """Per-invocation telemetry (batch size panel of Fig 13)."""

    gpu_id: str
    start: float
    latency: float
    batch_size: int
    num_lora_segments: int


Event = "TokenChunk | RequestFinished | RequestEvicted | CancelAck | StepStats"

COMMAND_TYPES = (AddRequest, CancelRequest)
"""Every scheduler -> runner message class, in protocol order."""

EVENT_TYPES = (TokenChunk, RequestFinished, RequestEvicted, CancelAck, StepStats)
"""Every runner -> scheduler message class; anything else on the wire is
a protocol violation (the concurrency suite asserts the closed set)."""


@dataclass
class MessageLog:
    """Ordered capture of protocol traffic (test/debug aid)."""

    commands: list = field(default_factory=list)
    events: list = field(default_factory=list)

    def record_command(self, msg) -> None:
        self.commands.append(msg)

    def record_event(self, msg) -> None:
        self.events.append(msg)

    def events_of_type(self, cls) -> list:
        return [e for e in self.events if isinstance(e, cls)]
