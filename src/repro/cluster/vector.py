"""Cross-engine vectorized steady-decode merge (gen-2 fast path).

When several GPUs are mid-decode their step events interleave densely:
each engine's next tick lands before any other engine finishes one, so
the single-engine inline lane (strictly-before-``peek`` coalescing)
never gets a window wider than one step. This module recovers the
vectorized win in that regime by *replaying the event queue's own pop
order* over every steady engine's priced decode run:

1. Each steady-armed engine prices its future step latencies in one set
   of array ops (:meth:`~repro.runtime.engine.Engine.steady_run_stage`),
   capped so no step inside the run could finish a request, evict, or
   exhaust KvCache headroom — i.e. every step is provably a pure tick.
2. The lane computes the merge *horizon*: the first pending event that
   is not one of those decode ticks (an arrival, fault, migration or
   prefetch tick, a non-steady engine's step, the run's ``until``).
3. A private heap replays the exact ``(time, seq)`` pop order the real
   queue would produce: consumed real events keep their scheduling
   ``seq``; successor ticks created mid-merge get virtual keys above
   every pending ``seq``, assigned in creation order — exactly the order
   the reference loop would have assigned them.
4. Committed runs are applied per engine in bulk, metrics are recorded
   in pop order, the loop's clock/processed count advance by the replay,
   and each engine's one outstanding successor event is materialized as
   a real scheduled event *in creation order*, so every relative
   ``(time, seq)`` comparison any future event can make is unchanged.

The relative-order argument is the same one that justifies the gen-1
inline lane: coalescing may shift absolute ``seq`` values, but the
relative scheduling order of any two events that ever coexist in the
queue — and therefore every tie-break — is preserved. The differential
equivalence harness (``tests/test_fastpath_differential.py``) pins the
end-to-end claim byte-for-byte.
"""

from __future__ import annotations

import heapq

import numpy as np


class VectorDecodeLane:
    """Merge-replay driver bound to one :class:`ClusterSimulator`."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self.merges = 0
        self.merged_steps = 0

    def try_merge(self, e0_gpu: str, e0_engine, end: float, entry: bool = False) -> int:
        """Attempt a cross-engine merge; returns steps committed (0 = no-op).

        Two call modes share the replay machinery:

        * ``entry=False`` (window tail): ``e0_engine`` just finished a
          step at ``end`` (its next tick's start); that tick is *unpaid*
          — the reference path would schedule and later pop it, so the
          replay accounts every pop including E0's first.
        * ``entry=True`` (window start): E0's step event at ``end`` just
          *fired* — the loop already popped and paid for it, and the
          caller has not yet executed the step. The replay commits that
          tick as its guaranteed first pop (it was the queue minimum, or
          it would not have fired) without re-accounting it.

        On success the committed prefix of every participating engine's
        run has been applied, the loop advanced, and every engine's next
        step event scheduled — the caller's step action must simply
        return. On failure nothing observable changed and the caller
        falls back to the per-step path.
        """
        sim = self.sim
        loop = sim.loop
        info = loop.merge_info()
        if info is None:
            return 0
        until, budget, vbase = info
        if until is not None and end > until:
            return 0
        prepaid = 1 if entry else 0
        if budget is not None and budget <= -prepaid:
            return 0

        # Stage E0 first: it is the cheapest disqualifier (a request
        # finishing next tick, cold terms, no headroom) and staging has
        # no observable side effects, so bailing here costs nothing.
        # Staging is unclamped (no horizon): the priced length is the
        # finish/headroom cap, which the per-arm cache serves sliced, and
        # the replay below never walks past its horizon anyway.
        staged0 = e0_engine.steady_run_stage(end, None, min_steps=1)
        if staged0 is None:
            return 0

        # Collect the other engines whose pending events are candidate
        # decode ticks. Anything that fails the cheap gate keeps its
        # event in the queue, where it bounds the horizon like any other
        # foreign event.
        engines = sim.scheduler.engines
        others = []
        skip_ids = set()
        for gid, handle in list(sim._step_handles.items()):
            if handle.cancelled:
                del sim._step_handles[gid]
                continue
            eng = engines.get(gid)
            if (
                eng is None
                or not getattr(eng, "alive", True)
                or not eng.fast_path
                or not eng.steady_ready()
            ):
                continue
            others.append((gid, handle, eng))
            skip_ids.add(id(handle))

        horizon = loop.peek_time_excluding(skip_ids)
        if horizon is not None and horizon <= end:
            return 0

        # Stage the rest. A candidate that fails staging (cold latency
        # terms, a finish within two ticks, no headroom) keeps its real
        # event, which clamps the replay horizon below it.
        gids = [e0_gpu]
        lane = [e0_engine]
        handles: "list[object | None]" = [None]
        ends_np = [staged0[0]]
        batches = [staged0[1]]
        h_dyn = horizon
        for gid, handle, eng in others:
            staged = eng.steady_run_stage(handle.time, None, min_steps=1)
            if staged is None:
                if h_dyn is None or handle.time < h_dyn:
                    h_dyn = handle.time
                continue
            gids.append(gid)
            lane.append(eng)
            handles.append(handle)
            ends_np.append(staged[0])
            batches.append(staged[1])
        if h_dyn is not None and h_dyn <= end:
            return 0

        n_eng = len(lane)
        ends = [a.tolist() for a in ends_np]
        avail = [len(e) - 1 for e in ends]
        fbatch = [float(b) for b in batches]
        committed = [0] * n_eng
        # E0's initial event is virtual (creation index 0, due at ``end``);
        # if the replay stops before it pops, it must still materialize —
        # every other engine keeps its real queued event instead.
        succ_time = [0.0] * n_eng
        succ_time[0] = end
        succ_order = [0] * n_eng

        # Replay the queue's pop order. E0's (virtual) initial event is
        # creation index 0 — the reference path schedules it before any
        # of the window's pops; consumed real events compare by their
        # true seq, which every virtual key exceeds, as in the reference.
        # In entry mode E0's event already fired as the queue minimum, so
        # a below-every-seq key reproduces that it pops first.
        heap: "list[tuple[float, int, int]]" = [(end, -1 if entry else vbase, 0)]
        for i in range(1, n_eng):
            heap.append((ends[i][0], handles[i].seq, i))
        heapq.heapify(heap)
        next_idx = 1
        pops = 0
        merged_t: "list[float]" = []
        merged_b: "list[float]" = []
        while heap:
            t, _key, i = heap[0]
            if h_dyn is not None and t >= h_dyn:
                break
            if until is not None and t > until:
                break
            if budget is not None and pops >= budget + prepaid:
                break
            heapq.heappop(heap)
            handle = handles[i]
            if handle is not None:
                handle.cancel()
                handles[i] = None
            merged_t.append(t)
            merged_b.append(fbatch[i])
            ki = committed[i] + 1
            committed[i] = ki
            pops += 1
            nxt = ends[i][ki]
            succ_time[i] = nxt
            succ_order[i] = next_idx
            if ki >= avail[i]:
                # Run exhausted: the successor might finish a request or
                # need the general path, so it must fire as a real event —
                # nothing may be replayed past it.
                if h_dyn is None or nxt < h_dyn:
                    h_dyn = nxt
            else:
                heapq.heappush(heap, (nxt, vbase + next_idx, i))
            next_idx += 1
        if pops == 0:
            return 0

        # Apply each engine's committed prefix in bulk, then account the
        # replay and materialize successors in creation order so their
        # relative seqs match what the reference loop assigned.
        per_gpu = []
        for i in range(n_eng):
            n = committed[i]
            if n == 0:
                continue
            lane[i].commit_steady_run(n)
            per_gpu.append((gids[i], ends_np[i][:n], batches[i]))
        sim.metrics.record_step_merge(
            np.array(merged_t), np.array(merged_b), per_gpu
        )
        loop.consume_merged(pops - prepaid, merged_t[-1])
        order = sorted(
            (i for i in range(n_eng) if committed[i] or i == 0),
            key=succ_order.__getitem__,
        )
        for i in order:
            h = loop.schedule(succ_time[i], sim._step_action(gids[i]))
            sim._step_handles[gids[i]] = h
        self.merges += 1
        self.merged_steps += pops
        return pops
