"""Cluster-level serving: the Punica scheduler over a pool of GPUs (§3, §5).

The scheduler routes each new request to the busiest GPU that still has
room (consolidation), queues FCFS when the cluster saturates, periodically
migrates requests off lightly loaded GPUs so they can drain to idle (and be
released to the cloud provider), and re-places requests evicted under
KvCache pressure. :class:`ClusterSimulator` drives any number of engines
through a discrete-event loop and records the Fig 13 panels: request rate,
aggregate token throughput, and each GPU's batch size over time.
"""

from repro.cluster.elastic import ElasticClusterSimulator, ElasticConfig, ElasticResult
from repro.cluster.events import EventLoop
from repro.cluster.frontend import Frontend, RequestHandle
from repro.cluster.metrics import ClusterMetrics, TimeSeries
from repro.cluster.protocol import (
    AddRequest,
    CancelAck,
    CancelRequest,
    MessageLog,
    RequestEvicted,
    RequestFinished,
    StepStats,
    TokenChunk,
)
from repro.cluster.runner import GpuRunner
from repro.cluster.scheduler import PunicaScheduler, SchedulerConfig
from repro.cluster.simulator import ClusterSimulator, SimulationResult

__all__ = [
    "AddRequest",
    "CancelAck",
    "CancelRequest",
    "ClusterMetrics",
    "ClusterSimulator",
    "ElasticClusterSimulator",
    "ElasticConfig",
    "ElasticResult",
    "EventLoop",
    "Frontend",
    "GpuRunner",
    "MessageLog",
    "PunicaScheduler",
    "RequestEvicted",
    "RequestFinished",
    "RequestHandle",
    "SchedulerConfig",
    "SimulationResult",
    "StepStats",
    "TimeSeries",
    "TokenChunk",
]
