"""On-demand LoRA model loading (paper §5.2).

When a request whose LoRA model is not yet on the GPU arrives, the engine
issues an asynchronous host-to-device copy and keeps running the current
batch; the request joins only after the copy completes ("the weight already
finished loading ... the new request is able to join the batch naturally").

:class:`LoraLoader` is the engine-facing API; since the adapter lifecycle
subsystem landed it is a thin shim over
:class:`~repro.adapters.store.GpuAdapterStore`, which adds registry-aware
tiering (DISK -> HOST -> GPU), prefetch marks, and shared-budget hooks the
:class:`~repro.adapters.pool.UnifiedMemoryPool` uses. Constructed bare (no
registry), it behaves exactly like the original standalone loader: every
adapter is assumed host-resident, residency is a flat per-GPU set, and an
optional ``capacity_bytes`` budget is enforced by LRU eviction of
unreferenced, fully-loaded models.
"""

from __future__ import annotations

from repro.adapters.registry import AdapterRegistry, Tier
from repro.adapters.store import AdapterEvent, GpuAdapterStore
from repro.hw.pcie import PCIE_GEN4_X16, PcieSpec, TransferPlan


class LoraLoader:
    """Tracks which LoRA models are resident on one GPU (thin shim)."""

    def __init__(
        self,
        pcie: PcieSpec = PCIE_GEN4_X16,
        capacity_bytes: "float | None" = None,
        registry: "AdapterRegistry | None" = None,
        gpu_id: str = "gpu0",
    ):
        self._store = GpuAdapterStore(
            pcie=pcie,
            capacity_bytes=capacity_bytes,
            registry=registry,
            gpu_id=gpu_id,
        )

    @property
    def store(self) -> GpuAdapterStore:
        """The underlying adapter store (the subsystem's real state)."""
        return self._store

    @property
    def pcie(self) -> PcieSpec:
        return self._store.pcie

    @property
    def capacity_bytes(self) -> "float | None":
        return self._store.capacity_bytes

    @property
    def registry(self) -> "AdapterRegistry | None":
        return self._store.registry

    @property
    def num_evictions(self) -> int:
        return self._store.num_evictions

    # -- queries ---------------------------------------------------------
    def is_resident(self, lora_id: str) -> bool:
        """Known to the loader (copy may still be in flight)."""
        return self._store.is_resident(lora_id)

    def is_ready(self, lora_id: str, now: float) -> bool:
        """Resident *and* the async copy has completed by ``now``."""
        return self._store.is_ready(lora_id, now)

    def ready_time(self, lora_id: str) -> float:
        """When the model's copy finishes (raises if never requested)."""
        return self._store.ready_time(lora_id)

    def used_bytes(self) -> float:
        return self._store.used_bytes()

    def resident_models(self) -> list[str]:
        return self._store.resident_models()

    def tier(self, lora_id: str) -> Tier:
        """This GPU's view of the adapter's residency tier."""
        return self._store.tier(lora_id)

    def pcie_idle(self, now: float) -> bool:
        return self._store.pcie_idle(now)

    # -- loading ---------------------------------------------------------
    def advance(self, now: float) -> None:
        self._store.advance(now)

    def request_load(self, lora_id: str, nbytes: float, now: float) -> TransferPlan:
        """Ensure ``lora_id`` is (being) loaded; idempotent.

        Returns the transfer plan governing when it becomes usable. A
        repeated request returns the existing plan without a new copy.
        """
        return self._store.request_load(lora_id, nbytes, now)

    def prefetch(self, lora_id: str, now: float, nbytes: "float | None" = None) -> bool:
        return self._store.prefetch(lora_id, now, nbytes)

    def can_admit_adapter(self, lora_id: str, nbytes: float) -> bool:
        return self._store.can_admit_adapter(lora_id, nbytes)

    # -- fault injection -------------------------------------------------
    def stall_pcie(self, now: float, extra: float) -> list[str]:
        """Delay every in-flight copy by ``extra`` seconds (PCIe stall)."""
        return self._store.stall(now, extra)

    def fail_load(self, lora_id: str, now: float) -> bool:
        """Drop an unpinned (in-flight or resident) adapter entry."""
        return self._store.fail_load(lora_id, now)

    def inflight_models(self, now: float) -> list[str]:
        """Adapters whose host->GPU copy has not completed by ``now``."""
        return [
            lid
            for lid in self._store.resident_models()
            if not self._store.is_ready(lid, now)
        ]

    def acquire(self, lora_id: str, now: float) -> None:
        """Pin a model while a request using it is in the working set."""
        self._store.acquire(lora_id, now)

    def release(self, lora_id: str) -> None:
        self._store.release(lora_id)

    def drain_events(self) -> list[AdapterEvent]:
        return self._store.drain_events()
