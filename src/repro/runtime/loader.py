"""On-demand LoRA model loading (paper §5.2).

When a request whose LoRA model is not yet on the GPU arrives, the engine
issues an asynchronous host-to-device copy and keeps running the current
batch; the request joins only after the copy completes ("the weight already
finished loading ... the new request is able to join the batch naturally").
The loader tracks residency, in-flight transfers, per-model reference
counts, and — optionally — evicts unreferenced models LRU when a byte
budget is exceeded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.pcie import PCIE_GEN4_X16, PcieSpec, TransferPlan, plan_transfer


@dataclass
class _Resident:
    nbytes: float
    plan: TransferPlan
    refcount: int = 0
    last_used: float = 0.0


class LoraLoader:
    """Tracks which LoRA models are resident on one GPU."""

    def __init__(
        self,
        pcie: PcieSpec = PCIE_GEN4_X16,
        capacity_bytes: float | None = None,
    ):
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError(f"capacity_bytes must be positive, got {capacity_bytes}")
        self.pcie = pcie
        self.capacity_bytes = capacity_bytes
        self._models: dict[str, _Resident] = {}

    # -- queries ---------------------------------------------------------
    def is_resident(self, lora_id: str) -> bool:
        """Known to the loader (copy may still be in flight)."""
        return lora_id in self._models

    def is_ready(self, lora_id: str, now: float) -> bool:
        """Resident *and* the async copy has completed by ``now``."""
        entry = self._models.get(lora_id)
        return entry is not None and entry.plan.done_by(now)

    def ready_time(self, lora_id: str) -> float:
        """When the model's copy finishes (raises if never requested)."""
        return self._require(lora_id).plan.finish

    def used_bytes(self) -> float:
        return sum(e.nbytes for e in self._models.values())

    def resident_models(self) -> list[str]:
        return list(self._models)

    # -- loading ---------------------------------------------------------
    def request_load(self, lora_id: str, nbytes: float, now: float) -> TransferPlan:
        """Ensure ``lora_id`` is (being) loaded; idempotent.

        Returns the transfer plan governing when it becomes usable. A
        repeated request returns the existing plan without a new copy.
        """
        entry = self._models.get(lora_id)
        if entry is not None:
            entry.last_used = now
            return entry.plan
        self._maybe_evict(nbytes, now)
        plan = plan_transfer(self.pcie, nbytes, start=now)
        self._models[lora_id] = _Resident(nbytes=nbytes, plan=plan, last_used=now)
        return plan

    def acquire(self, lora_id: str, now: float) -> None:
        """Pin a model while a request using it is in the working set."""
        entry = self._require(lora_id)
        entry.refcount += 1
        entry.last_used = now

    def release(self, lora_id: str) -> None:
        entry = self._require(lora_id)
        if entry.refcount <= 0:
            raise RuntimeError(f"release of unacquired LoRA model {lora_id!r}")
        entry.refcount -= 1

    def _maybe_evict(self, incoming_bytes: float, now: float) -> None:
        if self.capacity_bytes is None:
            return
        while self.used_bytes() + incoming_bytes > self.capacity_bytes:
            victims = [
                (e.last_used, lid)
                for lid, e in self._models.items()
                if e.refcount == 0 and e.plan.done_by(now)
            ]
            if not victims:
                raise MemoryError(
                    f"cannot fit {incoming_bytes} bytes of LoRA weights: "
                    f"{self.used_bytes()} resident, all pinned"
                )
            _, victim = min(victims)
            del self._models[victim]

    def _require(self, lora_id: str) -> _Resident:
        try:
            return self._models[lora_id]
        except KeyError:
            raise KeyError(f"LoRA model {lora_id!r} was never loaded") from None
