"""Per-request latency breakdowns and fleet-level SLO statistics.

Serving papers (this one included) report *normalized latency* — seconds
per generated token end to end. This module decomposes it into the phases
operators actually tune: queue wait (scheduler backlog), time-to-first-
token (admission + LoRA load + prefill), and the decode phase, plus
percentile/SLO-attainment aggregation across a set of finished requests.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

import numpy as np

from repro.runtime.request import Request, RequestState


@dataclass(frozen=True)
class LatencyBreakdown:
    """One finished request's latency, phase by phase (seconds)."""

    request_id: str
    queue_wait: float
    time_to_first_token: float
    decode_time: float
    total: float
    num_tokens: int

    def __post_init__(self) -> None:
        if self.num_tokens < 1:
            raise ValueError("breakdown requires at least one generated token")
        for name in ("queue_wait", "time_to_first_token", "decode_time", "total"):
            if getattr(self, name) < -1e-9:
                raise ValueError(f"{name} must be nonnegative")

    @property
    def normalized(self) -> float:
        """Seconds per generated token — the paper's latency metric."""
        return self.total / self.num_tokens

    @property
    def inter_token_time(self) -> float:
        """Mean gap between generated tokens during the decode phase."""
        if self.num_tokens == 1:
            return 0.0
        return self.decode_time / (self.num_tokens - 1)


def breakdown_of(request: Request) -> LatencyBreakdown:
    """Decompose one FINISHED request's latency."""
    if request.state is not RequestState.FINISHED:
        raise ValueError(f"{request.request_id} is {request.state}, not finished")
    if not request.generated_tokens:
        raise ValueError(f"{request.request_id} generated no tokens")
    return LatencyBreakdown(
        request_id=request.request_id,
        queue_wait=request.queue_wait(),
        time_to_first_token=request.time_to_first_token(),
        decode_time=request.decode_time(),
        total=request.finish_time - request.spec.arrival_time,
        num_tokens=request.num_generated,
    )


@dataclass(frozen=True)
class LatencyStats:
    """Aggregate latency statistics over a fleet of finished requests."""

    count: int
    mean_normalized: float
    p50_normalized: float
    p99_normalized: float
    mean_ttft: float
    p99_ttft: float
    mean_queue_wait: float

    @classmethod
    def from_requests(cls, requests: Iterable[Request]) -> "LatencyStats":
        breakdowns = [
            breakdown_of(r)
            for r in requests
            if r.state is RequestState.FINISHED and r.num_generated > 0
        ]
        if not breakdowns:
            raise ValueError("no finished requests to aggregate")
        normalized = np.asarray([b.normalized for b in breakdowns])
        ttft = np.asarray([b.time_to_first_token for b in breakdowns])
        queue = np.asarray([b.queue_wait for b in breakdowns])
        return cls(
            count=len(breakdowns),
            mean_normalized=float(normalized.mean()),
            p50_normalized=float(np.percentile(normalized, 50)),
            p99_normalized=float(np.percentile(normalized, 99)),
            mean_ttft=float(ttft.mean()),
            p99_ttft=float(np.percentile(ttft, 99)),
            mean_queue_wait=float(queue.mean()),
        )


def slo_attainment(requests: Iterable[Request], slo_seconds_per_token: float) -> float:
    """Fraction of finished requests meeting a normalized-latency SLO."""
    if slo_seconds_per_token <= 0:
        raise ValueError("SLO must be positive")
    breakdowns = [
        breakdown_of(r)
        for r in requests
        if r.state is RequestState.FINISHED and r.num_generated > 0
    ]
    if not breakdowns:
        return 0.0
    met = sum(1 for b in breakdowns if b.normalized <= slo_seconds_per_token)
    return met / len(breakdowns)
