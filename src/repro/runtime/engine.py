"""The single-GPU continuous-batching engine (paper §5).

Each call to :meth:`GpuEngine.step` runs one batched model invocation:

* every RUNNING request contributes one decode token;
* at most ``prefill_batch_limit`` (=1, §5) pending requests whose LoRA
  weights have finished loading are prefilled in the same invocation;
* decode requests needing a new KvCache slot that cannot get one trigger
  eviction of the *newest* requests (preserving FCFS, §5.3); evicted
  requests are reported so the cluster scheduler can re-place them;
* finished requests (length limit or EOS) leave the batch immediately —
  the separable paged KvCache makes this free (§5.4).

The engine is clock-free: callers pass ``now`` in and get the step latency
back, so the same code runs under the discrete-event cluster simulator and
under simple closed-loop drivers.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass

import numpy as np

from repro.core.batch import (
    BatchEntry,
    BatchPlan,
    PlanCache,
    plan_batch,
    plan_decode_batch,
)
from repro.obs.tracer import EventKind, Tracer
from repro.runtime.loader import LoraLoader
from repro.runtime.request import Request, RequestState
from repro.runtime.spec import SpecConfig
from repro.utils.fastpath import fastpath_enabled


@dataclass(frozen=True)
class EngineConfig:
    """Engine policy knobs (paper defaults)."""

    max_batch_size: int = 32
    """Profiled sweet spot on A100 (§5.1)."""
    prefill_batch_limit: int = 1
    """Prefills per invocation; 1 minimizes the latency penalty (§5)."""
    same_lora_only: bool = False
    """Baseline restriction: batch only requests of one LoRA model (§7)."""
    eos_token_id: int | None = None
    """Functional mode's end-of-sequence stopping condition."""
    admission_headroom_tokens: int = 0
    """Extra free KvCache tokens required before admitting a new request."""
    spec: "SpecConfig | None" = None
    """Arm the speculative decoding lane (docs/speculative.md): pure-decode
    invocations become draft/verify rounds committing 1..draft_len+1
    tokens per request; steps with pending work take the classic path."""

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.prefill_batch_limit < 1:
            # 0 used to pass validation but silently starves every queued
            # request: nothing pending can ever prefill, so the engine
            # reports no progress forever. Reject it outright.
            raise ValueError(
                "prefill_batch_limit must be >= 1 "
                "(0 would starve every queued request)"
            )


@dataclass(frozen=True)
class StepReport:
    """What one engine step did — the unit every metric aggregates over."""

    gpu_id: str
    start: float
    latency: float
    batch_size: int
    num_prefill: int
    num_decode: int
    num_lora_segments: int
    new_tokens: dict[str, int]
    finished: tuple[str, ...]
    evicted: tuple[str, ...]
    committed: "dict[str, tuple[int, ...]] | None" = None
    """Speculative rounds only: every token each request committed this
    step, in order (``new_tokens`` then holds the last of each). ``None``
    on classic steps, where each request commits exactly one token."""

    @property
    def end(self) -> float:
        return self.start + self.latency

    @property
    def tokens_generated(self) -> int:
        if self.committed is not None:
            return sum(len(toks) for toks in self.committed.values())
        return len(self.new_tokens)

    def committed_tokens(self) -> "dict[str, tuple[int, ...]]":
        """Tokens committed per request this step (singletons off-spec)."""
        if self.committed is not None:
            return self.committed
        return {rid: (tok,) for rid, tok in self.new_tokens.items()}


@dataclass
class _Slot:
    request: Request
    admit_seq: int


class GpuEngine:
    """Continuous-batching engine for one GPU (or one TP group)."""

    def __init__(
        self,
        gpu_id: str,
        backend,
        config: EngineConfig | None = None,
        loader: LoraLoader | None = None,
        tracer: "Tracer | None" = None,
        fast_path: bool | None = None,
        role: str = "both",
    ):
        self.gpu_id = gpu_id
        self.backend = backend
        self.config = config or EngineConfig()
        self.loader = loader or LoraLoader()
        if role not in ("both", "prefill", "decode"):
            raise ValueError(f"role must be 'both', 'prefill' or 'decode', got {role!r}")
        self.role = role
        """Disaggregated-serving role: ``"prefill"`` engines hand finished
        prefills off to the decode pool, ``"decode"`` engines only admit
        imported KV. ``"both"`` (default) is the classic colocated mode."""
        self.tracer = tracer
        """Optional :class:`~repro.obs.tracer.Tracer` receiving PLACE /
        PREFILL / DECODE_STEP / FINISH / QUEUE(evicted) events."""
        self._working: dict[str, _Slot] = {}
        self._working_order: list[_Slot] = []
        """The slots of ``_working`` in ascending ``admit_seq`` — the batch
        iteration order, maintained incrementally instead of re-sorted
        every step."""
        self._pending: list[_Slot] = []
        self._num_importing = 0
        """Pending slots holding imported KV (``needs_prefill`` False) that
        wait only for their adapter load before joining the decode batch.
        Zero outside disaggregated mode, so the hot loop's promotion check
        is one falsy integer test."""
        self._admit_seq = 0
        self.fast_path = fastpath_enabled(fast_path)
        self._plan_cache = PlanCache() if self.fast_path else None
        self._spec = self.config.spec
        if self._spec is not None and not hasattr(backend, "execute_spec"):
            raise ValueError(
                f"{gpu_id}: speculative decoding is armed but backend "
                f"{type(backend).__name__} has no execute_spec"
            )
        self._spec_rng = (
            random.Random(f"{self._spec.seed}:{gpu_id}")
            if self._spec is not None
            else None
        )
        """Acceptance RNG of the simulated backend's geometric model —
        engine-owned so the fast and reference paths consume identical
        draws (the backend has no per-path state of its own)."""
        self.spec_rounds = 0
        """Speculative rounds run (diagnostic, like ``fast_steps``)."""
        # The steady lane assumes one token per request per step; armed
        # engines always take the spec round instead.
        self._steady_ok = (
            self.fast_path
            and getattr(backend, "supports_steady", False)
            and self._spec is None
        )
        # Steady-state decode cache: valid while the batch membership is
        # unchanged and nothing is pending. ``_steady_plan is None`` means
        # the next step must take the general path and rebuild it.
        self._steady_plan: "BatchPlan | None" = None
        self._steady_slots: list[_Slot] = []
        self._steady_pairs: "list[tuple[Request, str]]" = []
        self._steady_past: dict[str, int] = {}
        self._steady_total = 0
        self._steady_rem: "list[int] | None" = None
        self._staged_run: "tuple[np.ndarray, int] | None" = None
        """(step-end times, batch size) priced by :meth:`steady_run_candidate`
        and awaiting :meth:`commit_steady_run` within the same event."""
        self._steady_first: "tuple[object, float] | None" = None
        """(plan, first-step latency) probe cache — the run-length
        *estimate* in :meth:`steady_run_stage` tolerates the slow
        within-plan latency drift, so one probe per plan suffices."""
        self._steady_lats: "tuple[object, int, float, np.ndarray] | None" = None
        """(plan, base KV total, slowdown, step-end array) staging cache. Step
        ``k`` of a run from total ``T`` prices with ``T + k * batch`` and
        the ends chain sequentially, so the array built from ``T``
        *contains* — bit for bit — every run from ``T + n * batch``:
        later stagings slice at offset ``n`` instead of re-pricing.
        Keyed by plan identity; a membership change produces a different
        plan object and misses naturally."""
        self._entry_cache: dict[str, BatchEntry] = {}
        """Decode :class:`BatchEntry` per request id — entries are
        immutable, so each request's is built once and reused across
        steady-plan rebuilds."""
        self.fast_steps = 0
        """Steps served by the steady-state decode lane (diagnostic only —
        deliberately not a registry metric so differential runs compare
        equal)."""
        self.slow_steps = 0
        self.alive = True
        """False once the GPU crashed; a dead engine accepts and runs nothing."""
        self.slowdown_factor = 1.0
        """Multiplier on step latency (fault injection: thermal throttling,
        a noisy neighbour, ECC retirement storms). 1.0 = healthy."""

    # ------------------------------------------------------------------
    # Scheduler-facing state
    # ------------------------------------------------------------------
    @property
    def working_set_size(self) -> int:
        """The LLM-invocation batch size the scheduler routes on (§5.1)."""
        return len(self._working) + len(self._pending)

    @property
    def is_idle(self) -> bool:
        return self.working_set_size == 0

    def kv_free_tokens(self) -> int:
        return self.backend.kv_free_tokens()

    def active_lora_ids(self) -> set[str]:
        slots = list(self._working.values()) + self._pending
        return {s.request.lora_id for s in slots}

    def can_accept(self, request: Request) -> bool:
        """Admission test the cluster scheduler runs (§5.1 constraints).

        Besides batch-size and KvCache headroom, the request's adapter must
        fit: a non-resident adapter's bytes count against the (possibly
        KvCache-shared) memory budget, so a GPU whose pinned adapters leave
        no room declines rather than failing the load later.
        """
        if not self.alive:
            return False
        if self.working_set_size >= self.config.max_batch_size:
            return False
        if self.config.same_lora_only:
            active = self.active_lora_ids()
            if active and request.lora_id not in active:
                return False
        if not self.loader.can_admit_adapter(
            request.lora_id, self._default_lora_bytes()
        ):
            return False
        return self.backend.kv_can_admit(
            request.effective_prompt_len, self.config.admission_headroom_tokens
        )

    def adapter_tier(self, lora_id: str) -> int:
        """Residency tier of an adapter on this GPU (2 GPU / 1 HOST / 0 DISK)
        — the locality signal the cluster scheduler's routing consults."""
        return int(self.loader.tier(lora_id))

    def _default_lora_bytes(self) -> float:
        """Fallback adapter size when the registry has no metadata."""
        return float(self.backend.config.lora_bytes(self.backend.lora_rank))

    def all_requests(self) -> list[Request]:
        """Every request currently on this GPU (working + pending), in
        admission order — what the migration pass iterates over."""
        return [s.request for s in self._all_slots()]

    def _all_slots(self) -> "list[_Slot]":
        """Working + pending slots in admission order. Both source lists are
        already ascending in ``admit_seq`` (working is maintained so;
        pending is append-ordered), so a linear merge replaces the old
        full sort."""
        return list(
            heapq.merge(self._working_order, self._pending, key=lambda s: s.admit_seq)
        )

    def next_ready_time(self) -> "float | None":
        """Earliest time a pending request's LoRA load completes.

        ``None`` when nothing is pending. The cluster simulator uses this to
        wake a GPU that returned an empty step while a weight copy was in
        flight (§5.2's overlap of loading and compute).
        """
        times = [self.loader.ready_time(s.request.lora_id) for s in self._pending]
        return min(times) if times else None

    def has_request(self, request_id: str) -> bool:
        return request_id in self._working or any(
            s.request.request_id == request_id for s in self._pending
        )

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def add_request(self, request: Request, now: float) -> None:
        """Assign a request to this GPU; its LoRA load starts immediately."""
        if self.has_request(request.request_id):
            raise ValueError(f"request {request.request_id} already on {self.gpu_id}")
        if not self.can_accept(request):
            raise RuntimeError(
                f"{self.gpu_id} cannot accept {request.request_id} "
                f"(working set {self.working_set_size}, "
                f"free kv tokens {self.kv_free_tokens()})"
            )
        self.loader.request_load(request.lora_id, self._default_lora_bytes(), now)
        self.loader.acquire(request.lora_id, now)
        request.needs_prefill = True
        request.mark_running(self.gpu_id, now)
        self._pending.append(_Slot(request=request, admit_seq=self._admit_seq))
        self._admit_seq += 1
        if self.tracer is not None:
            self.tracer.emit(
                now, EventKind.PLACE, request.request_id, self.gpu_id,
                lora=request.lora_id,
            )

    def cancel(self, request_id: str, requeue: bool = False) -> Request:
        """Remove a request: user cancellation, or migration step 1 (§5.3).

        With ``requeue=True`` the request keeps its generated prefix and
        returns to QUEUED (the migration path); otherwise it is CANCELLED.
        """
        self._steady_plan = None
        slot = self._working.pop(request_id, None)
        if slot is not None:
            self._working_order.remove(slot)
        if slot is None:
            for i, s in enumerate(self._pending):
                if s.request.request_id == request_id:
                    slot = self._pending.pop(i)
                    if not slot.request.needs_prefill:
                        self._num_importing -= 1
                    break
        if slot is None:
            raise KeyError(f"request {request_id} not on {self.gpu_id}")
        self.backend.kv_release(request_id)
        self.loader.release(slot.request.lora_id)
        if requeue:
            slot.request.evict()
        else:
            slot.request.mark_cancelled()
        return slot.request

    def fail(self, now: float) -> list[Request]:
        """GPU crash: mark the engine dead and displace every request.

        Displaced requests keep their generated prefix and return to QUEUED
        (the §5.3 migration semantics) so the cluster scheduler can re-place
        them with a re-prefill on a surviving GPU. KvCache and adapter pins
        die with the GPU, so no release bookkeeping survives the crash.
        """
        self.alive = False
        self._steady_plan = None
        slots = self._all_slots()
        self._working.clear()
        self._working_order.clear()
        self._pending.clear()
        self._num_importing = 0
        displaced = []
        for slot in slots:
            slot.request.evict()
            displaced.append(slot.request)
        return displaced

    # ------------------------------------------------------------------
    # KV handoff (disaggregated prefill/decode serving)
    # ------------------------------------------------------------------
    def export_request(self, request_id: str, now: float) -> "tuple[Request, int]":
        """Detach a prefilled request for handoff to a decode GPU.

        The request must be in the working (decoding) set — i.e. its
        prefill already ran here. Its KvCache pages are released locally
        (the bytes travel over the interconnect; the caller models that
        cost) and the adapter pin is dropped. Returns the request plus the
        token count of the exported KV history.
        """
        slot = self._working.pop(request_id, None)
        if slot is None:
            raise KeyError(f"request {request_id} not working on {self.gpu_id}")
        self._working_order.remove(slot)
        self._steady_plan = None
        kv_tokens = self.backend.kv_export(request_id)
        self.loader.release(slot.request.lora_id)
        request = slot.request
        request.suspend_for_transfer()
        request.kv_len = kv_tokens
        return request, kv_tokens

    def can_accept_import(self, request: Request, kv_tokens: int) -> bool:
        """Admission test for a request arriving with its KV history.

        Mirrors :meth:`can_accept` but sizes the KvCache check by the
        imported history instead of a prefill over the prompt."""
        if not self.alive:
            return False
        if self.working_set_size >= self.config.max_batch_size:
            return False
        if self.config.same_lora_only:
            active = self.active_lora_ids()
            if active and request.lora_id not in active:
                return False
        if not self.loader.can_admit_adapter(
            request.lora_id, self._default_lora_bytes()
        ):
            return False
        return self.backend.kv_can_import(
            kv_tokens, self.config.admission_headroom_tokens
        )

    def import_request(self, request: Request, kv_tokens: int, now: float) -> None:
        """Admit a request whose KV pages just arrived over the interconnect.

        No prefill is needed: the pages are materialized immediately and
        the request joins the decode batch as soon as its adapter is
        resident here (the load starts now and may overlap other work).
        """
        if self.has_request(request.request_id):
            raise ValueError(f"request {request.request_id} already on {self.gpu_id}")
        if not self.can_accept_import(request, kv_tokens):
            raise RuntimeError(
                f"{self.gpu_id} cannot import {request.request_id} "
                f"(working set {self.working_set_size}, "
                f"free kv tokens {self.kv_free_tokens()})"
            )
        self.loader.request_load(request.lora_id, self._default_lora_bytes(), now)
        self.loader.acquire(request.lora_id, now)
        self.backend.kv_import(request.request_id, kv_tokens)
        request.kv_len = kv_tokens
        request.needs_prefill = False
        request.mark_running(self.gpu_id, now)
        self._pending.append(_Slot(request=request, admit_seq=self._admit_seq))
        self._admit_seq += 1
        self._num_importing += 1
        self._steady_plan = None
        if self.tracer is not None:
            self.tracer.emit(
                now, EventKind.PLACE, request.request_id, self.gpu_id,
                lora=request.lora_id, imported_kv=kv_tokens,
            )

    def _promote_imports(self, now: float) -> None:
        """Move imported slots whose adapter is resident into the decode
        batch; they contribute a decode token in this very invocation."""
        remaining: list[_Slot] = []
        for slot in self._pending:
            req = slot.request
            if not req.needs_prefill and self.loader.is_ready(req.lora_id, now):
                self._working[req.request_id] = slot
                self._order_insert(slot)
                self._num_importing -= 1
            else:
                remaining.append(slot)
        self._pending = remaining

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self, now: float) -> StepReport | None:
        """Run one batched invocation; ``None`` when nothing can run."""
        if not self.alive:
            return None
        if (
            self._steady_plan is not None
            and not self._pending
            and self.backend.kv_headroom_pages() >= len(self._steady_slots)
        ):
            return self._step_steady(now)
        self.loader.advance(now)
        if self._num_importing:
            self._promote_imports(now)
        if self._spec is not None and not self._pending and self._working_order:
            return self._step_spec(now)
        self.slow_steps += 1
        # Reserve one new KvCache slot per decode request FIRST (evicting
        # newest requests on pressure), so prefill admission below can only
        # use pages genuinely left over.
        evicted: list[str] = []
        decode_slots: list[_Slot] = []
        past_lens: dict[str, int] = {}
        work_slots = list(self._working_order)
        if (
            self.fast_path
            and work_slots
            and self.backend.kv_headroom_pages() >= len(work_slots)
        ):
            # A free page per working request: no append can fail, so no
            # eviction can trigger — skip the per-slot checks and append
            # in one allocator pass (same request order, same pages).
            rids: list[str] = []
            for slot in work_slots:
                req = slot.request
                rids.append(req.request_id)
                past_lens[req.request_id] = req.kv_len
                req.kv_len += 1
                decode_slots.append(slot)
            self.backend.kv_append_many(rids)
        else:
            appended: set[str] = set()
            for slot in work_slots:
                req = slot.request
                rid = req.request_id
                if rid not in self._working:  # evicted as a victim earlier
                    continue
                past = req.kv_len
                if not self._append_with_eviction(rid, appended, evicted):
                    continue  # this request itself was evicted
                appended.add(rid)
                req.kv_len += 1
                past_lens[rid] = past
                decode_slots.append(slot)

        if self.tracer is not None:
            for rid in evicted:
                self.tracer.emit(
                    now, EventKind.QUEUE, rid, self.gpu_id, reason="evicted"
                )

        prefill_slots = self._select_prefills(now)
        if not decode_slots and not prefill_slots:
            if evicted:
                # Memory pressure with nothing runnable: surface the evictions.
                return StepReport(
                    gpu_id=self.gpu_id, start=now, latency=0.0, batch_size=0,
                    num_prefill=0, num_decode=0, num_lora_segments=0,
                    new_tokens={}, finished=(), evicted=tuple(evicted),
                )
            return None

        entries: list[BatchEntry] = []
        for slot in prefill_slots:
            req = slot.request
            entries.append(
                BatchEntry(
                    request_id=req.request_id,
                    lora_id=req.lora_id,
                    num_tokens=req.effective_prompt_len,
                    is_prefill=True,
                )
            )
            past_lens[req.request_id] = 0
        for slot in decode_slots:
            req = slot.request
            entries.append(
                BatchEntry(
                    request_id=req.request_id,
                    lora_id=req.lora_id,
                    num_tokens=1,
                    is_prefill=False,
                )
            )

        if self._plan_cache is not None:
            plan = self._plan_cache.plan(entries)
        else:
            plan = plan_batch(entries)
        requests = {
            s.request.request_id: s.request for s in prefill_slots + decode_slots
        }
        execution = self.backend.execute(plan, past_lens, requests=requests)
        latency = execution.latency * self.slowdown_factor
        end = now + latency

        finished: list[str] = []
        for slot in prefill_slots + decode_slots:
            req = slot.request
            if req.needs_prefill:
                req.kv_len = req.effective_prompt_len
                req.needs_prefill = False
                self._working[req.request_id] = slot
                self._order_insert(slot)
            token = execution.tokens[req.request_id]
            req.record_token(token, end)
            if self._is_finished(req, token):
                finished.append(req.request_id)

        for rid in finished:
            slot = self._working.pop(rid)
            self._working_order.remove(slot)
            self.backend.kv_release(rid)
            self.loader.release(slot.request.lora_id)
            slot.request.mark_finished(end)

        if self.tracer is not None:
            self._trace_step(now, end, prefill_slots, decode_slots, finished)

        self._refresh_steady()
        return StepReport(
            gpu_id=self.gpu_id,
            start=now,
            latency=latency,
            batch_size=len(entries),
            num_prefill=len(prefill_slots),
            num_decode=len(decode_slots),
            num_lora_segments=plan.num_lora_segments,
            new_tokens=dict(execution.tokens),
            finished=tuple(finished),
            evicted=tuple(evicted),
        )

    def _step_spec(self, now: float) -> "StepReport | None":
        """One speculative draft/verify round over the pure-decode batch.

        Reserves ``draft_len + 1`` KvCache slots per request up front
        (evicting newest requests under pressure, exactly like the classic
        path's single-slot reservation), runs the backend round, commits
        each request's accepted tokens, then rolls the rejected slots back
        via ``kv_truncate`` — the allocator's LIFO free list means the
        next round's reservation reacquires the same pages, so a rejected
        draft leaves no footprint in page assignment.
        """
        spec = self._spec
        reserve = spec.max_tokens_per_round
        self.slow_steps += 1
        evicted: list[str] = []
        decode_slots: list[_Slot] = []
        past_lens: dict[str, int] = {}
        appended: set[str] = set()
        for slot in list(self._working_order):
            req = slot.request
            rid = req.request_id
            if rid not in self._working:  # evicted as a victim earlier
                continue
            if not self._append_n_with_eviction(rid, reserve, appended, evicted):
                continue  # this request itself was evicted
            appended.add(rid)
            past_lens[rid] = req.kv_len
            decode_slots.append(slot)

        if self.tracer is not None:
            for rid in evicted:
                self.tracer.emit(
                    now, EventKind.QUEUE, rid, self.gpu_id, reason="evicted"
                )

        if not decode_slots:
            if evicted:
                return StepReport(
                    gpu_id=self.gpu_id, start=now, latency=0.0, batch_size=0,
                    num_prefill=0, num_decode=0, num_lora_segments=0,
                    new_tokens={}, finished=(), evicted=tuple(evicted),
                )
            return None

        entries = [
            BatchEntry(
                request_id=slot.request.request_id,
                lora_id=slot.request.lora_id,
                num_tokens=1,
                is_prefill=False,
            )
            for slot in decode_slots
        ]
        if self._plan_cache is not None:
            plan = self._plan_cache.plan(entries)
        else:
            plan = plan_batch(entries)
        requests = {s.request.request_id: s.request for s in decode_slots}
        execution = self.backend.execute_spec(
            plan, past_lens, spec, self._spec_rng, requests=requests
        )
        latency = execution.latency * self.slowdown_factor
        end = now + latency
        self.spec_rounds += 1

        finished: list[str] = []
        committed: dict[str, tuple[int, ...]] = {}
        rollbacks: "list[tuple[str, int, int]]" = []
        for slot in decode_slots:
            req = slot.request
            rid = req.request_id
            kept: list[int] = []
            for tok in execution.committed[rid]:
                kept.append(tok)
                req.record_token(tok, end)
                if self._is_finished(req, tok):
                    finished.append(rid)
                    break
            committed[rid] = tuple(kept)
            # kv_len stays tokens - 1 during decode: the round's inputs
            # occupied slots [past, past + len(kept)), the last committed
            # token's KV lands next round.
            new_kv = past_lens[rid] + len(kept)
            released_pages = self.backend.kv_truncate(rid, new_kv)
            released_tokens = past_lens[rid] + reserve - new_kv
            req.kv_len = new_kv
            if released_tokens:
                rollbacks.append((rid, released_tokens, released_pages))

        for rid in finished:
            slot = self._working.pop(rid)
            self._working_order.remove(slot)
            self.backend.kv_release(rid)
            self.loader.release(slot.request.lora_id)
            slot.request.mark_finished(end)

        if self.tracer is not None:
            self._trace_spec(
                now, end, decode_slots, committed, execution, rollbacks, finished
            )

        return StepReport(
            gpu_id=self.gpu_id,
            start=now,
            latency=latency,
            batch_size=len(decode_slots),
            num_prefill=0,
            num_decode=len(decode_slots),
            num_lora_segments=plan.num_lora_segments,
            new_tokens={rid: toks[-1] for rid, toks in committed.items()},
            finished=tuple(finished),
            evicted=tuple(evicted),
            committed=committed,
        )

    def _append_n_with_eviction(
        self, rid: str, n: int, appended: set[str], evicted: list[str]
    ) -> bool:
        """:meth:`_append_with_eviction` generalized to ``n`` slots — the
        speculative round's up-front reservation. Returns False when
        ``rid`` itself had to be evicted."""
        while not self.backend.kv_can_append_n(rid, n):
            victim = self._newest_evictable(exclude=appended)
            if victim is None:
                raise MemoryError(
                    f"{self.gpu_id}: no evictable request can free "
                    f"{n} KvCache slots for {rid}"
                )
            victim_id = victim.request.request_id
            evicted.append(self._evict(victim))
            if victim_id == rid:
                return False
        self.backend.kv_append_n(rid, n)
        return True

    def _trace_spec(
        self,
        now: float,
        end: float,
        decode_slots: "list[_Slot]",
        committed: "dict[str, tuple[int, ...]]",
        execution,
        rollbacks: "list[tuple[str, int, int]]",
        finished: "list[str]",
    ) -> None:
        """Emit one round's SPEC_DRAFT, then per request SPEC_VERIFY, one
        DECODE_STEP per committed token, SPEC_ROLLBACK when slots were
        released, and finally the FINISH events — all stamped at the round
        end, like the classic path's step events."""
        self.tracer.emit(
            end, EventKind.SPEC_DRAFT, None, self.gpu_id,
            start=now, batch=len(decode_slots), draft_len=execution.proposed,
        )
        rollback_of = {rid: (toks, pages) for rid, toks, pages in rollbacks}
        for slot in decode_slots:
            req = slot.request
            rid = req.request_id
            kept = committed[rid]
            self.tracer.emit(
                end, EventKind.SPEC_VERIFY, rid, self.gpu_id,
                start=now, proposed=execution.proposed,
                accepted=execution.accepted[rid], committed=len(kept),
            )
            base = req.num_generated - len(kept)
            for i in range(len(kept)):
                self.tracer.emit(
                    end, EventKind.DECODE_STEP, rid, self.gpu_id,
                    start=now, token_index=base + i,
                )
            rollback = rollback_of.get(rid)
            if rollback is not None:
                self.tracer.emit(
                    end, EventKind.SPEC_ROLLBACK, rid, self.gpu_id,
                    tokens=rollback[0], pages=rollback[1],
                )
        for rid in finished:
            req = next(
                s.request for s in decode_slots if s.request.request_id == rid
            )
            self.tracer.emit(
                end, EventKind.FINISH, rid, self.gpu_id, tokens=req.num_generated
            )

    def _step_steady(self, now: float) -> StepReport:
        """Steady-state decode lane: the batch is exactly last step's batch
        (no pending work, no membership change since) and a free page per
        request is guaranteed, so per-slot can-append/evict checks, prefill
        selection, and re-planning are all skipped. Every observable
        effect — trace events, token values, request state, KvCache
        contents — is identical to the general path by construction.
        """
        self.loader.advance(now)
        self.fast_steps += 1
        plan = self._steady_plan
        pairs = self._steady_pairs
        self.backend.kv_append_many(self._steady_past)
        execution = self.backend.execute_steady(
            plan, self._steady_past, self._steady_total
        )
        latency = execution.latency * self.slowdown_factor
        end = now + latency
        tokens = execution.tokens

        finished: list[str] = []
        rem = self._steady_rem
        if rem is not None:
            # Length-limit-only stopping (no EOS token): a per-slot
            # countdown replaces the reached_limit()/record_token calls.
            # first_token_time is already stamped (every working request
            # has generated at least one token) so the append is all that
            # record_token would do.
            for i, (req, rid) in enumerate(pairs):
                req.kv_len += 1
                req.generated_tokens.append(tokens[rid])
                left = rem[i] - 1
                rem[i] = left
                if left == 0:
                    finished.append(rid)
        else:
            for req, rid in pairs:
                req.kv_len += 1
                token = tokens[rid]
                req.record_token(token, end)
                if self._is_finished(req, token):
                    finished.append(rid)

        if finished:
            self._steady_plan = None
            for rid in finished:
                slot = self._working.pop(rid)
                self._working_order.remove(slot)
                self.backend.kv_release(rid)
                self.loader.release(slot.request.lora_id)
                slot.request.mark_finished(end)
        else:
            self._steady_total += len(pairs)

        if self.tracer is not None:
            self._trace_step(now, end, [], self._steady_slots, finished)

        if finished:
            self._refresh_steady()
        return StepReport(
            gpu_id=self.gpu_id,
            start=now,
            latency=latency,
            batch_size=len(pairs),
            num_prefill=0,
            num_decode=len(pairs),
            num_lora_segments=plan.num_lora_segments,
            new_tokens=tokens,
            finished=tuple(finished),
            evicted=(),
        )

    # -- vectorized steady runs (gen-2 fast path) ----------------------
    _MAX_RUN = 8192
    """Upper bound on one vectorized run; bounds the priced-but-unused
    tail when the estimate overshoots the event window."""

    def steady_run_stage(
        self,
        start: float,
        horizon: "float | None",
        min_steps: int = 2,
    ) -> "tuple[np.ndarray, int] | None":
        """Price a vectorized run of steady decode steps starting at ``start``.

        Stages and returns ``(ends, batch)`` where ``ends[0] == start``
        and ``ends[k]`` is the end of step ``k`` — so ``ends[:-1]`` are
        the step start times and ``len(ends) - 1`` steps are available.
        Returns ``None`` when fewer than ``min_steps`` steps are
        possible. The run is capped so that, by construction, no step
        inside it could deviate from the single-step steady lane: every
        request has at least one countdown tick left *after* the run (no
        finishes), and worst-case page consumption keeps KvCache headroom
        at one page per request before every step (the general-path
        fallback can never trigger). Call :meth:`commit_steady_run` to
        apply a prefix. Requires the length-limit countdown
        (``_steady_rem``) and no tracer — traced runs take the per-step
        lane, whose event stream is pinned byte-for-byte.
        """
        rem = self._steady_rem
        backend = self.backend
        if (
            rem is None
            or self._steady_plan is None
            or self._pending
            or self.tracer is not None
            or getattr(backend, "pool", True) is not None
        ):
            return None
        batch = len(self._steady_pairs)
        rem_cap = min(rem) - 1
        cap = rem_cap
        if cap >= min_steps:
            cap = min(cap, backend.kv_headroom_pages() // batch)
        if cap < min_steps:
            return None
        plan = self._steady_plan
        total = self._steady_total
        cached_first = self._steady_first
        if cached_first is not None and cached_first[0] is plan:
            first_raw = cached_first[1]
        else:
            probe = backend.steady_run_latencies(plan, total, 1)
            if probe is None:
                build = getattr(backend, "build_steady_terms", None)
                if build is None:
                    return None
                build(plan, self._steady_past)
                probe = backend.steady_run_latencies(plan, total, 1)
                if probe is None:
                    return None
            first_raw = float(probe[0])
            self._steady_first = (plan, first_raw)
        slowdown = self.slowdown_factor
        first = first_raw * slowdown
        if horizon is not None:
            window = horizon - start
            if window <= 0:
                return None
            # Latencies grow with KV, so first-step latency bounds the
            # step count from above; +2 absorbs float slack.
            cap = min(cap, int(window / first) + 2)
            if cap < min_steps:
                return None
        count = min(cap, self._MAX_RUN)
        # The run from (T + n*batch, start') is an offset slice of the
        # run staged earlier from (T, start): pricing is elementwise in
        # the exact integer KV totals, and cumsum chains ends
        # sequentially, so when start' == ends[n] (which it is — commits
        # walk the staged chain) the later ends ARE ends[n:], bit for
        # bit. Only a cache miss pays the array build, sized to the
        # finish/headroom cap so window growth cannot force a rebuild
        # (overshoot is pure pricing, commits stay capped separately).
        cached = self._steady_lats
        if cached is not None and cached[0] is plan and cached[2] == slowdown:
            off = total - cached[1]
            if off >= 0 and off % batch == 0:
                off //= batch
                ends_full = cached[3]
                if off + count < len(ends_full) and ends_full[off] == start:
                    self._staged_run = (ends_full[off:off + count + 1], batch)
                    return self._staged_run
        # Build to the finish cap, not the (tighter) headroom cap: the
        # headroom bound shrinks slower than the commit offset advances
        # (a decode append only consumes a page at page boundaries), so a
        # headroom-sized array would fall short of later slices and force
        # a rebuild per merge. Pricing past headroom is harmless — the
        # *returned* slice below stays capped at ``cap``.
        lats = backend.steady_run_latencies(
            plan, total, min(rem_cap, self._MAX_RUN)
        )
        if slowdown != 1.0:
            lats = lats * slowdown
        # ends[k] = end of step k, chained exactly like the scalar
        # now + latency accumulation (cumsum adds sequentially).
        ends_full = np.cumsum(np.concatenate(((start,), lats)))
        self._steady_lats = (plan, total, slowdown, ends_full)
        self._staged_run = (ends_full[:count + 1], batch)
        return self._staged_run

    def steady_ready(self) -> bool:
        """Cheap pre-gate: is the next step a pure steady decode tick?

        The cross-engine merge lane calls this before paying for
        :meth:`steady_run_stage`'s array pricing; engines that fail it
        keep their queued step event, which then bounds the merge horizon.
        """
        return (
            self._steady_rem is not None
            and self._steady_plan is not None
            and not self._pending
            and self.tracer is None
        )

    def steady_run_candidate(self, now: float, peek: "float | None"):
        """Single-engine wrapper over :meth:`steady_run_stage`.

        Returns the ascending array of step *start* times strictly before
        ``peek`` (the clock advances the simulator must pay for), or
        ``None`` when no multi-step run fits the window.
        """
        staged = self.steady_run_stage(now, peek)
        if staged is None:
            return None
        ends, _batch = staged
        starts = ends[:-1]
        if peek is not None:
            n = int(np.searchsorted(starts, peek, side="left"))
            if n < len(starts):
                starts = starts[:n]
        if len(starts) == 0:
            self._staged_run = None
            return None
        return starts

    def commit_steady_run(self, n: int) -> "tuple[float, int]":
        """Apply the first ``n`` steps of the staged run in bulk.

        Replays exactly what ``n`` :meth:`_step_steady` calls would do —
        KvCache appends (page ids included), token values, per-request
        countdowns, loader clock, total-KV counter — without the
        per-step Python work. Returns ``(end_of_last_step, batch_size)``:
        the next step of this engine is due at that end time.
        """
        ends, batch = self._staged_run
        self._staged_run = None
        plan = self._steady_plan
        pairs = self._steady_pairs
        # Reference steps call loader.advance(step start) each step;
        # advance is a monotone clock max, so the last start subsumes
        # the sequence.
        self.loader.advance(float(ends[n - 1]))
        base = self.backend.commit_steady_run(self._steady_past, n)
        derived = plan.derived
        pos = derived.get("steady_pos")
        if pos is None:
            pos = derived["steady_pos"] = {
                rid: p for p, rid in enumerate(derived["workload"][1])
            }
        rem = self._steady_rem
        span = n * batch
        for i, (req, rid) in enumerate(pairs):
            first_token = base + pos[rid] + 1
            req.kv_len += n
            req.generated_tokens.extend(
                range(first_token, first_token + span, batch)
            )
            rem[i] -= n
        self._steady_total += span
        self.fast_steps += n
        return float(ends[n]), batch

    def _refresh_steady(self) -> None:
        """(Re)arm the steady-state cache after a step, when the *next*
        step is known to be a pure decode of the current working set."""
        if not self._steady_ok or self._pending or not self._working_order:
            self._steady_plan = None
            return
        slots = list(self._working_order)
        sig_parts = []
        pairs = []
        past: dict[str, int] = {}
        total = 0
        rem: "list[int] | None" = (
            [] if self.config.eos_token_id is None else None
        )
        for s in slots:
            req = s.request
            spec = req.spec
            rid = spec.request_id
            sig_parts.append((rid, spec.lora_id, 1, False))
            pairs.append((req, rid))
            past[rid] = req.kv_len
            total += req.kv_len
            if rem is not None:
                left = spec.response_len - len(req.generated_tokens)
                if (
                    left <= 0
                    or not req.generated_tokens
                    or req.state is not RequestState.RUNNING
                ):
                    rem = None  # fall back to the per-token finish check
                else:
                    rem.append(left)
        sig = tuple(sig_parts)
        plan = self._plan_cache.get(sig)
        if plan is None:
            cache = self._entry_cache
            entries = []
            for rid, lora_id, _, _ in sig_parts:
                entry = cache.get(rid)
                if entry is None:
                    entry = cache[rid] = BatchEntry(
                        request_id=rid, lora_id=lora_id,
                        num_tokens=1, is_prefill=False,
                    )
                entries.append(entry)
            plan = plan_decode_batch(entries)
            self._plan_cache.put(sig, plan)
        self._steady_plan = plan
        self._steady_slots = slots
        self._steady_pairs = pairs
        self._steady_past = past
        self._steady_total = total + len(slots)
        self._steady_rem = rem

    def _order_insert(self, slot: _Slot) -> None:
        """Insert into ``_working_order`` keeping ascending ``admit_seq``.
        Loads complete nearly in admission order, so scanning from the end
        is O(1) in the common case."""
        order = self._working_order
        i = len(order)
        while i > 0 and order[i - 1].admit_seq > slot.admit_seq:
            i -= 1
        order.insert(i, slot)

    # ------------------------------------------------------------------
    def _trace_step(
        self,
        now: float,
        end: float,
        prefill_slots: "list[_Slot]",
        decode_slots: "list[_Slot]",
        finished: "list[str]",
    ) -> None:
        """Emit the invocation's per-request PREFILL / DECODE_STEP / FINISH
        events (time = step end; the ``start`` attr carries the step start,
        which the latency breakdown closes segments at)."""
        for slot in prefill_slots:
            req = slot.request
            self.tracer.emit(
                end, EventKind.PREFILL, req.request_id, self.gpu_id,
                start=now,
                tokens=req.spec.prompt_len + max(0, req.num_generated - 1),
            )
        for slot in decode_slots:
            req = slot.request
            self.tracer.emit(
                end, EventKind.DECODE_STEP, req.request_id, self.gpu_id,
                start=now, token_index=req.num_generated - 1,
            )
        for rid in finished:
            req = next(
                s.request
                for s in prefill_slots + decode_slots
                if s.request.request_id == rid
            )
            self.tracer.emit(
                end, EventKind.FINISH, rid, self.gpu_id, tokens=req.num_generated
            )

    def _is_finished(self, req: Request, token: int) -> bool:
        if req.reached_limit():
            return True
        eos = self.config.eos_token_id
        return eos is not None and token == eos

    def _append_with_eviction(
        self, rid: str, appended: set[str], evicted: list[str]
    ) -> bool:
        """Append one KvCache slot for ``rid``, evicting newest requests on
        pressure (§5.3: "evicts the newest request ... preserves FCFS").

        Requests that already got their slot this step are never victims.
        Returns False when ``rid`` itself had to be evicted.
        """
        while not self.backend.kv_can_append(rid):
            victim = self._newest_evictable(exclude=appended)
            if victim is None:
                raise MemoryError(
                    f"{self.gpu_id}: no evictable request can free a page for {rid}"
                )
            victim_id = victim.request.request_id
            evicted.append(self._evict(victim))
            if victim_id == rid:
                return False
        self.backend.kv_append(rid)
        return True

    def _newest_evictable(self, exclude: set[str]) -> "_Slot | None":
        """Newest-admitted working slot not in ``exclude`` — scanned from the
        tail of the admit-ordered list (the old ``max`` over all slots)."""
        for slot in reversed(self._working_order):
            if slot.request.request_id not in exclude:
                return slot
        return None

    def _evict(self, slot: _Slot) -> str:
        rid = slot.request.request_id
        self._steady_plan = None
        del self._working[rid]
        self._working_order.remove(slot)
        self.backend.kv_release(rid)
        self.loader.release(slot.request.lora_id)
        slot.request.evict()
        return rid

    def _select_prefills(self, now: float) -> list[_Slot]:
        """Pick pending requests ready to prefill, FIFO, up to the limit."""
        limit = self.config.prefill_batch_limit
        if not self._pending:
            return []
        selected: list[_Slot] = []
        remaining: list[_Slot] = []
        for slot in self._pending:
            req = slot.request
            ready = (
                req.needs_prefill  # import slots wait for _promote_imports
                and len(selected) < limit
                and self.loader.is_ready(req.lora_id, now)
                and self.backend.kv_can_admit(req.effective_prompt_len)
                and self._lora_compatible(req)
            )
            if ready:
                self.backend.kv_admit(req.request_id, req.effective_prompt_len)
                selected.append(slot)
            else:
                remaining.append(slot)
        self._pending = remaining
        return selected

    def _lora_compatible(self, req: Request) -> bool:
        if not self.config.same_lora_only:
            return True
        active = {s.request.lora_id for s in self._working.values()}
        return not active or req.lora_id in active
