"""Next-token samplers for the functional backend."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import new_rng


@dataclass(frozen=True)
class GreedySampler:
    """Deterministic argmax decoding."""

    def sample(self, logits: np.ndarray) -> int:
        if logits.ndim != 1:
            raise ValueError(f"logits must be 1-D, got shape {logits.shape}")
        return int(np.argmax(logits))


class TemperatureSampler:
    """Softmax sampling with temperature and optional top-k truncation."""

    def __init__(
        self,
        temperature: float = 1.0,
        top_k: int | None = None,
        seed: "int | np.random.Generator | None" = None,
    ):
        if temperature <= 0:
            raise ValueError(f"temperature must be positive, got {temperature}")
        if top_k is not None and top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        self.temperature = temperature
        self.top_k = top_k
        self._rng = new_rng(seed)

    def sample(self, logits: np.ndarray) -> int:
        if logits.ndim != 1:
            raise ValueError(f"logits must be 1-D, got shape {logits.shape}")
        scaled = logits / self.temperature
        if self.top_k is not None and self.top_k < len(scaled):
            cutoff = np.partition(scaled, -self.top_k)[-self.top_k]
            scaled = np.where(scaled >= cutoff, scaled, -np.inf)
        scaled = scaled - scaled.max()
        probs = np.exp(scaled)
        probs /= probs.sum()
        return int(self._rng.choice(len(probs), p=probs))
