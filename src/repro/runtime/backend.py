"""Compute backends: how one batched invocation actually executes.

Both backends expose the same narrow interface the engine drives —
KvCache admission/append/release (backed by the page allocator) plus
``execute(plan, past_lens)`` returning the step latency and one new token
per request:

* :class:`SimulatedBackend` prices the invocation with the analytical A100
  model and emits placeholder tokens; response lengths come from the trace.
* :class:`NumpyBackend` runs the functional Llama on real token ids and
  samples real next tokens; it can *also* price the step with the cost
  model, so the same run yields both semantics and timing.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Mapping
from typing import TYPE_CHECKING

import numpy as np

from repro.core.batch import BatchEntry, BatchPlan, plan_batch
from repro.core.lora import LoraRegistry
from repro.hw.kernels import KernelCostModel
from repro.hw.spec import A100_80G, GpuSpec
from repro.kvcache.pool import KvPool, PagedKvData
from repro.models.config import LlamaConfig
from repro.models.llama import LlamaModel, TokenBatch
from repro.models.perf import (
    PUNICA_FLAGS,
    PerfFlags,
    StepWorkload,
    model_step_latency,
    spec_round_latency,
    step_latency_from_terms,
    step_latency_steady,
    step_latency_steady_run,
    step_latency_terms,
)
from repro.models.tp import SINGLE_GPU, TensorParallelConfig
from repro.models.weights import LlamaWeights
from repro.runtime.request import Request
from repro.runtime.sampler import GreedySampler
from repro.utils.fastpath import fastpath_enabled
from repro.utils.units import GIB

if TYPE_CHECKING:
    import random

    from repro.runtime.spec import SpecConfig


@dataclass(frozen=True)
class StepExecution:
    """Result of one batched invocation."""

    latency: float
    tokens: dict[str, int]
    """request_id -> the one token this invocation produced for it."""


@dataclass(frozen=True)
class SpecExecution:
    """Result of one speculative draft/verify round (docs/speculative.md)."""

    latency: float
    committed: dict[str, tuple[int, ...]]
    """request_id -> the 1..draft_len+1 tokens the round committed for it
    (accepted drafts plus the target's bonus/correction token)."""
    accepted: dict[str, int]
    """request_id -> accepted draft-token count (``len(committed) - 1``)."""
    proposed: int
    """Draft tokens proposed per request this round (= ``spec.draft_len``)."""


def workload_from_plan(
    plan: BatchPlan,
    past_lens: Mapping[str, int],
    serve_lora: bool,
    lora_rank: int,
) -> StepWorkload:
    """Translate a planned batch into the analytical workload description.

    The plan-shaped parts (prefill lengths, decode request order, segment
    sizes) are stashed in ``plan.derived``, so when the engine reuses one
    plan across steady-state decode steps only the per-step ``decode_kv``
    lookup is recomputed. Freshly built plans (the reference path builds
    one per step) simply miss and compute everything as before.
    """
    cached = plan.derived.get("workload")
    if cached is None:
        prefill_lens = tuple(e.num_tokens for e in plan.prefill_entries())
        decode_ids = tuple(e.request_id for e in plan.decode_entries())
        segments = tuple(int(s) for s in plan.segment_sizes)
        cached = (prefill_lens, decode_ids, segments)
        plan.derived["workload"] = cached
    prefill_lens, decode_ids, segments = cached
    return StepWorkload(
        prefill_lens=prefill_lens,
        decode_kv_lens=tuple(past_lens[rid] for rid in decode_ids),
        lora_segments=segments if serve_lora else None,
        lora_rank=lora_rank,
    )


class SimulatedBackend:
    """Analytical-latency backend for full-scale (7B/13B/70B) experiments."""

    supports_steady = True
    """The engine's steady decode lane may call :meth:`execute_steady`."""

    def __init__(
        self,
        config: LlamaConfig,
        gpu: GpuSpec = A100_80G,
        tp: TensorParallelConfig = SINGLE_GPU,
        flags: PerfFlags = PUNICA_FLAGS,
        lora_rank: int = 16,
        serve_lora: bool = True,
        page_size: int = 16,
        kv_capacity_bytes: float | None = None,
        workspace_bytes: float = 2 * GIB,
        step_overhead: float = 0.0005,
        unified_pool=None,
        fast_path: bool | None = None,
    ):
        """``kv_capacity_bytes`` defaults to HBM minus the (sharded) backbone
        weights minus a workspace reserve — the paper's "large fraction of
        GPU memory is reserved for KvCache". ``step_overhead`` is the
        per-invocation host time (scheduling, sampling, token streaming).

        With a :class:`~repro.adapters.pool.UnifiedMemoryPool` as
        ``unified_pool``, KvCache accounting is delegated to it so KvCache
        and adapter weights share one byte budget (adapters are demoted to
        host RAM under KvCache pressure); ``kv_capacity_bytes`` is then
        ignored — the pool's budget governs."""
        self.config = config
        self.gpu = gpu
        self.tp = tp
        self.flags = flags
        self.lora_rank = lora_rank
        self.serve_lora = serve_lora
        self.step_overhead = step_overhead
        self.fast_path = fastpath_enabled(fast_path)
        self.cost_model = KernelCostModel(gpu, memoize=self.fast_path)
        self._terms_key = ("latency_terms", self)
        """Key for this backend's latency-term cache in ``plan.derived`` —
        scoped by backend identity because the terms depend on config, TP,
        flags and rank, and one plan may be executed by several backends
        (the shape-only ``"workload"`` entry, by contrast, is shared)."""
        self._terms_memo: dict = {}
        """Cross-plan :class:`StepLatencyTerms` memo. Rotating batch
        membership yields thousands of distinct plans whose *shapes*
        (token counts, LoRA segment sizes) repeat heavily; the terms are
        a pure function of shape — decode KV lengths enter only under
        ``cache_concat``, where the full workload keys the memo instead."""
        self.pool = unified_pool
        if unified_pool is not None:
            self.kv = unified_pool.kv
            self._token_counter = 0
            return
        if kv_capacity_bytes is None:
            weights = config.weight_bytes() // tp.world_size
            kv_capacity_bytes = gpu.hbm_capacity - weights - workspace_bytes
            if kv_capacity_bytes <= 0:
                raise ValueError(
                    f"{config.name} does not fit on {gpu.name} with tp={tp.world_size}"
                )
        # Under TP the KvCache is sharded too; capacity stays per-GPU but
        # each token's bytes shrink by the shard factor, so pool tokens in
        # *logical* (unsharded) units for scheduler accounting.
        bytes_per_token = max(1, config.kv_bytes_per_token() // tp.world_size)
        self.kv = KvPool(
            capacity_bytes=kv_capacity_bytes,
            page_size=page_size,
            bytes_per_token=bytes_per_token,
        )
        self._token_counter = 0

    # -- KvCache interface ------------------------------------------------
    def kv_can_admit(self, prompt_len: int, headroom_tokens: int = 0) -> bool:
        if self.pool is not None:
            return self.pool.kv_can_admit(prompt_len, headroom_tokens)
        return self.kv.can_admit(prompt_len, headroom_tokens)

    def kv_admit(self, request_id: str, prompt_len: int) -> None:
        if self.pool is not None:
            self.pool.kv_admit(request_id, prompt_len)
            return
        self.kv.allocate(request_id, prompt_len)

    def kv_can_append(self, request_id: str) -> bool:
        if self.pool is not None:
            return self.pool.kv_can_append(request_id)
        return self.kv.can_append_token(request_id)

    def kv_append(self, request_id: str) -> None:
        if self.pool is not None:
            self.pool.kv_append(request_id)
            return
        self.kv.append_token(request_id)

    def kv_append_many(self, request_ids) -> None:
        """Batched decode append for the engine's steady-state fast lane.

        Semantically ``for rid in request_ids: kv_append(rid)``; without a
        unified pool it goes straight to the allocator's single-token fast
        path. The fast lane only runs when a free page per request is
        guaranteed, so no append here can fail mid-batch.
        """
        if self.pool is not None:
            for rid in request_ids:
                self.pool.kv_append(rid)
            return
        self.kv.allocator.append_tokens(request_ids)

    def kv_can_append_n(self, request_id: str, n: int) -> bool:
        """Whether ``n`` more KV slots fit this sequence (spec reservation)."""
        if self.pool is not None:
            # Conservative under the shared byte budget: each appended
            # token consumes at most one fresh page.
            return self.pool.kv_free_tokens() >= n * self.kv.page_size
        return self.kv.allocator.can_append(request_id, n)

    def kv_append_n(self, request_id: str, n: int) -> None:
        if self.pool is not None:
            for _ in range(n):
                self.pool.kv_append(request_id)
            return
        self.kv.allocator.append(request_id, n)

    def kv_truncate(self, request_id: str, new_len: int) -> int:
        """Roll a sequence back to ``new_len`` KV slots; returns pages freed.

        With a unified pool the truncate still lands on the shared
        allocator (``self.kv`` *is* ``pool.kv``) and the pool's byte
        accounting reads allocator state live, so freed pages return to
        the shared budget immediately.
        """
        return self.kv.truncate(request_id, new_len)

    def kv_release(self, request_id: str) -> None:
        if self.pool is not None:
            self.pool.kv_release(request_id)
            return
        if request_id in self.kv:
            self.kv.free(request_id)

    def kv_free_tokens(self) -> int:
        if self.pool is not None:
            return self.pool.kv_free_tokens()
        return self.kv.free_tokens

    def kv_headroom_pages(self) -> int:
        """Pages guaranteed allocatable right now, under every budget.

        If this is ``>= len(batch)`` then one decode append per request
        cannot fail (each consumes at most one page), so the fast lane can
        skip the per-slot can-append/evict checks entirely.
        """
        if self.pool is not None:
            return self.pool.kv_free_tokens() // self.pool.kv.page_size
        return self.kv.free_pages

    # -- KV handoff (disaggregated prefill/decode) ------------------------
    def kv_export(self, request_id: str) -> int:
        """Release a sequence for transfer; returns its token count."""
        tokens = self.kv.seq_len(request_id)
        if self.pool is not None:
            self.pool.kv_release(request_id)
        else:
            self.kv.export_sequence(request_id)
        return tokens

    def kv_can_import(self, num_tokens: int, headroom_tokens: int = 0) -> bool:
        """Whether an exported sequence of ``num_tokens`` fits here now."""
        return self.kv_can_admit(num_tokens, headroom_tokens)

    def kv_import(self, request_id: str, num_tokens: int) -> None:
        """Admit a sequence whose KV history arrived over the interconnect."""
        if self.pool is not None:
            self.pool.kv_admit(request_id, num_tokens)
            return
        self.kv.import_sequence(request_id, num_tokens)

    def kv_bytes_of(self, num_tokens: int) -> float:
        """Wire bytes of ``num_tokens`` of KV history on this GPU."""
        return self.kv.bytes_of(num_tokens)

    # -- execution ----------------------------------------------------------
    def execute(
        self,
        plan: BatchPlan,
        past_lens: Mapping[str, int],
        requests: Mapping[str, Request] | None = None,
    ) -> StepExecution:
        if self.fast_path:
            latency = self._fast_latency(plan, past_lens)
        else:
            work = workload_from_plan(plan, past_lens, self.serve_lora, self.lora_rank)
            latency = model_step_latency(
                self.config, self.cost_model, work, tp=self.tp, flags=self.flags
            )
        tokens = {}
        for entry in plan.entries:
            self._token_counter += 1
            tokens[entry.request_id] = self._token_counter
        return StepExecution(latency=latency + self.step_overhead, tokens=tokens)

    def execute_spec(
        self,
        plan: BatchPlan,
        past_lens: Mapping[str, int],
        spec: "SpecConfig",
        rng: "random.Random",
        requests: Mapping[str, Request] | None = None,
    ) -> SpecExecution:
        """One speculative draft/verify round over an all-decode plan.

        Pricing goes through :func:`~repro.models.perf.spec_round_latency`
        on both the fast and reference paths — the round has no per-plan
        term cache, so armed runs are trivially float-identical across
        paths. Acceptance counts come from a geometric model at
        ``spec.acceptance_rate`` using the engine-owned ``rng`` (seeded
        per GPU), drawn in plan decode order so replays are deterministic.
        ``past_lens`` holds the pre-reservation KV lengths (``T - 1``),
        exactly what a non-speculative decode step would see.
        """
        work = workload_from_plan(plan, past_lens, self.serve_lora, self.lora_rank)
        latency = spec_round_latency(
            self.config,
            self.cost_model,
            work,
            spec.draft_len,
            spec.draft_cost_ratio,
            tp=self.tp,
            flags=self.flags,
        )
        committed: dict[str, tuple[int, ...]] = {}
        accepted: dict[str, int] = {}
        counter = self._token_counter
        for rid in plan.derived["workload"][1]:
            m = 0
            while m < spec.draft_len and rng.random() < spec.acceptance_rate:
                m += 1
            toks = []
            for _ in range(m + 1):
                counter += 1
                toks.append(counter)
            committed[rid] = tuple(toks)
            accepted[rid] = m
        self._token_counter = counter
        return SpecExecution(
            latency=latency + self.step_overhead,
            committed=committed,
            accepted=accepted,
            proposed=spec.draft_len,
        )

    def execute_steady(
        self,
        plan: BatchPlan,
        past_lens: Mapping[str, int],
        total_kv: int,
    ) -> StepExecution:
        """Steady-lane :meth:`execute`: the all-decode plan is last step's.

        ``total_kv`` is ``sum(past + 1 for past in past_lens.values())``,
        maintained incrementally by the engine so neither the length list
        nor the dict values need rebuilding per step (``past_lens`` is
        consulted only on the first call for a plan, to build its term
        cache). Bit-identical to :meth:`execute` — see
        :func:`~repro.models.perf.step_latency_steady`.
        """
        cached = plan.derived.get(self._terms_key)
        if cached is None:
            latency = self._fast_latency(plan, past_lens)
        else:
            latency = step_latency_steady(
                self.config, self.cost_model, cached[0], total_kv
            )
        counter = self._token_counter
        tokens = {}
        for rid in plan.derived["workload"][1]:
            counter += 1
            tokens[rid] = counter
        self._token_counter = counter
        return StepExecution(latency=latency + self.step_overhead, tokens=tokens)

    def steady_run_latencies(self, plan: BatchPlan, total_kv: int, count: int):
        """Per-step latencies for a ``count``-step steady decode run.

        Step ``k`` prices exactly like :meth:`execute_steady` with
        ``total_kv + k * batch`` (every decode request adds one KV token
        per step), overhead included — see
        :func:`~repro.models.perf.step_latency_steady_run` for the
        bit-identity argument. Returns ``None`` until the plan's latency
        terms exist (the first steady step builds them); the vectorized
        lane then retries on the next step.
        """
        cached = plan.derived.get(self._terms_key)
        if cached is None:
            return None
        batch = len(plan.derived["workload"][1])
        return (
            step_latency_steady_run(
                self.config, self.cost_model, cached[0], total_kv, batch, count
            )
            + self.step_overhead
        )

    def commit_steady_run(self, request_ids, count: int) -> int:
        """Apply ``count`` steady steps' KvCache and token effects in bulk.

        ``request_ids`` iterates in the same order the per-step
        :meth:`kv_append_many` call would (the steady lane's past-length
        dict), so page assignment replays exactly. Returns the token
        counter value *before* the run: step ``k``'s token for the
        request at workload position ``p`` is ``base + k * batch + p + 1``,
        matching ``count`` :meth:`execute_steady` calls. Only valid
        without a unified pool (the lane gates on ``backend.pool is
        None``).
        """
        self.kv.allocator.append_tokens_run(request_ids, count)
        base = self._token_counter
        self._token_counter = base + count * len(request_ids)
        return base

    def _terms_for(self, work: StepWorkload):
        """Memoized :func:`step_latency_terms` for one invocation shape.

        Without ``cache_concat`` every term is shape-invariant in the
        decode KV lengths, so the memo keys on shape alone and plans that
        re-batch the same composition share one build. With
        ``cache_concat`` the full workload (lengths included) is the key,
        which degrades to at-most-one hit — identical values either way.

        Under the SGMV and Gather-BMM operators the LoRA terms depend on
        the segment vector only through its sum and count (see
        :meth:`~repro.hw.kernels.KernelCostModel.lora_addon`), so the key
        collapses the segments to those aggregates and rotating LoRA
        membership stops defeating the memo. The Loop operator prices
        each segment individually, so it keeps the full tuple.
        """
        if self.flags.cache_concat:
            key = work
        else:
            segs = work.lora_segments
            if segs is not None and self.flags.lora_impl != "loop":
                segs = (sum(segs), len(segs))
            key = (
                work.prefill_lens,
                len(work.decode_kv_lens),
                segs,
                work.lora_rank,
            )
        terms = self._terms_memo.get(key)
        if terms is None:
            terms = step_latency_terms(
                self.config, self.cost_model, work, tp=self.tp, flags=self.flags
            )
            self._terms_memo[key] = terms
        return terms

    def _terms_for_plan(self, plan: BatchPlan, past_lens: Mapping[str, int]):
        """:meth:`_terms_for` keyed straight off the plan's cached shape.

        On a memo hit this skips building the :class:`StepWorkload`
        entirely (the decode-KV tuple is O(batch) dict lookups plus
        validation, paid only to *compute a key* otherwise); the key is
        constructed to match :meth:`_terms_for`'s exactly, so both paths
        share one memo. Falls back to the workload path when the plan
        shape is not cached yet or under ``cache_concat`` (where the KV
        lengths are part of the key).
        """
        shape = plan.derived.get("workload")
        if shape is None or self.flags.cache_concat:
            work = workload_from_plan(
                plan, past_lens, self.serve_lora, self.lora_rank
            )
            return self._terms_for(work)
        prefill_lens, decode_ids, segments = shape
        if not self.serve_lora:
            seg_key = None
        elif self.flags.lora_impl != "loop":
            seg_key = (sum(segments), len(segments))
        else:
            seg_key = segments
        key = (prefill_lens, len(decode_ids), seg_key, self.lora_rank)
        terms = self._terms_memo.get(key)
        if terms is None:
            work = workload_from_plan(
                plan, past_lens, self.serve_lora, self.lora_rank
            )
            terms = step_latency_terms(
                self.config, self.cost_model, work, tp=self.tp, flags=self.flags
            )
            self._terms_memo[key] = terms
        return terms

    def build_steady_terms(
        self, plan: BatchPlan, past_lens: Mapping[str, int]
    ) -> None:
        """Build the latency-term cache ahead of the first steady step.

        The vectorized lane calls this when :meth:`steady_run_latencies`
        would miss; the terms are exactly what the first
        :meth:`execute_steady` for this plan would build (``past_lens``
        is the engine's arm-time snapshot in both cases), so building
        them early is unobservable.
        """
        if plan.derived.get(self._terms_key) is None:
            terms = self._terms_for_plan(plan, past_lens)
            decode_ids = plan.derived["workload"][1]
            plan.derived[self._terms_key] = (terms, decode_ids)

    def _fast_latency(self, plan: BatchPlan, past_lens: Mapping[str, int]) -> float:
        """Step latency via the per-plan invariant-term cache.

        Bit-identical to the ``model_step_latency`` call the reference
        path makes (see :class:`~repro.models.perf.StepLatencyTerms` for
        the summation-order argument); only the batched-decode-attention
        term is recomputed as KvCache lengths advance. The cache lives on
        the plan, keyed by this backend (``_terms_key``) since the terms
        depend on its config, TP, flags and rank — all fixed for its
        lifetime.
        """
        cached = plan.derived.get(self._terms_key)
        if cached is None:
            terms = self._terms_for_plan(plan, past_lens)
            decode_ids = plan.derived["workload"][1]
            cached = (terms, decode_ids)
            plan.derived[self._terms_key] = cached
        terms, decode_ids = cached
        return step_latency_from_terms(
            self.config,
            self.cost_model,
            terms,
            [past_lens[rid] for rid in decode_ids],
        )


class NumpyBackend:
    """Functional backend: really generates tokens at toy scale."""

    def __init__(
        self,
        weights: LlamaWeights,
        registry: LoraRegistry | None = None,
        total_pages: int = 256,
        page_size: int = 8,
        sampler=None,
        lora_rank: int = 16,
        cost_model: KernelCostModel | None = None,
        step_overhead: float = 0.0,
    ):
        cfg = weights.config
        self.config = cfg
        self.registry = registry
        self.lora_rank = lora_rank
        self.serve_lora = registry is not None
        self.sampler = sampler or GreedySampler()
        self.cost_model = cost_model
        self.step_overhead = step_overhead
        self.kv_data = PagedKvData(
            total_pages=total_pages,
            page_size=page_size,
            num_layers=cfg.num_layers,
            num_kv_heads=cfg.num_kv_heads,
            head_dim=cfg.head_dim,
            dtype=np.float64,
        )
        self.model = LlamaModel(weights, self.kv_data, registry)
        self._draft_model: LlamaModel | None = None
        self._draft_kv: PagedKvData | None = None
        self._draft_synced: dict[str, int] = {}
        """request_id -> tokens of committed history in the draft cache."""

    # -- KvCache interface ------------------------------------------------
    def kv_can_admit(self, prompt_len: int, headroom_tokens: int = 0) -> bool:
        return self.kv_data.allocator.can_allocate(prompt_len + headroom_tokens)

    def kv_admit(self, request_id: str, prompt_len: int) -> None:
        self.kv_data.allocate(request_id, prompt_len)

    def kv_can_append(self, request_id: str) -> bool:
        return self.kv_data.allocator.can_append(request_id, 1)

    def kv_append(self, request_id: str) -> None:
        self.kv_data.append_slot(request_id)

    def kv_append_many(self, request_ids) -> None:
        for rid in request_ids:
            self.kv_data.append_slot(rid)

    def kv_can_append_n(self, request_id: str, n: int) -> bool:
        return self.kv_data.allocator.can_append(request_id, n)

    def kv_append_n(self, request_id: str, n: int) -> None:
        self.kv_data.allocator.append(request_id, n)

    def kv_truncate(self, request_id: str, new_len: int) -> int:
        released = self.kv_data.truncate(request_id, new_len)
        # The draft cache may hold entries past the new committed length
        # (e.g. the engine clipped a round at the response limit); drop
        # them so the next round's catch-up starts from real history.
        if (
            self._draft_kv is not None
            and request_id in self._draft_kv.allocator
            and self._draft_synced.get(request_id, 0) > new_len
        ):
            self._draft_kv.truncate(request_id, new_len)
            self._draft_synced[request_id] = new_len
        return released

    def kv_release(self, request_id: str) -> None:
        if request_id in self.kv_data.allocator:
            self.kv_data.free(request_id)
        self._drop_draft(request_id)

    def _drop_draft(self, request_id: str) -> None:
        if self._draft_kv is not None and request_id in self._draft_kv.allocator:
            self._draft_kv.free(request_id)
            self._draft_synced.pop(request_id, None)

    def kv_free_tokens(self) -> int:
        return self.kv_data.allocator.free_pages * self.kv_data.page_size

    def kv_headroom_pages(self) -> int:
        return self.kv_data.allocator.free_pages

    # -- KV handoff (disaggregated prefill/decode) ------------------------
    # Accounting-only: pages move between allocators but the stored K/V
    # payload is not copied across PagedKvData arrays yet (see ROADMAP),
    # so functional-mode disaggregation re-prefills after import.
    def kv_export(self, request_id: str) -> int:
        tokens = self.kv_data.allocator.seq_len(request_id)
        self.kv_data.free(request_id)
        self._drop_draft(request_id)
        return tokens

    def kv_can_import(self, num_tokens: int, headroom_tokens: int = 0) -> bool:
        return self.kv_data.allocator.can_allocate(num_tokens + headroom_tokens)

    def kv_import(self, request_id: str, num_tokens: int) -> None:
        self.kv_data.allocate(request_id, num_tokens)

    def kv_bytes_of(self, num_tokens: int) -> float:
        return float(num_tokens) * self.config.kv_bytes_per_token()

    # -- execution ----------------------------------------------------------
    def execute(
        self,
        plan: BatchPlan,
        past_lens: Mapping[str, int],
        requests: Mapping[str, Request] | None = None,
    ) -> StepExecution:
        if requests is None:
            raise ValueError("NumpyBackend.execute needs the request objects")
        token_ids: list[int] = []
        pasts: list[int] = []
        for entry in plan.entries:
            req = requests[entry.request_id]
            if req.prompt_tokens is None:
                raise ValueError(
                    f"{entry.request_id} has no prompt tokens (functional mode needs them)"
                )
            if entry.is_prefill:
                history = list(req.prompt_tokens) + list(req.generated_tokens)
                if len(history) != entry.num_tokens:
                    raise ValueError(
                        f"prefill entry for {entry.request_id} covers {entry.num_tokens} "
                        f"tokens but history has {len(history)}"
                    )
                token_ids.extend(history)
            else:
                last = (
                    req.generated_tokens[-1]
                    if req.generated_tokens
                    else req.prompt_tokens[-1]
                )
                token_ids.append(int(last))
            pasts.append(past_lens[entry.request_id])

        batch = TokenBatch(plan, np.asarray(token_ids, dtype=np.int64), tuple(pasts))
        logits = self.model.forward(batch)
        tokens = {}
        for i, entry in enumerate(plan.entries):
            req = requests[entry.request_id]
            sampler = req.sampler if req.sampler is not None else self.sampler
            tokens[entry.request_id] = sampler.sample(logits[i])

        if self.cost_model is not None:
            work = workload_from_plan(plan, past_lens, self.serve_lora, self.lora_rank)
            latency = model_step_latency(self.config, self.cost_model, work)
        else:
            latency = 0.0
        return StepExecution(latency=latency + self.step_overhead, tokens=tokens)

    # -- speculative decoding ---------------------------------------------
    def _ensure_draft(self, spec: "SpecConfig") -> None:
        """Lazily build the truncated-layer draft model (docs/speculative.md).

        The draft shares the target's embedding, first ``k`` transformer
        layers, final norm and LM head — a self-drafting proxy — and owns
        a KvCache of the same page geometry. It never sees LoRA
        (``registry=None``): drafts only *propose*; verification is what
        must match the adapter-specific target distribution.
        """
        if self._draft_model is not None:
            return
        cfg = self.config
        k = (
            spec.draft_layers
            if spec.draft_layers is not None
            else max(1, cfg.num_layers // 2)
        )
        k = min(k, cfg.num_layers)
        draft_cfg = replace(cfg, name=f"{cfg.name}-draft", num_layers=k)
        w = self.model.weights
        draft_weights = LlamaWeights(
            config=draft_cfg,
            embedding=w.embedding,
            layers=w.layers[:k],
            final_norm=w.final_norm,
            lm_head=w.lm_head,
        )
        # Same page count as the target: the draft caches strictly fewer
        # slots per sequence (no +draft_len+1 reservation), so a round
        # that fit the target cannot exhaust the draft pool.
        self._draft_kv = PagedKvData(
            total_pages=self.kv_data.allocator.total_pages,
            page_size=self.kv_data.page_size,
            num_layers=k,
            num_kv_heads=cfg.num_kv_heads,
            head_dim=cfg.head_dim,
            dtype=np.float64,
        )
        self._draft_model = LlamaModel(draft_weights, self._draft_kv, None)

    def _forward_one(
        self, model: LlamaModel, rid: str, lora_id: str | None, toks, past: int
    ):
        """Single-entry forward of ``toks`` with ``past`` cached tokens.

        Returns the last position's logits. Single-token invocations use
        the decode entry shape — the same plan shape a non-speculative
        decode step of batch size one would build, which is what makes
        verification bit-comparable to the greedy baseline.
        """
        entry = BatchEntry(
            request_id=rid,
            lora_id=lora_id,
            num_tokens=len(toks),
            is_prefill=len(toks) > 1,
        )
        plan = plan_batch([entry])
        batch = TokenBatch(plan, np.asarray(toks, dtype=np.int64), (past,))
        return model.forward(batch)[0]

    def execute_spec(
        self,
        plan: BatchPlan,
        past_lens: Mapping[str, int],
        spec: "SpecConfig",
        rng: "random.Random",
        requests: Mapping[str, Request] | None = None,
    ) -> SpecExecution:
        """Real draft-then-verify round (``acceptance_rate`` is ignored).

        Per request: sync the draft cache to committed history, draft
        ``draft_len`` tokens autoregressively, then verify sequentially
        on the target — position ``j`` forwards the previous committed
        token and samples; the sampled token commits, and the round stops
        at the first draft mismatch. Because every verify forward sees
        exactly the KV state the greedy baseline's decode step ``j``
        would see, the committed stream is token-identical to
        non-speculative greedy decoding (tests/test_spec_oracle.py).
        """
        if requests is None:
            raise ValueError("NumpyBackend.execute_spec needs the request objects")
        self._ensure_draft(spec)
        draft_alloc = self._draft_kv.allocator
        d = spec.draft_len
        committed: dict[str, tuple[int, ...]] = {}
        accepted: dict[str, int] = {}
        for entry in plan.decode_entries():
            rid = entry.request_id
            req = requests[rid]
            toks = list(req.prompt_tokens) + list(req.generated_tokens)
            past = past_lens[rid]
            if past != len(toks) - 1:
                raise ValueError(
                    f"spec round for {rid}: past {past} != committed "
                    f"history {len(toks)} - 1"
                )
            sampler = req.sampler if req.sampler is not None else self.sampler
            # Sync the draft cache: positions [0, past) hold history up
            # to toks[past-1]; toks[past] seeds the first draft step.
            if rid not in draft_alloc:
                self._draft_kv.allocate(rid, past)
                self._draft_synced[rid] = 0
            synced = self._draft_synced[rid]
            if synced > past:  # safety net; kv_truncate normally handles this
                self._draft_kv.truncate(rid, past)
                synced = past
            if synced < past:
                need = past - draft_alloc.seq_len(rid)
                if need > 0:
                    draft_alloc.append(rid, need)
                self._forward_one(
                    self._draft_model, rid, entry.lora_id, toks[synced:past], synced
                )
            # Draft d tokens; step i writes its input at position past + i.
            drafts: list[int] = []
            cur = toks[past]
            for i in range(d):
                pos = past + i
                if draft_alloc.seq_len(rid) < pos + 1:
                    draft_alloc.append(rid, pos + 1 - draft_alloc.seq_len(rid))
                logits = self._forward_one(
                    self._draft_model, rid, entry.lora_id, [cur], pos
                )
                cur = sampler.sample(logits)
                drafts.append(cur)
            # Sequential verify on the target: the engine reserved d + 1
            # slots, so position past + j is writable for j in [0, d].
            out: list[int] = []
            v = toks[past]
            for j in range(d + 1):
                logits = self._forward_one(self.model, rid, entry.lora_id, [v], past + j)
                tok = sampler.sample(logits)
                out.append(tok)
                if j == d or tok != drafts[j]:
                    break
                v = drafts[j]
            committed[rid] = tuple(out)
            accepted[rid] = len(out) - 1
            # Keep only the draft-cache prefix that is committed history:
            # positions [0, past] plus accepted drafts still on the path.
            keep = past + 1 + min(len(out) - 1, d - 1)
            self._draft_kv.truncate(rid, keep)
            self._draft_synced[rid] = keep

        if self.cost_model is not None:
            work = workload_from_plan(plan, past_lens, self.serve_lora, self.lora_rank)
            latency = spec_round_latency(
                self.config, self.cost_model, work, d, spec.draft_cost_ratio
            )
        else:
            latency = 0.0
        return SpecExecution(
            latency=latency + self.step_overhead,
            committed=committed,
            accepted=accepted,
            proposed=d,
        )
