"""Request lifecycle state.

A request flows QUEUED -> RUNNING -> FINISHED, possibly bouncing back to
QUEUED on migration/eviction (cancel + re-add, §5.3). Two terminal error
states exist besides FINISHED: CANCELLED (user disconnect) and FAILED
(shed under faults, or deadline exceeded after the retry budget — see
docs/faults.md). The object records everything the scheduler, engine and
metrics need: timing marks, generated tokens, and how many of its tokens
are currently materialized in some GPU's KvCache.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.workloads.trace import RequestSpec


class RequestState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    FINISHED = "finished"
    CANCELLED = "cancelled"
    FAILED = "failed"

    @property
    def is_terminal(self) -> bool:
        return self in (
            RequestState.FINISHED, RequestState.CANCELLED, RequestState.FAILED
        )


@dataclass
class Request:
    """One in-flight request (mutable runtime state around a RequestSpec)."""

    spec: RequestSpec
    state: RequestState = RequestState.QUEUED
    prompt_tokens: "list[int] | None" = None
    """Actual prompt ids (functional mode); None in simulation mode."""
    sampler: "object | None" = None
    """Per-request sampler override (functional mode); the backend's default
    sampler is used when None. Lets tenants pick temperature/top-k."""
    generated_tokens: list[int] = field(default_factory=list)
    kv_len: int = 0
    """Tokens of this request currently materialized in the GPU KvCache."""
    needs_prefill: bool = True
    gpu_id: "str | None" = None
    first_admitted_time: "float | None" = None
    first_token_time: "float | None" = None
    finish_time: "float | None" = None
    num_migrations: int = 0
    num_retries: int = 0
    """Frontend-driven resubmissions after a failure or missed deadline."""
    failure_reason: "str | None" = None
    """Why the request reached FAILED (shed, deadline, adapter-load, ...)."""

    @property
    def request_id(self) -> str:
        return self.spec.request_id

    @property
    def lora_id(self) -> str:
        return self.spec.lora_id

    @property
    def num_generated(self) -> int:
        return len(self.generated_tokens)

    @property
    def effective_prompt_len(self) -> int:
        """Tokens a (re-)prefill must process: original prompt + everything
        generated so far (migration recomputes the KvCache, §5.3)."""
        return self.spec.prompt_len + self.num_generated

    def reached_limit(self) -> bool:
        """The length-limit stopping condition."""
        return self.num_generated >= self.spec.response_len

    def record_token(self, token: int, now: float) -> None:
        """Append one generated token and stamp first-token latency."""
        if self.state is not RequestState.RUNNING:
            raise RuntimeError(
                f"cannot record token for {self.request_id} in state {self.state}"
            )
        self.generated_tokens.append(token)
        if self.first_token_time is None:
            self.first_token_time = now

    def mark_running(self, gpu_id: str, now: "float | None" = None) -> None:
        if self.state not in (RequestState.QUEUED, RequestState.RUNNING):
            raise RuntimeError(f"cannot run {self.request_id} from state {self.state}")
        self.state = RequestState.RUNNING
        self.gpu_id = gpu_id
        if now is not None and self.first_admitted_time is None:
            self.first_admitted_time = now

    def mark_finished(self, now: float) -> None:
        self.state = RequestState.FINISHED
        self.finish_time = now
        self.gpu_id = None
        self.kv_len = 0

    def mark_cancelled(self) -> None:
        self.state = RequestState.CANCELLED
        self.gpu_id = None
        self.kv_len = 0

    def mark_failed(self, reason: str) -> None:
        """Terminal failure: shed under faults or out of retry budget."""
        if self.state is RequestState.FINISHED:
            raise RuntimeError(f"cannot fail finished request {self.request_id}")
        self.state = RequestState.FAILED
        self.failure_reason = reason
        self.gpu_id = None
        self.kv_len = 0

    def reset_for_retry(self) -> None:
        """Return a FAILED/CANCELLED request to QUEUED for a frontend retry.

        Generated tokens are kept — like migration, the next GPU re-prefills
        over prompt + generated prefix, so no progress is re-paid twice.
        """
        if self.state not in (
            RequestState.FAILED, RequestState.CANCELLED, RequestState.QUEUED
        ):
            raise RuntimeError(
                f"cannot retry {self.request_id} from state {self.state}"
            )
        self.state = RequestState.QUEUED
        self.failure_reason = None
        self.gpu_id = None
        self.kv_len = 0
        self.needs_prefill = True
        self.num_retries += 1

    def evict(self) -> None:
        """Cancel on the current GPU but keep progress (migration step 1).

        The generated prefix is preserved; the next GPU re-establishes the
        KvCache with a prefill over prompt + generated tokens.
        """
        if self.state is not RequestState.RUNNING:
            raise RuntimeError(f"cannot evict {self.request_id} in state {self.state}")
        self.state = RequestState.QUEUED
        self.gpu_id = None
        self.kv_len = 0
        self.needs_prefill = True
        self.num_migrations += 1

    def suspend_for_transfer(self) -> None:
        """Leave the prefill GPU with KV pages in flight (disagg handoff).

        Unlike :meth:`evict` the KV history travels with the request: the
        decode GPU imports the pages instead of re-prefilling, so
        ``kv_len``/``needs_prefill`` are preserved and no migration is
        counted. ``kv_len`` records how many tokens the copy carries.
        """
        if self.state is not RequestState.RUNNING:
            raise RuntimeError(
                f"cannot suspend {self.request_id} in state {self.state}"
            )
        self.state = RequestState.QUEUED
        self.gpu_id = None

    def drop_kv(self) -> None:
        """Lose the in-flight KV copy (transfer failure): back to re-prefill.

        Counts as a migration since the request pays the §5.3 evict +
        re-prefill price over prompt + generated prefix.
        """
        if self.state is not RequestState.QUEUED:
            raise RuntimeError(
                f"cannot drop KV of {self.request_id} in state {self.state}"
            )
        self.kv_len = 0
        self.needs_prefill = True
        self.num_migrations += 1

    # -- latency metrics ------------------------------------------------
    def normalized_latency(self) -> float:
        """End-to-end latency per generated token (the serving SLO metric)."""
        if self.finish_time is None:
            raise RuntimeError(f"{self.request_id} not finished")
        if not self.generated_tokens:
            return 0.0
        return (self.finish_time - self.spec.arrival_time) / len(self.generated_tokens)

    def time_to_first_token(self) -> float:
        if self.first_token_time is None:
            raise RuntimeError(f"{self.request_id} has no first token yet")
        return self.first_token_time - self.spec.arrival_time

    def queue_wait(self) -> float:
        """Time from arrival until first GPU admission."""
        if self.first_admitted_time is None:
            raise RuntimeError(f"{self.request_id} was never admitted")
        return self.first_admitted_time - self.spec.arrival_time

    def decode_time(self) -> float:
        """First token to finish: the pure generation phase."""
        if self.finish_time is None or self.first_token_time is None:
            raise RuntimeError(f"{self.request_id} not finished")
        return self.finish_time - self.first_token_time
