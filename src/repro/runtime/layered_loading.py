"""Layer-by-layer LoRA loading (the §5.2 alternative Punica chose not to need).

The paper notes that since PCIe copies overlap with compute, "it is
feasible to implement sophisticated layer-by-layer or even matrix-by-
matrix loading to minimize the model loading delay" — but opts for simple
whole-model loading because a full LoRA load (~2-3 ms) already hides
behind one ~30 ms decode step. This module implements the sophisticated
variant so the trade-off can be quantified (``bench_ablation_loading``):

* :class:`LayeredTransferPlan` — one async copy per layer, issued
  back-to-back on the PCIe link;
* :func:`pipelined_prefill_finish` — completion time of a prefill whose
  layer ``i`` may only start once layer ``i``'s weights have landed;
* :func:`time_to_first_token` — for both strategies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.pcie import PcieSpec
from repro.utils.validation import check_nonnegative


@dataclass(frozen=True)
class LayeredTransferPlan:
    """Per-layer asynchronous copies sharing one PCIe link (serialized)."""

    start: float
    layer_finishes: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.layer_finishes:
            raise ValueError("plan needs at least one layer")
        prev = self.start
        for i, t in enumerate(self.layer_finishes):
            if t < prev:
                raise ValueError(f"layer {i} finishes at {t} before {prev}")
            prev = t

    @property
    def finish(self) -> float:
        return self.layer_finishes[-1]

    @property
    def num_layers(self) -> int:
        return len(self.layer_finishes)

    def layers_ready(self, t: float) -> int:
        """How many leading layers have fully landed by time ``t``."""
        ready = 0
        for finish in self.layer_finishes:
            if finish <= t:
                ready += 1
            else:
                break
        return ready


def plan_layered_transfer(
    pcie: PcieSpec, layer_bytes: "list[float]", start: float
) -> LayeredTransferPlan:
    """Issue one copy per layer back-to-back on the link.

    Each copy pays the link's fixed latency — the overhead that makes
    many small copies slower in aggregate than one big one.
    """
    if not layer_bytes:
        raise ValueError("layer_bytes must be non-empty")
    finishes = []
    t = start
    for nbytes in layer_bytes:
        check_nonnegative("layer bytes", nbytes)
        t += pcie.transfer_time(nbytes)
        finishes.append(t)
    return LayeredTransferPlan(start=start, layer_finishes=tuple(finishes))


def pipelined_prefill_finish(
    plan: LayeredTransferPlan, layer_compute_time: float, compute_start: float
) -> float:
    """Finish time of a prefill pipelined against the layered load.

    Layer ``i``'s compute starts at ``max(previous layer done, weights of
    layer i landed)`` — the classic two-stage pipeline bound.
    """
    check_nonnegative("layer_compute_time", layer_compute_time)
    t = compute_start
    for finish in plan.layer_finishes:
        t = max(t, finish) + layer_compute_time
    return t


def time_to_first_token(
    pcie: PcieSpec,
    layer_bytes: "list[float]",
    layer_compute_time: float,
    layered: bool,
    start: float = 0.0,
) -> float:
    """TTFT of a fresh request whose LoRA is not yet resident.

    Whole-model strategy: compute starts only after the single big copy
    lands. Layered strategy: compute pipelines against per-layer copies.
    """
    if layered:
        plan = plan_layered_transfer(pcie, layer_bytes, start)
        return pipelined_prefill_finish(plan, layer_compute_time, start)
    whole = pcie.transfer_time(sum(layer_bytes))
    return start + whole + layer_compute_time * len(layer_bytes)
