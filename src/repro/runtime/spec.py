"""Speculative decoding configuration (MagicDec-style draft/verify lane).

One :class:`SpecConfig` on :class:`~repro.runtime.engine.EngineConfig`
arms the engine's speculative lane: every all-decode step becomes one
*round* — the draft model proposes ``draft_len`` tokens per request, the
target model verifies the whole chunk in a single invocation, and each
request commits between 1 (draft rejected immediately; the target's own
correction token still lands) and ``draft_len + 1`` (every draft accepted
plus the bonus token) tokens. Rejected draft tokens roll their reserved
KV slots back exactly (docs/speculative.md).

The two backends consume the config differently:

* the simulated backend draws per-request acceptance counts from a
  geometric model at ``acceptance_rate`` and prices the round via
  :func:`repro.models.perf.spec_round_latency`;
* the functional NumPy backend ignores ``acceptance_rate`` and runs a
  *real* truncated-layer draft model plus sequential argmax
  verification, so speculative output is token-identical to greedy
  non-speculative decoding (tests/test_spec_oracle.py).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SpecConfig:
    """Parameters of the speculative draft/verify lane."""

    draft_len: int = 4
    """Tokens the draft model proposes per round (the paper literature's
    gamma)."""
    acceptance_rate: float = 0.8
    """Per-token probability a draft token survives verification — used
    only by the simulated backend's geometric acceptance model."""
    seed: int = 0
    """Seed of the engine's acceptance RNG (simulated backend); combined
    with the gpu_id so engines draw independent streams."""
    draft_cost_ratio: float = 0.25
    """Draft-model decode-step cost as a fraction of a target decode
    step (simulated backend pricing)."""
    draft_layers: int | None = None
    """Functional backend: layers of the truncated draft model (default
    ``max(1, num_layers // 2)``)."""

    def __post_init__(self) -> None:
        if self.draft_len < 1:
            raise ValueError(
                f"draft_len must be >= 1 (0 would make every round verify "
                f"nothing), got {self.draft_len}"
            )
        if not 0.0 <= self.acceptance_rate <= 1.0:
            raise ValueError(
                f"acceptance_rate must be within [0, 1], got "
                f"{self.acceptance_rate}"
            )
        if not 0.0 < self.draft_cost_ratio <= 1.0:
            raise ValueError(
                f"draft_cost_ratio must be within (0, 1] (a draft step "
                f"cannot be free or dearer than the target's), got "
                f"{self.draft_cost_ratio}"
            )
        if self.draft_layers is not None and self.draft_layers < 1:
            raise ValueError(
                f"draft_layers must be >= 1 when set, got {self.draft_layers}"
            )

    @property
    def max_tokens_per_round(self) -> int:
        """Most tokens one request can commit in a round (all accepted
        plus the bonus token)."""
        return self.draft_len + 1
