"""Single-GPU serving runtime: the paper's §5 on one device.

The :class:`GpuEngine` keeps a working set of requests, runs batched model
invocations mixing at most one prefill with a batch of decodes, loads LoRA
weights on demand over PCIe (overlapped with compute), tracks KvCache pages
through the backend's allocator, and evicts the newest requests under
memory pressure (preserving FCFS). Two interchangeable backends execute
the batches: :class:`SimulatedBackend` prices them on the analytical A100
model at 7B/13B/70B scale, :class:`NumpyBackend` really generates tokens
with the toy functional Llama.
"""

from repro.runtime.backend import (
    NumpyBackend,
    SimulatedBackend,
    SpecExecution,
    StepExecution,
)
from repro.runtime.engine import EngineConfig, GpuEngine, StepReport
from repro.runtime.spec import SpecConfig
from repro.runtime.layered_loading import (
    LayeredTransferPlan,
    pipelined_prefill_finish,
    plan_layered_transfer,
    time_to_first_token,
)
from repro.runtime.latency import (
    LatencyBreakdown,
    LatencyStats,
    breakdown_of,
    slo_attainment,
)
from repro.runtime.loader import LoraLoader
from repro.runtime.request import Request, RequestState
from repro.runtime.sampler import GreedySampler, TemperatureSampler
from repro.runtime.serve import ServeResult, requests_from_trace, serve_requests

__all__ = [
    "EngineConfig",
    "GpuEngine",
    "GreedySampler",
    "LatencyBreakdown",
    "LatencyStats",
    "LayeredTransferPlan",
    "LoraLoader",
    "NumpyBackend",
    "Request",
    "RequestState",
    "ServeResult",
    "SimulatedBackend",
    "SpecConfig",
    "SpecExecution",
    "StepExecution",
    "StepReport",
    "TemperatureSampler",
    "breakdown_of",
    "pipelined_prefill_finish",
    "plan_layered_transfer",
    "requests_from_trace",
    "serve_requests",
    "slo_attainment",
    "time_to_first_token",
]
