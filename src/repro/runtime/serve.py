"""Single-GPU serving drivers: feed a trace through one engine and measure.

The Fig 11 experiment is exactly this: 1000 requests served FCFS on one
GPU, max batch size 32, reporting generated tokens per second. The driver
is also used open-loop (requests admitted at their arrival times) and by
the functional examples (with real token ids).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.obs.tracer import EventKind, Tracer
from repro.runtime.engine import GpuEngine, StepReport
from repro.runtime.request import Request, RequestState
from repro.utils.rng import new_rng
from repro.workloads.trace import Trace


def requests_from_trace(
    trace: Trace,
    with_prompt_tokens: bool = False,
    vocab_size: int | None = None,
    seed: "int | np.random.Generator | None" = 0,
) -> list[Request]:
    """Materialize runtime Requests from a workload trace.

    ``with_prompt_tokens=True`` draws random prompt ids (functional mode);
    simulation mode leaves them ``None``.
    """
    rng = new_rng(seed)
    requests = []
    for spec in trace:
        prompt = None
        if with_prompt_tokens:
            if vocab_size is None:
                raise ValueError("vocab_size required when generating prompt tokens")
            prompt = [int(t) for t in rng.integers(0, vocab_size, size=spec.prompt_len)]
        requests.append(Request(spec=spec, prompt_tokens=prompt))
    return requests


@dataclass
class ServeResult:
    """Aggregate outcome of serving one trace on one engine."""

    duration: float
    tokens_generated: int
    requests_finished: int
    steps: list[StepReport] = field(default_factory=list)
    requests: list[Request] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        """Generated tokens per second — the paper's headline metric."""
        return self.tokens_generated / self.duration if self.duration > 0 else 0.0

    @property
    def mean_batch_size(self) -> float:
        """Time-weighted mean LLM-invocation batch size."""
        busy = [(s.batch_size, s.latency) for s in self.steps if s.batch_size > 0]
        if not busy:
            return 0.0
        total_t = sum(t for _, t in busy)
        return sum(b * t for b, t in busy) / total_t if total_t > 0 else 0.0

    def normalized_latencies(self) -> list[float]:
        """Per-request end-to-end seconds per generated token."""
        return [
            r.normalized_latency()
            for r in self.requests
            if r.state is RequestState.FINISHED and r.num_generated > 0
        ]

    def mean_normalized_latency(self) -> float:
        lats = self.normalized_latencies()
        return float(np.mean(lats)) if lats else 0.0

    def percentile_latency(self, q: float) -> float:
        lats = self.normalized_latencies()
        return float(np.percentile(lats, q)) if lats else 0.0

    def summary(self) -> str:
        """One human-readable line — what an operator dashboard would show."""
        return (
            f"{self.requests_finished} requests, {self.tokens_generated} tokens "
            f"in {self.duration:.2f}s | {self.throughput:.0f} tok/s | "
            f"mean batch {self.mean_batch_size:.1f} | "
            f"p50 latency {self.percentile_latency(50) * 1e3:.1f} ms/tok"
        )


def serve_requests(
    engine: GpuEngine,
    requests: "list[Request]",
    start_time: float = 0.0,
    max_steps: int | None = None,
    keep_steps: bool = True,
    tracer: "Tracer | None" = None,
) -> ServeResult:
    """Serve ``requests`` to completion on one engine, FCFS.

    Requests become eligible at their arrival times; the head of the queue
    blocks admission (strict FCFS, §5.1). Evicted requests re-enter the
    queue keyed by their original arrival time, which reproduces the
    paper's "scheduling for the evicted request is the same as adding a
    new request" under FCFS order.

    With a ``tracer``, the driver emits SUBMIT at each arrival and wires
    the engine to emit PLACE / PREFILL / DECODE_STEP / FINISH, so the
    single-GPU path produces the same event stream the cluster does.
    """
    clock = start_time
    if tracer is not None:
        engine.tracer = tracer
        for req in requests:
            tracer.emit(
                req.spec.arrival_time, EventKind.SUBMIT, req.request_id,
                lora=req.lora_id, prompt=req.spec.prompt_len,
                response=req.spec.response_len, retries=req.num_retries,
            )
    heap: list[tuple[float, int, Request]] = []
    seq = 0
    for req in requests:
        heapq.heappush(heap, (req.spec.arrival_time, seq, req))
        seq += 1

    steps: list[StepReport] = []
    tokens = 0
    finished = 0
    n_steps = 0
    first_arrival = min((r.spec.arrival_time for r in requests), default=start_time)
    clock = max(clock, first_arrival)

    while heap or not engine.is_idle:
        # Admit eligible requests FCFS; the queue head blocks.
        while heap and heap[0][0] <= clock:
            req = heap[0][2]
            if req.state is RequestState.CANCELLED:
                heapq.heappop(heap)
                continue
            if engine.can_accept(req):
                heapq.heappop(heap)
                engine.add_request(req, clock)
            else:
                break

        report = engine.step(clock)
        if report is None:
            if heap:
                next_arrival = heap[0][0]
                if engine.is_idle:
                    if next_arrival > clock:
                        clock = next_arrival  # jump to the next arrival
                        continue
                    # The head has arrived, the engine is idle, and it still
                    # cannot be admitted: it will never fit. Stop rather
                    # than spin (strict FCFS keeps everything behind it
                    # queued too).
                    head = heap[0][2]
                    if not engine.can_accept(head):
                        break
                clock += 1e-4  # waiting on an in-flight LoRA load
            elif engine.is_idle:
                break
            else:
                clock += 1e-4  # waiting on an in-flight LoRA load
            continue

        clock = report.end
        tokens += report.tokens_generated
        finished += len(report.finished)
        if keep_steps:
            steps.append(report)
        for rid in report.evicted:
            req = next(r for r in requests if r.request_id == rid)
            heapq.heappush(heap, (req.spec.arrival_time, seq, req))
            seq += 1
        n_steps += 1
        if max_steps is not None and n_steps >= max_steps:
            break

    return ServeResult(
        duration=clock - start_time,
        tokens_generated=tokens,
        requests_finished=finished,
        steps=steps,
        requests=list(requests),
    )
