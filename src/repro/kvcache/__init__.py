"""KvCache memory management.

Punica's KvCache layout (§5.4) is paged and batch-separable:

    [sum_i ceil(S_i / P), L, 2, N, P, D]

so requests can join and leave a batch independently (continuous batching)
and fragmentation is bounded by one page per request. The HuggingFace
layout ``[L, 2, B, N, S, D]`` is also implemented as the baseline: it keeps
the batch dimension inside, making requests inseparable — short requests
must run wasted decode steps until the longest request in their batch
finishes (Fig 6).
"""

from repro.kvcache.contiguous import ContiguousKvCache, wasted_decode_steps
from repro.kvcache.page import PageAllocator, PageAllocatorStats, pages_needed
from repro.kvcache.pool import KvPool, PagedKvData, kv_bytes_per_token

__all__ = [
    "ContiguousKvCache",
    "KvPool",
    "PageAllocator",
    "PageAllocatorStats",
    "PagedKvData",
    "kv_bytes_per_token",
    "pages_needed",
    "wasted_decode_steps",
]
