"""The HuggingFace-style contiguous KvCache baseline (paper §5.4, Fig 6).

Layout ``[L, 2, B, N, S, D]`` with the batch dimension *inside*: every
decode step concatenates one column along the sequence dimension (copying
the whole cache), and requests that entered a batch together cannot leave
it until the longest one finishes — shorter requests burn wasted decode
steps. Both costs are modelled here; :func:`wasted_decode_steps` is the
quantity Fig 6 illustrates.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


class ContiguousKvCache:
    """A batch-inseparable KvCache for one fixed batch of requests."""

    def __init__(
        self,
        batch_ids: Sequence[str],
        num_layers: int,
        num_kv_heads: int,
        head_dim: int,
        dtype: np.dtype = np.float32,
    ):
        if not batch_ids:
            raise ValueError("batch must contain at least one request")
        if len(set(batch_ids)) != len(batch_ids):
            raise ValueError("duplicate request ids in batch")
        self.batch_ids = list(batch_ids)
        self.num_layers = num_layers
        self.num_kv_heads = num_kv_heads
        self.head_dim = head_dim
        self.dtype = dtype
        # [L, 2, B, N, S, D] with S = 0 initially.
        self.data = np.zeros(
            (num_layers, 2, len(self.batch_ids), num_kv_heads, 0, head_dim), dtype=dtype
        )
        self.copied_bytes = 0

    @property
    def seq_len(self) -> int:
        return self.data.shape[4]

    @property
    def batch_size(self) -> int:
        return len(self.batch_ids)

    def append_step(self, k: np.ndarray, v: np.ndarray) -> None:
        """Concatenate one token column for the whole batch.

        ``k``/``v`` have shape ``(L, B, N, D)``. Reallocates and copies the
        entire cache, which is the inefficiency the paper calls out: the
        new data is only ``1/S`` of what gets moved.
        """
        expected = (self.num_layers, self.batch_size, self.num_kv_heads, self.head_dim)
        if k.shape != expected or v.shape != expected:
            raise ValueError(f"k/v must have shape {expected}, got {k.shape}/{v.shape}")
        column = np.stack([k, v], axis=1)[:, :, :, :, None, :]  # [L,2,B,N,1,D]
        old_bytes = self.data.nbytes
        self.data = np.concatenate([self.data, column.astype(self.dtype)], axis=4)
        # The whole old cache is read and rewritten, plus the new column.
        self.copied_bytes += old_bytes + column.nbytes

    def get(self, layer: int, batch_index: int) -> tuple[np.ndarray, np.ndarray]:
        """K and V history for one request: shapes ``(N, S, D)``."""
        return self.data[layer, 0, batch_index], self.data[layer, 1, batch_index]


def wasted_decode_steps(decode_lengths: Sequence[int]) -> int:
    """Wasted decode steps when a batch is inseparable (Fig 6).

    Every request runs ``max(decode_lengths)`` steps, so request ``i``
    wastes ``max - decode_lengths[i]``. With a separable layout the waste
    is zero; this is the quantity behind FasterTransformer's and
    DeepSpeed's throughput loss in Fig 11.
    """
    lens = list(decode_lengths)
    if not lens:
        return 0
    if any(l < 0 for l in lens):
        raise ValueError(f"decode lengths must be nonnegative, got {lens}")
    longest = max(lens)
    return sum(longest - l for l in lens)
