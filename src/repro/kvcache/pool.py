"""Paged KvCache with real storage, in the paper's layout (§5.4).

:class:`KvPool` is the *accounting* view the scheduler and engine use: it
wraps a :class:`~repro.kvcache.page.PageAllocator` sized from a byte budget
and a model configuration. :class:`PagedKvData` adds actual NumPy storage
in the paper's ``[pages, L, 2, N, P, D]`` layout, used by the functional
(toy-scale) backend so that paged attention is numerically exercised — the
K/V vectors a request reads back are exactly the ones it wrote, regardless
of how pages were recycled in between.
"""

from __future__ import annotations

import numpy as np

from repro.kvcache.page import PageAllocator


def kv_bytes_per_token(
    num_layers: int, num_kv_heads: int, head_dim: int, dtype_bytes: int = 2
) -> int:
    """Bytes of KvCache one token occupies: ``L * 2 * N_kv * D * dtype``."""
    if min(num_layers, num_kv_heads, head_dim, dtype_bytes) <= 0:
        raise ValueError("all KvCache dimensions must be positive")
    return num_layers * 2 * num_kv_heads * head_dim * dtype_bytes


class KvPool:
    """Byte-budgeted paged KvCache accounting for one GPU.

    Parameters
    ----------
    capacity_bytes:
        GPU memory reserved for KvCache (total memory minus backbone
        weights minus activation workspace).
    page_size:
        Tokens per page (the paper's ``P``).
    bytes_per_token:
        From :func:`kv_bytes_per_token` for the served model.
    """

    def __init__(self, capacity_bytes: float, page_size: int, bytes_per_token: int):
        if capacity_bytes <= 0:
            raise ValueError(f"capacity_bytes must be positive, got {capacity_bytes}")
        if bytes_per_token <= 0:
            raise ValueError(f"bytes_per_token must be positive, got {bytes_per_token}")
        page_bytes = page_size * bytes_per_token
        total_pages = int(capacity_bytes // page_bytes)
        if total_pages <= 0:
            raise ValueError(
                f"capacity {capacity_bytes} bytes holds no {page_bytes}-byte page"
            )
        self.page_size = page_size
        self.bytes_per_token = bytes_per_token
        self.allocator = PageAllocator(total_pages=total_pages, page_size=page_size)

    # Delegation keeps one source of truth for the allocation logic.
    @property
    def total_pages(self) -> int:
        return self.allocator.total_pages

    @property
    def free_pages(self) -> int:
        return self.allocator.free_pages

    @property
    def free_tokens(self) -> int:
        """Guaranteed-admittable token capacity right now."""
        return self.allocator.free_pages * self.page_size

    def can_admit(self, prompt_len: int, headroom_tokens: int = 0) -> bool:
        """Whether a new request's prompt plus ``headroom_tokens`` fits."""
        return self.allocator.can_allocate(prompt_len + headroom_tokens)

    def allocate(self, seq_id: str, seq_len: int) -> list[int]:
        return self.allocator.allocate(seq_id, seq_len)

    def append_token(self, seq_id: str) -> list[int]:
        return self.allocator.append(seq_id, 1)

    def can_append_token(self, seq_id: str) -> bool:
        return self.allocator.can_append(seq_id, 1)

    def truncate(self, seq_id: str, new_len: int) -> int:
        """Roll a sequence back to ``new_len`` tokens; returns pages released."""
        return self.allocator.truncate(seq_id, new_len)

    def free(self, seq_id: str) -> int:
        return self.allocator.free(seq_id)

    def export_sequence(self, seq_id: str) -> int:
        return self.allocator.export_sequence(seq_id)

    def import_sequence(self, seq_id: str, seq_len: int) -> list[int]:
        return self.allocator.import_sequence(seq_id, seq_len)

    def bytes_of(self, num_tokens: int) -> float:
        """Wire bytes of ``num_tokens`` of KV history (page-granular copies
        still only move the written token slots)."""
        if num_tokens < 0:
            raise ValueError(f"num_tokens must be nonnegative, got {num_tokens}")
        return float(num_tokens) * self.bytes_per_token

    def seq_len(self, seq_id: str) -> int:
        return self.allocator.seq_len(seq_id)

    def __contains__(self, seq_id: str) -> bool:
        return seq_id in self.allocator

    def used_bytes(self) -> int:
        return self.allocator.used_pages * self.page_size * self.bytes_per_token


class PagedKvData:
    """Paged KvCache with real storage: ``data[page, layer, kv, head, slot, dim]``.

    Writes go through ``(seq page list, in-page slot)`` indirection just
    like the CUDA kernels do; :meth:`gather` linearizes one sequence's
    history for the attention computation.
    """

    def __init__(
        self,
        total_pages: int,
        page_size: int,
        num_layers: int,
        num_kv_heads: int,
        head_dim: int,
        dtype: np.dtype = np.float32,
    ):
        self.allocator = PageAllocator(total_pages=total_pages, page_size=page_size)
        self.page_size = page_size
        self.num_layers = num_layers
        self.num_kv_heads = num_kv_heads
        self.head_dim = head_dim
        self.data = np.zeros(
            (total_pages, num_layers, 2, num_kv_heads, page_size, head_dim), dtype=dtype
        )
        self._lengths: dict[str, int] = {}

    def allocate(self, seq_id: str, seq_len: int) -> None:
        """Reserve pages for ``seq_len`` tokens (written via :meth:`write_token`)."""
        self.allocator.allocate(seq_id, seq_len)
        self._lengths[seq_id] = 0

    def append_slot(self, seq_id: str) -> None:
        """Reserve space for one more token of an existing sequence."""
        self.allocator.append(seq_id, 1)

    def truncate(self, seq_id: str, new_len: int) -> int:
        """Roll back to ``new_len`` tokens: release the pages past it and
        forget any K/V written beyond — :meth:`gather` never reads past
        the written length, so stale slots in the kept tail page are
        unobservable and get overwritten on the next append."""
        released = self.allocator.truncate(seq_id, new_len)
        self._lengths[seq_id] = min(self._lengths[seq_id], new_len)
        return released

    def free(self, seq_id: str) -> None:
        self.allocator.free(seq_id)
        del self._lengths[seq_id]

    def _locate(self, seq_id: str, position: int) -> tuple[int, int]:
        pages = self.allocator.pages_of(seq_id)
        page_idx, slot = divmod(position, self.page_size)
        if page_idx >= len(pages):
            raise IndexError(
                f"position {position} beyond allocated pages of {seq_id!r}"
            )
        return pages[page_idx], slot

    def write_token(
        self, seq_id: str, layer: int, position: int, k: np.ndarray, v: np.ndarray
    ) -> None:
        """Store one token's K and V for one layer. Shapes ``(N_kv, D)``."""
        page, slot = self._locate(seq_id, position)
        expected = (self.num_kv_heads, self.head_dim)
        if k.shape != expected or v.shape != expected:
            raise ValueError(f"k/v must have shape {expected}, got {k.shape}/{v.shape}")
        self.data[page, layer, 0, :, slot, :] = k
        self.data[page, layer, 1, :, slot, :] = v
        if layer == self.num_layers - 1:
            self._lengths[seq_id] = max(self._lengths[seq_id], position + 1)

    def written_len(self, seq_id: str) -> int:
        """Tokens fully written (all layers) for ``seq_id``."""
        if seq_id not in self._lengths:
            raise KeyError(f"unknown sequence {seq_id!r}")
        return self._lengths[seq_id]

    def gather(self, seq_id: str, layer: int, length: int) -> tuple[np.ndarray, np.ndarray]:
        """Linearize the first ``length`` tokens of K and V: ``(N_kv, length, D)``."""
        pages = self.allocator.pages_of(seq_id)
        if length > len(pages) * self.page_size:
            raise IndexError(f"length {length} beyond pages of {seq_id!r}")
        k_parts, v_parts = [], []
        remaining = length
        for page in pages:
            if remaining <= 0:
                break
            take = min(self.page_size, remaining)
            k_parts.append(self.data[page, layer, 0, :, :take, :])
            v_parts.append(self.data[page, layer, 1, :, :take, :])
            remaining -= take
        k = np.concatenate(k_parts, axis=1) if k_parts else np.zeros(
            (self.num_kv_heads, 0, self.head_dim), dtype=self.data.dtype
        )
        v = np.concatenate(v_parts, axis=1) if v_parts else np.zeros_like(k)
        return k, v
