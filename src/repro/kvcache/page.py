"""Paged KvCache allocator (PagedAttention-style, paper §5.4).

The allocator hands out fixed-size pages, each holding ``page_size`` tokens
of one request's K/V history. A request with sequence length ``S`` owns
``ceil(S / P)`` pages; the last page may be partially filled. Pages are
recycled through a free list, so after any sequence of alloc/free the pool
never fragments below page granularity — this is the property that lets
Punica admit a new request whenever ``free_pages`` suffices, regardless of
what ran before.
"""

from __future__ import annotations

from dataclasses import dataclass


def pages_needed(seq_len: int, page_size: int) -> int:
    """``ceil(seq_len / page_size)`` with validation."""
    if page_size <= 0:
        raise ValueError(f"page_size must be positive, got {page_size}")
    if seq_len < 0:
        raise ValueError(f"seq_len must be nonnegative, got {seq_len}")
    return -(-seq_len // page_size)


@dataclass(frozen=True)
class PageAllocatorStats:
    """Occupancy snapshot."""

    total_pages: int
    free_pages: int
    used_pages: int
    num_sequences: int
    allocated_tokens: int

    @property
    def utilization(self) -> float:
        """Fraction of pool pages currently owned by sequences."""
        return self.used_pages / self.total_pages if self.total_pages else 0.0


class PageAllocator:
    """Fixed-pool page allocator with per-sequence page lists."""

    def __init__(self, total_pages: int, page_size: int):
        if total_pages <= 0:
            raise ValueError(f"total_pages must be positive, got {total_pages}")
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        self.total_pages = total_pages
        self.page_size = page_size
        self._free: list[int] = list(range(total_pages - 1, -1, -1))
        self._pages: dict[str, list[int]] = {}
        self._seq_len: dict[str, int] = {}

    # -- queries -------------------------------------------------------
    @property
    def free_pages(self) -> int:
        return len(self._free)

    @property
    def used_pages(self) -> int:
        return self.total_pages - len(self._free)

    def seq_len(self, seq_id: str) -> int:
        self._require(seq_id)
        return self._seq_len[seq_id]

    def pages_of(self, seq_id: str) -> list[int]:
        self._require(seq_id)
        return list(self._pages[seq_id])

    def __contains__(self, seq_id: str) -> bool:
        return seq_id in self._pages

    def can_allocate(self, seq_len: int) -> bool:
        """Whether a *new* sequence of ``seq_len`` tokens fits right now."""
        return pages_needed(seq_len, self.page_size) <= len(self._free)

    def can_append(self, seq_id: str, extra_tokens: int = 1) -> bool:
        """Whether ``extra_tokens`` more tokens fit for an existing sequence."""
        self._require(seq_id)
        cur = self._seq_len[seq_id]
        extra_pages = pages_needed(cur + extra_tokens, self.page_size) - len(
            self._pages[seq_id]
        )
        return extra_pages <= len(self._free)

    # -- mutations -----------------------------------------------------
    def allocate(self, seq_id: str, seq_len: int) -> list[int]:
        """Allocate pages for a new sequence of ``seq_len`` tokens."""
        if seq_id in self._pages:
            raise ValueError(f"sequence {seq_id!r} already allocated")
        if seq_len <= 0:
            raise ValueError(f"seq_len must be positive, got {seq_len}")
        need = pages_needed(seq_len, self.page_size)
        if need > len(self._free):
            raise MemoryError(
                f"need {need} pages for {seq_id!r} but only {len(self._free)} free"
            )
        pages = [self._free.pop() for _ in range(need)]
        self._pages[seq_id] = pages
        self._seq_len[seq_id] = seq_len
        return list(pages)

    def append(self, seq_id: str, extra_tokens: int = 1) -> list[int]:
        """Grow a sequence; returns any newly allocated pages."""
        self._require(seq_id)
        if extra_tokens <= 0:
            raise ValueError(f"extra_tokens must be positive, got {extra_tokens}")
        new_len = self._seq_len[seq_id] + extra_tokens
        need = pages_needed(new_len, self.page_size) - len(self._pages[seq_id])
        if need > len(self._free):
            raise MemoryError(
                f"append to {seq_id!r} needs {need} pages but only {len(self._free)} free"
            )
        new_pages = [self._free.pop() for _ in range(need)]
        self._pages[seq_id].extend(new_pages)
        self._seq_len[seq_id] = new_len
        return new_pages

    def append_token(self, seq_id: str) -> "list[int]":
        """Single-token :meth:`append` specialization for the decode hot loop.

        Equivalent to ``append(seq_id, 1)`` but replaces the two
        ``pages_needed`` ceil-divisions with one modulo: a token needs a
        new page iff the current length fills its last page exactly.
        """
        pages = self._pages.get(seq_id)
        if pages is None:
            raise KeyError(f"unknown sequence {seq_id!r}")
        cur = self._seq_len[seq_id]
        self._seq_len[seq_id] = cur + 1
        if cur % self.page_size:
            return []
        if not self._free:
            self._seq_len[seq_id] = cur
            raise MemoryError(
                f"append to {seq_id!r} needs 1 pages but only 0 free"
            )
        page = self._free.pop()
        pages.append(page)
        return [page]

    def append_tokens(self, seq_ids) -> None:
        """Batched :meth:`append_token` for the steady decode lane.

        One token per sequence, no new-page lists returned. The caller
        guarantees every sequence exists and a free page per sequence is
        available (``free_pages >= len(seq_ids)``), so the per-call
        validation of :meth:`append_token` is hoisted out of the loop.
        """
        seq_len = self._seq_len
        pages = self._pages
        free = self._free
        page_size = self.page_size
        for sid in seq_ids:
            cur = seq_len[sid]
            seq_len[sid] = cur + 1
            if cur % page_size == 0:
                if not free:
                    seq_len[sid] = cur
                    raise MemoryError(
                        f"append to {sid!r} needs 1 pages but only 0 free"
                    )
                pages[sid].append(free.pop())

    def append_tokens_run(self, seq_ids, count: int) -> None:
        """``count`` rounds of :meth:`append_tokens` applied in one call.

        The vectorized steady-decode lane commits a whole run of decode
        steps at once; each round appends one token per sequence in
        ``seq_ids`` order. Page allocations replay in exact (round,
        sequence-position) order, so the LIFO free list hands every
        sequence the same page ids the per-round calls would — the
        allocator's observable state is bit-identical. The caller
        guarantees ``free_pages`` covers the worst case (one page per
        sequence per round is never needed; the lane's cap is
        ``free_pages // len(seq_ids)`` rounds, which more than covers the
        one-page-per-``page_size``-rounds actual demand).
        """
        seq_len = self._seq_len
        pages = self._pages
        free = self._free
        page_size = self.page_size
        allocs: list[tuple[int, int, str]] = []
        for pos, sid in enumerate(seq_ids):
            cur = seq_len[sid]
            # Rounds k in [0, count) with (cur + k) % page_size == 0 open
            # a fresh page, exactly as the per-round loop would.
            for k in range((-cur) % page_size, count, page_size):
                allocs.append((k, pos, sid))
            seq_len[sid] = cur + count
        if len(allocs) > len(free):
            raise MemoryError(
                f"bulk append needs {len(allocs)} pages but only "
                f"{len(free)} free"
            )
        allocs.sort()
        for _, _, sid in allocs:
            pages[sid].append(free.pop())

    def truncate(self, seq_id: str, new_len: int) -> int:
        """Shrink a sequence to ``new_len`` tokens; returns pages released.

        The speculative-decode rollback path: rejected draft tokens give
        their slots back, and any page left wholly past ``new_len``
        returns to the free list. Freed pages re-enter the LIFO free list
        newest-first (same discipline as :meth:`free`), so a subsequent
        append reacquires the very pages just released — allocator state
        after a reject/re-append cycle is indistinguishable from never
        having speculated.
        """
        self._require(seq_id)
        if new_len < 0:
            raise ValueError(f"new_len must be nonnegative, got {new_len}")
        cur = self._seq_len[seq_id]
        if new_len > cur:
            raise ValueError(
                f"cannot truncate {seq_id!r} from {cur} to {new_len} tokens"
            )
        keep = pages_needed(new_len, self.page_size)
        pages = self._pages[seq_id]
        released = pages[keep:]
        del pages[keep:]
        self._seq_len[seq_id] = new_len
        self._free.extend(reversed(released))
        return len(released)

    def free(self, seq_id: str) -> int:
        """Release a sequence's pages; returns how many were freed."""
        self._require(seq_id)
        pages = self._pages.pop(seq_id)
        del self._seq_len[seq_id]
        self._free.extend(reversed(pages))
        return len(pages)

    def export_sequence(self, seq_id: str) -> int:
        """Release a sequence for handoff to another allocator.

        Returns the sequence length so the receiving allocator can
        :meth:`import_sequence` it. Physically identical to :meth:`free`
        (the pages are recycled locally; the bytes travel over the
        interconnect), but named so call sites distinguish "KV moved
        elsewhere" from "KV discarded".
        """
        self._require(seq_id)
        seq_len = self._seq_len[seq_id]
        self.free(seq_id)
        return seq_len

    def import_sequence(self, seq_id: str, seq_len: int) -> list[int]:
        """Admit a sequence exported from another allocator.

        Allocates ``ceil(seq_len / P)`` local pages to receive the copied
        KV history; the partially-filled last page keeps growing through
        the normal :meth:`append_token` path afterwards.
        """
        return self.allocate(seq_id, seq_len)

    # -- stats ---------------------------------------------------------
    def stats(self) -> PageAllocatorStats:
        return PageAllocatorStats(
            total_pages=self.total_pages,
            free_pages=len(self._free),
            used_pages=self.used_pages,
            num_sequences=len(self._pages),
            allocated_tokens=sum(self._seq_len.values()),
        )

    def internal_fragmentation(self) -> float:
        """Unused token slots inside owned pages, as a fraction of owned slots.

        Bounded by ``(P-1)/P`` per request — the advantage over contiguous
        preallocation the paper borrows from PagedAttention.
        """
        owned_slots = self.used_pages * self.page_size
        if owned_slots == 0:
            return 0.0
        used_slots = sum(self._seq_len.values())
        return 1.0 - used_slots / owned_slots

    def _require(self, seq_id: str) -> None:
        if seq_id not in self._pages:
            raise KeyError(f"unknown sequence {seq_id!r}")
