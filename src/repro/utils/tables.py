"""Plain-text table rendering for benchmark harness output.

The benchmark harness prints the same rows/series the paper's tables and
figures report; this module renders them as aligned ASCII tables without
any third-party dependency.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def _render_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    str_rows = [[_render_cell(c) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(f"row {i} has {len(row)} cells, expected {len(headers)}")
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[j]) for j, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)
