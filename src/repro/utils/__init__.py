"""Shared utilities: units, RNG helpers, table formatting, validation."""

from repro.utils.rng import new_rng, spawn_rngs
from repro.utils.tables import format_table
from repro.utils.units import (
    GB,
    GIB,
    KB,
    KIB,
    MB,
    MIB,
    MS,
    TB,
    US,
    format_bytes,
    format_duration,
)
from repro.utils.validation import check_nonnegative, check_positive, check_probability

__all__ = [
    "GB",
    "GIB",
    "KB",
    "KIB",
    "MB",
    "MIB",
    "MS",
    "TB",
    "US",
    "check_nonnegative",
    "check_positive",
    "check_probability",
    "format_bytes",
    "format_duration",
    "format_table",
    "new_rng",
    "spawn_rngs",
]
