"""Seeded random-number-generator helpers.

Every stochastic component in the library accepts either a seed or a
``numpy.random.Generator``. These helpers normalize that choice and derive
independent child streams so that simulations are reproducible end to end.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | np.random.Generator | np.random.SeedSequence | None"


def new_rng(seed: "int | np.random.Generator | np.random.SeedSequence | None" = None) -> np.random.Generator:
    """Return a ``Generator``; pass through if one is already supplied."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: "int | np.random.SeedSequence | None", n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent generators from one seed.

    Used when a simulation has several stochastic subsystems (arrivals,
    lengths, popularity) that must not share a stream — otherwise changing
    one workload knob perturbs the others.
    """
    if n < 0:
        raise ValueError(f"n must be nonnegative, got {n}")
    if isinstance(seed, np.random.SeedSequence):
        seq = seed
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]
