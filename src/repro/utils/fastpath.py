"""The fast-path switch shared by every optimised hot loop.

The fast-path simulation engine (docs/performance.md) is a set of
independently guarded optimisations — kernel-cost memoisation, batch-plan
reuse, steady-state decode stepping, event-loop decode coalescing — that
are all *behaviour-preserving*: under a fixed seed the fast and reference
paths produce byte-identical traces (tests/test_fastpath_differential.py
is the proof obligation).

Every optimised component takes an explicit ``fast_path`` argument whose
``None`` default resolves here: the ``REPRO_FASTPATH`` environment
variable (``0``/empty disables) wins, otherwise the fast path is ON.
Passing an explicit ``True``/``False`` always overrides the environment —
that is how the differential tests and the perf gate pin each lane.
"""

from __future__ import annotations

import os

ENV_VAR = "REPRO_FASTPATH"
COARSE_DT_ENV = "REPRO_COARSE_DT"


def fastpath_enabled(override: "bool | None" = None) -> bool:
    """Resolve a component's ``fast_path`` setting.

    ``override`` is the component's explicit argument: non-``None`` wins.
    Otherwise ``REPRO_FASTPATH`` decides (unset, ``1`` -> on; ``0`` or
    empty -> off).
    """
    if override is not None:
        return bool(override)
    env = os.environ.get(ENV_VAR)
    if env is not None:
        return env not in ("", "0")
    return True


def coarse_dt(override: "float | None" = None) -> "float | None":
    """Resolve the opt-in coarse time-step (``REPRO_COARSE_DT``).

    Returns the coarse metrics-sampling interval in simulated seconds,
    or ``None`` for exact per-step sampling (the default). Coarse mode
    is statistics-only: request evolution and registry totals stay
    exact; only metric *series* density changes (docs/performance.md).
    A non-positive value — explicit or from the environment — means off.
    """
    dt = override
    if dt is None:
        raw = os.environ.get(COARSE_DT_ENV, "").strip()
        if not raw:
            return None
        try:
            dt = float(raw)
        except ValueError as exc:
            raise ValueError(
                f"{COARSE_DT_ENV} must be a number of seconds, got {raw!r}"
            ) from exc
    return dt if dt > 0 else None
