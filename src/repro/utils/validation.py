"""Small argument-validation helpers with uniform error messages."""

from __future__ import annotations


def check_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_nonnegative(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value >= 0``."""
    if not value >= 0:
        raise ValueError(f"{name} must be nonnegative, got {value!r}")


def check_probability(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
