"""Unit constants and human-readable formatting.

All byte quantities in this codebase are plain ``int``/``float`` counts of
bytes; all durations are ``float`` seconds. These constants exist so call
sites read naturally (``25 * GB`` rather than ``25e9``).
"""

from __future__ import annotations

# Decimal (SI) byte units — used for bandwidth figures (GB/s as vendors quote).
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000

# Binary byte units — used for memory capacities.
KIB = 1024
MIB = 1024**2
GIB = 1024**3

# Time units expressed in seconds.
US = 1e-6
MS = 1e-3


def format_bytes(n: float) -> str:
    """Render a byte count with a binary-prefix unit, e.g. ``format_bytes(3 * GIB)``.

    >>> format_bytes(1024)
    '1.00 KiB'
    """
    if n < 0:
        return "-" + format_bytes(-n)
    for unit, name in ((GIB, "GiB"), (MIB, "MiB"), (KIB, "KiB")):
        if n >= unit:
            return f"{n / unit:.2f} {name}"
    return f"{n:.0f} B"


def format_duration(seconds: float) -> str:
    """Render a duration at the most natural scale.

    >>> format_duration(3.2e-05)
    '32.0 us'
    """
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= MS:
        return f"{seconds / MS:.2f} ms"
    if seconds >= US:
        return f"{seconds / US:.1f} us"
    return f"{seconds * 1e9:.1f} ns"
