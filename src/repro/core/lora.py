"""LoRA weight containers and the multi-tenant model registry.

A LoRA model (Hu et al., 2022) adds a rank-``r`` delta ``A @ B`` to each
targeted dense projection of the backbone. Following the paper (§7:
"LoRA is applied to all dense projections"), every projection in the
transformer layer — q, k, v, o, gate, up, down — carries its own
``(A, B)`` pair per layer.

:class:`LoraRegistry` is the tenant-facing catalogue: it owns the weights
for every registered LoRA model, reports their byte sizes (what the
on-demand loader copies over PCIe), and stacks per-model weights into the
``(num_models, h_in, h_out)`` arrays SGMV consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import new_rng

#: Projection names LoRA attaches to, in layer order.
TARGET_PROJECTIONS = ("q", "k", "v", "o", "gate", "up", "down")


@dataclass(frozen=True)
class LoraLayerWeights:
    """The ``(A, B)`` pair for one projection in one layer.

    ``wa`` has shape ``(h_in, rank)`` and ``wb`` ``(rank, h_out)``, so the
    addon is ``x @ wa @ wb`` (row-vector convention, as in the paper's
    ``y += x A B``).
    """

    wa: np.ndarray
    wb: np.ndarray

    def __post_init__(self) -> None:
        if self.wa.ndim != 2 or self.wb.ndim != 2:
            raise ValueError("wa and wb must be 2-D")
        if self.wa.shape[1] != self.wb.shape[0]:
            raise ValueError(
                f"rank mismatch: wa is {self.wa.shape}, wb is {self.wb.shape}"
            )

    @property
    def rank(self) -> int:
        return self.wa.shape[1]

    @property
    def h_in(self) -> int:
        return self.wa.shape[0]

    @property
    def h_out(self) -> int:
        return self.wb.shape[1]

    @property
    def nbytes(self) -> int:
        """Size when stored fp16 (the paper serves fp16 weights)."""
        return 2 * (self.wa.size + self.wb.size)

    def delta(self) -> np.ndarray:
        """The dense weight delta ``A @ B`` (used by merged-weight tests)."""
        return self.wa @ self.wb

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Compute the addon ``x @ A @ B`` without materializing the delta."""
        return (x @ self.wa) @ self.wb


@dataclass(frozen=True)
class LoraModelWeights:
    """All LoRA weights for one fine-tuned model: ``layers[layer][proj]``."""

    model_id: str
    layers: tuple[dict[str, LoraLayerWeights], ...]

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError("LoRA model must cover at least one layer")
        for i, layer in enumerate(self.layers):
            missing = [p for p in TARGET_PROJECTIONS if p not in layer]
            extra = [p for p in layer if p not in TARGET_PROJECTIONS]
            if missing or extra:
                raise ValueError(
                    f"layer {i}: missing projections {missing}, unknown {extra}"
                )

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def rank(self) -> int:
        return self.layers[0]["q"].rank

    @property
    def nbytes(self) -> int:
        """Total fp16 bytes — what one on-demand load transfers (§5.2)."""
        return sum(w.nbytes for layer in self.layers for w in layer.values())

    def layer_nbytes(self, layer: int) -> int:
        """Bytes of one layer's LoRA weights (the paper's ~50 us PCIe unit)."""
        return sum(w.nbytes for w in self.layers[layer].values())


def random_lora_weights(
    model_id: str,
    num_layers: int,
    proj_dims: "dict[str, tuple[int, int]]",
    rank: int,
    seed: "int | np.random.Generator | None" = None,
    dtype: np.dtype = np.float32,
    scale: float = 0.01,
) -> LoraModelWeights:
    """Create a LoRA model with random weights (the paper does the same, §7).

    ``proj_dims[p] = (h_in, h_out)`` gives each projection's backbone shape.
    """
    if rank <= 0:
        raise ValueError(f"rank must be positive, got {rank}")
    if num_layers <= 0:
        raise ValueError(f"num_layers must be positive, got {num_layers}")
    rng = new_rng(seed)
    layers = []
    for _ in range(num_layers):
        layer: dict[str, LoraLayerWeights] = {}
        for proj in TARGET_PROJECTIONS:
            if proj not in proj_dims:
                raise ValueError(f"proj_dims missing projection {proj!r}")
            h_in, h_out = proj_dims[proj]
            wa = rng.standard_normal((h_in, rank)).astype(dtype) * scale
            wb = rng.standard_normal((rank, h_out)).astype(dtype) * scale
            layer[proj] = LoraLayerWeights(wa=wa, wb=wb)
        layers.append(layer)
    return LoraModelWeights(model_id=model_id, layers=tuple(layers))


@dataclass
class LoraRegistry:
    """Catalogue of every LoRA model known to the serving system."""

    _models: dict[str, LoraModelWeights] = field(default_factory=dict)

    def register(self, weights: LoraModelWeights) -> None:
        if weights.model_id in self._models:
            raise ValueError(f"LoRA model {weights.model_id!r} already registered")
        self._models[weights.model_id] = weights

    def get(self, model_id: str) -> LoraModelWeights:
        try:
            return self._models[model_id]
        except KeyError:
            raise KeyError(f"unknown LoRA model {model_id!r}") from None

    def __contains__(self, model_id: str) -> bool:
        return model_id in self._models

    def __len__(self) -> int:
        return len(self._models)

    @property
    def model_ids(self) -> list[str]:
        return list(self._models)

    def nbytes(self, model_id: str) -> int:
        return self.get(model_id).nbytes

    def stack(
        self, model_ids: "list[str]", layer: int, proj: str
    ) -> tuple[np.ndarray, np.ndarray]:
        """Stack ``(A, B)`` for ``model_ids`` into SGMV weight arrays.

        Returns ``(wa_stack, wb_stack)`` with shapes
        ``(n, h_in, rank)`` and ``(n, rank, h_out)``. All models must share
        the same rank and projection dims (same backbone, as in Punica).
        """
        if not model_ids:
            raise ValueError("model_ids must be non-empty")
        pairs = [self.get(mid).layers[layer][proj] for mid in model_ids]
        ranks = {p.rank for p in pairs}
        if len(ranks) != 1:
            raise ValueError(
                f"mixed ranks in one SGMV stack: {sorted(ranks)} "
                f"(use stack_padded to serve heterogeneous ranks)"
            )
        wa = np.stack([p.wa for p in pairs])
        wb = np.stack([p.wb for p in pairs])
        return wa, wb

    def stack_padded(
        self, model_ids: "list[str]", layer: int, proj: str
    ) -> tuple[np.ndarray, np.ndarray]:
        """Stack ``(A, B)`` pairs of *heterogeneous* ranks, zero-padded.

        Each model's ``A`` gains zero columns and ``B`` zero rows up to the
        batch's maximum rank, which leaves ``A @ B`` bit-identical — the
        standard way to serve mixed-rank tenants through one SGMV launch
        (the paper evaluates a single rank; its follow-ons pad like this).
        The cost is SGMV executing at the max rank for every segment.
        """
        if not model_ids:
            raise ValueError("model_ids must be non-empty")
        pairs = [self.get(mid).layers[layer][proj] for mid in model_ids]
        max_rank = max(p.rank for p in pairs)
        h_in = pairs[0].h_in
        h_out = pairs[0].h_out
        for p in pairs:
            if p.h_in != h_in or p.h_out != h_out:
                raise ValueError("all models in one stack must share projection dims")
        wa = np.zeros((len(pairs), h_in, max_rank), dtype=pairs[0].wa.dtype)
        wb = np.zeros((len(pairs), max_rank, h_out), dtype=pairs[0].wb.dtype)
        for i, p in enumerate(pairs):
            wa[i, :, : p.rank] = p.wa
            wb[i, : p.rank, :] = p.wb
        return wa, wb
