"""Punica's primary contribution: SGMV and batched multi-LoRA execution.

This package contains the *numerically real* implementation of everything
§4 of the paper defines: segment indices, the SGMV shrink/expand operators
(NumPy, with pure-Python references used as gold standards in tests), LoRA
weight containers, the ``BatchLen`` batch-assembly logic from §6, and the
three LoRA-operator implementations compared in Fig 8 (Loop, Gather-BMM,
SGMV).
"""

from repro.core.batch import BatchLen, BatchPlan, plan_batch
from repro.core.lora import LoraLayerWeights, LoraModelWeights, LoraRegistry, TARGET_PROJECTIONS
from repro.core.ops import add_lora_gather_bmm, add_lora_loop, add_lora_sgmv
from repro.core.segments import (
    group_requests_by_lora,
    segment_sizes,
    segments_from_lora_ids,
    segments_from_sizes,
    validate_segments,
)
from repro.core.sgmv import (
    sgmv_expand,
    sgmv_expand_reference,
    sgmv_shrink,
    sgmv_shrink_reference,
)

__all__ = [
    "BatchLen",
    "BatchPlan",
    "LoraLayerWeights",
    "LoraModelWeights",
    "LoraRegistry",
    "TARGET_PROJECTIONS",
    "add_lora_gather_bmm",
    "add_lora_loop",
    "add_lora_sgmv",
    "group_requests_by_lora",
    "plan_batch",
    "segment_sizes",
    "segments_from_lora_ids",
    "segments_from_sizes",
    "sgmv_expand",
    "sgmv_expand_reference",
    "sgmv_shrink",
    "sgmv_shrink_reference",
    "validate_segments",
]
