"""The three batched LoRA-operator implementations compared in Fig 8.

All three compute the identical result

    y[seg[i]:seg[i+1]] += x[seg[i]:seg[i+1]] @ wa[i] @ wb[i]

but with the execution strategies of the paper's microbenchmark:

* :func:`add_lora_loop` — a Python/PyTorch-style for-loop over LoRA models,
  two small matmuls per model (the paper's "Loop" baseline).
* :func:`add_lora_gather_bmm` — materialize a per-*token* stack of weight
  matrices (``Gather``), then a single batched matmul (``BMM``); this is
  the ``torch.bmm`` baseline and pays ``s_n x h_in x h_out`` extra IO for
  the stacked copies.
* :func:`add_lora_sgmv` — two SGMV launches (shrink then expand), the
  paper's kernel.

Numeric equality of the three is property-tested; the *latency* difference
is modelled by :class:`repro.hw.kernels.KernelCostModel`.
"""

from __future__ import annotations

import numpy as np

from repro.core.segments import validate_segments
from repro.core.sgmv import _segment_plan, sgmv_expand, sgmv_shrink


def _check(y: np.ndarray, x: np.ndarray, wa: np.ndarray, wb: np.ndarray, seg: np.ndarray):
    seg = validate_segments(seg, batch_size=x.shape[0], allow_empty=True)
    n = seg.size - 1
    if wa.shape[0] != n or wb.shape[0] != n:
        raise ValueError(
            f"weight stacks cover {wa.shape[0]}/{wb.shape[0]} models, segments define {n}"
        )
    if wa.shape[2] != wb.shape[1]:
        raise ValueError(f"rank mismatch: wa {wa.shape} vs wb {wb.shape}")
    if wa.shape[1] != x.shape[1]:
        raise ValueError(f"wa input dim {wa.shape[1]} != x feature dim {x.shape[1]}")
    if y.shape != (x.shape[0], wb.shape[2]):
        raise ValueError(f"y shape {y.shape} incompatible with {(x.shape[0], wb.shape[2])}")
    return seg


def add_lora_loop(
    y: np.ndarray, x: np.ndarray, wa: np.ndarray, wb: np.ndarray, seg: np.ndarray
) -> np.ndarray:
    """For-loop baseline: one ``(x @ A) @ B`` pair per LoRA model."""
    seg = _check(y, x, wa, wb, seg)
    for i in range(seg.size - 1):
        lo, hi = int(seg[i]), int(seg[i + 1])
        y[lo:hi] += (x[lo:hi] @ wa[i]) @ wb[i]
    return y


def gather_weights(weights: np.ndarray, seg: np.ndarray) -> np.ndarray:
    """The Gather step: repeat each model's weight once per token.

    Returns shape ``(s_n, h_in, h_out)`` — the stacked copy ``torch.bmm``
    consumes, and the source of the baseline's extra memory traffic.
    """
    seg = validate_segments(seg, allow_empty=True)
    _, sizes, _ = _segment_plan(seg)
    return np.repeat(weights, sizes, axis=0)


def add_lora_gather_bmm(
    y: np.ndarray, x: np.ndarray, wa: np.ndarray, wb: np.ndarray, seg: np.ndarray
) -> np.ndarray:
    """Gather-BMM baseline: stack weights per token, then batched matmul."""
    seg = _check(y, x, wa, wb, seg)
    wa_stacked = gather_weights(wa, seg)  # (s_n, h_in, r)
    v = np.einsum("si,sir->sr", x, wa_stacked, optimize=True)
    wb_stacked = gather_weights(wb, seg)  # (s_n, r, h_out)
    y += np.einsum("sr,sro->so", v, wb_stacked, optimize=True)
    return y


def add_lora_sgmv(
    y: np.ndarray, x: np.ndarray, wa: np.ndarray, wb: np.ndarray, seg: np.ndarray
) -> np.ndarray:
    """Punica's operator: SGMV-shrink into a rank buffer, SGMV-expand out."""
    seg = _check(y, x, wa, wb, seg)
    rank = wa.shape[2]
    v = np.zeros((x.shape[0], rank), dtype=y.dtype)
    sgmv_shrink(v, x, wa, seg)
    sgmv_expand(y, v, wb, seg)
    return y
