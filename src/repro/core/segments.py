"""Segment-index arithmetic for SGMV.

The paper (§4) encodes a batch of ``s_n`` inputs targeting ``n`` distinct
LoRA models as a vector of cumulative indices ``s`` with ``s_0 = 0`` and
``s_i`` the last input index (1-based) of the i-th model. We store the
same thing as a NumPy int array ``seg`` of length ``n + 1`` with
``seg[0] == 0`` and ``seg[-1] == s_n``; rows ``seg[i-1]:seg[i]`` of the
input all use LoRA model ``i-1``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def segments_from_sizes(sizes: Sequence[int]) -> np.ndarray:
    """Build cumulative segment indices from per-model batch sizes.

    >>> segments_from_sizes([2, 1, 3]).tolist()
    [0, 2, 3, 6]
    """
    arr = np.asarray(sizes, dtype=np.int64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError(f"sizes must be a non-empty 1-D sequence, got shape {arr.shape}")
    if (arr <= 0).any():
        raise ValueError(f"all segment sizes must be positive, got {arr.tolist()}")
    seg = np.zeros(arr.size + 1, dtype=np.int64)
    np.cumsum(arr, out=seg[1:])
    return seg


def segment_sizes(seg: np.ndarray) -> np.ndarray:
    """Inverse of :func:`segments_from_sizes`."""
    seg = validate_segments(seg)
    return np.diff(seg)


def validate_segments(
    seg: np.ndarray, batch_size: int | None = None, allow_empty: bool = False
) -> np.ndarray:
    """Check that ``seg`` is a valid cumulative segment vector; return it as int64.

    With ``allow_empty`` a segment may span zero rows (the kernel simply
    does no work for it — Punica's SGMV tolerates models with no requests
    in flight); by default segments must be strictly increasing.

    Raises ``ValueError`` with a precise message otherwise.
    """
    seg = np.asarray(seg, dtype=np.int64)
    if seg.ndim != 1 or seg.size < 2:
        raise ValueError(f"segments must be 1-D with at least 2 entries, got shape {seg.shape}")
    if seg[0] != 0:
        raise ValueError(f"segments must start at 0, got {seg[0]}")
    diffs = np.diff(seg)
    if allow_empty:
        if (diffs < 0).any():
            raise ValueError(f"segments must be nondecreasing, got {seg.tolist()}")
    elif (diffs <= 0).any():
        raise ValueError(f"segments must be strictly increasing, got {seg.tolist()}")
    if batch_size is not None and seg[-1] != batch_size:
        raise ValueError(f"segments cover {seg[-1]} rows but batch has {batch_size}")
    return seg


def segments_from_lora_ids(lora_ids: Sequence[object]) -> tuple[np.ndarray, list[object]]:
    """Group an *already ordered* batch by consecutive runs of equal LoRA id.

    Returns ``(seg, run_ids)`` where ``run_ids[i]`` is the LoRA id of
    segment ``i``. Ids that appear in non-adjacent runs produce separate
    segments — callers that want maximal grouping should order the batch
    with :func:`group_requests_by_lora` first (Punica does, §6).

    >>> seg, ids = segments_from_lora_ids(["a", "a", "b", "a"])
    >>> seg.tolist(), ids
    ([0, 2, 3, 4], ['a', 'b', 'a'])
    """
    ids = list(lora_ids)
    if not ids:
        raise ValueError("lora_ids must be non-empty")
    sizes: list[int] = []
    run_ids: list[object] = []
    for lora_id in ids:
        if run_ids and run_ids[-1] == lora_id:
            sizes[-1] += 1
        else:
            run_ids.append(lora_id)
            sizes.append(1)
    return segments_from_sizes(sizes), run_ids


def group_requests_by_lora(lora_ids: Sequence[object]) -> np.ndarray:
    """Stable permutation placing requests with equal LoRA id consecutively.

    Punica reorders each batch so same-model requests form one segment
    (§6: "we further organize the batch input order such that requests that
    share the same LoRA model are consecutive"). The sort is stable and
    keys on *first occurrence order*, so the permutation is deterministic
    and FCFS-respecting within each model.

    >>> group_requests_by_lora(["b", "a", "b", "a"]).tolist()
    [0, 2, 1, 3]
    """
    ids = list(lora_ids)
    if not ids:
        return np.zeros(0, dtype=np.int64)
    first_seen: dict[object, int] = {}
    for lora_id in ids:
        if lora_id not in first_seen:
            first_seen[lora_id] = len(first_seen)
    keys = np.asarray([first_seen[lora_id] for lora_id in ids], dtype=np.int64)
    return np.argsort(keys, kind="stable").astype(np.int64)
