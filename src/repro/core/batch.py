"""Batch assembly: mixing prefill and decode in one model invocation (§5, §6).

Punica runs one prefill request and a batch of decode requests in a single
model invocation. All tokens are concatenated along the sequence dimension:
prefill tokens first, then one token per decode request. A ``BatchLen``
struct records where prefill requests start and how many decode tokens
follow, so the attention layer can route leading tokens to the BatchPrefill
kernel and trailing tokens to the BatchDecode kernel. The batch is further
ordered so that requests sharing a LoRA model are consecutive — including
letting the *tail* prefill and the *head* decode group share a model — and
the resulting token-level SGMV segment indices are computed once per
invocation (the paper notes this avoids recomputing them ``7L`` times).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.core.segments import segments_from_lora_ids


@dataclass(frozen=True)
class BatchEntry:
    """One request's contribution to a batched model invocation."""

    request_id: str
    lora_id: str
    num_tokens: int
    is_prefill: bool

    def __post_init__(self) -> None:
        if self.num_tokens <= 0:
            raise ValueError(f"num_tokens must be positive, got {self.num_tokens}")
        if not self.is_prefill and self.num_tokens != 1:
            raise ValueError("decode entries contribute exactly one token")


@dataclass(frozen=True)
class BatchLen:
    """The paper's BatchLen struct (§6).

    ``prefill_starts[i]`` is the token index where the i-th prefill request
    begins; ``num_prefill_tokens`` is the total length of the prefill
    section; ``num_decode`` is the count of decode requests (one token
    each) that follow it.
    """

    prefill_starts: tuple[int, ...]
    num_prefill_tokens: int
    num_decode: int

    def __post_init__(self) -> None:
        if self.num_prefill_tokens < 0 or self.num_decode < 0:
            raise ValueError("token counts must be nonnegative")
        if self.prefill_starts:
            if self.prefill_starts[0] != 0:
                raise ValueError("first prefill must start at token 0")
            diffs = np.diff(np.asarray(self.prefill_starts + (self.num_prefill_tokens,)))
            if (diffs <= 0).any():
                raise ValueError("prefill starts must be strictly increasing")
        elif self.num_prefill_tokens != 0:
            raise ValueError("no prefill requests but num_prefill_tokens != 0")

    @property
    def num_prefill(self) -> int:
        return len(self.prefill_starts)

    @property
    def total_tokens(self) -> int:
        return self.num_prefill_tokens + self.num_decode

    def prefill_lengths(self) -> list[int]:
        """Per-prefill-request sequence lengths."""
        bounds = list(self.prefill_starts) + [self.num_prefill_tokens]
        return [bounds[i + 1] - bounds[i] for i in range(len(self.prefill_starts))]


@dataclass(frozen=True)
class BatchPlan:
    """A fully planned model invocation.

    ``entries`` is the execution order (prefills then decodes, same-LoRA
    consecutive); ``seg``/``segment_lora_ids`` are the token-level SGMV
    segment indices shared by all layers of the invocation.
    """

    entries: tuple[BatchEntry, ...]
    batchlen: BatchLen
    seg: np.ndarray
    segment_lora_ids: tuple[str, ...]

    @property
    def batch_size(self) -> int:
        """Number of *requests* (the scheduler's batch-size metric)."""
        return len(self.entries)

    @property
    def total_tokens(self) -> int:
        return self.batchlen.total_tokens

    @property
    def segment_sizes(self) -> np.ndarray:
        return np.diff(self.seg)

    @property
    def num_lora_segments(self) -> int:
        return len(self.segment_lora_ids)

    def decode_entries(self) -> list[BatchEntry]:
        return [e for e in self.entries if not e.is_prefill]

    def prefill_entries(self) -> list[BatchEntry]:
        return [e for e in self.entries if e.is_prefill]


def plan_batch(entries: Sequence[BatchEntry]) -> BatchPlan:
    """Order a batch and derive its ``BatchLen`` and SGMV segments.

    Ordering rules from §6:

    1. Prefill requests first (their relative order preserved), decode
       requests after.
    2. Decode requests are stably grouped by LoRA model.
    3. If any decode group matches the *last* prefill's LoRA model, that
       group is placed first so the prefill tail and decode head merge into
       one SGMV segment.
    """
    if not entries:
        raise ValueError("cannot plan an empty batch")
    prefills = [e for e in entries if e.is_prefill]
    decodes = [e for e in entries if not e.is_prefill]

    # Stable grouping of decodes by first-seen LoRA id.
    order: dict[str, list[BatchEntry]] = {}
    for e in decodes:
        order.setdefault(e.lora_id, []).append(e)
    group_ids = list(order)
    if prefills:
        tail_lora = prefills[-1].lora_id
        if tail_lora in order:
            group_ids.remove(tail_lora)
            group_ids.insert(0, tail_lora)
    ordered_decodes = [e for gid in group_ids for e in order[gid]]
    ordered = list(prefills) + ordered_decodes

    # BatchLen over the token-level layout.
    starts: list[int] = []
    cursor = 0
    for e in prefills:
        starts.append(cursor)
        cursor += e.num_tokens
    batchlen = BatchLen(
        prefill_starts=tuple(starts),
        num_prefill_tokens=cursor,
        num_decode=len(ordered_decodes),
    )

    # Token-level LoRA ids -> SGMV segments (adjacent equal ids merge).
    token_lora_ids: list[str] = []
    for e in ordered:
        token_lora_ids.extend([e.lora_id] * e.num_tokens)
    seg, run_ids = segments_from_lora_ids(token_lora_ids)

    return BatchPlan(
        entries=tuple(ordered),
        batchlen=batchlen,
        seg=seg,
        segment_lora_ids=tuple(str(r) for r in run_ids),
    )
