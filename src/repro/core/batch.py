"""Batch assembly: mixing prefill and decode in one model invocation (§5, §6).

Punica runs one prefill request and a batch of decode requests in a single
model invocation. All tokens are concatenated along the sequence dimension:
prefill tokens first, then one token per decode request. A ``BatchLen``
struct records where prefill requests start and how many decode tokens
follow, so the attention layer can route leading tokens to the BatchPrefill
kernel and trailing tokens to the BatchDecode kernel. The batch is further
ordered so that requests sharing a LoRA model are consecutive — including
letting the *tail* prefill and the *head* decode group share a model — and
the resulting token-level SGMV segment indices are computed once per
invocation (the paper notes this avoids recomputing them ``7L`` times).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from repro.core.segments import segments_from_lora_ids


@dataclass(frozen=True)
class BatchEntry:
    """One request's contribution to a batched model invocation."""

    request_id: str
    lora_id: str
    num_tokens: int
    is_prefill: bool

    def __post_init__(self) -> None:
        if self.num_tokens <= 0:
            raise ValueError(f"num_tokens must be positive, got {self.num_tokens}")
        if not self.is_prefill and self.num_tokens != 1:
            raise ValueError("decode entries contribute exactly one token")


@dataclass(frozen=True)
class BatchLen:
    """The paper's BatchLen struct (§6).

    ``prefill_starts[i]`` is the token index where the i-th prefill request
    begins; ``num_prefill_tokens`` is the total length of the prefill
    section; ``num_decode`` is the count of decode requests (one token
    each) that follow it.
    """

    prefill_starts: tuple[int, ...]
    num_prefill_tokens: int
    num_decode: int

    def __post_init__(self) -> None:
        if self.num_prefill_tokens < 0 or self.num_decode < 0:
            raise ValueError("token counts must be nonnegative")
        if self.prefill_starts:
            if self.prefill_starts[0] != 0:
                raise ValueError("first prefill must start at token 0")
            diffs = np.diff(np.asarray(self.prefill_starts + (self.num_prefill_tokens,)))
            if (diffs <= 0).any():
                raise ValueError("prefill starts must be strictly increasing")
        elif self.num_prefill_tokens != 0:
            raise ValueError("no prefill requests but num_prefill_tokens != 0")

    @property
    def num_prefill(self) -> int:
        return len(self.prefill_starts)

    @property
    def total_tokens(self) -> int:
        return self.num_prefill_tokens + self.num_decode

    def prefill_lengths(self) -> list[int]:
        """Per-prefill-request sequence lengths."""
        bounds = list(self.prefill_starts) + [self.num_prefill_tokens]
        return [bounds[i + 1] - bounds[i] for i in range(len(self.prefill_starts))]


@dataclass(frozen=True)
class BatchPlan:
    """A fully planned model invocation.

    ``entries`` is the execution order (prefills then decodes, same-LoRA
    consecutive); ``seg``/``segment_lora_ids`` are the token-level SGMV
    segment indices shared by all layers of the invocation.

    Plans are immutable once built, so the fast path reuses one plan
    across every steady-state decode step of an unchanged batch;
    ``derived`` is scratch space where consumers (the backends) stash
    per-plan precomputations (paper §6: segment indices are computed once
    per invocation, not ``7L`` times — here they also survive across
    invocations that share the plan).
    """

    entries: tuple[BatchEntry, ...]
    batchlen: BatchLen
    seg: np.ndarray
    segment_lora_ids: tuple[str, ...]
    derived: dict = field(default_factory=dict, compare=False)

    @property
    def batch_size(self) -> int:
        """Number of *requests* (the scheduler's batch-size metric)."""
        return len(self.entries)

    @property
    def total_tokens(self) -> int:
        return self.batchlen.total_tokens

    @property
    def segment_sizes(self) -> np.ndarray:
        sizes = self.derived.get("segment_sizes")
        if sizes is None:
            sizes = self.derived["segment_sizes"] = np.diff(self.seg)
        return sizes

    @property
    def num_lora_segments(self) -> int:
        return len(self.segment_lora_ids)

    def decode_entries(self) -> list[BatchEntry]:
        return [e for e in self.entries if not e.is_prefill]

    def prefill_entries(self) -> list[BatchEntry]:
        return [e for e in self.entries if e.is_prefill]


def plan_signature(entries: Sequence[BatchEntry]) -> tuple:
    """Hashable identity of a batch: ``(request, lora, tokens, prefill?)``
    per entry, in submission order.

    Two batches with equal signatures produce equal plans (``plan_batch``
    is deterministic), so the signature is the cache key the fast path
    uses to skip re-planning steady-state decode invocations.
    """
    return tuple(
        (e.request_id, e.lora_id, e.num_tokens, e.is_prefill) for e in entries
    )


class PlanCache:
    """Bounded memo of :func:`plan_batch` keyed by :func:`plan_signature`.

    One instance per engine: steady-state decode re-submits the same
    signature every step, and alternating compositions (e.g. a batch
    oscillating as prefills join and leave) still hit. The cache is
    cleared wholesale when full — plans are cheap to rebuild and the
    limit exists only to bound memory on adversarial workloads.
    """

    def __init__(self, max_entries: int = 512):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._plans: "dict[tuple, BatchPlan]" = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._plans)

    def plan(self, entries: Sequence[BatchEntry]) -> BatchPlan:
        key = plan_signature(entries)
        cached = self._plans.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        plan = plan_batch(entries)
        if len(self._plans) >= self.max_entries:
            self._plans.clear()
        self._plans[key] = plan
        return plan

    def get(self, key: tuple) -> "BatchPlan | None":
        """Probe with a caller-built :func:`plan_signature` key.

        Lets hot paths that can assemble the signature without
        constructing :class:`BatchEntry` objects (the steady decode lane)
        skip entry construction entirely on a hit. Pair with :meth:`put`.
        """
        cached = self._plans.get(key)
        if cached is not None:
            self.hits += 1
        return cached

    def put(self, key: tuple, plan: BatchPlan) -> None:
        """Record a miss computed by the caller (see :meth:`get`)."""
        self.misses += 1
        if len(self._plans) >= self.max_entries:
            self._plans.clear()
        self._plans[key] = plan


def plan_decode_batch(entries: Sequence[BatchEntry]) -> BatchPlan:
    """:func:`plan_batch` specialized to an all-decode batch.

    Field-for-field equal to ``plan_batch(entries)`` when every entry is
    a decode (same stable LoRA grouping, same segment boundaries): with
    no prefills the group order is simply first-seen submission order,
    each group is one token-level segment (adjacent groups have distinct
    LoRA ids and decodes contribute one token each), so the per-token
    segment scan collapses to a cumulative sum of group sizes. The
    steady decode lane re-plans on every batch-membership change, where
    this is the dominant cost.
    """
    if not entries:
        raise ValueError("cannot plan an empty batch")
    order: dict[str, list[BatchEntry]] = {}
    for e in entries:
        if e.is_prefill:
            raise ValueError("plan_decode_batch requires all-decode entries")
        group = order.get(e.lora_id)
        if group is None:
            order[e.lora_id] = [e]
        else:
            group.append(e)
    ordered: list[BatchEntry] = []
    sizes: list[int] = []
    for group in order.values():
        ordered.extend(group)
        sizes.append(len(group))
    seg = np.zeros(len(sizes) + 1, dtype=np.int64)
    np.cumsum(np.asarray(sizes, dtype=np.int64), out=seg[1:])
    return BatchPlan(
        entries=tuple(ordered),
        batchlen=BatchLen(
            prefill_starts=(), num_prefill_tokens=0, num_decode=len(ordered)
        ),
        seg=seg,
        segment_lora_ids=tuple(order),
    )


def plan_batch(entries: Sequence[BatchEntry]) -> BatchPlan:
    """Order a batch and derive its ``BatchLen`` and SGMV segments.

    Ordering rules from §6:

    1. Prefill requests first (their relative order preserved), decode
       requests after.
    2. Decode requests are stably grouped by LoRA model.
    3. If any decode group matches the *last* prefill's LoRA model, that
       group is placed first so the prefill tail and decode head merge into
       one SGMV segment.
    """
    if not entries:
        raise ValueError("cannot plan an empty batch")
    prefills = [e for e in entries if e.is_prefill]
    decodes = [e for e in entries if not e.is_prefill]

    # Stable grouping of decodes by first-seen LoRA id.
    order: dict[str, list[BatchEntry]] = {}
    for e in decodes:
        order.setdefault(e.lora_id, []).append(e)
    group_ids = list(order)
    if prefills:
        tail_lora = prefills[-1].lora_id
        if tail_lora in order:
            group_ids.remove(tail_lora)
            group_ids.insert(0, tail_lora)
    ordered_decodes = [e for gid in group_ids for e in order[gid]]
    ordered = list(prefills) + ordered_decodes

    # BatchLen over the token-level layout.
    starts: list[int] = []
    cursor = 0
    for e in prefills:
        starts.append(cursor)
        cursor += e.num_tokens
    batchlen = BatchLen(
        prefill_starts=tuple(starts),
        num_prefill_tokens=cursor,
        num_decode=len(ordered_decodes),
    )

    # Token-level LoRA ids -> SGMV segments (adjacent equal ids merge).
    token_lora_ids: list[str] = []
    for e in ordered:
        token_lora_ids.extend([e.lora_id] * e.num_tokens)
    seg, run_ids = segments_from_lora_ids(token_lora_ids)

    return BatchPlan(
        entries=tuple(ordered),
        batchlen=batchlen,
        seg=seg,
        segment_lora_ids=tuple(str(r) for r in run_ids),
    )
