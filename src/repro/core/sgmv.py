"""Segmented Gather Matrix-Vector multiplication (SGMV), NumPy edition.

The paper's CUDA kernel computes, for a batch partitioned into segments
(one per distinct LoRA model),

    y[seg[i]:seg[i+1]] += x[seg[i]:seg[i+1]] @ W[i]

in a single launch. Here the *semantics* are reproduced exactly in NumPy.
Two entry points mirror the kernel's two flavours:

* :func:`sgmv_shrink` — ``v += x @ A`` with ``A: (h, r)``, high-dim to rank
  (the paper's Split-K schedule).
* :func:`sgmv_expand` — ``y += v @ B`` with ``B: (r, h)``, rank to high-dim
  (the paper's output-column-split schedule).

Both are the same math; keeping both names preserves the paper's API (the
real Punica exposes ``sgmv_shrink``/``sgmv_expand`` the same way) and lets
the cost model charge each launch separately.

``*_reference`` variants are deliberately naive per-row loops, kept as the
gold standard the optimized paths are tested against.
"""

from __future__ import annotations

import numpy as np

from repro.core.segments import validate_segments


_SEG_PLAN_LIMIT = 4096
_SEG_PLAN_CACHE: "dict[bytes, tuple[np.ndarray, np.ndarray, int]]" = {}


def _segment_plan(seg: np.ndarray) -> "tuple[np.ndarray, np.ndarray, int]":
    """Per-segment-vector precomputation, cached across launches.

    Returns ``(seg, sizes, uniform)`` where ``uniform`` is the common
    segment size when all segments are equal and positive (the batched
    einsum schedule), else 0. The engine reuses one segment vector across
    every decode step of an unchanged batch (paper §6 computes segment
    indices once per invocation; the steady-state fast path also reuses
    them *across* invocations), so keying on the raw bytes turns the
    per-launch ``np.diff`` + uniformity scan into a dict lookup.
    """
    key = seg.tobytes()
    plan = _SEG_PLAN_CACHE.get(key)
    if plan is not None:
        return plan
    sizes = np.diff(seg)
    uniform = (
        int(sizes[0]) if sizes.size and sizes[0] > 0 and (sizes == sizes[0]).all()
        else 0
    )
    if len(_SEG_PLAN_CACHE) >= _SEG_PLAN_LIMIT:
        _SEG_PLAN_CACHE.clear()
    plan = (seg, sizes, uniform)
    _SEG_PLAN_CACHE[key] = plan
    return plan


def _check_inputs(x: np.ndarray, weights: np.ndarray, seg: np.ndarray) -> np.ndarray:
    seg = validate_segments(seg, batch_size=x.shape[0], allow_empty=True)
    if x.ndim != 2:
        raise ValueError(f"x must be 2-D (batch, features), got shape {x.shape}")
    if weights.ndim != 3:
        raise ValueError(f"weights must be 3-D (num_models, in, out), got shape {weights.shape}")
    num_segments = seg.size - 1
    if weights.shape[0] != num_segments:
        raise ValueError(
            f"weights has {weights.shape[0]} models but segments define {num_segments}"
        )
    if weights.shape[1] != x.shape[1]:
        raise ValueError(
            f"weight input dim {weights.shape[1]} != feature dim {x.shape[1]}"
        )
    return seg


def _sgmv_inplace(y: np.ndarray, x: np.ndarray, weights: np.ndarray, seg: np.ndarray) -> None:
    """Core segmented matmul-accumulate. ``weights[i]`` is ``(h_in, h_out)``."""
    if y.shape != (x.shape[0], weights.shape[2]):
        raise ValueError(
            f"output shape {y.shape} incompatible with batch {x.shape[0]} "
            f"and out dim {weights.shape[2]}"
        )
    seg, sizes, uniform = _segment_plan(seg)
    if uniform:
        # Uniform segments: one batched einsum instead of a Python loop.
        b = uniform
        n = sizes.size
        xx = x.reshape(n, b, x.shape[1])
        y += np.einsum("nbi,nio->nbo", xx, weights, optimize=True).reshape(y.shape)
        return
    for i in range(seg.size - 1):
        lo, hi = int(seg[i]), int(seg[i + 1])
        if lo == hi:
            continue
        y[lo:hi] += x[lo:hi] @ weights[i]


def sgmv_shrink(
    v: np.ndarray, x: np.ndarray, wa: np.ndarray, seg: np.ndarray
) -> np.ndarray:
    """``v[s_i:s_{i+1}] += x[s_i:s_{i+1}] @ wa[i]`` — high-dim to rank.

    Parameters
    ----------
    v:
        Accumulator, shape ``(batch, rank)``. Mutated in place and returned.
    x:
        Input features, shape ``(batch, h_in)``.
    wa:
        Stacked LoRA A matrices, shape ``(num_models, h_in, rank)``.
    seg:
        Cumulative segment indices, length ``num_models + 1``.
    """
    seg = _check_inputs(x, wa, seg)
    _sgmv_inplace(v, x, wa, seg)
    return v


def sgmv_expand(
    y: np.ndarray, v: np.ndarray, wb: np.ndarray, seg: np.ndarray
) -> np.ndarray:
    """``y[s_i:s_{i+1}] += v[s_i:s_{i+1}] @ wb[i]`` — rank to high-dim.

    Parameters mirror :func:`sgmv_shrink` with ``wb`` shaped
    ``(num_models, rank, h_out)``.
    """
    seg = _check_inputs(v, wb, seg)
    _sgmv_inplace(y, v, wb, seg)
    return y


def sgmv_shrink_reference(
    v: np.ndarray, x: np.ndarray, wa: np.ndarray, seg: np.ndarray
) -> np.ndarray:
    """Gold-standard per-row implementation of :func:`sgmv_shrink`."""
    seg = _check_inputs(x, wa, seg)
    for i in range(seg.size - 1):
        for row in range(int(seg[i]), int(seg[i + 1])):
            v[row] = v[row] + x[row] @ wa[i]
    return v


def sgmv_expand_reference(
    y: np.ndarray, v: np.ndarray, wb: np.ndarray, seg: np.ndarray
) -> np.ndarray:
    """Gold-standard per-row implementation of :func:`sgmv_expand`."""
    seg = _check_inputs(v, wb, seg)
    for i in range(seg.size - 1):
        for row in range(int(seg[i]), int(seg[i + 1])):
            y[row] = y[row] + v[row] @ wb[i]
    return y
