"""ShareGPT-like prompt/response length distributions.

The paper samples prompt and response lengths from ShareGPT user-bot
conversations. No ShareGPT dump is available offline, so we use the
log-normal marginals commonly fitted to it in the serving literature
(e.g. the vLLM paper reports a mean prompt of ~161 tokens and mean output
of ~338 tokens with heavy right tails). Defaults below reproduce those
moments; both are truncated to the context budget. The substitution only
needs to preserve the *load shape* — mean tokens per request and tail
skew — which it does by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import new_rng


@dataclass(frozen=True)
class LengthSample:
    """One request's prompt and response token counts."""

    prompt_len: int
    response_len: int

    def __post_init__(self) -> None:
        if self.prompt_len < 1 or self.response_len < 1:
            raise ValueError(
                f"lengths must be >= 1, got {(self.prompt_len, self.response_len)}"
            )

    @property
    def total_len(self) -> int:
        return self.prompt_len + self.response_len


@dataclass(frozen=True)
class ShareGptLengths:
    """Log-normal length sampler matched to ShareGPT marginals.

    ``prompt_mu``/``prompt_sigma`` parameterize ``exp(N(mu, sigma^2))``.
    Defaults give median ~102 / mean ~161 prompt tokens and median ~215 /
    mean ~338 response tokens.
    """

    prompt_mu: float = 4.625
    prompt_sigma: float = 0.96
    response_mu: float = 5.375
    response_sigma: float = 0.95
    min_len: int = 4
    max_prompt_len: int = 1024
    max_response_len: int = 1024

    def __post_init__(self) -> None:
        if self.min_len < 1:
            raise ValueError(f"min_len must be >= 1, got {self.min_len}")
        if self.max_prompt_len < self.min_len or self.max_response_len < self.min_len:
            raise ValueError("max lengths must be >= min_len")

    def _draw(self, rng: np.random.Generator, mu: float, sigma: float, cap: int, n: int):
        raw = rng.lognormal(mean=mu, sigma=sigma, size=n)
        return np.clip(np.round(raw).astype(np.int64), self.min_len, cap)

    def sample(self, rng: "np.random.Generator | int | None" = None) -> LengthSample:
        """Draw one (prompt, response) pair."""
        return self.sample_batch(1, rng)[0]

    def sample_batch(
        self, n: int, rng: "np.random.Generator | int | None" = None
    ) -> list[LengthSample]:
        """Draw ``n`` independent pairs."""
        if n < 0:
            raise ValueError(f"n must be nonnegative, got {n}")
        gen = new_rng(rng)
        prompts = self._draw(gen, self.prompt_mu, self.prompt_sigma, self.max_prompt_len, n)
        responses = self._draw(
            gen, self.response_mu, self.response_sigma, self.max_response_len, n
        )
        return [
            LengthSample(prompt_len=int(p), response_len=int(r))
            for p, r in zip(prompts, responses)
        ]

    def mean_total_len(self) -> float:
        """Analytic (untruncated) mean of prompt + response tokens."""
        mean_p = float(np.exp(self.prompt_mu + self.prompt_sigma**2 / 2))
        mean_r = float(np.exp(self.response_mu + self.response_sigma**2 / 2))
        return mean_p + mean_r

    @classmethod
    def paper_fig11(cls) -> "ShareGptLengths":
        """Lengths matched to the paper's Fig 11 trace statistics.

        The paper serves "1000 requests (generating around 101k tokens)",
        i.e. a mean response of ~101 tokens — shorter than the full
        ShareGPT marginal (ChatGPT-length answers truncated by the bot turn
        chosen). Prompt mean stays ShareGPT-like (~161).
        """
        # mean = exp(mu + sigma^2/2): solve mu for the target means.
        return cls(
            prompt_mu=4.625,
            prompt_sigma=0.96,
            response_mu=float(np.log(101) - 0.8**2 / 2),
            response_sigma=0.8,
        )
