"""Million-request scale workloads: vectorized ``fig13_1m`` generation.

:func:`~repro.workloads.trace.generate_trace` builds specs one at a time
through scalar RNG draws — fine for the thousands of requests the figure
benches need, painful for the million-request scale-out runs the gen-2
fast path targets. This module generates the same *kind* of workload
(trapezoid-ramp Poisson arrivals, Zipf-popular LoRA models) with bulk
array ops so trace construction stays a small fraction of simulation
wall-clock even at 10^6 requests.

Two deliberate departures from the figure-13 generator keep scale runs
bounded:

* **Conditional sampling.** Instead of thinning a Poisson stream (whose
  count is random), arrival times are drawn as ``n`` i.i.d. samples from
  the normalized ramp intensity and sorted. Conditioned on the total
  count, a non-homogeneous Poisson process *is* exactly this
  distribution, so the workload shape is unchanged while the request
  count is exact — a 1M-request run means 1M requests.
* **Short lengths.** Prompt/response lengths are short uniform draws
  rather than ShareGPT samples, so a million requests is ~10M simulated
  steps, not ~200M, and peak KV residency stays well inside one
  allocator arena.

``fraction`` scales the scenario *down* self-similarly: request count
and duration shrink together so the instantaneous arrival rate — and
therefore cluster utilization — is preserved. The perf gate's smoke
budget runs a small fraction; the opt-in ``scale`` CI job runs 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import spawn_rngs
from repro.workloads.trace import RequestSpec, Trace


@dataclass(frozen=True)
class ScaleScenario:
    """A self-similar large-scale cluster workload description."""

    name: str
    n_requests: int
    num_gpus: int
    num_models: int
    peak_rate: float
    hold_fraction: float
    prompt_range: "tuple[int, int]"
    response_range: "tuple[int, int]"
    alpha: float = 1.5
    max_batch_size: int = 32

    def __post_init__(self) -> None:
        if self.n_requests < 1:
            raise ValueError(f"n_requests must be >= 1, got {self.n_requests}")
        if self.peak_rate <= 0:
            raise ValueError(f"peak_rate must be positive, got {self.peak_rate}")
        if not 0.0 <= self.hold_fraction < 1.0:
            raise ValueError(f"hold_fraction must be in [0, 1), got {self.hold_fraction}")
        for label, (lo, hi) in (("prompt_range", self.prompt_range),
                                ("response_range", self.response_range)):
            if lo < 1 or hi < lo:
                raise ValueError(f"{label} must satisfy 1 <= lo <= hi, got ({lo}, {hi})")

    @property
    def duration(self) -> float:
        """Trace duration implied by the trapezoid ramp's mean rate.

        The trapezoid's area is ``peak * duration * (1 + hold) / 2``;
        solving for the duration that makes the expected count equal
        ``n_requests`` keeps utilization independent of scale.
        """
        mean_rate = self.peak_rate * (1.0 + self.hold_fraction) / 2.0
        return self.n_requests / mean_rate

    def at_fraction(self, fraction: float) -> "ScaleScenario":
        """The same scenario shrunk self-similarly to ``fraction``."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        if fraction == 1.0:
            return self
        n = max(1, round(self.n_requests * fraction))
        return ScaleScenario(
            name=self.name, n_requests=n, num_gpus=self.num_gpus,
            num_models=self.num_models, peak_rate=self.peak_rate,
            hold_fraction=self.hold_fraction, prompt_range=self.prompt_range,
            response_range=self.response_range, alpha=self.alpha,
            max_batch_size=self.max_batch_size,
        )


#: The million-request scale-out scenario: 8 GPUs, short generations,
#: trapezoid ramp to 60 req/s. Full scale is the ``scale``-marked CI job;
#: the perf gate smoke runs ``at_fraction`` of it.
FIG13_1M = ScaleScenario(
    name="fig13_1m",
    n_requests=1_000_000,
    num_gpus=8,
    num_models=256,
    peak_rate=60.0,
    hold_fraction=0.2,
    prompt_range=(4, 24),
    response_range=(4, 16),
)


def _ramp_arrival_times(
    n: int, duration: float, hold_fraction: float, rng: np.random.Generator
) -> np.ndarray:
    """``n`` sorted arrival times ~ the normalized trapezoid intensity.

    Inverse-CDF sampling over a dense piecewise-linear grid of the
    cumulative intensity: one ``random`` draw, one ``interp``, one sort —
    all vectorized. Conditioned on the count, this is exactly the
    distribution a thinned non-homogeneous Poisson process would give.
    """
    grid = np.linspace(0.0, duration, 4097)
    ramp = (1.0 - hold_fraction) / 2.0 * duration
    rate = np.minimum(grid / ramp, np.minimum(1.0, (duration - grid) / ramp))
    rate = np.maximum(rate, 0.0)
    cdf = np.concatenate(((0.0,), np.cumsum((rate[1:] + rate[:-1]) / 2.0)))
    cdf /= cdf[-1]
    times = np.interp(rng.random(n), cdf, grid)
    times.sort()
    return times


def _zipf_model_ids(
    n: int, num_models: int, alpha: float, rng: np.random.Generator
) -> "list[str]":
    """``n`` LoRA ids drawn Zipf(``alpha``) over ``num_models`` models."""
    ranks = np.arange(1, num_models + 1, dtype=np.float64)
    probs = ranks ** -alpha
    probs /= probs.sum()
    idx = rng.choice(num_models, size=n, p=probs)
    names = [f"lora-{k:04d}" for k in range(num_models)]
    return [names[k] for k in idx.tolist()]


def scale_trace(
    scenario: ScaleScenario = FIG13_1M,
    fraction: float = 1.0,
    seed: "int | None" = 0,
) -> Trace:
    """Generate a :class:`~repro.workloads.trace.Trace` for ``scenario``.

    Mirrors :func:`~repro.workloads.trace.generate_trace`'s three
    independent RNG streams (popularity, lengths, arrivals) so varying
    one knob leaves the other draws unchanged — but every stream is
    sampled in bulk.
    """
    sc = scenario.at_fraction(fraction)
    rng_pop, rng_len, rng_arr = spawn_rngs(seed, 3)
    n = sc.n_requests
    lora_ids = _zipf_model_ids(n, sc.num_models, sc.alpha, rng_pop)
    p_lo, p_hi = sc.prompt_range
    r_lo, r_hi = sc.response_range
    prompts = rng_len.integers(p_lo, p_hi + 1, size=n)
    responses = rng_len.integers(r_lo, r_hi + 1, size=n)
    times = _ramp_arrival_times(n, sc.duration, sc.hold_fraction, rng_arr)
    width = max(5, len(str(n - 1)))
    specs = [
        RequestSpec(
            request_id=f"req-{i:0{width}d}",
            lora_id=lora_ids[i],
            arrival_time=t,
            prompt_len=p,
            response_len=r,
        )
        for i, (t, p, r) in enumerate(
            zip(times.tolist(), prompts.tolist(), responses.tolist())
        )
    ]
    return Trace(tuple(specs))


def fig13_1m_trace(fraction: float = 1.0, seed: "int | None" = 0) -> Trace:
    """The ``fig13_1m`` trace (possibly shrunk self-similarly)."""
    return scale_trace(FIG13_1M, fraction=fraction, seed=seed)
