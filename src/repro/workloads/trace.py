"""Request traces: the unit of input to every serving experiment.

Traces serialize to/from JSON (:meth:`Trace.to_json` /
:meth:`Trace.from_json`) so an experiment's exact workload can be archived
next to its results and replayed bit-identically later.

A :class:`Trace` is an ordered list of :class:`RequestSpec` — arrival time,
LoRA model id, prompt length and (oracle) response length. The response
length plays the role of the stopping condition: in simulation mode the
engine "generates" exactly that many tokens; in functional mode the toy
model generates until EOS or this limit, matching the paper's
length-limit stopping rule.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace

import numpy as np

from repro.utils.rng import spawn_rngs
from repro.workloads.arrivals import PoissonArrivals, constant_rate
from repro.workloads.lengths import ShareGptLengths
from repro.workloads.popularity import assign_lora_ids


@dataclass(frozen=True)
class RequestSpec:
    """One request as the workload generator emits it."""

    request_id: str
    lora_id: str
    arrival_time: float
    prompt_len: int
    response_len: int

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ValueError(f"arrival_time must be >= 0, got {self.arrival_time}")
        if self.prompt_len < 1 or self.response_len < 1:
            raise ValueError("prompt_len and response_len must be >= 1")


@dataclass(frozen=True)
class Trace:
    """An arrival-ordered request trace plus summary accessors."""

    requests: tuple[RequestSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        times = [r.arrival_time for r in self.requests]
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("trace must be sorted by arrival time")

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    def __getitem__(self, i: int) -> RequestSpec:
        return self.requests[i]

    @property
    def num_lora_models(self) -> int:
        return len({r.lora_id for r in self.requests})

    @property
    def total_prompt_tokens(self) -> int:
        return sum(r.prompt_len for r in self.requests)

    @property
    def total_response_tokens(self) -> int:
        return sum(r.response_len for r in self.requests)

    @property
    def duration(self) -> float:
        return self.requests[-1].arrival_time if self.requests else 0.0

    def lora_ids(self) -> list[str]:
        return sorted({r.lora_id for r in self.requests})

    def with_arrivals_at_zero(self) -> "Trace":
        """All requests arriving at t=0 (the paper's closed-loop Fig 11 setup)."""
        return Trace(tuple(replace(r, arrival_time=0.0) for r in self.requests))

    # -- serialization --------------------------------------------------
    def to_json(self) -> str:
        """Serialize to a JSON document (schema-versioned)."""
        return json.dumps(
            {"schema": 1, "requests": [asdict(r) for r in self.requests]}
        )

    @classmethod
    def from_json(cls, payload: str) -> "Trace":
        """Parse a document produced by :meth:`to_json`."""
        doc = json.loads(payload)
        if not isinstance(doc, dict) or doc.get("schema") != 1:
            raise ValueError("not a version-1 trace document")
        specs = tuple(RequestSpec(**r) for r in doc["requests"])
        return cls(specs)

    def save(self, path) -> None:
        """Write the trace to ``path`` as JSON."""
        with open(path, "w") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path) -> "Trace":
        """Read a trace previously written by :meth:`save`."""
        with open(path) as fh:
            return cls.from_json(fh.read())


def generate_trace(
    n_requests: int,
    distribution: str,
    seed: int | None = 0,
    lengths: ShareGptLengths | None = None,
    arrivals: PoissonArrivals | None = None,
    alpha: float = 1.5,
    model_prefix: str = "lora-",
) -> Trace:
    """Generate a full request trace.

    Without ``arrivals`` all requests arrive at t=0 — the closed-loop
    "serve a fixed backlog FCFS" setup of Fig 11. With an arrival process
    the trace is open-loop (Fig 13). Three independent RNG streams drive
    popularity, lengths and arrivals so that varying one knob leaves the
    other draws unchanged.
    """
    if n_requests < 1:
        raise ValueError(f"n_requests must be >= 1, got {n_requests}")
    rng_pop, rng_len, rng_arr = spawn_rngs(seed, 3)
    lengths = lengths or ShareGptLengths()
    lora_ids = assign_lora_ids(
        n_requests, distribution, rng=rng_pop, alpha=alpha, model_prefix=model_prefix
    )
    samples = lengths.sample_batch(n_requests, rng=rng_len)

    if arrivals is None:
        times = np.zeros(n_requests)
    else:
        times = arrivals.sample(rng=rng_arr)
        if len(times) < n_requests:
            # The Poisson draw decides the count in open-loop mode; trim specs.
            n_requests = max(1, len(times))
        times = times[:n_requests]
        lora_ids = lora_ids[:n_requests]
        samples = samples[:n_requests]

    specs = [
        RequestSpec(
            request_id=f"req-{i:05d}",
            lora_id=lora_ids[i],
            arrival_time=float(times[i]),
            prompt_len=samples[i].prompt_len,
            response_len=samples[i].response_len,
        )
        for i in range(len(samples))
    ]
    specs.sort(key=lambda r: r.arrival_time)
    return Trace(tuple(specs))


def open_loop_trace(
    rate: float,
    duration: float,
    distribution: str = "skewed",
    seed: int | None = 0,
    lengths: ShareGptLengths | None = None,
    alpha: float = 1.5,
) -> Trace:
    """Convenience: constant-rate Poisson open-loop trace.

    ``n_requests`` is provisioned at ``rate * duration * 1.5`` so the
    Poisson draw never runs out of specs.
    """
    expect = max(1, int(rate * duration * 1.5) + 8)
    arrivals = PoissonArrivals(rate=constant_rate(rate), duration=duration)
    return generate_trace(
        expect, distribution, seed=seed, lengths=lengths, arrivals=arrivals, alpha=alpha
    )
