"""LoRA model popularity distributions (paper §7, "Workloads").

Four request-to-model distributions:

* **Distinct** — every request targets its own LoRA model.
* **Uniform** — all models equally popular; ``ceil(sqrt(n))`` models for
  ``n`` requests.
* **Skewed** — Zipf-alpha popularity: the i-th most popular model receives
  ``alpha`` times the requests of the (i+1)-th. The paper uses alpha=1.5.
* **Identical** — every request targets the same model.

Two views are provided: :func:`segment_sizes_for` gives the deterministic
per-model batch sizes the kernel microbenchmarks (Figs 7-9) use, and
:func:`assign_lora_ids` draws a per-request assignment for end-to-end
serving traces.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.rng import new_rng

POPULARITY_NAMES = ("distinct", "uniform", "skewed", "identical")


def _check_distribution(distribution: str) -> None:
    if distribution not in POPULARITY_NAMES:
        raise ValueError(
            f"unknown distribution {distribution!r}; expected one of {POPULARITY_NAMES}"
        )


def zipf_counts(n_requests: int, alpha: float = 1.5) -> list[int]:
    """Per-model request counts under the paper's Zipf-alpha popularity.

    Geometric decay ``count_i proportional to alpha^-i``, rounded by largest
    remainder so the counts sum exactly to ``n_requests`` with no zero
    entries; returned most-popular first.
    """
    if n_requests < 1:
        raise ValueError(f"n_requests must be >= 1, got {n_requests}")
    if alpha <= 1.0:
        raise ValueError(f"alpha must be > 1 for a skewed distribution, got {alpha}")
    # Enough ranks that the tail weight is negligible, capped at n_requests.
    max_models = min(n_requests, max(1, int(math.log(n_requests, alpha)) + 8))
    weights = np.power(alpha, -np.arange(max_models, dtype=np.float64))
    shares = weights / weights.sum() * n_requests
    counts = np.floor(shares).astype(np.int64)
    remainder = n_requests - int(counts.sum())
    if remainder > 0:
        frac_order = np.argsort(-(shares - counts), kind="stable")
        counts[frac_order[:remainder]] += 1
    result = [int(c) for c in counts if c > 0]
    assert sum(result) == n_requests
    return result


def uniform_counts(n_requests: int) -> list[int]:
    """Even split over ``ceil(sqrt(n))`` models (paper's Uniform rule)."""
    if n_requests < 1:
        raise ValueError(f"n_requests must be >= 1, got {n_requests}")
    num_models = math.isqrt(n_requests)
    if num_models * num_models < n_requests:
        num_models += 1
    base, extra = divmod(n_requests, num_models)
    return [base + (1 if i < extra else 0) for i in range(num_models)]


def segment_sizes_for(
    distribution: str, batch_size: int, alpha: float = 1.5
) -> list[int]:
    """Per-model batch sizes for one batched invocation (Figs 7-9).

    Most-popular-first ordering; sizes always sum to ``batch_size``.
    """
    _check_distribution(distribution)
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if distribution == "distinct":
        return [1] * batch_size
    if distribution == "identical":
        return [batch_size]
    if distribution == "uniform":
        return uniform_counts(batch_size)
    return zipf_counts(batch_size, alpha)


def num_models_for(distribution: str, n_requests: int, alpha: float = 1.5) -> int:
    """How many distinct LoRA models ``n_requests`` spread over."""
    return len(segment_sizes_for(distribution, n_requests, alpha))


def assign_lora_ids(
    n_requests: int,
    distribution: str,
    rng: "np.random.Generator | int | None" = None,
    alpha: float = 1.5,
    model_prefix: str = "lora-",
    shuffle: bool = True,
) -> list[str]:
    """Assign each of ``n_requests`` requests a LoRA model id.

    Model ids are ``f"{model_prefix}{i}"`` with ``i`` the popularity rank.
    With ``shuffle=True`` (default) the per-request order is randomized, as
    arrivals interleave in a real trace; with ``shuffle=False`` requests
    arrive grouped by model (useful for deterministic tests).
    """
    counts = segment_sizes_for(distribution, n_requests, alpha)
    ids = [f"{model_prefix}{i}" for i, c in enumerate(counts) for _ in range(c)]
    if shuffle:
        gen = new_rng(rng)
        perm = gen.permutation(len(ids))
        ids = [ids[i] for i in perm]
    return ids
