"""Trace analytics: the workload summaries evaluation sections report."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.workloads.trace import Trace


@dataclass(frozen=True)
class TraceSummary:
    """Descriptive statistics of one request trace."""

    num_requests: int
    num_lora_models: int
    duration: float
    mean_prompt_len: float
    p50_prompt_len: float
    p99_prompt_len: float
    mean_response_len: float
    p50_response_len: float
    p99_response_len: float
    total_tokens: int
    top_model_share: float
    """Fraction of requests going to the most popular LoRA model."""

    @property
    def mean_rate(self) -> float:
        """Mean arrival rate (requests/second); 0 for closed-loop traces."""
        if self.duration <= 0:
            return 0.0
        return self.num_requests / self.duration


def summarize_trace(trace: Trace) -> TraceSummary:
    """Compute a :class:`TraceSummary` for ``trace``."""
    if len(trace) == 0:
        raise ValueError("cannot summarize an empty trace")
    prompts = np.asarray([r.prompt_len for r in trace])
    responses = np.asarray([r.response_len for r in trace])
    counts = Counter(r.lora_id for r in trace)
    return TraceSummary(
        num_requests=len(trace),
        num_lora_models=len(counts),
        duration=trace.duration,
        mean_prompt_len=float(prompts.mean()),
        p50_prompt_len=float(np.percentile(prompts, 50)),
        p99_prompt_len=float(np.percentile(prompts, 99)),
        mean_response_len=float(responses.mean()),
        p50_response_len=float(np.percentile(responses, 50)),
        p99_response_len=float(np.percentile(responses, 99)),
        total_tokens=int(prompts.sum() + responses.sum()),
        top_model_share=max(counts.values()) / len(trace),
    )


def popularity_histogram(trace: Trace) -> "list[tuple[str, int]]":
    """(lora_id, request count) most-popular first — the Zipf curve data."""
    counts = Counter(r.lora_id for r in trace)
    return counts.most_common()


def empirical_zipf_alpha(trace: Trace) -> float:
    """Estimate the Zipf decay ratio between successive popularity ranks.

    Geometric-mean ratio of consecutive counts; ~1.5 for the paper's
    Skewed workload, ~1.0 for Uniform.
    """
    counts = [c for _, c in popularity_histogram(trace)]
    if len(counts) < 2:
        raise ValueError("need at least two LoRA models to estimate alpha")
    ratios = [a / b for a, b in zip(counts, counts[1:]) if b > 0]
    return float(np.exp(np.mean(np.log(ratios))))
