"""Workload generation: lengths, LoRA popularity, arrivals, request traces.

The paper's evaluation (§7) draws prompt/response lengths from ShareGPT and
assigns requests to LoRA models under four popularity distributions —
Distinct, Uniform, Skewed (Zipf-1.5) and Identical. The cluster experiment
(Fig 13) uses a one-hour Poisson arrival process whose rate ramps up and
then down. All of that is reproduced here with documented synthetic
equivalents (we have no ShareGPT dump offline; see DESIGN.md §2).
"""

from repro.workloads.analysis import (
    TraceSummary,
    empirical_zipf_alpha,
    popularity_histogram,
    summarize_trace,
)
from repro.workloads.arrivals import PoissonArrivals, RampProfile, constant_rate
from repro.workloads.lengths import LengthSample, ShareGptLengths
from repro.workloads.popularity import (
    POPULARITY_NAMES,
    assign_lora_ids,
    segment_sizes_for,
    zipf_counts,
)
from repro.workloads.scale import FIG13_1M, ScaleScenario, fig13_1m_trace, scale_trace
from repro.workloads.trace import RequestSpec, Trace, generate_trace, open_loop_trace

__all__ = [
    "FIG13_1M",
    "LengthSample",
    "POPULARITY_NAMES",
    "PoissonArrivals",
    "RampProfile",
    "RequestSpec",
    "ScaleScenario",
    "ShareGptLengths",
    "Trace",
    "TraceSummary",
    "assign_lora_ids",
    "constant_rate",
    "empirical_zipf_alpha",
    "fig13_1m_trace",
    "generate_trace",
    "scale_trace",
    "popularity_histogram",
    "summarize_trace",
    "open_loop_trace",
    "segment_sizes_for",
    "zipf_counts",
]
