"""Request arrival processes (paper §7.3).

The cluster experiment drives a Poisson arrival process — exponential
inter-arrival gaps — whose rate, in the macro view, gradually increases and
then decreases over the hour. :class:`RampProfile` is that trapezoid/
triangle rate curve; :class:`PoissonArrivals` samples a concrete arrival
sequence from any rate profile via thinning.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

import numpy as np

from repro.utils.rng import new_rng
from repro.utils.validation import check_nonnegative, check_positive


def constant_rate(rate: float) -> Callable[[float], float]:
    """A flat rate profile ``lambda(t) = rate`` (requests/second)."""
    check_nonnegative("rate", rate)
    return lambda t: rate


@dataclass(frozen=True)
class RampProfile:
    """Rate ramps linearly 0 -> peak over the first half, back down over the second.

    With ``hold_fraction > 0`` the peak is held for that fraction of the
    duration in the middle (trapezoid instead of triangle).
    """

    duration: float
    peak_rate: float
    hold_fraction: float = 0.0

    def __post_init__(self) -> None:
        check_positive("duration", self.duration)
        check_positive("peak_rate", self.peak_rate)
        if not 0.0 <= self.hold_fraction < 1.0:
            raise ValueError(f"hold_fraction must be in [0, 1), got {self.hold_fraction}")

    def __call__(self, t: float) -> float:
        if t < 0 or t > self.duration:
            return 0.0
        ramp = (1.0 - self.hold_fraction) / 2.0 * self.duration
        if t < ramp:
            return self.peak_rate * t / ramp
        if t > self.duration - ramp:
            return self.peak_rate * (self.duration - t) / ramp
        return self.peak_rate


@dataclass(frozen=True)
class PoissonArrivals:
    """A (possibly non-homogeneous) Poisson arrival process."""

    rate: Callable[[float], float]
    duration: float

    def __post_init__(self) -> None:
        check_positive("duration", self.duration)

    def sample(self, rng: "np.random.Generator | int | None" = None) -> np.ndarray:
        """Arrival times in ``[0, duration)``, sorted ascending.

        Uses Lewis-Shedler thinning against the profile's maximum rate, so
        any bounded rate function works.
        """
        gen = new_rng(rng)
        # Upper-bound the rate by probing; profiles here are piecewise linear.
        probes = np.linspace(0.0, self.duration, 1024)
        lam_max = max(float(self.rate(t)) for t in probes)
        if lam_max <= 0:
            return np.zeros(0, dtype=np.float64)
        times = []
        t = 0.0
        while True:
            t += gen.exponential(1.0 / lam_max)
            if t >= self.duration:
                break
            if gen.random() < self.rate(t) / lam_max:
                times.append(t)
        return np.asarray(times, dtype=np.float64)
