"""Quickstart: batched multi-LoRA text generation with SGMV.

Builds a toy Llama backbone, registers three tenants' LoRA models, and
serves one request per tenant through the Punica engine — all three decode
in a *single* batched invocation, with the LoRA addon computed by two SGMV
launches per projection. Finally verifies the served tokens against a
merged-weight (``W + A B``) recompute, demonstrating that batching across
LoRA models changes nothing numerically.

Run: ``python examples/quickstart.py``
"""

import numpy as np

from repro import (
    EngineConfig,
    GpuEngine,
    LoraRegistry,
    NumpyBackend,
    generate_trace,
    random_llama_weights,
    random_lora_weights,
    requests_from_trace,
    serve_requests,
    tiny_config,
)
from repro.models.llama import reference_forward_full
from repro.workloads.lengths import ShareGptLengths


def main() -> None:
    # 1. A toy backbone (same architecture family as Llama-2: RMSNorm,
    #    RoPE, SwiGLU) and three tenants' LoRA models.
    config = tiny_config(hidden_size=64, num_layers=2, num_heads=4, vocab_size=256)
    weights = random_llama_weights(config, seed=0)
    registry = LoraRegistry()
    for i in range(3):
        registry.register(
            random_lora_weights(
                f"lora-{i}", config.num_layers, config.proj_dims(), rank=8, seed=100 + i
            )
        )
    print(f"backbone: {config.name}, {config.param_count():,} params")
    print(f"tenants:  {registry.model_ids}")

    # 2. A Punica engine over the functional NumPy backend.
    backend = NumpyBackend(weights, registry, total_pages=256, page_size=8, lora_rank=8)
    engine = GpuEngine("gpu0", backend, EngineConfig(max_batch_size=32))

    # 3. One request per tenant (Distinct workload) with real prompt ids.
    lengths = ShareGptLengths(max_prompt_len=10, max_response_len=6)
    trace = generate_trace(3, "distinct", seed=7, lengths=lengths)
    requests = requests_from_trace(
        trace, with_prompt_tokens=True, vocab_size=config.vocab_size
    )
    result = serve_requests(engine, requests)

    print(f"\nserved {result.requests_finished} requests, "
          f"{result.tokens_generated} tokens, "
          f"max invocation batch {max(s.batch_size for s in result.steps)}")
    multi_lora_steps = sum(1 for s in result.steps if s.num_lora_segments > 1)
    print(f"invocations batching >1 LoRA model: {multi_lora_steps}")

    # 4. Verify every generated token against a merged-weight recompute.
    for req in requests:
        history = list(req.prompt_tokens)
        for tok in req.generated_tokens:
            logits = reference_forward_full(
                weights, np.asarray(history), registry, req.lora_id
            )
            assert tok == int(np.argmax(logits)), "served token != merged-weight greedy"
            history.append(tok)
        print(f"  {req.request_id} [{req.lora_id}]: {req.generated_tokens}  (verified)")
    print("\nall tokens match the merged-weight reference — multi-LoRA batching "
          "is numerically exact")


if __name__ == "__main__":
    main()
