"""SGMV kernel playground: explore the latency model interactively.

Prints the modelled A100 latency of the batched LoRA operator across
popularity distributions, batch sizes and ranks — the knobs behind the
paper's Figs 7-9 — and compares the three implementations (Loop,
Gather-BMM, SGMV). Edit the constants and re-run to explore.

Run: ``python examples/kernel_playground.py``
"""

from repro import A100_80G, KernelCostModel
from repro.hw.kernels import SgmvWorkload
from repro.hw.roofline import ridge_point, roofline_bound
from repro.utils.tables import format_table
from repro.utils.units import TB, US
from repro.workloads.popularity import POPULARITY_NAMES, segment_sizes_for

H = 4096
RANK = 16
BATCHES = (1, 8, 32, 64)


def main() -> None:
    kcm = KernelCostModel(A100_80G)

    rows = []
    for dist in POPULARITY_NAMES:
        for bs in BATCHES:
            segs = segment_sizes_for(dist, bs)
            rows.append([
                dist, bs, len(segs),
                f"{kcm.loop_lora(segs, H, H, RANK) / US:.0f}",
                f"{kcm.gather_bmm_lora(segs, H, H, RANK) / US:.0f}",
                f"{kcm.lora_addon(segs, H, H, RANK, standalone=True) / US:.1f}",
            ])
    print(format_table(
        ["workload", "batch", "#lora", "loop(us)", "gather-bmm(us)", "sgmv(us)"],
        rows,
        title=f"Batched LoRA operator on {A100_80G.name} (h={H}, rank={RANK})",
    ))

    print(f"\nroofline ridge point: {ridge_point(A100_80G):.0f} FLOP/byte")
    rows = []
    for dist in POPULARITY_NAMES:
        segs = tuple(segment_sizes_for(dist, 64))
        w = SgmvWorkload(segments=segs, h_in=RANK, h_out=H)
        t = kcm.sgmv(w, standalone=True)
        rows.append([
            dist, f"{w.arithmetic_intensity:.2f}",
            f"{w.flop / t / TB:.2f}",
            f"{roofline_bound(A100_80G, w.arithmetic_intensity) / TB:.2f}",
        ])
    print(format_table(
        ["workload", "intensity (FLOP/B)", "achieved TFLOP/s", "roof TFLOP/s"],
        rows,
        title="SGMV expand launch at batch 64 on the A100 roofline (cf. Fig 7)",
    ))

    rows = []
    for rank in (8, 16, 32, 64):
        segs = segment_sizes_for("distinct", 64)
        t = kcm.lora_addon(segs, H, H, rank, standalone=True)
        rows.append([rank, f"{t / US:.0f}"])
    print(format_table(
        ["rank", "distinct bs64 (us)"], rows,
        title="Rank sweep (cf. Fig 9; paper: 72/75/89/118 us)",
    ))


if __name__ == "__main__":
    main()
