"""Multi-tenant serving on one simulated A100: Punica vs the baselines.

Reproduces the core of Fig 11 at small scale: 80 requests with ShareGPT
lengths, each targeting its own LoRA model (the Distinct workload), served
FCFS at max batch size 32 on a modelled A100-80G with Llama-2 7B. Baselines
can only batch same-model requests, so they collapse to batch size ~1;
Punica's SGMV keeps the batch full.

Run: ``python examples/multi_tenant_serving.py``
"""

from repro import ALL_SYSTEMS, LLAMA2_7B, build_engine, generate_trace
from repro.runtime.serve import requests_from_trace, serve_requests
from repro.utils.tables import format_table


def main() -> None:
    n_requests = 80
    rows = []
    for dist in ("distinct", "identical"):
        trace = generate_trace(n_requests, dist, seed=0)
        print(f"\n{dist}: {n_requests} requests over {trace.num_lora_models} "
              f"LoRA model(s), {trace.total_response_tokens} tokens to generate")
        for profile in ALL_SYSTEMS:
            engine = build_engine(profile, LLAMA2_7B)
            result = serve_requests(engine, requests_from_trace(trace))
            rows.append(
                [dist, profile.display_name, f"{result.throughput:.0f}",
                 f"{result.mean_batch_size:.1f}",
                 f"{1e3 * result.mean_normalized_latency():.0f}"]
            )
    print()
    print(format_table(
        ["workload", "system", "tok/s", "mean batch", "ms/token (e2e)"],
        rows,
        title="Single-GPU multi-tenant serving (cf. paper Fig 11)",
    ))
    punica_distinct = float(next(r[2] for r in rows if r[0] == "distinct" and "Punica" in r[1]))
    best_baseline = max(
        float(r[2]) for r in rows if r[0] == "distinct" and "Punica" not in r[1]
    )
    print(f"\nPunica speedup over best baseline on Distinct: "
          f"{punica_distinct / best_baseline:.1f}x (paper: ~12x)")


if __name__ == "__main__":
    main()
