"""Elastic autoscaling: pay for GPUs only while the load needs them (§5.1).

Runs the same ramping workload on (a) a statically provisioned 6-GPU
cluster and (b) an elastic pool that starts at one GPU, requests more when
no lightly loaded GPU remains, and releases GPUs once they drain to idle.
Punica's pack-to-busiest routing plus consolidation migration is what
makes GPUs actually reach idle so they can be released.

Run: ``python examples/elastic_autoscaling.py``
"""

from repro import LLAMA2_7B, EngineConfig, GpuEngine, SchedulerConfig, SimulatedBackend
from repro.cluster.elastic import ElasticClusterSimulator, ElasticConfig
from repro.cluster.simulator import ClusterSimulator
from repro.utils.tables import format_table
from repro.workloads.arrivals import PoissonArrivals, RampProfile
from repro.workloads.trace import generate_trace

NUM_GPUS = 6
DURATION = 240.0
PEAK_RATE = 10.0


def engine_factory(gpu_id: str) -> GpuEngine:
    return GpuEngine(gpu_id, SimulatedBackend(LLAMA2_7B), EngineConfig(max_batch_size=32))


def main() -> None:
    arrivals = PoissonArrivals(
        rate=RampProfile(duration=DURATION, peak_rate=PEAK_RATE, hold_fraction=0.2),
        duration=DURATION,
    )
    trace = generate_trace(
        int(DURATION * PEAK_RATE) + 64, "skewed", seed=0, arrivals=arrivals
    )
    print(f"workload: {len(trace)} requests over {DURATION:.0f}s "
          f"(rate ramps 0 -> {PEAK_RATE:.0f} -> 0 req/s)")

    sched = SchedulerConfig(migration_interval=10.0)
    static = ClusterSimulator(
        [engine_factory(f"s{i:02d}") for i in range(NUM_GPUS)], sched
    ).run(trace)

    elastic_sim = ElasticClusterSimulator(
        engine_factory,
        ElasticConfig(min_gpus=1, max_gpus=NUM_GPUS, provision_delay=15.0,
                      release_idle_after=20.0, check_interval=5.0),
        sched,
    )
    elastic = elastic_sim.run_elastic(trace)

    rows = [
        ["static", f"{NUM_GPUS * static.duration:.0f}", static.finished_requests,
         f"{static.mean_normalized_latency() * 1e3:.0f}", "-", "-"],
        ["elastic", f"{elastic.gpu_seconds():.0f}", elastic.base.finished_requests,
         f"{elastic.base.mean_normalized_latency() * 1e3:.0f}",
         elastic.scale_ups, elastic.releases],
    ]
    print(format_table(
        ["pool", "GPU-seconds", "finished", "ms/token", "scale-ups", "releases"],
        rows, title="\nStatic vs elastic provisioning",
    ))
    saving = 1 - elastic.gpu_seconds() / (NUM_GPUS * static.duration)
    print(f"\nGPU-seconds saved by elasticity: {saving:.0%} "
          f"(peak elastic pool: {elastic.peak_pool_size()} GPUs)")


if __name__ == "__main__":
    main()
