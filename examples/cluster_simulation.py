"""Cluster consolidation under a ramping load (cf. paper Fig 13).

Simulates a pool of A100 GPUs serving Llama-2 7B while the request rate
ramps up and back down (Poisson arrivals, Zipf-1.5 LoRA popularity). The
Punica scheduler packs requests onto the busiest GPUs and periodically
migrates stragglers off lightly loaded ones, so idle GPUs stay idle — the
property that lets a cloud deployment release them.

Run: ``python examples/cluster_simulation.py``
"""

from repro import LLAMA2_7B, SchedulerConfig, generate_trace
from repro.bench.fig13_cluster import build_cluster
from repro.utils.tables import format_table
from repro.workloads.arrivals import PoissonArrivals, RampProfile


def main() -> None:
    num_gpus, duration, peak_rate, bucket = 6, 180.0, 8.0, 15.0
    arrivals = PoissonArrivals(
        rate=RampProfile(duration=duration, peak_rate=peak_rate, hold_fraction=0.2),
        duration=duration,
    )
    trace = generate_trace(
        int(duration * peak_rate) + 64, "skewed", seed=0, arrivals=arrivals
    )
    sim = build_cluster(
        num_gpus, config=LLAMA2_7B,
        scheduler_config=SchedulerConfig(migration_interval=10.0),
    )
    print(f"simulating {len(trace)} requests over {duration:.0f}s on {num_gpus} GPUs...")
    result = sim.run(trace)

    rate = dict(result.metrics.request_rate_series(bucket, result.duration))
    tput = dict(result.metrics.throughput_series(bucket, result.duration))
    gpu_ids = sorted(result.metrics.gpu_batch_size)
    per_gpu = {
        gid: dict(result.metrics.batch_size_series(gid, bucket, result.duration))
        for gid in gpu_ids
    }
    rows = []
    for t in sorted(rate):
        cells = [f"{per_gpu[gid].get(t, 0.0):.0f}" for gid in gpu_ids]
        rows.append([f"{t:.0f}", f"{rate[t]:.1f}", f"{tput.get(t, 0.0):.0f}"] + cells)
    gpu_headers = [f"bs@{g}" for g in gpu_ids]
    print(format_table(
        ["t(s)", "req/s", "tok/s"] + gpu_headers, rows,
        title="Fig 13-style timeline: load, throughput, per-GPU batch size",
    ))
    print(f"\nfinished {result.finished_requests}/{len(trace)} requests; "
          f"{result.num_migrations} consolidation migrations; "
          f"final scaling hint: {sim.scheduler.scaling_hint()}")


if __name__ == "__main__":
    main()
