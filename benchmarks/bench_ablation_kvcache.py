"""Ablation (§5.4, Fig 6): separable vs inseparable KvCache layout.

Measures (1) the wasted decode steps an inseparable layout forces on
ShareGPT-like response lengths, and (2) the end-to-end throughput cost by
comparing the continuous engine against the static engine with *identical*
kernels (both backbone-only), isolating the layout effect.
"""

import numpy as np

from repro.baselines.framework import FASTER_TRANSFORMER, VLLM, build_engine
from repro.bench.reporting import FigureTable
from repro.kvcache.contiguous import wasted_decode_steps
from repro.models.config import LLAMA2_7B
from repro.runtime.serve import requests_from_trace, serve_requests
from repro.workloads.lengths import ShareGptLengths
from repro.workloads.trace import generate_trace


def run_kvcache_ablation(n_requests: int = 96, seed: int = 0) -> FigureTable:
    table = FigureTable(
        figure_id="Ablation kvcache",
        title="Separable (paged) vs inseparable (HF-layout) KvCache",
        headers=["metric", "value"],
    )
    # (1) Analytic wasted steps for batches of 32 ShareGPT responses.
    lengths = ShareGptLengths()
    rng = np.random.default_rng(seed)
    waste_fracs = []
    for _ in range(50):
        batch = [s.response_len for s in lengths.sample_batch(32, rng)]
        waste_fracs.append(wasted_decode_steps(batch) / (32 * max(batch)))
    table.add_row("mean wasted-step fraction (batch=32)", float(np.mean(waste_fracs)))

    # (2) End-to-end: same kernels, different layout discipline.
    trace = generate_trace(n_requests, "identical", seed=seed)
    continuous = serve_requests(
        build_engine(VLLM, LLAMA2_7B), requests_from_trace(trace), keep_steps=False
    )
    static = serve_requests(
        build_engine(FASTER_TRANSFORMER, LLAMA2_7B),
        requests_from_trace(trace),
        keep_steps=False,
    )
    table.add_row("continuous (separable) tok/s", continuous.throughput)
    table.add_row("static (inseparable) tok/s", static.throughput)
    table.add_row("separable speedup", continuous.throughput / static.throughput)
    return table


def test_kvcache_separability(benchmark, emit):
    table = benchmark.pedantic(
        run_kvcache_ablation, rounds=1, iterations=1, warmup_rounds=0
    )
    emit(table)

    rows = {r[0]: r[1] for r in table.rows}
    # ShareGPT's heavy tail makes inseparable batches waste >40% of lanes.
    assert rows["mean wasted-step fraction (batch=32)"] > 0.4
    # The layout alone buys a substantial throughput win.
    assert rows["separable speedup"] > 1.5
