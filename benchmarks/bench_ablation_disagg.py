"""Ablation: disaggregated prefill/decode vs colocated serving.

The same decode-heavy trace runs on four GPUs two ways: the stock
colocated cluster, and a 2-prefill + 2-decode split with a paged KV
handoff per request (docs/disagg.md). The acceptance shape is the one
the disaggregation literature reports: inter-token latency (p50 and
p99) drops because decode GPUs never absorb a prefill stall, while
TTFT rises because the handoff sits on the critical path — and the
handoff cost is visible in the `transfer` latency tile.
"""

from repro.bench.disagg_ablation import (
    _summarize,
    run_colocated,
    run_disagg_ablation,
    run_disaggregated,
)
from repro.runtime.request import RequestState


def test_disagg_ablation(benchmark, emit):
    colo_result, colo_tracer = benchmark.pedantic(
        lambda: run_colocated(seed=0), rounds=1, iterations=1
    )
    dis_result, dis_tracer, dis_sim = run_disaggregated(seed=0)
    emit(run_disagg_ablation(seed=0))

    colo = _summarize(colo_result, colo_tracer)
    dis = _summarize(dis_result, dis_tracer)

    # Nothing is lost in either mode.
    for result in (colo_result, dis_result):
        for req in result.requests:
            assert req.state is RequestState.FINISHED
            assert req.num_generated == req.spec.response_len
    assert dis["finished"] == colo["finished"]

    # The headline claim: decode smoothness. With prefills quarantined
    # on their own GPUs, both the median and the tail of inter-token
    # latency drop.
    assert dis["p50_itl_ms"] < colo["p50_itl_ms"], (colo, dis)
    assert dis["p99_itl_ms"] < colo["p99_itl_ms"], (colo, dis)

    # The price: every request pays a KV handoff, which shows up in
    # TTFT and in the transfer latency tile.
    assert dis_sim.metrics.kv_transfer_count() >= dis["finished"]
    assert dis["transfer_s"] > 0.0
    assert dis["mean_ttft_ms"] > colo["mean_ttft_ms"]

    # At this load the decode pool keeps up: no backpressure fallbacks.
    assert dis_sim.metrics.colocated_fallback_count() == 0
