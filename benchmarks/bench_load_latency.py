"""Load-latency characterization: open-loop rate sweep on one GPU.

A standard serving-systems curve the paper's cluster experiment implies
but does not plot: as the offered request rate approaches the GPU's
capacity, normalized latency blows up past the knee. Swept for Punica and
for the vLLM baseline on the Distinct workload — Punica's knee sits ~12x
further right, which is the throughput headline restated as a latency
story.
"""

from repro.baselines.framework import PUNICA, VLLM, build_engine
from repro.bench.reporting import FigureTable
from repro.models.config import LLAMA2_7B
from repro.runtime.latency import LatencyStats
from repro.runtime.request import RequestState
from repro.runtime.serve import requests_from_trace, serve_requests
from repro.workloads.arrivals import PoissonArrivals, constant_rate
from repro.workloads.lengths import ShareGptLengths
from repro.workloads.trace import generate_trace

DURATION = 30.0
LENGTHS = ShareGptLengths(max_prompt_len=256, max_response_len=256)


def _trace(rate: float, seed: int = 0):
    arrivals = PoissonArrivals(rate=constant_rate(rate), duration=DURATION)
    return generate_trace(
        int(rate * DURATION * 1.5) + 16, "distinct", seed=seed,
        lengths=LENGTHS, arrivals=arrivals,
    )


def run_load_latency(seed: int = 0) -> FigureTable:
    table = FigureTable(
        figure_id="Load-latency",
        title="Open-loop rate sweep, Distinct workload, one A100 (7B)",
        headers=["system", "req_per_s", "p50_s_per_tok", "p99_s_per_tok", "tok_per_s"],
    )
    sweeps = {"punica": (0.5, 1.0, 2.0, 4.0), "vllm": (0.1, 0.2, 0.4, 0.8)}
    for profile in (PUNICA, VLLM):
        for rate in sweeps[profile.name]:
            engine = build_engine(profile, LLAMA2_7B)
            reqs = requests_from_trace(_trace(rate, seed))
            result = serve_requests(engine, reqs, keep_steps=False)
            finished = [r for r in reqs if r.state is RequestState.FINISHED]
            stats = LatencyStats.from_requests(finished)
            table.add_row(
                profile.name, rate, stats.p50_normalized, stats.p99_normalized,
                result.throughput,
            )
    return table


def test_load_latency_knee(benchmark, emit):
    table = benchmark.pedantic(run_load_latency, rounds=1, iterations=1, warmup_rounds=0)
    emit(table)
    rows = [(r[0], r[1], r[2]) for r in table.rows]
    punica = [(rate, p50) for sys, rate, p50 in rows if sys == "punica"]
    vllm = [(rate, p50) for sys, rate, p50 in rows if sys == "vllm"]
    # Latency is nondecreasing-ish in offered load for both systems.
    assert punica[-1][1] > punica[0][1] * 0.8
    # Punica sustains 4 req/s at latency comparable to vLLM at ~0.2 req/s:
    # the multi-LoRA batching capacity gap.
    punica_at_4 = dict(punica)[4.0]
    vllm_at_08 = dict(vllm)[0.8]
    assert punica_at_4 < vllm_at_08
