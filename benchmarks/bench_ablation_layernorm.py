"""Ablation (§6): fused vs unfused LayerNorm — 110us -> 4us per op.

Quantifies how much of a decode step the fusion saves end-to-end: with two
norms per layer x 32 layers, unfused adds ~6.8 ms to every 7B invocation.
"""

from repro.bench.reporting import FigureTable
from repro.hw.kernels import KernelCostModel
from repro.hw.spec import A100_80G
from repro.models.config import LLAMA2_7B
from repro.models.perf import PerfFlags, decode_step_workload, model_step_latency
from repro.utils.units import MS, US


def run_layernorm_ablation() -> FigureTable:
    kcm = KernelCostModel(A100_80G)
    table = FigureTable(
        figure_id="Ablation layernorm",
        title="Fused vs unfused LayerNorm (paper §6: 110us -> 4us)",
        headers=["variant", "per_op_us", "decode_step_ms_bs32"],
    )
    work = decode_step_workload([512] * 32, lora_segments=[1] * 32)
    for fused in (True, False):
        flags = PerfFlags(fused_layernorm=fused)
        step = model_step_latency(LLAMA2_7B, kcm, work, flags=flags)
        table.add_row(
            "fused" if fused else "unfused", kcm.layernorm(fused) / US, step / MS
        )
    return table


def test_layernorm_fusion(benchmark, emit):
    table = benchmark(run_layernorm_ablation)
    emit(table)

    rows = {r[0]: r for r in table.rows}
    assert rows["fused"][1] == 4.0
    assert rows["unfused"][1] == 110.0
    saved = rows["unfused"][2] - rows["fused"][2]
    # 2 norms/layer x 32 layers x 106us + final norm ~= 6.9 ms.
    assert 5.0 < saved < 9.0
