"""Figure 12 bench: 70B with 8-way tensor parallelism, Punica vs vLLM."""

from repro.bench.fig12_tp70b import run_fig12


def test_fig12_tp70b(benchmark, emit):
    table = benchmark.pedantic(run_fig12, rounds=1, iterations=1, warmup_rounds=0)
    emit(table)

    tput = {(r[0], r[1]): r[2] for r in table.rows}

    # vLLM collapses on multi-LoRA workloads; Punica does not (paper: ~20x).
    for dist in ("distinct", "uniform", "skewed"):
        assert tput[(dist, "punica")] > 8 * tput[(dist, "vllm")], dist

    # On Identical both use the same parallel scheme: near parity, with
    # backbone-only vLLM slightly ahead.
    assert tput[("identical", "vllm")] > tput[("identical", "punica")]
    assert tput[("identical", "vllm")] < 1.35 * tput[("identical", "punica")]

    # Punica consistent across workloads (paper: 441-446 tok/s).
    punica = [tput[(d, "punica")] for d in ("distinct", "uniform", "skewed", "identical")]
    assert max(punica) < 1.4 * min(punica)
    assert 250 < min(punica) < 900  # same order as the paper's ~441-446
