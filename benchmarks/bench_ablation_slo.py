"""Ablation: SLO attainment vs fleet shape at equal dollar cost.

Two fleets billing identically (4.0 $/hr with the HwSpec preset price
list) — four A100-80Gs vs one H100 + one A100 + four L4s — serve the
same prefill-heavy open loop past the homogeneous fleet's saturation
knee, each under the FCFS pack rule and under the SLO-aware control
plane. All four cells score against the same deadlines and a shed
counts as a miss. The headline (cmp-gated in CI through ``repro slo``):
deadline-headroom routing on the heterogeneous fleet beats FCFS on the
homogeneous one at equal cost.
"""

from repro.bench.slo_ablation import (
    FLEETS,
    POLICY,
    run_cell,
    run_slo_ablation,
)
from repro.cluster.control import ControlConfig
from repro.runtime.request import RequestState


def _cells(table):
    """(fleet, router) -> row dict keyed by header."""
    headers = list(table.headers)
    return {
        (row[0], row[1]): dict(zip(headers, row)) for row in table.rows
    }


def test_slo_ablation(benchmark, emit):
    control = ControlConfig(default_policy=POLICY)
    result = benchmark.pedantic(
        lambda: run_cell(0, FLEETS["hetero H100+A100+4xL4"], "slo", control),
        rounds=1,
        iterations=1,
    )
    table = run_slo_ablation(seed=0)
    emit(table)

    # The timed cell leaves no request in limbo: everything either
    # finished or was shed with a terminal FAILED state.
    for req in result.requests:
        assert req.state in (RequestState.FINISHED, RequestState.FAILED)

    cells = _cells(table)
    assert len(cells) == 4

    # Equal spend everywhere — the comparison is shape, not budget.
    costs = {row["cost_hr"] for row in cells.values()}
    assert costs == {4.0}, costs

    # The gated claim: SLO routing on the heterogeneous fleet beats FCFS
    # on the homogeneous fleet at the same dollar cost.
    hetero_slo = cells[("hetero H100+A100+4xL4", "slo")]
    homo_fcfs = cells[("homo 4xA100", "fcfs")]
    assert hetero_slo["attainment"] > homo_fcfs["attainment"], (
        hetero_slo, homo_fcfs,
    )

    # Within each fleet the SLO router dominates FCFS: deadline-aware
    # placement plus shedding the hopeless tail beats head-blocking.
    for fleet in FLEETS:
        slo, fcfs = cells[(fleet, "slo")], cells[(fleet, "fcfs")]
        assert slo["attainment"] > fcfs["attainment"], fleet
        assert slo["p99_ttft_ms"] < fcfs["p99_ttft_ms"], fleet
        # Only the SLO router sheds; FCFS queues everything forever.
        assert slo["shed"] > 0, fleet
        assert fcfs["shed"] == 0, fleet
