"""Scheduler ablations: consolidation migration, max batch size, prefill limit.

Design choices DESIGN.md calls out:

* §5.1 sets max batch size 32 as the throughput/latency sweet spot — swept.
* §3 migrates periodically for consolidation — on/off, measuring how much
  GPU time the cluster could release to the cloud provider.
* §5 limits prefill to one request per invocation for latency — swept.
"""

import numpy as np

from repro.bench.fig13_cluster import Fig13Scale, run_fig13_simulation
from repro.bench.reporting import FigureTable
from repro.cluster.scheduler import SchedulerConfig
from repro.models.config import LLAMA2_7B
from repro.runtime.backend import SimulatedBackend
from repro.runtime.engine import EngineConfig, GpuEngine
from repro.runtime.serve import requests_from_trace, serve_requests
from repro.workloads.trace import generate_trace

SCALE = Fig13Scale(num_gpus=4, duration=120.0, peak_rate=6.0, bucket=10.0)


def _gpu_idle_fraction(result, num_gpus: int, bucket: float) -> float:
    """Fraction of (gpu x bucket) cells with zero batch — releasable time."""
    duration = result.duration
    idle_cells = 0
    total_cells = 0
    for i in range(num_gpus):
        gid = f"gpu{i:02d}"
        series = result.metrics.batch_size_series(gid, bucket, duration)
        for _, v in series:
            total_cells += 1
            idle_cells += v == 0.0
    return idle_cells / total_cells if total_cells else 1.0


def run_migration_ablation(seed: int = 0) -> FigureTable:
    table = FigureTable(
        figure_id="Ablation migration",
        title="Consolidation migration on/off (4 GPUs, ramp load)",
        headers=["consolidation", "migrations", "idle_gpu_fraction", "tok_per_s_peak"],
    )
    for consolidation in (True, False):
        cfg = SchedulerConfig(consolidation=consolidation, migration_interval=5.0)
        result, scale = run_fig13_simulation(
            scale=SCALE, seed=seed, scheduler_config=cfg
        )
        tputs = [v for _, v in result.metrics.throughput_series(scale.bucket, result.duration)]
        table.add_row(
            "on" if consolidation else "off",
            result.num_migrations,
            _gpu_idle_fraction(result, scale.num_gpus, scale.bucket),
            max(tputs) if tputs else 0.0,
        )
    return table


def run_batch_size_sweep(seed: int = 0, n_requests: int = 96) -> FigureTable:
    table = FigureTable(
        figure_id="Ablation max batch size",
        title="Max batch size sweep (single GPU, 7B, skewed workload)",
        headers=["max_batch_size", "tok_per_s", "mean_step_ms"],
    )
    trace = generate_trace(n_requests, "skewed", seed=seed)
    for max_bs in (1, 4, 8, 16, 32, 64):
        engine = GpuEngine(
            "gpu0", SimulatedBackend(LLAMA2_7B), EngineConfig(max_batch_size=max_bs)
        )
        result = serve_requests(engine, requests_from_trace(trace), keep_steps=True)
        # Inter-token latency of a running request = the step time it waits.
        steps = [s.latency for s in result.steps if s.num_decode > 0]
        mean_step_ms = 1e3 * float(np.mean(steps)) if steps else 0.0
        table.add_row(max_bs, result.throughput, mean_step_ms)
    return table


def run_prefill_limit_sweep(seed: int = 0, n_requests: int = 64) -> FigureTable:
    table = FigureTable(
        figure_id="Ablation prefill limit",
        title="Prefills per invocation (paper uses 1 to bound latency)",
        headers=["prefill_limit", "tok_per_s", "p99_latency_s_per_tok"],
    )
    trace = generate_trace(n_requests, "skewed", seed=seed)
    for limit in (1, 2, 4, 8):
        engine = GpuEngine(
            "gpu0",
            SimulatedBackend(LLAMA2_7B),
            EngineConfig(max_batch_size=32, prefill_batch_limit=limit),
        )
        result = serve_requests(engine, requests_from_trace(trace), keep_steps=False)
        table.add_row(limit, result.throughput, result.percentile_latency(99))
    return table


def test_migration_consolidates(benchmark, emit):
    table = benchmark.pedantic(
        run_migration_ablation, rounds=1, iterations=1, warmup_rounds=0
    )
    emit(table)
    rows = {r[0]: r for r in table.rows}
    assert rows["on"][1] > 0  # migrations actually happen
    assert rows["off"][1] == 0
    # Consolidation frees at least as much GPU time as no-consolidation.
    assert rows["on"][2] >= rows["off"][2] - 0.02


def test_batch_size_sweet_spot(benchmark, emit):
    table = benchmark.pedantic(
        run_batch_size_sweep, rounds=1, iterations=1, warmup_rounds=0
    )
    emit(table)
    tput = {r[0]: r[1] for r in table.rows}
    step = {r[0]: r[2] for r in table.rows}
    # Throughput rises steeply to 32 then flattens (diminishing returns)...
    assert tput[32] > 5 * tput[1]
    assert tput[64] < 1.4 * tput[32]
    # ...while the inter-token step time keeps rising with batch size — the
    # throughput/latency tradeoff behind the paper's choice of 32.
    assert step[64] > step[32] > step[8]


def test_prefill_limit_tradeoff(benchmark, emit):
    table = benchmark.pedantic(
        run_prefill_limit_sweep, rounds=1, iterations=1, warmup_rounds=0
    )
    emit(table)
    rows = {r[0]: r for r in table.rows}
    # All limits finish the trace with throughput in the same band; the
    # paper picks 1 for tail latency.
    tputs = [rows[l][1] for l in (1, 2, 4, 8)]
    assert max(tputs) < 1.6 * min(tputs)
