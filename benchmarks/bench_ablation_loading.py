"""Ablation (§5.2): whole-model vs layer-by-layer LoRA loading.

Quantifies the trade-off the paper reasons about qualitatively: layered
loading pipelines PCIe copies against per-layer prefill compute, shaving
time-to-first-token, but the saving is bounded by the (tiny) whole-model
load time — which is why Punica ships the simple strategy.
"""

from repro.bench.reporting import FigureTable
from repro.hw.kernels import KernelCostModel
from repro.hw.pcie import PCIE_GEN4_X16
from repro.hw.spec import A100_80G
from repro.models.config import LLAMA2_7B, LLAMA2_13B, LlamaConfig
from repro.models.perf import StepWorkload, transformer_layer_latency
from repro.runtime.layered_loading import time_to_first_token
from repro.utils.units import MS


def run_loading_ablation(
    configs: "tuple[LlamaConfig, ...]" = (LLAMA2_7B, LLAMA2_13B),
    prompt_len: int = 256,
    rank: int = 16,
) -> FigureTable:
    kcm = KernelCostModel(A100_80G)
    table = FigureTable(
        figure_id="Ablation loading",
        title="Whole-model vs layer-by-layer LoRA loading (TTFT of a cold request)",
        headers=["model", "whole_model_ttft_ms", "layered_ttft_ms", "saving_ms"],
    )
    for config in configs:
        layer_bytes = [config.lora_bytes(rank) / config.num_layers] * config.num_layers
        work = StepWorkload(prefill_lens=(prompt_len,), lora_segments=(prompt_len,))
        layer_compute = transformer_layer_latency(config, kcm, work)
        whole = time_to_first_token(PCIE_GEN4_X16, layer_bytes, layer_compute, layered=False)
        layered = time_to_first_token(PCIE_GEN4_X16, layer_bytes, layer_compute, layered=True)
        table.add_row(config.name, whole / MS, layered / MS, (whole - layered) / MS)
    table.add_note("paper §5.2: savings are ms-scale vs thousands of 30ms decode steps")
    return table


def test_layered_loading_tradeoff(benchmark, emit):
    table = benchmark(run_loading_ablation)
    emit(table)
    for model, whole, layered, saving in table.rows:
        assert layered <= whole  # pipelining never hurts at zero-cost overlap
        assert saving < 5.0  # ms-scale: justifies the simple strategy
        assert saving >= 0.0
