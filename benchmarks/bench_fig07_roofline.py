"""Figure 7 bench: SGMV roofline placement."""

from repro.bench.fig07_roofline import run_fig07


def test_fig07_roofline(benchmark, emit):
    table = benchmark(run_fig07)
    emit(table)

    by_dist = {}
    for dist, bs, intensity, achieved, roof in table.rows:
        by_dist.setdefault(dist, {})[bs] = (intensity, achieved, roof)

    # Distinct: intensity constant across batch sizes, throughput grows.
    d = by_dist["distinct"]
    assert abs(d[64][0] - d[1][0]) / d[1][0] < 0.02
    assert d[64][1] > 5 * d[1][1]

    # Identical: intensity grows with batch (weight reuse), rides bandwidth
    # roof — bounded by h_in*h_out/(h_in+h_out) ~ 16 FLOP/byte as token IO
    # starts to dominate.
    i = by_dist["identical"]
    assert i[64][0] > 10 * i[1][0]

    # Nothing exceeds the roofline bound.
    for dist, bs, intensity, achieved, roof in table.rows:
        assert achieved <= roof * 1.0001, (dist, bs)

    # Uniform/Skewed sit between Distinct and Identical at bs 64.
    assert d[64][1] <= by_dist["uniform"][64][1] <= i[64][1] * 1.05
