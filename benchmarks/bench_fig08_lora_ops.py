"""Figure 8 bench: LoRA operator latency (modelled A100 + real NumPy kernels).

Two layers of measurement: the modelled A100 latencies that reproduce the
figure, and genuine pytest-benchmark wall-clock of the three *numerically
real* implementations on this machine's CPU — confirming SGMV's IO
argument holds for the NumPy implementations too.
"""

import numpy as np
import pytest

from repro.bench.fig08_lora_ops import run_fig08
from repro.core.ops import add_lora_gather_bmm, add_lora_loop, add_lora_sgmv
from repro.core.segments import segments_from_sizes
from repro.utils.rng import new_rng
from repro.workloads.popularity import segment_sizes_for


def test_fig08_modelled_table(benchmark, emit):
    table = benchmark(run_fig08)
    emit(table)

    rows = {(r[0], r[1]): r for r in table.rows}
    # Paper endpoints: SGMV ~37us at bs1, flat for Identical.
    sgmv_bs1 = rows[("distinct", 1)][4]
    assert 30 < sgmv_bs1 < 45
    assert rows[("identical", 64)][4] < 1.25 * sgmv_bs1
    # SGMV beats Gather-BMM beats Loop on Distinct bs 64.
    dist64 = rows[("distinct", 64)]
    loop, gbmm, sgmv = dist64[2], dist64[3], dist64[4]
    assert sgmv < gbmm < loop
    assert loop > 10 * sgmv


def _problem(dist, bs=64, h=1024, rank=16, seed=0):
    sizes = segment_sizes_for(dist, bs)
    seg = segments_from_sizes(sizes)
    rng = new_rng(seed)
    x = rng.standard_normal((bs, h)).astype(np.float32)
    wa = rng.standard_normal((len(sizes), h, rank)).astype(np.float32)
    wb = rng.standard_normal((len(sizes), rank, h)).astype(np.float32)
    y = np.zeros((bs, h), dtype=np.float32)
    return y, x, wa, wb, seg


@pytest.mark.parametrize("dist", ["distinct", "identical"])
def test_numpy_sgmv_kernel(benchmark, dist):
    y, x, wa, wb, seg = _problem(dist)
    benchmark(lambda: add_lora_sgmv(y, x, wa, wb, seg))


@pytest.mark.parametrize("dist", ["distinct", "identical"])
def test_numpy_loop_kernel(benchmark, dist):
    y, x, wa, wb, seg = _problem(dist)
    benchmark(lambda: add_lora_loop(y, x, wa, wb, seg))


@pytest.mark.parametrize("dist", ["distinct", "identical"])
def test_numpy_gather_bmm_kernel(benchmark, dist):
    y, x, wa, wb, seg = _problem(dist)
    benchmark(lambda: add_lora_gather_bmm(y, x, wa, wb, seg))
