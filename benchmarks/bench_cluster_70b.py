"""Extension: cluster serving of 70B with tensor-parallel replica groups.

Combines the paper's two multi-GPU results: Testbed #2's 16 A100-40G GPUs
host two 8-way tensor-parallel Llama-2 70B replicas (Fig 12's parallel
scheme), and the Punica scheduler treats each TP group as one schedulable
unit under the Fig 13 ramp workload. Checks that consolidation and the
throughput-tracks-load shape survive when the schedulable unit is a whole
TP group.
"""

import numpy as np

from repro.bench.reporting import FigureTable
from repro.cluster.scheduler import SchedulerConfig
from repro.cluster.simulator import ClusterSimulator
from repro.hw.interconnect import NVLINK_A100
from repro.hw.spec import A100_40G
from repro.models.config import LLAMA2_70B
from repro.models.tp import TensorParallelConfig
from repro.runtime.backend import SimulatedBackend
from repro.runtime.engine import EngineConfig, GpuEngine
from repro.workloads.arrivals import PoissonArrivals, RampProfile
from repro.workloads.trace import generate_trace

NUM_GROUPS = 2
TP_DEGREE = 8
DURATION = 180.0
PEAK_RATE = 4.0
BUCKET = 15.0


def run_cluster_70b(seed: int = 0) -> FigureTable:
    tp = TensorParallelConfig(world_size=TP_DEGREE, interconnect=NVLINK_A100)
    engines = [
        GpuEngine(
            f"tpgroup{i}",
            SimulatedBackend(LLAMA2_70B, gpu=A100_40G, tp=tp),
            EngineConfig(max_batch_size=32),
        )
        for i in range(NUM_GROUPS)
    ]
    arrivals = PoissonArrivals(
        rate=RampProfile(duration=DURATION, peak_rate=PEAK_RATE, hold_fraction=0.2),
        duration=DURATION,
    )
    trace = generate_trace(
        int(DURATION * PEAK_RATE) + 32, "skewed", seed=seed, arrivals=arrivals
    )
    sim = ClusterSimulator(engines, SchedulerConfig(migration_interval=15.0))
    result = sim.run(trace)

    table = FigureTable(
        figure_id="Cluster 70B",
        title=f"{NUM_GROUPS}x TP-{TP_DEGREE} llama2-70b replicas, ramp load "
              f"({NUM_GROUPS * TP_DEGREE} GPUs total)",
        headers=["t_start_s", "req_per_s", "tok_per_s", "bs_group0", "bs_group1"],
    )
    rate = dict(result.metrics.request_rate_series(BUCKET, result.duration))
    tput = dict(result.metrics.throughput_series(BUCKET, result.duration))
    per_group = {
        gid: dict(result.metrics.batch_size_series(gid, BUCKET, result.duration))
        for gid in ("tpgroup0", "tpgroup1")
    }
    for t in sorted(rate):
        table.add_row(
            t, rate[t], tput.get(t, 0.0),
            per_group["tpgroup0"].get(t, 0.0), per_group["tpgroup1"].get(t, 0.0),
        )
    table.add_note(f"requests finished: {result.finished_requests}/{len(trace)}")
    table.add_note(f"migrations between TP groups: {result.num_migrations}")
    return table


def test_cluster_70b_tp_groups(benchmark, emit):
    table = benchmark.pedantic(run_cluster_70b, rounds=1, iterations=1, warmup_rounds=0)
    emit(table)

    rates = table.column("req_per_s")
    tputs = table.column("tok_per_s")
    # Throughput tracks the ramp.
    assert np.corrcoef(rates, tputs)[0, 1] > 0.8
    # Consolidation: group1 (higher UUID) carries load first; group0 only
    # joins when group1 saturates near the peak.
    bs0 = table.column("bs_group0")
    bs1 = table.column("bs_group1")
    assert sum(bs1) > sum(bs0)
    # Peak throughput lands in the hundreds of tok/s (cf. Fig 12's ~440/GPU
    # group — two groups, minus ramp/queueing effects).
    assert 300 < max(tputs) < 2000
