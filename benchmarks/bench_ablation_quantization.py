"""Ablation (§8): quantized backbone weights free KvCache headroom.

The paper's related-work section argues model quantization "saves more
headroom for KvCache, hence enabling Punica to serve requests of longer
sequences without migration". This bench serves a memory-tight workload
with the backbone held at fp16 / int8 / int4 footprints (KvCache capacity
= HBM - weights - workspace) and counts evictions and throughput.
"""

from repro.bench.reporting import FigureTable
from repro.hw.spec import A100_80G
from repro.models.config import LLAMA2_13B
from repro.runtime.backend import SimulatedBackend
from repro.runtime.engine import EngineConfig, GpuEngine
from repro.runtime.serve import requests_from_trace, serve_requests
from repro.utils.units import GIB
from repro.workloads.lengths import ShareGptLengths
from repro.workloads.trace import generate_trace

#: Long-sequence workload that pressures the KvCache.
LENGTHS = ShareGptLengths(
    prompt_mu=6.2, prompt_sigma=0.6, response_mu=6.6, response_sigma=0.5,
    max_prompt_len=2048, max_response_len=2048,
)


def run_quantization_ablation(n_requests: int = 48, seed: int = 0) -> FigureTable:
    table = FigureTable(
        figure_id="Ablation quantization",
        title="Backbone precision vs KvCache headroom (13B on A100-80G, long sequences)",
        headers=["weight_precision", "kv_capacity_gib", "evictions", "tok_per_s"],
    )
    trace = generate_trace(n_requests, "skewed", seed=seed, lengths=LENGTHS)
    for label, bytes_per_param in (("fp16", 2.0), ("int8", 1.0), ("int4", 0.5)):
        weights = LLAMA2_13B.param_count() * bytes_per_param
        kv_capacity = A100_80G.hbm_capacity - weights - 2 * GIB
        # Tighten further so the precision difference matters at this scale.
        kv_capacity *= 0.06
        backend = SimulatedBackend(
            LLAMA2_13B, gpu=A100_80G, kv_capacity_bytes=kv_capacity
        )
        engine = GpuEngine("gpu0", backend, EngineConfig(max_batch_size=32))
        result = serve_requests(engine, requests_from_trace(trace), keep_steps=True)
        evictions = sum(len(s.evicted) for s in result.steps)
        table.add_row(label, kv_capacity / GIB, evictions, result.throughput)
    table.add_note("paper §8: quantization frees KvCache headroom, fewer migrations")
    return table


def test_quantization_frees_headroom(benchmark, emit):
    table = benchmark.pedantic(
        run_quantization_ablation, rounds=1, iterations=1, warmup_rounds=0
    )
    emit(table)
    rows = {r[0]: r for r in table.rows}
    # Smaller weights -> strictly more KvCache capacity.
    assert rows["int4"][1] > rows["int8"][1] > rows["fp16"][1]
    # More headroom -> no more evictions than the tighter configurations.
    assert rows["int4"][2] <= rows["fp16"][2]
    # And at least equal throughput.
    assert rows["int4"][3] >= 0.95 * rows["fp16"][3]
