"""Figure 1 bench: prefill/decode latency vs batch size."""

from repro.bench.fig01_batching import run_fig01


def test_fig01_batching(benchmark, emit):
    table = benchmark(run_fig01)
    emit(table)

    rows = {(r[0], r[1], r[2]): r[3] for r in table.rows}
    # Decode batching is nearly free for short sequences (11 -> 13 ms).
    assert rows[("decode", 128, 32)] < 1.6 * rows[("decode", 128, 1)]
    # ...but costs real time for long sequences (17 -> 34 ms).
    assert rows[("decode", 2048, 32)] > 2.0 * rows[("decode", 2048, 1)]
    # Prefill latency is roughly proportional to batch size.
    assert 12 < rows[("prefill", 2048, 32)] / rows[("prefill", 2048, 1)] < 40
