"""Fast-path perf-regression gate (CI entry point).

Times the Figure-13 cluster scenario through the fast-path engine and the
reference engine, verifies both produced the same simulation, and checks
the numbers against the thresholds in ``benchmarks/BENCH_perf.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_gate.py            # measure, print
    PYTHONPATH=src python benchmarks/bench_perf_gate.py --check    # CI gate: 2 rounds,
                                                                   # exit 1 on violation
    PYTHONPATH=src python benchmarks/bench_perf_gate.py --update   # rewrite BENCH_perf.json

``--check`` runs the measurement twice: besides the speedup and absolute
throughput floors, it bounds run-to-run variance so a noisy runner fails
loudly instead of gating on a fluke sample.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.perf_gate import BENCH_JSON, run_perf_gate


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--check", action="store_true",
        help="gate mode: two rounds, nonzero exit on any threshold violation",
    )
    parser.add_argument(
        "--update", action="store_true",
        help=f"rewrite {BENCH_JSON.name} with the measured numbers",
    )
    parser.add_argument(
        "--rounds", type=int, default=None,
        help="measurement rounds (default: 2 with --check, else 1)",
    )
    parser.add_argument(
        "--scenario", default=None, choices=["fig13_quick", "fig13_1m", "all"],
        help="which gate to run (default: all with --check, else fig13_quick)",
    )
    args = parser.parse_args(argv)
    rounds = args.rounds if args.rounds is not None else (2 if args.check else 1)
    scenario = args.scenario or ("all" if args.check else "fig13_quick")
    table, failures = run_perf_gate(
        seed=args.seed, rounds=rounds, write_json=args.update, scenario=scenario
    )
    print(table.render())
    if args.check and failures:
        for failure in failures:
            print(f"PERF GATE FAILURE: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
