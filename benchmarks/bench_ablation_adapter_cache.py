"""Ablation: tiered adapter cache + popularity-driven prefetching.

Punica's on-demand loading (§5.2) prices a single cold load; this ablation
asks what the adapter *lifecycle* does to cold-start latency at the cluster
level. Engines run a unified KvCache/adapter byte budget (S-LoRA) with a
few GPU adapter slots; a long-tailed Zipf trace forces the
DISK -> HOST -> GPU ladder. Prefetching hot adapters (CaraServe) should move
the disk leg — and for promoted adapters the PCIe leg too — off the
critical path, cutting the TTFT of each adapter's first request.
"""

from repro.bench.adapter_cache import run_adapter_cache_ablation


def test_adapter_cache_ablation(benchmark, emit):
    table = benchmark(run_adapter_cache_ablation)
    emit(table)
    rows = {row[0]: row for row in table.rows}
    cold = {v: rows[v][table.headers.index("cold_ttft_ms")] for v in rows}
    disk = {v: rows[v][table.headers.index("disk_hits")] for v in rows}
    acc = {v: rows[v][table.headers.index("prefetch_acc")] for v in rows}
    # The headline claim: prefetching cuts simulated cold-start latency.
    assert cold["prefetch"] < cold["no-prefetch"]
    # Mechanism check: the saving comes from demand loads skipping the disk
    # tier, and promotions are not wasted speculation.
    assert disk["prefetch"] < disk["no-prefetch"]
    assert acc["no-prefetch"] == 0.0
    assert acc["prefetch"] > 0.25
    # Shrinking the host staging tier erodes the benefit — the tiers matter.
    assert cold["prefetch"] <= cold["prefetch+small-host"]
