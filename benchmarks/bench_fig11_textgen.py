"""Figure 11 bench: single-GPU text generation, Punica vs four baselines.

Runs the full closed-loop serving comparison once (it is a multi-second
simulation, not a microsecond kernel) and checks the paper's headline
shapes: ~12x on multi-LoRA workloads, near-parity with backbone-only vLLM
on Identical, Punica flat across workloads.
"""

from repro.bench.fig11_textgen import run_fig11


def test_fig11_textgen(benchmark, emit):
    table = benchmark.pedantic(run_fig11, rounds=1, iterations=1, warmup_rounds=0)
    emit(table)

    tput = {(r[0], r[1], r[2]): r[3] for r in table.rows}

    for model in ("llama2-7b", "llama2-13b"):
        # Headline: Punica ~12x the best baseline on Distinct.
        best_baseline = max(
            tput[(model, "distinct", s)]
            for s in ("hf", "deepspeed", "faster_transformer", "vllm")
        )
        ratio = tput[(model, "distinct", "punica")] / best_baseline
        assert ratio > 8.0, (model, ratio)

        # Punica consistent across all four workloads.
        punica = [
            tput[(model, d, "punica")]
            for d in ("distinct", "uniform", "skewed", "identical")
        ]
        assert max(punica) < 1.5 * min(punica), (model, punica)

        # vLLM backbone-only slightly ahead on Identical, but within ~25%.
        vllm_ident = tput[(model, "identical", "vllm")]
        punica_ident = tput[(model, "identical", "punica")]
        assert vllm_ident > punica_ident
        assert vllm_ident < 1.35 * punica_ident

        # HF is the slowest system on every workload.
        for dist in ("distinct", "uniform", "skewed", "identical"):
            hf = tput[(model, dist, "hf")]
            assert all(
                tput[(model, dist, s)] > hf
                for s in ("deepspeed", "faster_transformer", "vllm", "punica")
            )

    # 7B throughput exceeds 13B for every system.
    for key_7b, value in tput.items():
        if key_7b[0] == "llama2-7b":
            key_13b = ("llama2-13b",) + key_7b[1:]
            assert value > tput[key_13b]

    # Absolute band: Punica 7B in the high hundreds of tok/s (paper: 1044).
    assert 700 < tput[("llama2-7b", "distinct", "punica")] < 1500
    assert 400 < tput[("llama2-13b", "distinct", "punica")] < 1000
