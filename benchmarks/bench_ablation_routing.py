"""Ablation (§5.1): Punica's pack-to-busiest routing vs least-loaded balancing.

The paper's scheduler deliberately *anti*-balances: new requests go to the
GPU with the largest working set, so "a busy GPU is likely to stay busy
... and an idle GPU is likely to stay idle", which is what makes GPUs
releasable. This bench runs the same ramp trace under both policies and
measures the consolidation outcome (idle GPU-bucket fraction) and the
throughput cost (should be ~none at equal capacity).
"""

from repro.bench.reporting import FigureTable
from repro.cluster.scheduler import SchedulerConfig
from repro.cluster.simulator import ClusterSimulator
from repro.models.config import LLAMA2_7B
from repro.runtime.backend import SimulatedBackend
from repro.runtime.engine import EngineConfig, GpuEngine
from repro.workloads.arrivals import PoissonArrivals, RampProfile
from repro.workloads.trace import generate_trace

NUM_GPUS = 6
DURATION = 180.0
PEAK_RATE = 8.0
BUCKET = 10.0


def _engines():
    return [
        GpuEngine(
            f"gpu{i:02d}", SimulatedBackend(LLAMA2_7B), EngineConfig(max_batch_size=32)
        )
        for i in range(NUM_GPUS)
    ]


def _idle_fraction(result) -> float:
    idle = total = 0
    for i in range(NUM_GPUS):
        series = result.metrics.batch_size_series(f"gpu{i:02d}", BUCKET, result.duration)
        for _, v in series:
            total += 1
            idle += v == 0.0
    return idle / total if total else 1.0


def run_routing_ablation(seed: int = 0) -> FigureTable:
    arrivals = PoissonArrivals(
        rate=RampProfile(duration=DURATION, peak_rate=PEAK_RATE, hold_fraction=0.2),
        duration=DURATION,
    )
    trace = generate_trace(
        int(DURATION * PEAK_RATE) + 64, "skewed", seed=seed, arrivals=arrivals
    )
    table = FigureTable(
        figure_id="Ablation routing",
        title="Pack-to-busiest (§5.1) vs least-loaded routing, ramp load",
        headers=["routing", "idle_gpu_fraction", "tok_per_s", "migrations"],
    )
    for routing in ("pack", "spread"):
        sim = ClusterSimulator(
            _engines(),
            SchedulerConfig(routing=routing, migration_interval=10.0,
                            consolidation=False),
        )
        result = sim.run(trace)
        table.add_row(
            routing, _idle_fraction(result), result.throughput, result.num_migrations
        )
    table.add_note("consolidation migration disabled to isolate the routing effect")
    return table


def test_pack_routing_consolidates(benchmark, emit):
    table = benchmark.pedantic(
        run_routing_ablation, rounds=1, iterations=1, warmup_rounds=0
    )
    emit(table)
    rows = {r[0]: r for r in table.rows}
    # Punica's rule leaves meaningfully more GPU-time idle (releasable)...
    assert rows["pack"][1] > rows["spread"][1] + 0.05
    # ...at comparable throughput (same total capacity, same work).
    assert rows["pack"][2] > 0.85 * rows["spread"][2]
