"""Ablation: speculative decoding ITL vs acceptance rate vs batch size.

The same closed-loop decode workload runs with the speculative lane
disarmed (baseline) and armed across a sweep of acceptance rates and
batch sizes. The acceptance shape is the MagicDec trade-off curve: at
high acceptance the multi-token bursts amortize the draft + verify
overhead and inter-token latency drops well below the baseline; at low
acceptance most drafts roll back and speculation loses; and the
break-even acceptance rate climbs with batch size because the chunked
verify grows with batch x (draft_len + 1) tokens while the baseline
decode step grows only with batch.
"""

from repro.bench.spec_ablation import run_one, run_spec_ablation
from repro.runtime.request import RequestState
from repro.runtime.spec import SpecConfig


def _by_batch(table):
    """Group (acceptance, speedup) rows of the ablation table per batch."""
    rows = {}
    for batch, rate, _itl, _base, speedup, _acc, _rounds in table.rows:
        rows.setdefault(batch, []).append((rate, speedup))
    return rows


def test_spec_ablation(benchmark, emit):
    result, tracer = benchmark.pedantic(
        lambda: run_one(0, 8, SpecConfig(draft_len=4, acceptance_rate=0.8)),
        rounds=1,
        iterations=1,
    )
    table = run_spec_ablation(seed=0)
    emit(table)

    # The timed armed run finishes every request to its response limit.
    for req in result.requests:
        assert req.state is RequestState.FINISHED
        assert req.num_generated == req.spec.response_len

    by_batch = _by_batch(table)
    for batch, points in by_batch.items():
        rates = [rate for rate, _ in points]
        speedups = [speedup for _, speedup in points]
        # Low acceptance loses: the round overhead outweighs the burst.
        assert speedups[0] < 1.0, (batch, points)
        # High acceptance wins: bursts amortize the draft + verify cost.
        assert speedups[-1] > 1.0, (batch, points)
        # Speedup is monotone in acceptance within a batch size (up to
        # the discretization of rounds-per-request at small batches).
        for lo, hi in zip(speedups, speedups[1:]):
            assert hi >= lo - 0.01, (batch, points)
        assert rates == sorted(rates)

    # MagicDec: bigger batches make the verify chunk relatively more
    # expensive, so high-acceptance speedup shrinks as batch grows.
    batches = sorted(by_batch)
    top_speedups = [by_batch[b][-1][1] for b in batches]
    assert top_speedups == sorted(top_speedups, reverse=True), top_speedups
