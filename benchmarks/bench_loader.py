"""§5.2 bench: on-demand LoRA loading hides behind one decode step."""

from repro.bench.loader_bench import run_loader_bench


def test_loader_latency(benchmark, emit):
    table = benchmark(run_loader_bench)
    emit(table)

    for model, layer_us, model_ms, step_ms, hidden in table.rows:
        # Whole-model load stays within one decode step (the §5.2 argument
        # for simple whole-model async loading over layer-by-layer).
        assert hidden == "yes", model
        assert model_ms < step_ms
        # Order-of-magnitude check vs the paper's 50us/2ms quotes.
        assert 20 < layer_us < 400
        assert 1 < model_ms < 30
