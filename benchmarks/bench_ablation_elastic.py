"""Ablation (§5.1): elastic GPU pool vs a statically provisioned cluster.

The paper's scheduler is designed so "a busy GPU is likely to stay busy
... an idle GPU is likely to stay idle", enabling the cloud allocations of
§5.1. This bench runs the Fig 13 ramp on (a) a static max-size pool and
(b) an elastic pool that provisions on scale-up hints and releases GPUs
idle past a grace period — and reports the GPU-seconds each pays.
"""

from repro.bench.reporting import FigureTable
from repro.cluster.elastic import ElasticClusterSimulator, ElasticConfig
from repro.cluster.scheduler import SchedulerConfig
from repro.cluster.simulator import ClusterSimulator
from repro.models.config import LLAMA2_7B
from repro.runtime.backend import SimulatedBackend
from repro.runtime.engine import EngineConfig, GpuEngine
from repro.workloads.arrivals import PoissonArrivals, RampProfile
from repro.workloads.trace import generate_trace

NUM_GPUS = 6
DURATION = 240.0
PEAK_RATE = 10.0


def _engine_factory(gpu_id: str) -> GpuEngine:
    return GpuEngine(
        gpu_id, SimulatedBackend(LLAMA2_7B), EngineConfig(max_batch_size=32)
    )


def _ramp_trace(seed: int = 0):
    arrivals = PoissonArrivals(
        rate=RampProfile(duration=DURATION, peak_rate=PEAK_RATE, hold_fraction=0.2),
        duration=DURATION,
    )
    return generate_trace(
        int(DURATION * PEAK_RATE) + 64, "skewed", seed=seed, arrivals=arrivals
    )


def run_elastic_ablation(seed: int = 0) -> FigureTable:
    trace = _ramp_trace(seed)
    sched_cfg = SchedulerConfig(migration_interval=10.0)

    static = ClusterSimulator(
        [_engine_factory(f"s{i:02d}") for i in range(NUM_GPUS)], sched_cfg
    ).run(trace)

    elastic_sim = ElasticClusterSimulator(
        _engine_factory,
        ElasticConfig(
            min_gpus=1, max_gpus=NUM_GPUS, provision_delay=15.0,
            release_idle_after=20.0, check_interval=5.0,
        ),
        sched_cfg,
    )
    elastic = elastic_sim.run_elastic(trace)

    table = FigureTable(
        figure_id="Ablation elastic",
        title=f"Static {NUM_GPUS}-GPU pool vs elastic pool (§5.1 cloud allocation)",
        headers=["pool", "gpu_seconds", "finished", "duration_s",
                 "mean_latency_s_per_tok"],
    )
    table.add_row(
        "static", NUM_GPUS * static.duration, static.finished_requests,
        static.duration, static.mean_normalized_latency(),
    )
    table.add_row(
        "elastic", elastic.gpu_seconds(), elastic.base.finished_requests,
        elastic.base.duration, elastic.base.mean_normalized_latency(),
    )
    table.add_note(
        f"elastic: {elastic.scale_ups} scale-ups, {elastic.releases} releases, "
        f"peak pool {elastic.peak_pool_size()}"
    )
    return table


def test_elastic_pool_saves_gpu_seconds(benchmark, emit):
    table = benchmark.pedantic(
        run_elastic_ablation, rounds=1, iterations=1, warmup_rounds=0
    )
    emit(table)
    rows = {r[0]: r for r in table.rows}
    # Same work completed...
    assert rows["elastic"][2] == rows["static"][2]
    # ...for substantially fewer GPU-seconds...
    assert rows["elastic"][1] < 0.7 * rows["static"][1]
    # ...at a bounded latency penalty (provisioning lag + queueing).
    assert rows["elastic"][4] < 6.0 * max(rows["static"][4], 1e-9)
