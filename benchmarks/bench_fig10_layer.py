"""Figure 10 bench: transformer layer latency with the LoRA operator."""

from repro.bench.fig10_layer import run_fig10


def test_fig10_layer(benchmark, emit):
    table = benchmark(run_fig10)
    emit(table)

    rows = {(r[0], r[1], r[2], r[3]): r[4] for r in table.rows}

    # 7B @ seq 512: batching effect ~ +72% from bs 1 to 32 (paper).
    ratio = rows[("llama2-7b", 512, "identical", 32)] / rows[("llama2-7b", 512, "identical", 1)]
    assert 1.2 < ratio < 2.6

    # Batching effect weaker at the longer sequence? No — attention grows
    # with seq, so relative increase is larger at 2048 (paper's point is
    # the absolute latency grows; the *benefit* of batching shrinks).
    ratio_long = (
        rows[("llama2-7b", 2048, "identical", 32)]
        / rows[("llama2-7b", 2048, "identical", 1)]
    )
    assert ratio_long > ratio

    # Layer latency roughly workload-agnostic (LoRA addon small): at bs 32,
    # distinct within 25% of identical for both models and seq lengths.
    for model in ("llama2-7b", "llama2-13b"):
        for seq in (512, 2048):
            d = rows[(model, seq, "distinct", 32)]
            i = rows[(model, seq, "identical", 32)]
            assert abs(d - i) / i < 0.25, (model, seq, d, i)

    # 13B layer slower than 7B layer.
    assert rows[("llama2-13b", 512, "uniform", 8)] > rows[("llama2-7b", 512, "uniform", 8)]
