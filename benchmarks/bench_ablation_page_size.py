"""Ablation (§5.4): KvCache page size — fragmentation vs bookkeeping.

The paper's layout uses pages of ``P`` tokens. Small pages bound internal
fragmentation (≤ (P-1)/P per request) but mean more page-table entries and
more frequent allocator calls; large pages waste tail slots. This bench
sweeps ``P`` over ShareGPT-like sequence lengths and reports fragmentation
and effective capacity (requests admitted into a fixed byte budget).
"""

import numpy as np

from repro.bench.reporting import FigureTable
from repro.kvcache.page import PageAllocator, pages_needed
from repro.models.config import LLAMA2_7B
from repro.utils.units import GIB
from repro.workloads.lengths import ShareGptLengths

PAGE_SIZES = (1, 4, 8, 16, 32, 64, 128)
BUDGET_BYTES = 16 * GIB


def run_page_size_ablation(n_sequences: int = 400, seed: int = 0) -> FigureTable:
    bpt = LLAMA2_7B.kv_bytes_per_token()
    lengths = ShareGptLengths()
    rng = np.random.default_rng(seed)
    seq_lens = [s.total_len for s in lengths.sample_batch(n_sequences, rng)]

    table = FigureTable(
        figure_id="Ablation page size",
        title="KvCache page size sweep (7B, ShareGPT-like sequence lengths)",
        headers=["page_size", "internal_fragmentation", "admitted_of_400", "pages_managed"],
    )
    for p in PAGE_SIZES:
        total_pages = int(BUDGET_BYTES // (p * bpt))
        alloc = PageAllocator(total_pages=total_pages, page_size=p)
        admitted = 0
        for i, s in enumerate(seq_lens):
            if alloc.can_allocate(s):
                alloc.allocate(f"s{i}", s)
                admitted += 1
        table.add_row(p, alloc.internal_fragmentation(), admitted, alloc.used_pages)
    table.add_note("paper uses paged KvCache 'to minimize memory fragmentation' (§5.4)")
    return table


def test_page_size_tradeoff(benchmark, emit):
    table = benchmark(run_page_size_ablation)
    emit(table)
    rows = {r[0]: r for r in table.rows}
    # Fragmentation grows with page size and is bounded by (P-1)/P.
    frags = [rows[p][1] for p in PAGE_SIZES]
    assert frags == sorted(frags)
    for p in PAGE_SIZES:
        assert rows[p][1] <= (p - 1) / p + 1e-9
    # Page-table entries shrink as pages grow.
    assert rows[128][3] < rows[1][3]
    # Tiny pages admit at least as many sequences into the same budget.
    assert rows[1][2] >= rows[128][2]
    # The paper's P=16 region: negligible fragmentation (<5%).
    assert rows[16][1] < 0.05
