"""Extension: project the paper's headline onto newer hardware.

The analytical model makes "what if the testbed were H100s?" a one-line
question: add a GpuSpec and rerun Fig 11. The qualitative claim — the
multi-LoRA gap comes from batching, not from the device — should be
invariant, while absolute tok/s scales with HBM bandwidth (decode is
memory-bound).
"""

from repro.baselines.framework import PUNICA, VLLM, build_engine
from repro.bench.reporting import FigureTable
from repro.hw.spec import A100_80G, GpuSpec
from repro.models.config import LLAMA2_7B
from repro.runtime.serve import requests_from_trace, serve_requests
from repro.utils.units import GB, GIB, TB
from repro.workloads.trace import generate_trace

#: H100 SXM: 989 TFLOP/s dense fp16, 3.35 TB/s HBM3. Kernel-level
#: calibration constants (launch overheads etc.) are kept at A100 values —
#: a conservative projection.
H100_80G = GpuSpec(
    name="H100-SXM5-80GB",
    peak_fp16_flops=989 * TB,
    hbm_bandwidth=3_350 * GB,
    hbm_capacity=80 * GIB,
    num_sms=132,
)

GPUS = (A100_80G, H100_80G)


def run_hardware_projection(n_requests: int = 96, seed: int = 0) -> FigureTable:
    table = FigureTable(
        figure_id="HW projection",
        title="Fig 11 Distinct workload projected across GPU generations (7B)",
        headers=["gpu", "system", "tok_per_s", "punica_over_vllm"],
    )
    trace = generate_trace(n_requests, "distinct", seed=seed)
    for gpu in GPUS:
        tput = {}
        for profile in (VLLM, PUNICA):
            engine = build_engine(profile, LLAMA2_7B, gpu=gpu)
            result = serve_requests(engine, requests_from_trace(trace), keep_steps=False)
            tput[profile.name] = result.throughput
        ratio = tput["punica"] / tput["vllm"]
        for name, v in tput.items():
            table.add_row(gpu.name, name, v, ratio if name == "punica" else "")
    table.add_note("H100 keeps A100 launch-overhead calibration (conservative)")
    return table


def test_hardware_projection(benchmark, emit):
    table = benchmark.pedantic(
        run_hardware_projection, rounds=1, iterations=1, warmup_rounds=0
    )
    emit(table)
    tput = {(r[0], r[1]): r[2] for r in table.rows}
    # Faster memory -> faster decode, for both systems.
    assert tput[("H100-SXM5-80GB", "punica")] > 1.2 * tput[("A100-SXM4-80GB", "punica")]
    assert tput[("H100-SXM5-80GB", "vllm")] > 1.2 * tput[("A100-SXM4-80GB", "vllm")]
    # The multi-LoRA gap survives the hardware generation (within 2x).
    ratios = [r[3] for r in table.rows if r[3] != ""]
    assert len(ratios) == 2
    assert 0.5 < ratios[1] / ratios[0] < 2.0
    assert min(ratios) > 5.0
