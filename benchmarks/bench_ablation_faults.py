"""Ablation: fault injection — throughput dip and recovery after a GPU crash.

A 4-GPU cluster loses one GPU mid-trace. The fault-tolerance layer
re-places the crashed GPU's in-flight requests through the §5.3 evict +
re-prefill path; this bench checks the serving-level consequences: no
request is lost, throughput dips but recovers, and the recovery is fast.
"""

from repro.bench.faults_ablation import (
    CRASH_TIME,
    run_faults_ablation,
    run_faults_simulation,
)
from repro.runtime.request import RequestState


def test_crash_recovery_ablation(benchmark, emit):
    healthy, crashed, injector = benchmark.pedantic(
        lambda: run_faults_simulation(seed=0), rounds=1, iterations=1
    )
    emit(run_faults_ablation(seed=0))

    # The crash actually fired and displaced work.
    assert injector.injected and injector.injected[0].applied
    assert crashed.metrics.fault_count() == 1
    assert crashed.metrics.replacement_count() >= 1

    # Every non-shed request reaches FINISHED with its full token count.
    for req in crashed.requests:
        if req.state is RequestState.FAILED:
            continue
        assert req.state is RequestState.FINISHED
        assert req.num_generated == req.spec.response_len

    # Losing 1 of 4 GPUs must not shed anything.
    assert crashed.failed_requests == 0

    # Throughput recovers: after the crash settles, the crashed cluster
    # still moves tokens at a healthy fraction of the 4-GPU baseline.
    duration = max(healthy.duration, crashed.duration)
    h = dict(healthy.metrics.throughput_series(10.0, duration))
    c = dict(crashed.metrics.throughput_series(10.0, duration))
    tail = [t for t in sorted(h) if t >= CRASH_TIME + 20.0 and h[t] > 0]
    assert tail, "no post-crash buckets with load to compare"
    ratios = [c.get(t, 0.0) / h[t] for t in tail]
    assert max(ratios) > 0.5, f"throughput never recovered: {ratios}"
