"""Figure 9 bench: SGMV latency across LoRA ranks."""

from repro.bench.fig09_rank import run_fig09


def test_fig09_rank_sweep(benchmark, emit):
    table = benchmark(run_fig09)
    emit(table)

    rows = {(r[0], r[1], r[2]): r[3] for r in table.rows}

    # Paper: distinct bs64 at ranks 8/16/32/64 -> 72/75/89/118 us.
    measured = [rows[("distinct", r, 64)] for r in (8, 16, 32, 64)]
    paper = [72, 75, 89, 118]
    for m, p in zip(measured, paper):
        assert abs(m - p) / p < 0.25, (m, p)
    assert measured == sorted(measured)

    # Batch-1 latency nearly rank-independent (~42us in the paper).
    bs1 = [rows[("distinct", r, 1)] for r in (8, 16, 32, 64)]
    assert max(bs1) < 1.2 * min(bs1)

    # Weight sharing flattens the curve for every rank.
    for r in (8, 16, 32, 64):
        assert rows[("identical", r, 64)] < 1.3 * rows[("identical", r, 1)]
        assert rows[("uniform", r, 64)] < 1.5 * rows[("uniform", r, 1)]
