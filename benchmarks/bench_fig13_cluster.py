"""Figure 13 bench: cluster deployment with ramp-up/ramp-down load."""

from repro.bench.fig13_cluster import run_fig13


def test_fig13_cluster(benchmark, emit):
    table = benchmark.pedantic(run_fig13, rounds=1, iterations=1, warmup_rounds=0)
    emit(table)

    rows = table.rows
    rates = [r[1] for r in rows]
    tputs = [r[2] for r in rows]
    actives = [r[3] for r in rows]

    # The ramp: rate peaks mid-experiment.
    peak = rates.index(max(rates))
    assert 0 < peak < len(rates) - 1
    assert rates[0] < max(rates) / 2 and rates[-1] < max(rates) / 2

    # Throughput tracks the request rate (correlation of the two series).
    import numpy as np
    corr = np.corrcoef(rates, tputs)[0, 1]
    assert corr > 0.85

    # Consolidation: active-GPU count also ramps up then back down.
    assert actives[peak] >= max(actives) - 1
    assert actives[0] <= actives[peak] and actives[-1] <= actives[peak]

    # Busy GPUs run large batches (paper: usually at the max batch size).
    mean_batches = [r[4] for r in rows if r[4] > 0]
    assert max(mean_batches) > 20  # near the max batch size of 32
