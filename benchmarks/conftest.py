"""Shared benchmark fixtures: figure-table emission to terminal + files."""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(results_dir, capsys):
    """Print a FigureTable live (bypassing capture) and save it under
    benchmarks/results/<figure_id>.txt so the artifact survives the run."""

    def _emit(table) -> None:
        text = table.render()
        slug = (
            table.figure_id.lower()
            .replace(" ", "_")
            .replace("§", "sec")
            .replace(".", "_")
        )
        (results_dir / f"{slug}.txt").write_text(text + "\n")
        with capsys.disabled():
            print("\n" + text)

    return _emit
