"""Ablation: the SGMV kernel's end-to-end value (Fig 8, system level).

Fig 8 compares Loop / Gather-BMM / SGMV as standalone operators. Here the
*whole serving stack* is identical — continuous batching, paged KvCache,
multi-LoRA scheduling — and only the LoRA operator implementation changes.
This isolates how much of Punica's Fig 11 throughput is attributable to
the SGMV kernel itself rather than to the batching runtime around it.
"""

from repro.bench.reporting import FigureTable
from repro.models.config import LLAMA2_7B
from repro.models.perf import PerfFlags
from repro.runtime.backend import SimulatedBackend
from repro.runtime.engine import EngineConfig, GpuEngine
from repro.runtime.serve import requests_from_trace, serve_requests
from repro.workloads.trace import generate_trace

IMPLS = ("sgmv", "gather_bmm", "loop")


def run_lora_impl_ablation(n_requests: int = 96, seed: int = 0) -> FigureTable:
    table = FigureTable(
        figure_id="Ablation lora impl",
        title="LoRA operator inside the full engine (7B, Distinct, bs<=32)",
        headers=["lora_impl", "tok_per_s", "slowdown_vs_sgmv"],
    )
    trace = generate_trace(n_requests, "distinct", seed=seed)
    results = {}
    for impl in IMPLS:
        backend = SimulatedBackend(LLAMA2_7B, flags=PerfFlags(lora_impl=impl))
        engine = GpuEngine("gpu0", backend, EngineConfig(max_batch_size=32))
        result = serve_requests(engine, requests_from_trace(trace), keep_steps=False)
        results[impl] = result.throughput
    for impl in IMPLS:
        table.add_row(impl, results[impl], results["sgmv"] / results[impl])
    table.add_note(
        "same runtime, same scheduling — only the batched LoRA operator differs"
    )
    return table


def test_sgmv_wins_end_to_end(benchmark, emit):
    table = benchmark.pedantic(
        run_lora_impl_ablation, rounds=1, iterations=1, warmup_rounds=0
    )
    emit(table)
    rows = {r[0]: r for r in table.rows}
    assert rows["sgmv"][2] == 1.0
    # Gather-BMM costs real throughput; Loop is catastrophic (Fig 8's story
    # surviving the trip through the full system).
    assert rows["gather_bmm"][2] > 1.2
    assert rows["loop"][2] > 3.0
    assert rows["loop"][1] < rows["gather_bmm"][1] < rows["sgmv"][1]
