"""Plumbing tests for the perf-regression gate (no wall-clock assertions).

The gate's *timing* thresholds only run in the dedicated CI job
(``benchmarks/bench_perf_gate.py --check``) — asserting wall-clock in
tier-1 would make the suite flaky on loaded machines. Tier-1 instead pins
everything deterministic about the gate: the threshold logic, the JSON
schema, the equivalence cross-check, and the CLI wiring, using either
fabricated measurements or a miniature fig13 scale.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.fig13_cluster import Fig13Scale
from repro.bench.perf_gate import (
    DEFAULT_THRESHOLDS,
    BudgetMeasurement,
    PerfMeasurement,
    evaluate_budget,
    evaluate_gate,
    load_thresholds,
    measure,
    measure_scale,
    run_perf_gate,
    write_results,
)

TINY = Fig13Scale(num_gpus=2, duration=12.0, peak_rate=4.0, bucket=4.0)


def fake(fast=1.0, ref=4.0, finished=500, tokens=10_000):
    return PerfMeasurement(
        scenario="fake", seed=0, fast_wall_s=fast, ref_wall_s=ref,
        finished_requests=finished, tokens_generated=tokens,
        events_processed=1234, sim_duration_s=60.0,
    )


def fake_budget(scenario="fig13_1m", wall=10.0, events=100_000):
    return BudgetMeasurement(
        scenario=scenario, seed=0, fraction=0.02, n_requests=20_000,
        gen_wall_s=0.1, fast_wall_s=wall, finished_requests=20_000,
        failed_requests=0, tokens_generated=200_000,
        events_processed=events, sim_duration_s=500.0,
    )


class TestEvaluateGate:
    def test_passes_when_all_thresholds_met(self):
        assert evaluate_gate([fake(), fake(fast=1.05)]) == []

    def test_speedup_floor(self):
        failures = evaluate_gate([fake(fast=2.0)])  # 2x < 3x floor
        assert len(failures) == 1 and "speedup" in failures[0]

    def test_throughput_floor(self):
        failures = evaluate_gate([fake(finished=10)])  # 10 req/s < 150
        assert len(failures) == 1 and "throughput" in failures[0]

    def test_variance_bound(self):
        failures = evaluate_gate([fake(fast=1.0, ref=40.0), fake(fast=1.5, ref=40.0)])
        assert len(failures) == 1 and "variance" in failures[0]

    def test_worst_round_gates(self):
        # One good round must not mask a bad one.
        failures = evaluate_gate([fake(), fake(fast=1.1, ref=2.0)])
        assert any("speedup" in f for f in failures)

    def test_threshold_overrides(self):
        assert evaluate_gate([fake(fast=2.0)], {"min_speedup": 1.5}) == []

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            evaluate_gate([])


class TestEvaluateBudget:
    def test_passes_within_budget(self):
        assert evaluate_budget([fake_budget()]) == []

    def test_wall_budget_exceeded(self):
        failures = evaluate_budget([fake_budget(wall=120.0)])
        assert any("over budget" in f for f in failures)

    def test_events_per_s_floor(self):
        failures = evaluate_budget([fake_budget(wall=50.0, events=1000)])
        assert any("events/s" in f for f in failures)

    def test_unknown_scenario_fails_loudly(self):
        failures = evaluate_budget([fake_budget(scenario="nonesuch")])
        assert any("no budget" in f for f in failures)

    def test_budget_overrides(self):
        tight = {"fig13_1m": {"max_wall_s": 1.0}}
        failures = evaluate_budget([fake_budget(wall=2.0)], tight)
        assert any("over budget" in f for f in failures)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            evaluate_budget([])


class TestJsonRoundTrip:
    def test_write_and_load(self, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        payload = write_results([fake()], path, {"min_speedup": 2.5})
        data = json.loads(path.read_text())
        assert data == payload
        assert data["thresholds"]["min_speedup"] == 2.5
        (result,) = data["results"]
        assert result["speedup"] == 4.0
        assert result["fast_requests_per_s"] == 500.0
        th = load_thresholds(path)
        assert th["min_speedup"] == 2.5
        # Unspecified keys fall back to defaults.
        assert th["max_variance"] == DEFAULT_THRESHOLDS["max_variance"]

    def test_missing_file_uses_defaults(self, tmp_path):
        assert load_thresholds(tmp_path / "absent.json") == DEFAULT_THRESHOLDS

    def test_checked_in_file_is_consistent(self):
        from repro.bench.perf_gate import BENCH_JSON

        data = json.loads(BENCH_JSON.read_text())
        assert set(data) == {"thresholds", "results"}
        assert data["thresholds"]["min_speedup"] >= 3.0
        budgets = data["thresholds"]["budgets"]
        speedup_rows = [r for r in data["results"] if r.get("kind") != "budget"]
        budget_rows = [r for r in data["results"] if r.get("kind") == "budget"]
        assert speedup_rows and budget_rows
        for result in speedup_rows:
            assert result["speedup"] >= data["thresholds"]["min_speedup"]
        for result in budget_rows:
            budget = budgets[result["scenario"]]
            assert result["fast_wall_s"] <= budget["max_wall_s"]
            assert result["events_per_s"] >= budget["min_events_per_s"]
            # Every request reached a terminal state in the recorded run.
            assert (
                result["finished_requests"] + result["failed_requests"]
                == result["n_requests"]
            )

    def test_budget_thresholds_merge_nested(self, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        path.write_text(json.dumps({
            "thresholds": {"budgets": {"fig13_1m": {"max_wall_s": 99.0}}},
            "results": [],
        }))
        th = load_thresholds(path)
        assert th["budgets"]["fig13_1m"]["max_wall_s"] == 99.0
        # Keys the override omits keep their defaults.
        default = DEFAULT_THRESHOLDS["budgets"]["fig13_1m"]
        assert th["budgets"]["fig13_1m"]["min_events_per_s"] == default["min_events_per_s"]
        assert th["min_speedup"] == DEFAULT_THRESHOLDS["min_speedup"]


class TestMeasurePlumbing:
    def test_measure_tiny_scale(self):
        m = measure(seed=0, scale=TINY, scenario="tiny")
        assert m.finished_requests > 0
        assert m.tokens_generated > 0
        assert m.fast_wall_s > 0 and m.ref_wall_s > 0
        data = m.to_json()
        assert data["scenario"] == "tiny"
        assert data["finished_requests"] == m.finished_requests

    def test_run_perf_gate_renders(self, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        table, _ = run_perf_gate(
            seed=0, rounds=1, scale=TINY, json_path=path, write_json=True
        )
        text = table.render()
        assert "Perf gate" in text and "speedup" in text
        assert path.exists()

    def test_measure_scale_tiny_fraction(self):
        m = measure_scale(seed=0, fraction=0.0005)  # 500 requests
        assert m.scenario == "fig13_1m"
        assert m.n_requests == 500
        assert m.finished_requests + m.failed_requests == m.n_requests
        assert m.events_per_s > 0
        data = m.to_json()
        assert data["kind"] == "budget"
        assert data["fraction"] == 0.0005

    def test_run_perf_gate_budget_scenario(self, tmp_path, monkeypatch):
        import repro.bench.perf_gate as pg

        path = tmp_path / "BENCH_perf.json"
        monkeypatch.setitem(
            pg.DEFAULT_THRESHOLDS["budgets"]["fig13_1m"], "fraction", 0.0005
        )
        table, failures = run_perf_gate(
            seed=0, scenario="fig13_1m", json_path=path, write_json=True
        )
        text = table.render()
        assert "fig13_1m" in text
        assert failures == []
        (row,) = json.loads(path.read_text())["results"]
        assert row["kind"] == "budget" and row["n_requests"] == 500

    def test_run_perf_gate_rejects_unknown_scenario(self):
        with pytest.raises(ValueError):
            run_perf_gate(scenario="nonesuch")


def test_cli_perf_smoke(tmp_path, monkeypatch, capsys):
    """``repro perf`` wires through to the gate (tiny scale, no check)."""
    import repro.bench.perf_gate as pg
    from repro.cli import main

    monkeypatch.setattr(pg, "QUICK", TINY)
    rc = main(["perf", "--rounds", "1", "--out", str(tmp_path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "Perf gate" in out
    assert (tmp_path / "perf_gate.txt").exists()
