"""Tests for the single-GPU serving drivers (simulation and functional)."""

import numpy as np
import pytest

from repro.core.lora import LoraRegistry, random_lora_weights
from repro.hw.kernels import KernelCostModel
from repro.hw.spec import A100_80G
from repro.models.config import LLAMA2_7B, tiny_config
from repro.models.llama import reference_forward_full
from repro.models.weights import random_llama_weights
from repro.runtime.backend import NumpyBackend, SimulatedBackend
from repro.runtime.engine import EngineConfig, GpuEngine
from repro.runtime.request import RequestState
from repro.runtime.serve import requests_from_trace, serve_requests
from repro.workloads.lengths import ShareGptLengths
from repro.workloads.trace import generate_trace


def simulated_engine(same_lora_only=False, serve_lora=True):
    backend = SimulatedBackend(LLAMA2_7B, serve_lora=serve_lora)
    cfg = EngineConfig(max_batch_size=32, same_lora_only=same_lora_only)
    return GpuEngine("gpu0", backend, cfg)


def short_trace(n, distribution, seed=0):
    lengths = ShareGptLengths(max_prompt_len=64, max_response_len=32)
    return generate_trace(n, distribution, seed=seed, lengths=lengths)


class TestSimulatedServing:
    def test_all_requests_finish(self):
        trace = short_trace(20, "uniform")
        reqs = requests_from_trace(trace)
        result = serve_requests(simulated_engine(), reqs)
        assert result.requests_finished == 20
        assert all(r.state is RequestState.FINISHED for r in reqs)
        assert result.tokens_generated == trace.total_response_tokens

    def test_throughput_positive_and_sane(self):
        trace = short_trace(20, "distinct")
        result = serve_requests(simulated_engine(), requests_from_trace(trace))
        assert 10 < result.throughput < 10_000

    def test_multi_lora_beats_single_lora_restriction(self):
        # The core Punica claim at small scale: batching across LoRA models
        # yields higher throughput than same-model-only batching.
        trace = short_trace(30, "distinct")
        punica = serve_requests(simulated_engine(), requests_from_trace(trace))
        baseline = serve_requests(
            simulated_engine(same_lora_only=True), requests_from_trace(trace)
        )
        assert punica.throughput > 2.0 * baseline.throughput
        assert punica.mean_batch_size > baseline.mean_batch_size

    def test_identical_workload_similar_for_both_policies(self):
        trace = short_trace(20, "identical")
        punica = serve_requests(simulated_engine(), requests_from_trace(trace))
        restricted = serve_requests(
            simulated_engine(same_lora_only=True), requests_from_trace(trace)
        )
        assert restricted.throughput == pytest.approx(punica.throughput, rel=0.15)

    def test_open_loop_respects_arrivals(self):
        from repro.workloads.arrivals import PoissonArrivals, constant_rate
        lengths = ShareGptLengths(max_prompt_len=32, max_response_len=16)
        trace = generate_trace(
            50, "uniform", seed=1, lengths=lengths,
            arrivals=PoissonArrivals(rate=constant_rate(2.0), duration=10.0),
        )
        reqs = requests_from_trace(trace)
        result = serve_requests(simulated_engine(), reqs)
        for r in reqs:
            if r.first_token_time is not None:
                assert r.first_token_time >= r.spec.arrival_time

    def test_normalized_latency_metrics(self):
        trace = short_trace(10, "uniform")
        result = serve_requests(simulated_engine(), requests_from_trace(trace))
        lats = result.normalized_latencies()
        assert len(lats) == 10
        assert all(l > 0 for l in lats)
        assert result.percentile_latency(50) <= result.percentile_latency(99)

    def test_mean_batch_size_bounded(self):
        trace = short_trace(40, "uniform")
        result = serve_requests(simulated_engine(), requests_from_trace(trace))
        assert 1.0 <= result.mean_batch_size <= 32.0


class TestFunctionalServing:
    def make_functional(self, num_loras=2, seed=0):
        cfg = tiny_config(hidden_size=32, num_layers=2, num_heads=4, vocab_size=64)
        weights = random_llama_weights(cfg, seed=seed)
        registry = LoraRegistry()
        for i in range(num_loras):
            registry.register(
                random_lora_weights(
                    f"lora-{i}", cfg.num_layers, cfg.proj_dims(), 4, seed=50 + i
                )
            )
        backend = NumpyBackend(weights, registry, total_pages=128, page_size=4, lora_rank=4)
        return cfg, weights, registry, GpuEngine("gpu0", backend, EngineConfig())

    def test_end_to_end_generation_matches_reference(self):
        cfg, weights, registry, engine = self.make_functional()
        lengths = ShareGptLengths(max_prompt_len=6, max_response_len=4)
        trace = generate_trace(4, "uniform", seed=3, lengths=lengths)
        reqs = requests_from_trace(trace, with_prompt_tokens=True, vocab_size=cfg.vocab_size)
        result = serve_requests(engine, reqs)
        assert result.requests_finished == 4
        # Every generated token must be the greedy continuation of the
        # prompt under the request's own LoRA model.
        for req in reqs:
            history = list(req.prompt_tokens)
            for tok in req.generated_tokens:
                logits = reference_forward_full(
                    weights, np.asarray(history), registry, req.lora_id
                )
                assert tok == int(np.argmax(logits))
                history.append(tok)

    def test_functional_with_cost_model_reports_latency(self):
        cfg, _, registry, _ = self.make_functional()
        weights = random_llama_weights(cfg, seed=0)
        backend = NumpyBackend(
            weights, registry, total_pages=128, page_size=4, lora_rank=4,
            cost_model=KernelCostModel(A100_80G),
        )
        engine = GpuEngine("gpu0", backend, EngineConfig())
        lengths = ShareGptLengths(max_prompt_len=6, max_response_len=4)
        trace = generate_trace(2, "identical", seed=5, lengths=lengths)
        reqs = requests_from_trace(trace, with_prompt_tokens=True, vocab_size=cfg.vocab_size)
        result = serve_requests(engine, reqs)
        assert result.duration > 0
        assert result.throughput > 0
