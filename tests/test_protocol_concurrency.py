"""Wire guarantees of the scheduler<->runner protocol under concurrency.

The serving frontend (docs/serving.md) leans on three properties of
:mod:`repro.cluster.protocol` that hold per-request even when many
requests interleave arbitrarily: every generated token is streamed
exactly once, a cancel acknowledges exactly one request exactly once,
and commands apply in the order they were posted. These tests drive a
:class:`~repro.cluster.runner.GpuRunner` through seeded random
interleavings of add/cancel posts and step boundaries and assert the
guarantees over the full message log.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.protocol import (
    AddRequest,
    CancelAck,
    CancelRequest,
    COMMAND_TYPES,
    EVENT_TYPES,
    MessageLog,
    RequestFinished,
    StepStats,
    TokenChunk,
)
from repro.cluster.runner import GpuRunner
from repro.models.config import LLAMA2_7B
from repro.runtime.backend import SimulatedBackend
from repro.runtime.engine import EngineConfig, GpuEngine


def make_runner(max_batch_size: int = 8) -> "tuple[GpuRunner, MessageLog]":
    log = MessageLog()
    engine = GpuEngine(
        "gpu0",
        SimulatedBackend(LLAMA2_7B),
        EngineConfig(max_batch_size=max_batch_size),
    )
    return GpuRunner(engine, log=log), log


def run_interleaved(seed: int, num_requests: int = 24):
    """Post adds and cancels in a seeded random interleaving with steps.

    Returns ``(runner, log, cancelled_ids)``. Roughly a third of the
    requests get a cancel posted at a random later boundary — some while
    queued, some mid-decode, some after they already finished (the ack
    must still be exactly-once in every case the engine accepts).
    """
    rng = np.random.default_rng(seed)
    runner, log = make_runner()
    adds = [
        AddRequest(
            request_id=f"req-{i:03d}",
            lora_id=f"lora-{int(rng.integers(4))}",
            prompt_len=int(rng.integers(4, 40)),
            response_len=int(rng.integers(2, 12)),
        )
        for i in range(num_requests)
    ]
    cancel_ids = {a.request_id for a in adds if rng.random() < 0.34}

    def live_count() -> int:
        """Requests that hold (or will hold) an engine slot — the gate a
        real scheduler applies before posting an AddRequest."""
        live = sum(
            1 for r in runner._requests.values() if not r.state.is_terminal
        )
        return live + sum(1 for c in runner._inbox if isinstance(c, AddRequest))

    pending_cancels = []
    now = 0.0
    i = 0
    while i < len(adds) or pending_cancels or not runner.engine.is_idle:
        # Post a random burst of adds at this boundary, capacity-gated.
        burst = int(rng.integers(0, 4))
        for _ in range(burst):
            if i >= len(adds) or live_count() >= 8:
                break
            runner.post(adds[i])
            if adds[i].request_id in cancel_ids:
                # Cancel fires 1-4 boundaries later.
                pending_cancels.append(
                    [int(rng.integers(1, 5)), adds[i].request_id]
                )
            i += 1
        for entry in list(pending_cancels):
            entry[0] -= 1
            if entry[0] <= 0:
                rid = entry[1]
                req = runner._requests.get(rid)
                if req is not None and not req.state.is_terminal:
                    runner.post(CancelRequest(request_id=rid))
                pending_cancels.remove(entry)
        end = runner.step(now)
        now = end if end is not None else now + 0.01
    return runner, log, cancel_ids


SEEDS = (0, 1, 2, 3)


@pytest.mark.parametrize("seed", SEEDS)
def test_every_token_streamed_exactly_once(seed):
    """Concatenated TokenChunks reproduce each request's generated tokens
    with no duplicates and no gaps, regardless of interleaving."""
    runner, log, _ = run_interleaved(seed)
    streamed: "dict[str, list[int]]" = {}
    for event in log.events_of_type(TokenChunk):
        streamed.setdefault(event.request_id, []).extend(event.tokens)
    for rid, request in runner._requests.items():
        assert streamed.get(rid, []) == list(request.generated_tokens), (
            f"{rid}: streamed tokens diverge from the request's history"
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_token_chunk_times_monotonic_per_request(seed):
    _, log, _ = run_interleaved(seed)
    times: "dict[str, float]" = {}
    for event in log.events_of_type(TokenChunk):
        last = times.get(event.request_id)
        assert last is None or event.time >= last, (
            f"{event.request_id}: token chunk went backwards in time"
        )
        times[event.request_id] = event.time


@pytest.mark.parametrize("seed", SEEDS)
def test_cancel_acks_exactly_one_request_exactly_once(seed):
    """Every posted CancelRequest yields exactly one CancelAck for that
    request id, and no ack appears without a cancel."""
    _, log, _ = run_interleaved(seed)
    posted = [c.request_id for c in log.commands if isinstance(c, CancelRequest)]
    acked = [e.request_id for e in log.events_of_type(CancelAck)]
    assert sorted(acked) == sorted(posted)
    assert len(set(posted)) == len(posted), "duplicate cancel posted"


@pytest.mark.parametrize("seed", SEEDS)
def test_no_tokens_after_finish_or_ack(seed):
    """Terminal events really are terminal on the wire: once a request's
    RequestFinished or CancelAck is emitted, no later TokenChunk names it."""
    _, log, _ = run_interleaved(seed)
    terminal_at: "dict[str, int]" = {}
    for pos, event in enumerate(log.events):
        if isinstance(event, (RequestFinished, CancelAck)):
            terminal_at.setdefault(event.request_id, pos)
    for pos, event in enumerate(log.events):
        if isinstance(event, TokenChunk):
            cut = terminal_at.get(event.request_id)
            assert cut is None or pos < cut, (
                f"{event.request_id}: token streamed after its terminal event"
            )


@pytest.mark.parametrize("seed", SEEDS)
def test_command_order_preserved_and_types_closed(seed):
    """The log records commands in post order (the runner applies the
    inbox FIFO), and nothing outside the protocol's closed type sets ever
    crosses the boundary."""
    _, log, _ = run_interleaved(seed)
    assert all(isinstance(c, COMMAND_TYPES) for c in log.commands)
    assert all(isinstance(e, EVENT_TYPES) for e in log.events)
    # Every request's add precedes its cancel in the command log.
    first_add: "dict[str, int]" = {}
    for pos, command in enumerate(log.commands):
        if isinstance(command, AddRequest):
            first_add.setdefault(command.request_id, pos)
        else:
            assert first_add.get(command.request_id, 1 << 30) < pos, (
                f"cancel for {command.request_id} logged before its add"
            )


@pytest.mark.parametrize("seed", SEEDS)
def test_cancelled_requests_do_not_finish(seed):
    runner, log, _ = run_interleaved(seed)
    acked = {e.request_id for e in log.events_of_type(CancelAck)}
    finished = {e.request_id for e in log.events_of_type(RequestFinished)}
    assert not (acked & finished), "a request both finished and was cancelled"


def test_step_stats_cover_every_productive_step():
    runner, log, _ = run_interleaved(seed=0)
    stats = log.events_of_type(StepStats)
    assert stats, "no StepStats emitted"
    assert all(s.gpu_id == "gpu0" and s.latency > 0 for s in stats)
