"""Tests for LoRA weight containers and the registry."""

import numpy as np
import pytest

from repro.core.lora import (
    LoraLayerWeights,
    LoraModelWeights,
    LoraRegistry,
    TARGET_PROJECTIONS,
    random_lora_weights,
)

PROJ_DIMS = {
    "q": (64, 64),
    "k": (64, 64),
    "v": (64, 64),
    "o": (64, 64),
    "gate": (64, 172),
    "up": (64, 172),
    "down": (172, 64),
}


def make_model(model_id="m0", num_layers=2, rank=4, seed=0):
    return random_lora_weights(model_id, num_layers, PROJ_DIMS, rank, seed=seed)


class TestLoraLayerWeights:
    def test_shapes_and_rank(self):
        w = LoraLayerWeights(wa=np.zeros((64, 4)), wb=np.zeros((4, 128)))
        assert w.rank == 4
        assert w.h_in == 64
        assert w.h_out == 128

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError, match="rank"):
            LoraLayerWeights(wa=np.zeros((64, 4)), wb=np.zeros((8, 128)))

    def test_nbytes_fp16(self):
        w = LoraLayerWeights(wa=np.zeros((64, 4)), wb=np.zeros((4, 128)))
        assert w.nbytes == 2 * (64 * 4 + 4 * 128)

    def test_apply_equals_delta(self):
        rng = np.random.default_rng(0)
        w = LoraLayerWeights(wa=rng.standard_normal((16, 4)), wb=rng.standard_normal((4, 8)))
        x = rng.standard_normal((5, 16))
        np.testing.assert_allclose(w.apply(x), x @ w.delta(), rtol=1e-12)

    def test_delta_has_low_rank(self):
        w = make_model(rank=3).layers[0]["q"]
        assert np.linalg.matrix_rank(w.delta()) <= 3


class TestLoraModelWeights:
    def test_random_factory(self):
        m = make_model(num_layers=3, rank=8)
        assert m.num_layers == 3
        assert m.rank == 8
        assert set(m.layers[0]) == set(TARGET_PROJECTIONS)

    def test_reproducible(self):
        a, b = make_model(seed=42), make_model(seed=42)
        np.testing.assert_array_equal(a.layers[0]["q"].wa, b.layers[0]["q"].wa)

    def test_nbytes_is_sum_of_layers(self):
        m = make_model(num_layers=2)
        assert m.nbytes == m.layer_nbytes(0) + m.layer_nbytes(1)

    def test_small_relative_to_backbone(self):
        # LoRA adds ~0.1-1% of the backbone size (paper §2.2).
        m = make_model(num_layers=2, rank=4)
        backbone_bytes = 2 * sum(h_in * h_out for h_in, h_out in PROJ_DIMS.values()) * 2
        assert m.nbytes < 0.35 * backbone_bytes  # toy dims are small; real ratio ~1%

    def test_missing_projection_rejected(self):
        layer = {p: LoraLayerWeights(np.zeros((4, 2)), np.zeros((2, 4))) for p in ("q", "k")}
        with pytest.raises(ValueError, match="missing"):
            LoraModelWeights(model_id="bad", layers=(layer,))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LoraModelWeights(model_id="bad", layers=())


class TestLoraRegistry:
    def test_register_get(self):
        reg = LoraRegistry()
        m = make_model("tenant-a")
        reg.register(m)
        assert reg.get("tenant-a") is m
        assert "tenant-a" in reg
        assert len(reg) == 1

    def test_duplicate_rejected(self):
        reg = LoraRegistry()
        reg.register(make_model("x"))
        with pytest.raises(ValueError, match="already"):
            reg.register(make_model("x", seed=1))

    def test_unknown_model(self):
        with pytest.raises(KeyError, match="unknown"):
            LoraRegistry().get("nope")

    def test_stack_shapes(self):
        reg = LoraRegistry()
        for i in range(3):
            reg.register(make_model(f"m{i}", seed=i))
        wa, wb = reg.stack(["m0", "m2"], layer=0, proj="q")
        assert wa.shape == (2, 64, 4)
        assert wb.shape == (2, 4, 64)

    def test_stack_preserves_order(self):
        reg = LoraRegistry()
        for i in range(2):
            reg.register(make_model(f"m{i}", seed=i))
        wa, _ = reg.stack(["m1", "m0"], layer=0, proj="q")
        np.testing.assert_array_equal(wa[0], reg.get("m1").layers[0]["q"].wa)

    def test_stack_mixed_rank_rejected(self):
        reg = LoraRegistry()
        reg.register(make_model("r4", rank=4))
        reg.register(make_model("r8", rank=8, seed=1))
        with pytest.raises(ValueError, match="mixed ranks"):
            reg.stack(["r4", "r8"], layer=0, proj="q")

    def test_stack_empty_rejected(self):
        with pytest.raises(ValueError):
            LoraRegistry().stack([], layer=0, proj="q")
