"""Tests for BatchLen and batch planning (paper §5/§6 rules)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.batch import BatchEntry, BatchLen, plan_batch


def prefill(rid, lora, tokens):
    return BatchEntry(request_id=rid, lora_id=lora, num_tokens=tokens, is_prefill=True)


def decode(rid, lora):
    return BatchEntry(request_id=rid, lora_id=lora, num_tokens=1, is_prefill=False)


class TestBatchEntry:
    def test_decode_must_be_one_token(self):
        with pytest.raises(ValueError):
            BatchEntry("r", "l", 2, is_prefill=False)

    def test_positive_tokens(self):
        with pytest.raises(ValueError):
            BatchEntry("r", "l", 0, is_prefill=True)


class TestBatchLen:
    def test_prefill_lengths(self):
        bl = BatchLen(prefill_starts=(0, 5), num_prefill_tokens=9, num_decode=3)
        assert bl.prefill_lengths() == [5, 4]
        assert bl.total_tokens == 12
        assert bl.num_prefill == 2

    def test_no_prefill(self):
        bl = BatchLen(prefill_starts=(), num_prefill_tokens=0, num_decode=8)
        assert bl.total_tokens == 8

    def test_first_start_must_be_zero(self):
        with pytest.raises(ValueError):
            BatchLen(prefill_starts=(1,), num_prefill_tokens=4, num_decode=0)

    def test_inconsistent_tokens(self):
        with pytest.raises(ValueError):
            BatchLen(prefill_starts=(), num_prefill_tokens=3, num_decode=0)


class TestPlanBatch:
    def test_prefill_first_decode_after(self):
        plan = plan_batch([decode("d1", "a"), prefill("p1", "b", 4), decode("d2", "a")])
        kinds = [e.is_prefill for e in plan.entries]
        assert kinds == [True, False, False]
        assert plan.batchlen.num_prefill_tokens == 4
        assert plan.batchlen.num_decode == 2

    def test_decodes_grouped_by_lora(self):
        plan = plan_batch([decode("1", "a"), decode("2", "b"), decode("3", "a")])
        ids = [e.lora_id for e in plan.entries]
        assert ids == ["a", "a", "b"]

    def test_prefill_tail_merges_with_decode_head(self):
        # Paper §6: decode group matching the last prefill's LoRA goes first
        # so the two share one SGMV segment.
        plan = plan_batch(
            [prefill("p", "m2", 3), decode("1", "m1"), decode("2", "m2"), decode("3", "m1")]
        )
        assert [e.lora_id for e in plan.entries] == ["m2", "m2", "m1", "m1"]
        assert plan.seg.tolist() == [0, 4, 6]
        assert plan.segment_lora_ids == ("m2", "m1")

    def test_segments_token_level(self):
        plan = plan_batch([prefill("p", "a", 5), decode("1", "b")])
        assert plan.total_tokens == 6
        assert plan.seg.tolist() == [0, 5, 6]

    def test_batch_size_counts_requests(self):
        plan = plan_batch([prefill("p", "a", 5), decode("1", "b"), decode("2", "b")])
        assert plan.batch_size == 3

    def test_fcfs_within_lora_group(self):
        plan = plan_batch([decode("1", "a"), decode("2", "a"), decode("3", "a")])
        assert [e.request_id for e in plan.entries] == ["1", "2", "3"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            plan_batch([])

    def test_identical_workload_single_segment(self):
        plan = plan_batch([decode(str(i), "only") for i in range(8)])
        assert plan.num_lora_segments == 1
        assert plan.seg.tolist() == [0, 8]

    @given(
        st.lists(
            st.tuples(st.sampled_from(["a", "b", "c"]), st.booleans(), st.integers(1, 6)),
            min_size=1,
            max_size=20,
        )
    )
    def test_plan_invariants(self, raw):
        entries = []
        for i, (lora, is_pref, ntok) in enumerate(raw):
            entries.append(
                BatchEntry(
                    request_id=str(i),
                    lora_id=lora,
                    num_tokens=ntok if is_pref else 1,
                    is_prefill=is_pref,
                )
            )
        plan = plan_batch(entries)
        # Same multiset of requests.
        assert sorted(e.request_id for e in plan.entries) == sorted(
            e.request_id for e in entries
        )
        # Tokens add up and segments cover them exactly.
        assert plan.seg[-1] == plan.total_tokens
        assert plan.total_tokens == sum(e.num_tokens for e in entries)
        # Prefills strictly precede decodes.
        flags = [e.is_prefill for e in plan.entries]
        assert flags == sorted(flags, reverse=True)
        # Adjacent segments always have different LoRA ids.
        for a, b in zip(plan.segment_lora_ids, plan.segment_lora_ids[1:]):
            assert a != b
