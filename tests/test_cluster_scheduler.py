"""Tests for the Punica cluster scheduler's routing, queueing and migration."""

import pytest

from repro.cluster.scheduler import PunicaScheduler, SchedulerConfig
from repro.models.config import LLAMA2_7B
from repro.runtime.backend import SimulatedBackend
from repro.runtime.engine import EngineConfig, GpuEngine
from repro.runtime.request import Request, RequestState
from repro.workloads.trace import RequestSpec


def make_engine(gpu_id, max_batch=4):
    backend = SimulatedBackend(LLAMA2_7B, step_overhead=0.0)
    return GpuEngine(gpu_id, backend, EngineConfig(max_batch_size=max_batch))


def make_request(rid, lora="m0", prompt=16, response=8, arrival=0.0):
    return Request(
        spec=RequestSpec(
            request_id=rid, lora_id=lora, arrival_time=arrival,
            prompt_len=prompt, response_len=response,
        )
    )


def make_scheduler(n_gpus=3, max_batch=4, **cfg):
    engines = [make_engine(f"gpu{i}", max_batch) for i in range(n_gpus)]
    return PunicaScheduler(engines, SchedulerConfig(**cfg) if cfg else None)


class TestRouting:
    def test_first_request_goes_to_highest_uuid(self):
        sched = make_scheduler(3)
        gpu = sched.submit(make_request("r0"), 0.0)
        assert gpu == "gpu2"  # all empty -> tie broken by highest UUID

    def test_subsequent_requests_pack_onto_busiest(self):
        sched = make_scheduler(3)
        gpus = [sched.submit(make_request(f"r{i}"), 0.0) for i in range(3)]
        assert gpus == ["gpu2", "gpu2", "gpu2"]  # consolidation, not balance

    def test_overflow_to_next_gpu_when_full(self):
        sched = make_scheduler(2, max_batch=2)
        gpus = [sched.submit(make_request(f"r{i}"), 0.0) for i in range(3)]
        assert gpus == ["gpu1", "gpu1", "gpu0"]

    def test_queue_when_all_full(self):
        sched = make_scheduler(1, max_batch=1)
        assert sched.submit(make_request("r0"), 0.0) is not None
        assert sched.submit(make_request("r1"), 0.0) is None
        assert sched.queue_depth == 1

    def test_memory_constraint_respected(self):
        engines = [
            GpuEngine(
                "gpu0",
                SimulatedBackend(
                    LLAMA2_7B,
                    kv_capacity_bytes=64 * LLAMA2_7B.kv_bytes_per_token(),
                ),
                EngineConfig(max_batch_size=8),
            )
        ]
        sched = PunicaScheduler(engines)
        assert sched.submit(make_request("big", prompt=100), 0.0) is None
        assert sched.queue_depth == 1

    def test_duplicate_gpu_ids_rejected(self):
        with pytest.raises(ValueError):
            PunicaScheduler([make_engine("g"), make_engine("g")])

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            PunicaScheduler([])


class TestQueueDrain:
    def test_fcfs_drain(self):
        sched = make_scheduler(1, max_batch=2)
        sched.submit(make_request("r0", arrival=0.0), 0.0)
        sched.submit(make_request("r1", arrival=1.0), 1.0)
        r2 = make_request("r2", arrival=2.0)
        r3 = make_request("r3", arrival=3.0)
        sched.submit(r2, 2.0)
        sched.submit(r3, 3.0)
        assert sched.queue_depth == 2
        # Free a slot, drain: r2 (earlier arrival) must be placed first.
        sched.engines["gpu0"].cancel("r0")
        placed = sched.drain_queue(4.0)
        assert placed == ["gpu0"]
        assert sched.engines["gpu0"].has_request("r2")
        assert not sched.engines["gpu0"].has_request("r3")

    def test_cancelled_queued_request_skipped(self):
        sched = make_scheduler(1, max_batch=1)
        sched.submit(make_request("r0"), 0.0)
        r1 = make_request("r1", arrival=1.0)
        sched.submit(r1, 1.0)
        sched.cancel(r1)
        sched.engines["gpu0"].cancel("r0")
        assert sched.drain_queue(2.0) == []
        assert sched.queue_depth == 0


class TestMigration:
    def test_consolidation_moves_light_gpu_to_busy(self):
        sched = make_scheduler(2, max_batch=4, migration_interval=5.0)
        # 3 on gpu1 (busy), then force one onto gpu0 by filling differently.
        for i in range(3):
            sched.submit(make_request(f"busy{i}"), 0.0)
        lone = make_request("lone")
        sched.engines["gpu0"].add_request(lone, 0.0)
        assert sched.engines["gpu0"].working_set_size == 1
        moved = sched.consolidate(1.0)
        assert moved == 1
        assert sched.engines["gpu0"].is_idle
        assert sched.engines["gpu1"].has_request("lone")
        assert sched.num_migrations == 1

    def test_migrated_request_keeps_progress(self):
        sched = make_scheduler(2, max_batch=4)
        for i in range(2):
            sched.submit(make_request(f"busy{i}"), 0.0)
        lone = make_request("lone", response=10)
        engine0 = sched.engines["gpu0"]
        engine0.add_request(lone, 0.0)
        ready = engine0.loader.ready_time("m0")
        engine0.step(ready)
        engine0.step(ready + 1.0)
        assert lone.num_generated == 2
        sched.consolidate(ready + 2.0)
        assert sched.engines["gpu1"].has_request("lone")
        assert lone.num_generated == 2
        assert lone.needs_prefill  # KvCache recomputed on the target (§5.3)
        assert lone.num_migrations == 1

    def test_no_migration_when_disabled(self):
        sched = make_scheduler(2, max_batch=4, consolidation=False)
        sched.engines["gpu0"].add_request(make_request("lone"), 0.0)
        for i in range(2):
            sched.submit(make_request(f"busy{i}"), 0.0)
        assert sched.consolidate(1.0) == 0

    def test_no_migration_to_equally_light_gpu(self):
        # Moving between equally loaded GPUs would not consolidate anything.
        sched = make_scheduler(2, max_batch=4)
        sched.engines["gpu0"].add_request(make_request("a"), 0.0)
        sched.engines["gpu1"].add_request(make_request("b", lora="m1"), 0.0)
        assert sched.consolidate(1.0) == 0


class TestScalingHint:
    def test_scale_up_when_no_light_gpu(self):
        sched = make_scheduler(1, max_batch=2)
        for i in range(2):
            sched.submit(make_request(f"r{i}"), 0.0)
        assert sched.scaling_hint() == "scale-up"

    def test_scale_down_with_idle_gpu(self):
        sched = make_scheduler(2, max_batch=4)
        sched.submit(make_request("r0"), 0.0)
        assert sched.scaling_hint() == "scale-down"

    def test_hold_when_lightly_loaded_but_none_idle(self):
        sched = make_scheduler(2, max_batch=4)
        sched.engines["gpu0"].add_request(make_request("a"), 0.0)
        sched.engines["gpu1"].add_request(make_request("b", lora="m1"), 0.0)
        assert sched.scaling_hint() == "hold"
