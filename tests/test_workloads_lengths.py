"""Tests for the ShareGPT-like length sampler."""

import numpy as np
import pytest

from repro.workloads.lengths import LengthSample, ShareGptLengths


class TestLengthSample:
    def test_total(self):
        s = LengthSample(prompt_len=10, response_len=20)
        assert s.total_len == 30

    def test_invalid(self):
        with pytest.raises(ValueError):
            LengthSample(prompt_len=0, response_len=1)


class TestShareGptLengths:
    def test_reproducible(self):
        d = ShareGptLengths()
        a = d.sample_batch(10, rng=1)
        b = d.sample_batch(10, rng=1)
        assert a == b

    def test_bounds_respected(self):
        d = ShareGptLengths(max_prompt_len=64, max_response_len=32)
        for s in d.sample_batch(500, rng=0):
            assert d.min_len <= s.prompt_len <= 64
            assert d.min_len <= s.response_len <= 32

    def test_marginals_near_sharegpt(self):
        # vLLM-paper moments: mean prompt ~161, mean output ~338 tokens.
        d = ShareGptLengths(max_prompt_len=100_000, max_response_len=100_000)
        batch = d.sample_batch(20_000, rng=0)
        mean_p = np.mean([s.prompt_len for s in batch])
        mean_r = np.mean([s.response_len for s in batch])
        assert 130 < mean_p < 195
        assert 280 < mean_r < 410

    def test_heavy_tail(self):
        d = ShareGptLengths()
        lens = [s.response_len for s in d.sample_batch(5000, rng=0)]
        assert np.percentile(lens, 99) > 4 * np.median(lens)

    def test_single_sample(self):
        s = ShareGptLengths().sample(rng=0)
        assert isinstance(s, LengthSample)

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            ShareGptLengths().sample_batch(-1)

    def test_mean_total_len_analytic(self):
        d = ShareGptLengths()
        assert 400 < d.mean_total_len() < 600

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ShareGptLengths(min_len=0)
        with pytest.raises(ValueError):
            ShareGptLengths(min_len=10, max_prompt_len=5)
