"""Tests for Llama configurations and their size accounting."""

import pytest

from repro.models.config import LLAMA2_7B, LLAMA2_13B, LLAMA2_70B, LlamaConfig, tiny_config
from repro.utils.units import GIB, MB


class TestPresets:
    def test_7b_param_count(self):
        # 6.74B parameters for Llama-2 7B.
        assert LLAMA2_7B.param_count() == pytest.approx(6.74e9, rel=0.02)

    def test_13b_param_count(self):
        assert LLAMA2_13B.param_count() == pytest.approx(13.0e9, rel=0.03)

    def test_70b_param_count(self):
        assert LLAMA2_70B.param_count() == pytest.approx(69e9, rel=0.03)

    def test_70b_uses_gqa(self):
        assert LLAMA2_70B.num_kv_heads == 8
        assert LLAMA2_70B.kv_dim == 1024

    def test_head_dim_128_everywhere(self):
        for cfg in (LLAMA2_7B, LLAMA2_13B, LLAMA2_70B):
            assert cfg.head_dim == 128

    def test_7b_fits_one_a100_80g_with_kvcache_headroom(self):
        # The serving setup: backbone resident + most memory for KvCache.
        assert LLAMA2_7B.weight_bytes() < 15 * GIB

    def test_kv_bytes_per_token_7b(self):
        # 32 layers * 2 * 4096 * 2B = 512 KiB/token.
        assert LLAMA2_7B.kv_bytes_per_token() == 32 * 2 * 4096 * 2

    def test_gqa_shrinks_kvcache(self):
        # 70B with GQA: per-token KV smaller than naive scaling would give.
        assert LLAMA2_70B.kv_bytes_per_token() == 80 * 2 * 8 * 128 * 2


class TestLoraSizing:
    def test_lora_about_one_percent_of_backbone(self):
        # Paper §2.2: each LoRA adds 0.1%-1% of the model weight.
        ratio = LLAMA2_7B.lora_bytes(16) / LLAMA2_7B.weight_bytes()
        assert 0.001 < ratio < 0.02

    def test_lora_load_unit_matches_paper(self):
        # §5.2: whole-model LoRA load ~2ms at ~25GB/s -> tens of MB.
        assert 20 * MB < LLAMA2_7B.lora_bytes(16) < 80 * MB

    def test_lora_scales_linearly_with_rank(self):
        assert LLAMA2_7B.lora_bytes(32) == 2 * LLAMA2_7B.lora_bytes(16)

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            LLAMA2_7B.lora_bytes(0)


class TestProjDims:
    def test_all_seven_projections(self):
        dims = LLAMA2_7B.proj_dims()
        assert set(dims) == {"q", "k", "v", "o", "gate", "up", "down"}
        assert dims["q"] == (4096, 4096)
        assert dims["down"] == (11008, 4096)

    def test_gqa_kv_projections(self):
        dims = LLAMA2_70B.proj_dims()
        assert dims["k"] == (8192, 1024)
        assert dims["q"] == (8192, 8192)


class TestValidation:
    def test_indivisible_heads_rejected(self):
        with pytest.raises(ValueError):
            LlamaConfig(
                name="bad", hidden_size=100, intermediate_size=10,
                num_layers=1, num_heads=3, num_kv_heads=3,
            )

    def test_kv_heads_must_divide(self):
        with pytest.raises(ValueError):
            LlamaConfig(
                name="bad", hidden_size=64, intermediate_size=10,
                num_layers=1, num_heads=4, num_kv_heads=3,
            )

    def test_tiny_config_valid(self):
        cfg = tiny_config()
        assert cfg.param_count() > 0
        assert cfg.head_dim * cfg.num_heads == cfg.hidden_size

    def test_tiny_config_gqa(self):
        cfg = tiny_config(num_heads=4, num_kv_heads=2)
        assert cfg.kv_dim == cfg.head_dim * 2
