"""Tests for the four popularity distributions of §7."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workloads.popularity import (
    POPULARITY_NAMES,
    assign_lora_ids,
    num_models_for,
    segment_sizes_for,
    uniform_counts,
    zipf_counts,
)


class TestZipfCounts:
    def test_sums_to_n(self):
        assert sum(zipf_counts(1000)) == 1000

    def test_alpha_ratio(self):
        # The i-th most popular gets ~alpha x the (i+1)-th's requests.
        counts = zipf_counts(10_000, alpha=1.5)
        assert counts[0] / counts[1] == pytest.approx(1.5, rel=0.05)

    def test_sorted_descending(self):
        counts = zipf_counts(500)
        assert counts == sorted(counts, reverse=True)

    def test_no_zeros(self):
        assert all(c > 0 for c in zipf_counts(7))

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            zipf_counts(10, alpha=1.0)

    @given(st.integers(1, 2000))
    def test_sum_property(self, n):
        assert sum(zipf_counts(n)) == n


class TestUniformCounts:
    def test_sqrt_models(self):
        # Paper: given n requests, use ceil(sqrt(n)) models.
        assert len(uniform_counts(64)) == 8
        assert len(uniform_counts(65)) == 9

    def test_even_split(self):
        counts = uniform_counts(64)
        assert max(counts) - min(counts) <= 1
        assert sum(counts) == 64

    @given(st.integers(1, 5000))
    def test_properties(self, n):
        counts = uniform_counts(n)
        assert sum(counts) == n
        assert len(counts) == math.isqrt(n) + (0 if math.isqrt(n) ** 2 == n else 1)


class TestSegmentSizesFor:
    def test_distinct(self):
        assert segment_sizes_for("distinct", 5) == [1] * 5

    def test_identical(self):
        assert segment_sizes_for("identical", 32) == [32]

    def test_unknown_distribution(self):
        with pytest.raises(ValueError, match="unknown"):
            segment_sizes_for("zipfian", 8)

    @pytest.mark.parametrize("dist", POPULARITY_NAMES)
    @pytest.mark.parametrize("bs", [1, 2, 16, 32, 64])
    def test_always_sums_to_batch(self, dist, bs):
        assert sum(segment_sizes_for(dist, bs)) == bs

    def test_num_models_ordering(self):
        # distinct >= skewed/uniform >= identical in model count.
        bs = 64
        assert num_models_for("distinct", bs) == 64
        assert num_models_for("identical", bs) == 1
        assert 1 < num_models_for("uniform", bs) < 64
        assert 1 < num_models_for("skewed", bs) < 64


class TestAssignLoraIds:
    def test_count_and_naming(self):
        ids = assign_lora_ids(100, "uniform", rng=0)
        assert len(ids) == 100
        assert all(i.startswith("lora-") for i in ids)
        assert len(set(ids)) == 10  # ceil(sqrt(100))

    def test_distinct_all_unique(self):
        ids = assign_lora_ids(25, "distinct", rng=0)
        assert len(set(ids)) == 25

    def test_identical_single_model(self):
        ids = assign_lora_ids(25, "identical", rng=0)
        assert set(ids) == {"lora-0"}

    def test_shuffle_reproducible(self):
        assert assign_lora_ids(50, "skewed", rng=3) == assign_lora_ids(50, "skewed", rng=3)

    def test_unshuffled_grouped(self):
        ids = assign_lora_ids(10, "uniform", shuffle=False)
        # Grouped: each model forms one contiguous run.
        transitions = sum(1 for a, b in zip(ids, ids[1:]) if a != b)
        assert transitions == len(set(ids)) - 1
