"""Tests for KvPool byte accounting and PagedKvData real storage."""

import numpy as np
import pytest

from repro.kvcache.pool import KvPool, PagedKvData, kv_bytes_per_token


class TestKvBytesPerToken:
    def test_llama7b_value(self):
        # 32 layers, 32 kv heads, 128 head dim, fp16: 512 KiB per token.
        assert kv_bytes_per_token(32, 32, 128) == 32 * 2 * 32 * 128 * 2

    def test_invalid(self):
        with pytest.raises(ValueError):
            kv_bytes_per_token(0, 1, 1)


class TestKvPool:
    def make(self, capacity=16 * 1024, page_size=4, bpt=16):
        return KvPool(capacity_bytes=capacity, page_size=page_size, bytes_per_token=bpt)

    def test_total_pages_from_bytes(self):
        pool = self.make()  # page = 64 B -> 256 pages
        assert pool.total_pages == 256

    def test_admission_headroom(self):
        pool = KvPool(capacity_bytes=8 * 16, page_size=4, bytes_per_token=16)  # 2 pages
        assert pool.can_admit(8)
        assert not pool.can_admit(8, headroom_tokens=1)

    def test_used_bytes(self):
        pool = self.make()
        pool.allocate("r", 5)  # 2 pages of 4 tokens @16B
        assert pool.used_bytes() == 2 * 4 * 16

    def test_append_token(self):
        pool = self.make()
        pool.allocate("r", 4)
        assert pool.can_append_token("r")
        pool.append_token("r")
        assert pool.seq_len("r") == 5

    def test_free(self):
        pool = self.make()
        pool.allocate("r", 4)
        pool.free("r")
        assert "r" not in pool
        assert pool.free_tokens == pool.total_pages * pool.page_size

    def test_capacity_too_small(self):
        with pytest.raises(ValueError, match="no"):
            KvPool(capacity_bytes=10, page_size=4, bytes_per_token=16)

    def test_export_import_roundtrip(self):
        src = self.make()
        dst = self.make()
        src.allocate("r", 9)
        tokens = src.export_sequence("r")
        assert tokens == 9
        assert "r" not in src
        dst.import_sequence("r", tokens)
        assert dst.seq_len("r") == 9

    def test_bytes_of(self):
        pool = self.make(bpt=16)
        assert pool.bytes_of(0) == 0.0
        assert pool.bytes_of(9) == 9 * 16.0
        with pytest.raises(ValueError):
            pool.bytes_of(-1)


class TestPagedKvData:
    def make(self):
        return PagedKvData(
            total_pages=8, page_size=4, num_layers=2, num_kv_heads=3, head_dim=5
        )

    def test_write_read_roundtrip(self):
        kv = self.make()
        kv.allocate("r", 6)
        rng = np.random.default_rng(0)
        ks = [rng.standard_normal((3, 5)) for _ in range(6)]
        vs = [rng.standard_normal((3, 5)) for _ in range(6)]
        for pos in range(6):
            for layer in range(2):
                kv.write_token("r", layer, pos, ks[pos], vs[pos])
        k, v = kv.gather("r", layer=1, length=6)
        assert k.shape == (3, 6, 5)
        for pos in range(6):
            np.testing.assert_allclose(k[:, pos, :], ks[pos], rtol=1e-6)
            np.testing.assert_allclose(v[:, pos, :], vs[pos], rtol=1e-6)

    def test_roundtrip_survives_page_recycling(self):
        # Free one sequence, allocate another on the recycled pages, and
        # verify a third sequence's data is untouched.
        kv = self.make()
        kv.allocate("a", 8)
        kv.allocate("keep", 4)
        k_keep = np.full((3, 5), 7.0)
        for pos in range(4):
            for layer in range(2):
                kv.write_token("keep", layer, pos, k_keep, k_keep)
        kv.free("a")
        kv.allocate("b", 8)
        for pos in range(8):
            for layer in range(2):
                kv.write_token("b", layer, pos, np.zeros((3, 5)), np.zeros((3, 5)))
        k, _ = kv.gather("keep", layer=0, length=4)
        np.testing.assert_array_equal(k, np.broadcast_to(k_keep[:, None, :], (3, 4, 5)))

    def test_written_len_counts_full_layers(self):
        kv = self.make()
        kv.allocate("r", 4)
        kv.write_token("r", 0, 0, np.zeros((3, 5)), np.zeros((3, 5)))
        assert kv.written_len("r") == 0  # layer 1 not written yet
        kv.write_token("r", 1, 0, np.zeros((3, 5)), np.zeros((3, 5)))
        assert kv.written_len("r") == 1

    def test_position_beyond_pages_rejected(self):
        kv = self.make()
        kv.allocate("r", 4)
        with pytest.raises(IndexError):
            kv.write_token("r", 0, 4, np.zeros((3, 5)), np.zeros((3, 5)))

    def test_append_slot_extends(self):
        kv = self.make()
        kv.allocate("r", 4)
        kv.append_slot("r")
        kv.write_token("r", 0, 4, np.ones((3, 5)), np.ones((3, 5)))

    def test_bad_shapes_rejected(self):
        kv = self.make()
        kv.allocate("r", 4)
        with pytest.raises(ValueError):
            kv.write_token("r", 0, 0, np.zeros((2, 5)), np.zeros((3, 5)))

    def test_gather_beyond_length_rejected(self):
        kv = self.make()
        kv.allocate("r", 4)
        with pytest.raises(IndexError):
            kv.gather("r", 0, 5)
