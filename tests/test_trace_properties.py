"""Property tests: trace invariants hold on *any* seeded workload.

The golden harness pins a few specific runs; these tests let hypothesis
pick the workload (seed, rate, batch size, fault plan, colocated vs
disaggregated pool) and check the structural invariants every trace must
satisfy:

* per-request event times are monotone in ``(time, seq)`` order and the
  lifecycle is ordered: SUBMIT <= PLACE <= first decode <= terminal;
* every submitted request reaches exactly one terminal event
  (FINISH / SHED / CANCEL) — none lost, none double-finished;
* the latency breakdown's phase components sum to the end-to-end latency
  exactly (the analysis walk tiles the timeline by construction).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.disagg import DisaggConfig, DisaggSimulator
from repro.cluster.faults import FaultInjector, FaultKind, FaultSpec
from repro.cluster.scheduler import SchedulerConfig
from repro.cluster.simulator import ClusterSimulator
from repro.models.config import LLAMA2_7B
from repro.obs import Tracer, compute_breakdowns
from repro.obs.tracer import EventKind, TERMINAL_KINDS
from repro.runtime.backend import SimulatedBackend
from repro.runtime.engine import EngineConfig, GpuEngine
from repro.workloads.arrivals import PoissonArrivals, constant_rate
from repro.workloads.lengths import ShareGptLengths
from repro.workloads.trace import generate_trace

SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _engine(i: int, max_batch_size: int) -> GpuEngine:
    return GpuEngine(
        f"gpu{i:02d}",
        SimulatedBackend(LLAMA2_7B, step_overhead=0.05),
        EngineConfig(max_batch_size=max_batch_size),
    )


def _run(
    seed: int, rate: float, max_batch_size: int, crash: bool, disagg: bool
) -> Tracer:
    duration = 2.0
    trace = generate_trace(
        int(rate * duration) + 8, "skewed", seed=seed,
        lengths=ShareGptLengths(max_prompt_len=32, max_response_len=6),
        arrivals=PoissonArrivals(rate=constant_rate(rate), duration=duration),
    )
    injector = None
    if crash:
        specs = [FaultSpec(kind=FaultKind.GPU_CRASH, time=0.8)]
        if disagg:
            specs.append(
                FaultSpec(kind=FaultKind.KV_TRANSFER_FAIL, time=0.4)
            )
        injector = FaultInjector(specs, seed=seed)
    tracer = Tracer()
    if disagg:
        # 2 prefill + 2 decode: a crash can kill either role's GPU
        # without emptying its pool, so the handoff machinery keeps
        # running (and re-routing) after the fault.
        sim = DisaggSimulator(
            [_engine(i, max_batch_size) for i in range(2)],
            [_engine(i, max_batch_size) for i in range(2, 4)],
            config=DisaggConfig(decode_queue_limit=2),
            fault_injector=injector,
            tracer=tracer,
        )
    else:
        sim = ClusterSimulator(
            [_engine(i, max_batch_size) for i in range(2)],
            SchedulerConfig(migration_interval=0.5, light_load_fraction=0.5),
            fault_injector=injector,
            tracer=tracer,
        )
    sim.run(trace)
    return tracer


workloads = st.tuples(
    st.integers(min_value=0, max_value=10_000),   # seed
    st.sampled_from([4.0, 8.0, 16.0]),            # rate (req/s)
    st.integers(min_value=2, max_value=6),        # max batch size
    st.booleans(),                                # crash a GPU mid-run?
    st.booleans(),                                # disaggregated pool?
)


def _per_request(tracer: Tracer):
    per: "dict[str, list]" = {}
    for event in tracer.sorted_events():
        if event.request_id is not None:
            per.setdefault(event.request_id, []).append(event)
    return per


@given(workloads)
@SETTINGS
def test_request_lifecycle_is_ordered(params):
    tracer = _run(*params)
    for rid, timeline in _per_request(tracer).items():
        assert timeline[0].kind is EventKind.SUBMIT, rid
        times = [e.time for e in timeline]
        assert times == sorted(times), f"{rid}: unsorted event times {times}"

        submit_t = timeline[0].time
        place_t = next(
            (e.time for e in timeline if e.kind is EventKind.PLACE), None
        )
        first_decode_t = next(
            (e.time for e in timeline if e.kind is EventKind.DECODE_STEP), None
        )
        terminal_t = next(
            e.time for e in timeline if e.kind in TERMINAL_KINDS
        )
        if place_t is not None:
            assert submit_t <= place_t <= terminal_t, rid
        if first_decode_t is not None:
            assert place_t is not None and place_t <= first_decode_t, rid
            assert first_decode_t <= terminal_t, rid


@given(workloads)
@SETTINGS
def test_exactly_one_terminal_per_request(params):
    tracer = _run(*params)
    for rid, timeline in _per_request(tracer).items():
        terminals = [e for e in timeline if e.kind in TERMINAL_KINDS]
        assert len(terminals) == 1, (
            f"{rid}: {len(terminals)} terminal events "
            f"{[e.kind.value for e in terminals]}"
        )
        assert terminals[0] is timeline[-1], (
            f"{rid}: events after terminal "
            f"{[e.kind.value for e in timeline]}"
        )


@given(workloads)
@SETTINGS
def test_breakdown_components_sum_to_latency(params):
    tracer = _run(*params)
    breakdowns = compute_breakdowns(tracer)
    assert breakdowns
    for rid, bd in breakdowns.items():
        delta = abs(bd.components_sum() - bd.total)
        assert delta <= 1e-9, (
            f"{rid}: phases {bd.phases} sum to {bd.components_sum()}, "
            f"end-to-end is {bd.total} (delta {delta})"
        )
        for name, value in bd.phases.items():
            assert value >= 0.0, f"{rid}: negative {name} component {value}"
