"""Tests for the discrete-event loop."""

import pytest

from repro.cluster.events import EventLoop


class TestEventLoop:
    def test_time_ordering(self):
        loop = EventLoop()
        fired = []
        loop.schedule(3.0, lambda t: fired.append(("c", t)))
        loop.schedule(1.0, lambda t: fired.append(("a", t)))
        loop.schedule(2.0, lambda t: fired.append(("b", t)))
        loop.run()
        assert fired == [("a", 1.0), ("b", 2.0), ("c", 3.0)]

    def test_fifo_within_same_time(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, lambda t: fired.append("first"))
        loop.schedule(1.0, lambda t: fired.append("second"))
        loop.run()
        assert fired == ["first", "second"]

    def test_actions_schedule_more_events(self):
        loop = EventLoop()
        fired = []

        def recurse(t):
            fired.append(t)
            if t < 3.0:
                loop.schedule(t + 1.0, recurse)

        loop.schedule(1.0, recurse)
        loop.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_until_leaves_future_events(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, lambda t: fired.append(t))
        loop.schedule(10.0, lambda t: fired.append(t))
        end = loop.run(until=5.0)
        assert fired == [1.0]
        assert end == 5.0
        assert loop.pending == 1

    def test_resume_after_until(self):
        loop = EventLoop()
        fired = []
        loop.schedule(10.0, lambda t: fired.append(t))
        loop.run(until=5.0)
        loop.run()
        assert fired == [10.0]

    def test_cannot_schedule_in_past(self):
        loop = EventLoop()
        loop.schedule(5.0, lambda t: None)
        loop.run()
        with pytest.raises(ValueError):
            loop.schedule(1.0, lambda t: None)

    def test_schedule_after(self):
        loop = EventLoop()
        fired = []
        loop.schedule(2.0, lambda t: loop.schedule_after(3.0, lambda u: fired.append(u)))
        loop.run()
        assert fired == [5.0]

    def test_max_events(self):
        loop = EventLoop()
        fired = []
        for i in range(10):
            loop.schedule(float(i), lambda t: fired.append(t))
        loop.run(max_events=4)
        assert len(fired) == 4
        assert loop.processed == 4
