"""Wire-format tests for the client<->server protocol (repro.serve.protocol)."""

import json

import pytest

from repro.serve.protocol import (
    AcceptedFrame,
    CancelOp,
    EndFrame,
    ErrorFrame,
    GenerateOp,
    TokenFrame,
    decode_frame,
    encode_frame,
)


FRAMES = [
    GenerateOp(request_id="r1", tenant="t", lora_id="m", prompt_len=8,
               response_len=4),
    GenerateOp(request_id="r2", lora_id="m", prompt_len=2, response_len=2,
               prompt_tokens=(1, 2)),
    CancelOp(request_id="r1"),
    AcceptedFrame(request_id="r1"),
    TokenFrame(request_id="r1", token=17, index=3, time=1.5),
    EndFrame(request_id="r1", status="cancelled", num_tokens=3),
    ErrorFrame(request_id="r1", code=429, reason="rate_limited"),
]


@pytest.mark.parametrize("frame", FRAMES, ids=lambda f: type(f).__name__)
def test_round_trip(frame):
    encoded = encode_frame(frame)
    assert encoded.endswith(b"\n") and encoded.count(b"\n") == 1
    assert decode_frame(encoded) == frame
    assert decode_frame(encoded.decode()) == frame  # str path too


def test_encoding_is_canonical():
    """Sorted keys, compact separators — session logs diff cleanly."""
    line = encode_frame(TokenFrame(request_id="r", token=1, index=0, time=0.5))
    obj = json.loads(line)
    assert list(obj) == sorted(obj)
    assert b" " not in line.strip()


def test_none_fields_are_dropped():
    op = GenerateOp(request_id="r", lora_id="m", prompt_len=4, response_len=2)
    assert "prompt_tokens" not in json.loads(encode_frame(op))


def test_prompt_tokens_decode_as_tuple():
    op = decode_frame(
        b'{"lora_id":"m","op":"generate","prompt_len":2,"prompt_tokens":[5,7],'
        b'"request_id":"r","response_len":3,"tenant":""}'
    )
    assert op.prompt_tokens == (5, 7)


def test_effective_tenant_defaults_to_lora():
    op = GenerateOp(request_id="r", lora_id="m", prompt_len=1, response_len=1)
    assert op.effective_tenant == "m"
    named = GenerateOp(request_id="r", tenant="t", lora_id="m",
                       prompt_len=1, response_len=1)
    assert named.effective_tenant == "t"


@pytest.mark.parametrize("line", [
    b"not json\n",
    b'["a","list"]\n',
    b'{"op":"selfdestruct"}\n',
    b'{"event":"nope"}\n',
    b'{"op":"generate","lora_id":"m","prompt_len":0,"response_len":1}\n',
    b'{"op":"generate","prompt_len":1,"response_len":1}\n',  # missing lora
    b'{"op":"cancel"}\n',  # missing request_id
    b'{"op":"generate","lora_id":"m","prompt_len":1,"response_len":1,'
    b'"surprise":true}\n',  # unknown field
])
def test_malformed_frames_raise_value_error(line):
    with pytest.raises(ValueError):
        decode_frame(line)


def test_oversized_frame_rejected():
    line = b'{"op":"cancel","request_id":"' + b"x" * (1 << 20) + b'"}\n'
    with pytest.raises(ValueError, match="exceeds"):
        decode_frame(line)


def test_validation():
    with pytest.raises(ValueError):
        GenerateOp(request_id="r", lora_id="m", prompt_len=0, response_len=1)
    with pytest.raises(ValueError):
        GenerateOp(request_id="r", lora_id="", prompt_len=1, response_len=1)
    with pytest.raises(ValueError):
        CancelOp(request_id="")
