"""Tests for latency breakdowns and SLO statistics."""

import pytest

from repro.models.config import LLAMA2_7B
from repro.runtime.backend import SimulatedBackend
from repro.runtime.engine import EngineConfig, GpuEngine
from repro.runtime.latency import (
    LatencyBreakdown,
    LatencyStats,
    breakdown_of,
    slo_attainment,
)
from repro.runtime.request import Request
from repro.runtime.serve import requests_from_trace, serve_requests
from repro.workloads.lengths import ShareGptLengths
from repro.workloads.trace import RequestSpec, generate_trace


def finished_request(arrival=0.0, admitted=1.0, first=2.0, finish=6.0, tokens=5):
    req = Request(spec=RequestSpec("r", "m", arrival, 8, tokens))
    req.mark_running("gpu0", admitted)
    for i in range(tokens):
        req.record_token(i, first if i == 0 else finish)
    req.mark_finished(finish)
    return req


class TestLatencyBreakdown:
    def test_phases(self):
        b = breakdown_of(finished_request())
        assert b.queue_wait == 1.0
        assert b.time_to_first_token == 2.0
        assert b.decode_time == 4.0
        assert b.total == 6.0
        assert b.normalized == pytest.approx(1.2)

    def test_inter_token_time(self):
        b = breakdown_of(finished_request(tokens=5))
        assert b.inter_token_time == pytest.approx(1.0)

    def test_single_token(self):
        b = breakdown_of(finished_request(first=2.0, finish=2.0, tokens=1))
        assert b.inter_token_time == 0.0

    def test_unfinished_rejected(self):
        req = Request(spec=RequestSpec("r", "m", 0.0, 8, 4))
        with pytest.raises(ValueError):
            breakdown_of(req)

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyBreakdown("r", 0.0, 0.0, 0.0, 1.0, num_tokens=0)
        with pytest.raises(ValueError):
            LatencyBreakdown("r", -1.0, 0.0, 0.0, 1.0, num_tokens=1)


class TestLatencyStats:
    def run_fleet(self, n=12):
        trace = generate_trace(
            n, "uniform", seed=0,
            lengths=ShareGptLengths(max_prompt_len=32, max_response_len=16),
        )
        engine = GpuEngine(
            "gpu0", SimulatedBackend(LLAMA2_7B), EngineConfig(max_batch_size=8)
        )
        reqs = requests_from_trace(trace)
        serve_requests(engine, reqs)
        return reqs

    def test_aggregate(self):
        reqs = self.run_fleet()
        stats = LatencyStats.from_requests(reqs)
        assert stats.count == 12
        assert 0 < stats.p50_normalized <= stats.p99_normalized
        assert stats.mean_ttft > 0
        assert stats.mean_queue_wait >= 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LatencyStats.from_requests([])

    def test_slo_attainment_bounds(self):
        reqs = self.run_fleet()
        assert slo_attainment(reqs, 1e-9) == 0.0
        assert slo_attainment(reqs, 1e9) == 1.0
        mid = slo_attainment(reqs, LatencyStats.from_requests(reqs).p50_normalized)
        assert 0.4 <= mid <= 0.7

    def test_slo_validation(self):
        with pytest.raises(ValueError):
            slo_attainment([], 0.0)
