"""Parity between the unified MetricsRegistry and the legacy time series.

``ClusterMetrics`` keeps its original per-series view (what the Fig 13
plotting code consumes) *and* mirrors every ``record_*`` call into its
per-run :class:`~repro.obs.metrics.MetricsRegistry`. These tests pin the
contract that both views report exactly the same totals, and that metric
state is instance-scoped: two back-to-back runs of the same seed report
identical numbers (no module-level counters bleeding across runs).
"""

from __future__ import annotations

import pytest

from repro.adapters.registry import Tier
from repro.cluster.metrics import ClusterMetrics
from repro.obs import run_scenario


def _assert_parity(metrics: ClusterMetrics) -> None:
    reg = metrics.registry

    assert reg.get("requests_arrived_total").total() == len(metrics.arrivals)
    assert reg.get("tokens_generated_total").total() == pytest.approx(
        metrics.total_tokens()
    )

    hits = metrics.adapter_hit_counts()
    loads = reg.get("adapter_loads_total")
    for tier in ("gpu", "host", "disk"):
        assert loads.value(tier=tier) == hits[tier], tier
    assert loads.total() == len(metrics.adapter_loads)

    assert reg.get("adapter_evictions_total").total() == metrics.eviction_count()
    assert reg.get("adapter_prefetch_issues_total").total() == len(
        metrics.prefetch_issues
    )
    assert reg.get("adapter_prefetch_hits_total").total() == len(
        metrics.prefetch_hits
    )

    assert reg.get("pcie_busy_seconds_total").total() == pytest.approx(
        metrics.pcie_busy_seconds()
    )
    pcie_hist = reg.get("pcie_transfer_seconds")
    assert pcie_hist.count == len(metrics.pcie_busy)
    assert pcie_hist.sum == pytest.approx(metrics.pcie_busy_seconds())

    assert reg.get("faults_injected_total").total() == metrics.fault_count()
    assert reg.get("replacements_total").total() == metrics.replacement_count()
    assert reg.get("sheds_total").total() == metrics.shed_count()

    recovery = reg.get("recovery_latency_seconds")
    assert recovery.count == len(metrics.recoveries)
    if recovery.count:
        assert recovery.mean() == pytest.approx(metrics.mean_recovery_latency())

    # Per-GPU step counters cover exactly the GPUs the series saw.
    steps = reg.get("engine_steps_total")
    for gpu_id, series in metrics.gpu_batch_size.items():
        assert steps.value(gpu=gpu_id) == len(series)

    # SLO control-plane counters mirror their series views.
    assert reg.get("slo_attained_total").total() == metrics.slo_attained_count()
    assert reg.get("slo_missed_total").total() == metrics.slo_missed_count()
    assert reg.get("slo_sheds_total").total() == metrics.slo_shed_count()
    headroom = reg.get("slo_deadline_headroom_seconds")
    assert headroom.count == len(metrics.slo_admits)
    if headroom.count:
        assert headroom.mean() == pytest.approx(metrics.mean_admit_headroom())

    reg.assert_finite()


@pytest.mark.parametrize("scenario", ["cluster_migration", "faults", "slo"])
def test_registry_matches_legacy_series(scenario):
    result = run_scenario(scenario, seed=0)
    assert result.metrics is not None
    _assert_parity(result.metrics)


def test_registry_parity_survives_prometheus_render():
    """Rendering must be a pure read — totals unchanged afterwards."""
    metrics = run_scenario("cluster_migration", seed=0).metrics
    before = metrics.registry.to_json()
    text = metrics.registry.render_prometheus()
    assert "# TYPE repro_requests_arrived_total counter" in text
    assert metrics.registry.to_json() == before


def test_back_to_back_runs_report_identical_numbers():
    """Reset isolation: nothing module-level carries over between runs."""
    first = run_scenario("faults", seed=0).metrics
    second = run_scenario("faults", seed=0).metrics
    assert first is not second
    assert first.registry is not second.registry
    assert first.registry.to_json() == second.registry.to_json()
    assert first.registry.render_prometheus() == second.registry.render_prometheus()


def test_fresh_metrics_instances_share_no_state():
    a, b = ClusterMetrics(), ClusterMetrics()
    a.record_arrival(0.0)
    a.record_adapter_load(0.0, Tier.HOST)
    assert len(b.arrivals) == 0
    assert b.registry.get("requests_arrived_total").total() == 0.0
    assert b.registry.get("adapter_loads_total").total() == 0.0
    # The schema itself is identical on every fresh instance.
    assert a.registry.names() == b.registry.names()


def test_full_schema_declared_up_front():
    """An idle run still exposes every instrument (at zero)."""
    registry = ClusterMetrics().registry
    assert "adapter_evictions_total" in registry
    assert "recovery_latency_seconds" in registry
    assert "slo_attained_total" in registry
    assert "slo_missed_total" in registry
    assert "slo_sheds_total" in registry
    assert "slo_deadline_headroom_seconds" in registry
    snapshot = registry.to_json()
    assert len(snapshot) == len(registry.names())
    text = registry.render_prometheus()
    assert "repro_sheds_total 0.0" in text
    assert "repro_slo_sheds_total 0.0" in text


def test_slo_series_tolerate_out_of_order_recording():
    """The SLO router records at two interleaved clocks (loop events vs
    fast-path step completions running ahead); the series re-sorts."""
    metrics = ClusterMetrics()
    metrics.record_slo_admit(1.5, 0.2)
    metrics.record_slo_admit(1.0, -0.1)
    metrics.record_slo_admit(1.25, 0.05)
    assert list(metrics.slo_admits.times) == [1.0, 1.25, 1.5]
    assert list(metrics.slo_admits.values) == [-0.1, 0.05, 0.2]
    hist = metrics.registry.get("slo_deadline_headroom_seconds")
    assert hist.count == 3
