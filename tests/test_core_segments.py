"""Tests for segment-index arithmetic."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.segments import (
    group_requests_by_lora,
    segment_sizes,
    segments_from_lora_ids,
    segments_from_sizes,
    validate_segments,
)

sizes_strategy = st.lists(st.integers(min_value=1, max_value=16), min_size=1, max_size=32)


class TestSegmentsFromSizes:
    def test_basic(self):
        assert segments_from_sizes([2, 1, 3]).tolist() == [0, 2, 3, 6]

    def test_single(self):
        assert segments_from_sizes([5]).tolist() == [0, 5]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            segments_from_sizes([])

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            segments_from_sizes([1, 0, 2])

    @given(sizes_strategy)
    def test_roundtrip_property(self, sizes):
        seg = segments_from_sizes(sizes)
        assert segment_sizes(seg).tolist() == sizes

    @given(sizes_strategy)
    def test_valid_property(self, sizes):
        seg = segments_from_sizes(sizes)
        validate_segments(seg, batch_size=sum(sizes))


class TestValidateSegments:
    def test_nonzero_start_rejected(self):
        with pytest.raises(ValueError, match="start at 0"):
            validate_segments(np.array([1, 2]))

    def test_non_increasing_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            validate_segments(np.array([0, 2, 2]))

    def test_batch_size_mismatch(self):
        with pytest.raises(ValueError, match="cover"):
            validate_segments(np.array([0, 3]), batch_size=4)

    def test_too_short(self):
        with pytest.raises(ValueError):
            validate_segments(np.array([0]))

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            validate_segments(np.array([[0, 1]]))


class TestSegmentsFromLoraIds:
    def test_runs(self):
        seg, ids = segments_from_lora_ids(["a", "a", "b", "a"])
        assert seg.tolist() == [0, 2, 3, 4]
        assert ids == ["a", "b", "a"]

    def test_all_same(self):
        seg, ids = segments_from_lora_ids(["x"] * 5)
        assert seg.tolist() == [0, 5]
        assert ids == ["x"]

    def test_all_distinct(self):
        seg, ids = segments_from_lora_ids(list("abcd"))
        assert seg.tolist() == [0, 1, 2, 3, 4]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            segments_from_lora_ids([])


class TestGroupRequestsByLora:
    def test_grouping(self):
        perm = group_requests_by_lora(["b", "a", "b", "a"])
        assert perm.tolist() == [0, 2, 1, 3]

    def test_stability_within_model(self):
        # FCFS order within each model must be preserved.
        ids = ["m1", "m2", "m1", "m2", "m1"]
        perm = group_requests_by_lora(ids)
        grouped = [ids[i] for i in perm]
        assert grouped == ["m1", "m1", "m1", "m2", "m2"]
        m1_positions = [i for i in perm if ids[i] == "m1"]
        assert m1_positions == sorted(m1_positions)

    def test_empty(self):
        assert group_requests_by_lora([]).size == 0

    @given(st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=40))
    def test_permutation_property(self, ids):
        perm = group_requests_by_lora(ids)
        assert sorted(perm.tolist()) == list(range(len(ids)))
        grouped = [ids[i] for i in perm]
        # After grouping, each id forms exactly one contiguous run.
        seg, run_ids = segments_from_lora_ids(grouped)
        assert len(run_ids) == len(set(ids))
