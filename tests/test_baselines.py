"""Tests for baseline framework profiles and the static-batching engine."""

import pytest

from repro.baselines.framework import (
    ALL_BASELINES,
    ALL_SYSTEMS,
    DEEPSPEED,
    FASTER_TRANSFORMER,
    HF_TRANSFORMERS,
    PUNICA,
    VLLM,
    FrameworkProfile,
    build_engine,
)
from repro.baselines.static_engine import StaticBatchEngine
from repro.models.config import LLAMA2_7B
from repro.models.perf import PerfFlags
from repro.runtime.engine import GpuEngine
from repro.runtime.request import Request, RequestState
from repro.runtime.serve import requests_from_trace, serve_requests
from repro.workloads.lengths import ShareGptLengths
from repro.workloads.trace import RequestSpec, generate_trace


def make_request(rid, lora="m0", prompt=16, response=4):
    return Request(
        spec=RequestSpec(
            request_id=rid, lora_id=lora, arrival_time=0.0,
            prompt_len=prompt, response_len=response,
        )
    )


def short_trace(n, distribution, seed=0):
    lengths = ShareGptLengths(max_prompt_len=64, max_response_len=24)
    return generate_trace(n, distribution, seed=seed, lengths=lengths)


class TestProfiles:
    def test_only_punica_batches_multi_lora(self):
        assert PUNICA.multi_lora_batching
        assert not any(p.multi_lora_batching for p in ALL_BASELINES)

    def test_backbone_only_systems(self):
        assert not VLLM.serves_lora
        assert not FASTER_TRANSFORMER.serves_lora
        assert HF_TRANSFORMERS.serves_lora and DEEPSPEED.serves_lora

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            FrameworkProfile(
                name="bad", display_name="x", batching="magic",
                serves_lora=True, multi_lora_batching=False, flags=PerfFlags(),
            )
        with pytest.raises(ValueError):
            FrameworkProfile(
                name="bad", display_name="x", batching="static",
                serves_lora=False, multi_lora_batching=True, flags=PerfFlags(),
            )

    def test_build_engine_types(self):
        assert isinstance(build_engine(PUNICA, LLAMA2_7B), GpuEngine)
        assert isinstance(build_engine(VLLM, LLAMA2_7B), GpuEngine)
        assert isinstance(build_engine(HF_TRANSFORMERS, LLAMA2_7B), StaticBatchEngine)
        assert isinstance(build_engine(DEEPSPEED, LLAMA2_7B), StaticBatchEngine)

    def test_baseline_lora_switching_free(self):
        engine = build_engine(VLLM, LLAMA2_7B)
        req = make_request("r0", lora="anything")
        engine.add_request(req, now=0.0)
        assert engine.loader.is_ready("anything", now=0.0)


class TestStaticBatchEngine:
    def test_batch_runs_until_all_finish(self):
        engine = build_engine(FASTER_TRANSFORMER, LLAMA2_7B)
        short = make_request("short", response=2)
        long = make_request("long", response=8)
        engine.add_request(short, 0.0)
        engine.add_request(long, 0.0)
        now, reports = 0.0, []
        while not engine.is_idle:
            r = engine.step(now)
            assert r is not None
            reports.append(r)
            now = r.end
        assert short.state is RequestState.FINISHED
        assert long.state is RequestState.FINISHED
        # Wasted lanes: after `short` finishes, batch_size stays 2.
        decode_sizes = [r.batch_size for r in reports if r.num_decode]
        assert all(s == 2 for s in decode_sizes)
        # 1 prefill + 7 decode steps (long generates 8 tokens total).
        assert len(reports) == 8

    def test_no_admission_while_batch_active(self):
        engine = build_engine(FASTER_TRANSFORMER, LLAMA2_7B)
        engine.add_request(make_request("r0", response=4), 0.0)
        engine.step(0.0)  # seals + prefills
        assert not engine.can_accept(make_request("r1"))

    def test_same_lora_only_in_one_batch(self):
        engine = build_engine(DEEPSPEED, LLAMA2_7B)
        engine.add_request(make_request("r0", lora="a"), 0.0)
        assert not engine.can_accept(make_request("r1", lora="b"))
        assert engine.can_accept(make_request("r2", lora="a"))

    def test_wasted_fraction_tracks_finished_lanes(self):
        engine = build_engine(FASTER_TRANSFORMER, LLAMA2_7B)
        engine.add_request(make_request("short", response=1), 0.0)
        engine.add_request(make_request("long", response=5), 0.0)
        engine.step(0.0)  # prefill finishes `short` immediately
        assert engine.wasted_step_fraction() == pytest.approx(0.5)

    def test_cancel(self):
        engine = build_engine(FASTER_TRANSFORMER, LLAMA2_7B)
        req = make_request("r0")
        engine.add_request(req, 0.0)
        engine.cancel("r0")
        assert req.state is RequestState.CANCELLED
        assert engine.is_idle

    def test_tokens_not_counted_for_finished_lanes(self):
        engine = build_engine(FASTER_TRANSFORMER, LLAMA2_7B)
        engine.add_request(make_request("short", response=2), 0.0)
        engine.add_request(make_request("long", response=6), 0.0)
        now, tokens = 0.0, 0
        while not engine.is_idle:
            r = engine.step(now)
            tokens += r.tokens_generated
            now = r.end
        assert tokens == 8  # 2 + 6, no tokens for wasted steps


class TestFig11Shape:
    """End-to-end single-GPU comparison shapes from Fig 11."""

    def run(self, profile, trace):
        engine = build_engine(profile, LLAMA2_7B)
        return serve_requests(engine, requests_from_trace(trace), keep_steps=False)

    def test_punica_beats_all_baselines_on_distinct(self):
        trace = short_trace(40, "distinct")
        punica = self.run(PUNICA, trace)
        for profile in ALL_BASELINES:
            baseline = self.run(profile, trace)
            assert punica.throughput > 3.0 * baseline.throughput, profile.name

    def test_vllm_wins_identical_by_a_hair(self):
        # Fig 11: vLLM backbone-only slightly beats Punica in Identical
        # because Punica pays the LoRA addon.
        trace = short_trace(40, "identical")
        punica = self.run(PUNICA, trace)
        vllm = self.run(VLLM, trace)
        assert vllm.throughput > punica.throughput
        assert vllm.throughput < 1.35 * punica.throughput

    def test_punica_consistent_across_workloads(self):
        results = {
            dist: self.run(PUNICA, short_trace(40, dist)).throughput
            for dist in ("distinct", "uniform", "skewed", "identical")
        }
        assert max(results.values()) < 1.8 * min(results.values())

    def test_hf_slowest_even_on_identical(self):
        trace = short_trace(20, "identical")
        hf = self.run(HF_TRANSFORMERS, trace)
        for profile in (DEEPSPEED, FASTER_TRANSFORMER, VLLM):
            other = self.run(profile, trace)
            assert other.throughput > hf.throughput, profile.name

    def test_continuous_beats_static_on_identical_long_responses(self):
        # vLLM/Punica's separable KvCache avoids Fig 6's wasted steps. The
        # advantage shows when decode dominates (realistic response lengths);
        # with very short responses static whole-batch prefill can win.
        trace = generate_trace(96, "identical", seed=0)  # full ShareGPT lengths
        vllm = self.run(VLLM, trace)
        ft = self.run(FASTER_TRANSFORMER, trace)
        assert vllm.throughput > 1.5 * ft.throughput
