"""FCFS fairness properties of the serving drivers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.config import LLAMA2_7B
from repro.runtime.backend import SimulatedBackend
from repro.runtime.engine import EngineConfig, GpuEngine
from repro.runtime.request import Request, RequestState
from repro.runtime.serve import serve_requests
from repro.workloads.trace import RequestSpec


def make_requests(specs):
    return [
        Request(
            spec=RequestSpec(
                request_id=f"r{i:03d}", lora_id=lora, arrival_time=float(arr),
                prompt_len=prompt, response_len=resp,
            )
        )
        for i, (arr, lora, prompt, resp) in enumerate(specs)
    ]


def make_engine(max_batch=4):
    return GpuEngine(
        "gpu0",
        SimulatedBackend(LLAMA2_7B, step_overhead=0.0),
        EngineConfig(max_batch_size=max_batch),
    )


class TestFcfsProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(0.0, 5.0, allow_nan=False),
                st.sampled_from(["a", "b"]),
                st.integers(1, 64),
                st.integers(1, 16),
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_admission_order_is_arrival_order(self, raw):
        reqs = make_requests(raw)
        serve_requests(make_engine(), reqs)
        finished = [r for r in reqs if r.state is RequestState.FINISHED]
        assert len(finished) == len(reqs)
        # First admission times must be nondecreasing in arrival order.
        by_arrival = sorted(reqs, key=lambda r: (r.spec.arrival_time, r.request_id))
        admits = [r.first_admitted_time for r in by_arrival]
        assert all(a is not None for a in admits)
        assert all(b >= a - 1e-9 for a, b in zip(admits, admits[1:]))

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_token_conservation(self, seed):
        rng = np.random.default_rng(seed)
        specs = [
            (0.0, "a", int(rng.integers(1, 32)), int(rng.integers(1, 12)))
            for _ in range(6)
        ]
        reqs = make_requests(specs)
        result = serve_requests(make_engine(), reqs)
        assert result.tokens_generated == sum(resp for _, _, _, resp in specs)
        for req, (_, _, _, resp) in zip(reqs, specs):
            assert req.num_generated == resp

    def test_head_of_line_blocks_admission(self):
        # A huge head request that does not fit must not be overtaken by a
        # small later request (strict FCFS, §5.1).
        bpt = LLAMA2_7B.kv_bytes_per_token()
        backend = SimulatedBackend(LLAMA2_7B, kv_capacity_bytes=128 * bpt)
        engine = GpuEngine("gpu0", backend, EngineConfig(max_batch_size=4))
        big = make_requests([(0.0, "a", 4096, 4)])[0]  # never fits
        small = make_requests([(1.0, "a", 8, 4)])[0]
        small.spec = RequestSpec("small", "a", 1.0, 8, 4)
        result = serve_requests(engine, [big, small], max_steps=50)
        assert big.state is RequestState.QUEUED
        assert small.state is RequestState.QUEUED  # blocked behind the head
        assert result.tokens_generated == 0
