"""Tests for heterogeneous-rank LoRA stacking (zero-padded SGMV)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lora import LoraRegistry, random_lora_weights
from repro.core.ops import add_lora_sgmv
from repro.core.segments import segments_from_sizes
from repro.utils.rng import new_rng

PROJ_DIMS = {
    "q": (32, 32), "k": (32, 32), "v": (32, 32), "o": (32, 32),
    "gate": (32, 88), "up": (32, 88), "down": (88, 32),
}


def make_registry(ranks):
    reg = LoraRegistry()
    for i, r in enumerate(ranks):
        reg.register(
            random_lora_weights(f"m{i}", 1, PROJ_DIMS, rank=r, seed=200 + i)
        )
    return reg


class TestStackPadded:
    def test_shapes_padded_to_max_rank(self):
        reg = make_registry([4, 8, 2])
        wa, wb = reg.stack_padded(["m0", "m1", "m2"], 0, "q")
        assert wa.shape == (3, 32, 8)
        assert wb.shape == (3, 8, 32)

    def test_padding_is_exact(self):
        # Zero-padding must leave each model's A @ B delta unchanged.
        reg = make_registry([4, 8])
        wa, wb = reg.stack_padded(["m0", "m1"], 0, "q")
        for i, mid in enumerate(["m0", "m1"]):
            original = reg.get(mid).layers[0]["q"].delta()
            np.testing.assert_allclose(wa[i] @ wb[i], original, rtol=1e-12)

    def test_sgmv_with_mixed_ranks_matches_per_model(self):
        reg = make_registry([2, 8, 4])
        ids = ["m0", "m1", "m2"]
        seg = segments_from_sizes([2, 1, 3])
        rng = new_rng(0)
        x = rng.standard_normal((6, 32))
        wa, wb = reg.stack_padded(ids, 0, "q")
        y = np.zeros((6, 32))
        add_lora_sgmv(y, x, wa, wb, seg)
        for i, mid in enumerate(ids):
            lo, hi = int(seg[i]), int(seg[i + 1])
            expected = x[lo:hi] @ reg.get(mid).layers[0]["q"].delta()
            np.testing.assert_allclose(y[lo:hi], expected, rtol=1e-5, atol=1e-9)

    def test_uniform_ranks_equal_strict_stack(self):
        reg = make_registry([4, 4])
        wa_p, wb_p = reg.stack_padded(["m0", "m1"], 0, "gate")
        wa_s, wb_s = reg.stack(["m0", "m1"], 0, "gate")
        np.testing.assert_array_equal(wa_p, wa_s)
        np.testing.assert_array_equal(wb_p, wb_s)

    def test_strict_stack_still_rejects_mixed(self):
        reg = make_registry([4, 8])
        with pytest.raises(ValueError, match="stack_padded"):
            reg.stack(["m0", "m1"], 0, "q")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            make_registry([4]).stack_padded([], 0, "q")

    @given(
        st.lists(st.sampled_from([1, 2, 4, 8]), min_size=1, max_size=5),
        st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_padded_equivalence_property(self, ranks, seed):
        reg = make_registry(ranks)
        ids = [f"m{i}" for i in range(len(ranks))]
        sizes = [1 + (seed + i) % 3 for i in range(len(ranks))]
        seg = segments_from_sizes(sizes)
        rng = new_rng(seed)
        x = rng.standard_normal((int(seg[-1]), 32))
        wa, wb = reg.stack_padded(ids, 0, "o")
        y = np.zeros((x.shape[0], 32))
        add_lora_sgmv(y, x, wa, wb, seg)
        for i, mid in enumerate(ids):
            lo, hi = int(seg[i]), int(seg[i + 1])
            expected = x[lo:hi] @ reg.get(mid).layers[0]["o"].delta()
            np.testing.assert_allclose(y[lo:hi], expected, rtol=1e-5, atol=1e-9)
