"""Tests for the ASCII roofline renderer."""

import pytest

from repro.bench.fig07_roofline import fig07_ascii_plot
from repro.hw.roofline import RooflinePoint, roofline_ascii
from repro.hw.spec import A100_80G


def point(label, intensity, achieved):
    # Construct via flop/io/latency so derived quantities match.
    io = 1e6
    flop = intensity * io
    latency = flop / achieved
    return RooflinePoint(label=label, flop=flop, io_bytes=io, latency=latency)


class TestRooflineAscii:
    def test_dimensions(self):
        art = roofline_ascii(A100_80G, [point("x", 1.0, 1e12)], width=40, height=10)
        lines = art.splitlines()
        # header + height rows + axis + footer
        assert len(lines) == 1 + 10 + 1 + 1
        assert all(len(l) == 41 for l in lines[1:11])  # '|' + width

    def test_points_plotted_with_label_initial(self):
        art = roofline_ascii(A100_80G, [point("zeta", 1.0, 1e12)])
        assert "z" in art

    def test_roof_drawn(self):
        art = roofline_ascii(A100_80G, [point("x", 1.0, 1e12)])
        assert "/" in art and "-" in art

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            roofline_ascii(A100_80G, [])

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            roofline_ascii(A100_80G, [point("x", 1.0, 1e12)], width=5, height=3)

    def test_fig07_plot_contains_all_workloads(self):
        art = fig07_ascii_plot()
        for marker in "dusi":
            assert marker in art


class TestPaperFig11Lengths:
    def test_response_mean_near_101(self):
        import numpy as np
        from repro.workloads.lengths import ShareGptLengths

        lengths = ShareGptLengths.paper_fig11()
        batch = lengths.sample_batch(20_000, rng=0)
        mean_r = np.mean([s.response_len for s in batch])
        assert 85 < mean_r < 120  # paper: ~101k tokens / 1000 requests
