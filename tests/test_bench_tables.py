"""Shape tests for the figure runners (cheap ones; serving figs run in benches).

These guarantee the bench harness keeps producing well-formed tables —
headers stable, rows covering the full parameter grid — so a refactor
can't silently drop half a figure.
"""

import pytest

from repro.bench import run_fig01, run_fig07, run_fig08, run_fig09, run_fig10, run_loader_bench
from repro.bench.reporting import FigureTable


class TestFigureTable:
    def test_add_row_and_column(self):
        t = FigureTable("F", "t", headers=["a", "b"])
        t.add_row(1, 2)
        t.add_row(3, 4)
        assert t.column("b") == [2, 4]

    def test_unknown_column(self):
        t = FigureTable("F", "t", headers=["a"])
        with pytest.raises(ValueError):
            t.column("zzz")

    def test_render_contains_notes(self):
        t = FigureTable("F", "t", headers=["a"])
        t.add_row(1)
        t.add_note("hello")
        assert "note: hello" in t.render()


class TestRunnerGrids:
    def test_fig01_grid(self):
        t = run_fig01()
        assert list(t.headers) == ["stage", "seq_len", "batch_size", "latency_ms"]
        assert len(t.rows) == 2 * 2 * 6  # stages x seq lens x batch sizes
        assert all(lat > 0 for lat in t.column("latency_ms"))

    def test_fig07_grid(self):
        t = run_fig07()
        assert len(t.rows) == 4 * 7  # distributions x batch sizes
        assert set(t.column("distribution")) == {
            "distinct", "uniform", "skewed", "identical",
        }

    def test_fig08_grid(self):
        t = run_fig08()
        assert len(t.rows) == 4 * 7
        for col in ("loop_us", "gather_bmm_us", "sgmv_us"):
            assert all(v > 0 for v in t.column(col))

    def test_fig09_grid(self):
        t = run_fig09()
        assert len(t.rows) == 4 * 4 * 7  # distributions x ranks x batches

    def test_fig10_grid(self):
        t = run_fig10()
        assert len(t.rows) == 2 * 2 * 4 * 6  # models x seqs x dists x batches

    def test_loader_table(self):
        t = run_loader_bench()
        assert t.column("model") == ["llama2-7b", "llama2-13b", "llama2-70b"]

    def test_custom_batch_sizes_respected(self):
        t = run_fig01(batch_sizes=(1, 2))
        assert len(t.rows) == 2 * 2 * 2
