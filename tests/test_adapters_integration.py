"""End-to-end tests: adapter lifecycle threaded through engine, scheduler,
and cluster simulator."""

import pytest

from repro.adapters import Tier
from repro.bench.adapter_cache import (
    AdapterCacheScale,
    build_adapter_cluster,
    mean_cold_ttft,
)
from repro.cluster.scheduler import PunicaScheduler, SchedulerConfig
from repro.models.config import LLAMA2_7B
from repro.runtime.backend import SimulatedBackend
from repro.runtime.engine import EngineConfig, GpuEngine
from repro.runtime.request import Request, RequestSpec, RequestState
from repro.workloads.trace import open_loop_trace

SCALE = AdapterCacheScale(num_gpus=2, rate=5.0, duration=20.0)


def make_request(rid: str, lora_id: str, arrival: float = 0.0) -> Request:
    return Request(
        RequestSpec(
            request_id=rid, lora_id=lora_id, arrival_time=arrival,
            prompt_len=16, response_len=4,
        )
    )


def make_engine(gpu_id: str) -> GpuEngine:
    return GpuEngine(
        gpu_id, SimulatedBackend(LLAMA2_7B), EngineConfig(max_batch_size=4)
    )


class TestLocalityRouting:
    def _warm(self, engine: GpuEngine, lora_id: str) -> None:
        engine.loader.request_load(lora_id, 40e6, now=0.0)
        engine.loader.advance(100.0)

    def test_resident_adapter_beats_higher_uuid(self):
        low, high = make_engine("gpu0"), make_engine("gpu1")
        self._warm(low, "lora-a")
        sched = PunicaScheduler([low, high])
        assert sched.submit(make_request("r0", "lora-a"), now=100.0) == "gpu0"

    def test_locality_disabled_restores_uuid_rule(self):
        low, high = make_engine("gpu0"), make_engine("gpu1")
        self._warm(low, "lora-a")
        sched = PunicaScheduler(
            [low, high], SchedulerConfig(locality_aware=False)
        )
        assert sched.submit(make_request("r0", "lora-a"), now=100.0) == "gpu1"

    def test_working_set_still_dominates_locality(self):
        # §5.1's pack rule is primary; locality only breaks ties.
        low, high = make_engine("gpu0"), make_engine("gpu1")
        self._warm(low, "lora-a")
        sched = PunicaScheduler([low, high])
        high.add_request(make_request("busy", "lora-b"), now=100.0)
        assert sched.submit(make_request("r0", "lora-a"), now=100.0) == "gpu1"


class TestClusterEndToEnd:
    @pytest.fixture(scope="class")
    def run(self):
        trace = open_loop_trace(
            rate=SCALE.rate, duration=SCALE.duration, distribution="skewed",
            seed=3, alpha=SCALE.alpha,
        )
        sim, registry, prefetcher = build_adapter_cluster(
            trace, scale=SCALE, prefetch=True
        )
        result = sim.run(trace)
        return sim, registry, prefetcher, result

    def test_all_requests_finish(self, run):
        _, _, _, result = run
        assert all(r.state is RequestState.FINISHED for r in result.requests)

    def test_adapter_metrics_populated(self, run):
        _, _, _, result = run
        hits = result.metrics.adapter_hit_counts()
        assert sum(hits.values()) == len(result.metrics.adapter_loads)
        assert sum(hits.values()) > 0
        assert 0.0 <= result.metrics.adapter_gpu_hit_rate() <= 1.0
        assert 0.0 <= result.metrics.prefetch_accuracy() <= 1.0
        assert result.metrics.pcie_busy_seconds() > 0.0

    def test_pcie_utilization_series_bounded(self, run):
        _, _, _, result = run
        series = result.metrics.pcie_utilization_series(5.0, result.duration)
        assert series and all(0.0 <= v <= 1.0 for _, v in series)

    def test_registry_saw_live_arrivals(self, run):
        _, registry, _, result = run
        assert sum(m.requests for m in registry.adapters()) == len(
            result.metrics.arrivals
        )

    def test_prefetcher_worked(self, run):
        _, _, prefetcher, _ = run
        assert prefetcher.num_staged > 0
        assert prefetcher.num_promoted > 0

    def test_unified_budget_never_exceeded(self, run):
        sim, _, _, _ = run
        for engine in sim.scheduler.engines.values():
            engine.loader.check_invariant()
            assert engine.adapter_tier("lora-0") in (
                Tier.DISK, Tier.HOST, Tier.GPU
            )

    def test_prefetch_cuts_cold_start_ttft(self):
        trace = open_loop_trace(
            rate=SCALE.rate, duration=SCALE.duration, distribution="skewed",
            seed=3, alpha=SCALE.alpha,
        )
        results = {}
        for prefetch in (False, True):
            sim, _, _ = build_adapter_cluster(
                trace, scale=SCALE, prefetch=prefetch
            )
            results[prefetch] = mean_cold_ttft(sim.run(trace))
        assert results[True] < results[False]
