"""Tests for request lifecycle state transitions."""

import pytest

from repro.runtime.request import Request, RequestState
from repro.workloads.trace import RequestSpec


def make_request(prompt_len=8, response_len=4, arrival=0.0):
    return Request(
        spec=RequestSpec(
            request_id="r0", lora_id="m0", arrival_time=arrival,
            prompt_len=prompt_len, response_len=response_len,
        )
    )


class TestLifecycle:
    def test_initial_state(self):
        r = make_request()
        assert r.state is RequestState.QUEUED
        assert r.needs_prefill
        assert r.num_generated == 0

    def test_run_and_finish(self):
        r = make_request(response_len=2)
        r.mark_running("gpu0")
        r.record_token(5, now=1.0)
        r.record_token(7, now=2.0)
        assert r.reached_limit()
        r.mark_finished(2.0)
        assert r.state is RequestState.FINISHED
        assert r.generated_tokens == [5, 7]

    def test_first_token_time_stamped_once(self):
        r = make_request()
        r.mark_running("gpu0")
        r.record_token(1, now=3.0)
        r.record_token(2, now=4.0)
        assert r.first_token_time == 3.0
        assert r.time_to_first_token() == 3.0

    def test_record_token_requires_running(self):
        r = make_request()
        with pytest.raises(RuntimeError):
            r.record_token(1, now=0.0)


class TestEviction:
    def test_evict_preserves_progress(self):
        r = make_request(prompt_len=10)
        r.mark_running("gpu0")
        r.record_token(1, now=1.0)
        r.record_token(2, now=2.0)
        r.kv_len = 12
        r.evict()
        assert r.state is RequestState.QUEUED
        assert r.generated_tokens == [1, 2]
        assert r.kv_len == 0
        assert r.needs_prefill
        assert r.num_migrations == 1
        # Re-prefill covers prompt + generated tokens (§5.3 recomputation).
        assert r.effective_prompt_len == 12

    def test_evict_requires_running(self):
        with pytest.raises(RuntimeError):
            make_request().evict()


class TestTransferHandoff:
    def test_suspend_preserves_kv_and_progress(self):
        r = make_request(prompt_len=10)
        r.mark_running("gpu0")
        r.needs_prefill = False  # as the engine's prefill step leaves it
        r.record_token(1, now=1.0)
        r.kv_len = 11
        r.suspend_for_transfer()
        assert r.state is RequestState.QUEUED
        assert r.gpu_id is None
        assert r.kv_len == 11
        assert not r.needs_prefill
        # A handoff is not a migration: no KV is recomputed.
        assert r.num_migrations == 0

    def test_suspend_requires_running(self):
        with pytest.raises(RuntimeError):
            make_request().suspend_for_transfer()

    def test_drop_kv_falls_back_to_reprefill(self):
        r = make_request(prompt_len=10)
        r.mark_running("gpu0")
        r.needs_prefill = False
        r.record_token(1, now=1.0)
        r.kv_len = 11
        r.suspend_for_transfer()
        r.drop_kv()
        assert r.kv_len == 0
        assert r.needs_prefill
        assert r.num_migrations == 1
        assert r.effective_prompt_len == 11

    def test_drop_kv_requires_queued(self):
        r = make_request()
        r.mark_running("gpu0")
        with pytest.raises(RuntimeError):
            r.drop_kv()


class TestMetrics:
    def test_normalized_latency(self):
        r = make_request(arrival=10.0, response_len=2)
        r.mark_running("gpu0")
        r.record_token(1, now=12.0)
        r.record_token(2, now=14.0)
        r.mark_finished(14.0)
        assert r.normalized_latency() == pytest.approx(2.0)

    def test_latency_requires_finished(self):
        with pytest.raises(RuntimeError):
            make_request().normalized_latency()
