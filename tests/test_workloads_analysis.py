"""Tests for trace analytics."""

import pytest

from repro.workloads.analysis import (
    empirical_zipf_alpha,
    popularity_histogram,
    summarize_trace,
)
from repro.workloads.lengths import ShareGptLengths
from repro.workloads.trace import Trace, generate_trace, open_loop_trace


class TestSummarizeTrace:
    def test_basic_fields(self):
        trace = generate_trace(200, "uniform", seed=0)
        s = summarize_trace(trace)
        assert s.num_requests == 200
        assert s.num_lora_models == 15  # ceil(sqrt(200))
        assert s.total_tokens == trace.total_prompt_tokens + trace.total_response_tokens
        assert s.p50_prompt_len <= s.p99_prompt_len
        assert s.mean_response_len > 0

    def test_closed_loop_has_zero_rate(self):
        s = summarize_trace(generate_trace(10, "identical", seed=0))
        assert s.duration == 0.0
        assert s.mean_rate == 0.0

    def test_open_loop_rate(self):
        trace = open_loop_trace(rate=5.0, duration=40.0, seed=0)
        s = summarize_trace(trace)
        assert 3.0 < s.mean_rate < 7.0

    def test_top_model_share(self):
        identical = summarize_trace(generate_trace(50, "identical", seed=0))
        assert identical.top_model_share == 1.0
        distinct = summarize_trace(generate_trace(50, "distinct", seed=0))
        assert distinct.top_model_share == pytest.approx(1 / 50)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_trace(Trace())


class TestPopularity:
    def test_histogram_sorted(self):
        trace = generate_trace(300, "skewed", seed=0)
        hist = popularity_histogram(trace)
        counts = [c for _, c in hist]
        assert counts == sorted(counts, reverse=True)
        assert sum(counts) == 300

    def test_zipf_alpha_recovered(self):
        # The Skewed workload is built with alpha=1.5; the estimator should
        # land near it on a large trace.
        trace = generate_trace(3000, "skewed", seed=0)
        alpha = empirical_zipf_alpha(trace)
        assert 1.3 < alpha < 1.7

    def test_uniform_alpha_near_one(self):
        trace = generate_trace(3000, "uniform", seed=0)
        assert 0.95 < empirical_zipf_alpha(trace) < 1.1

    def test_alpha_needs_two_models(self):
        with pytest.raises(ValueError):
            empirical_zipf_alpha(generate_trace(10, "identical", seed=0))
