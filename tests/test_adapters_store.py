"""Tests for the per-GPU adapter store (GPU tier of the residency ladder)."""

import pytest

from repro.adapters.registry import AdapterRegistry, HostTierSpec, Tier
from repro.adapters.store import GpuAdapterStore
from repro.hw.pcie import PCIE_GEN4_X16
from repro.utils.units import MB


def make_registry(*ids, nbytes=40 * MB, host=None):
    reg = AdapterRegistry(host=host or HostTierSpec())
    for lid in ids:
        reg.register(lid, rank=16, nbytes=nbytes)
    return reg


class TestTieredLoading:
    def test_disk_load_chains_staging_and_pcie(self):
        reg = make_registry("a")
        store = GpuAdapterStore(registry=reg)
        plan = store.request_load("a", 40 * MB, now=1.0)
        expected = (
            1.0 + reg.host.staging_time(40 * MB)
            + PCIE_GEN4_X16.transfer_time(40 * MB)
        )
        assert plan.finish == pytest.approx(expected)

    def test_host_load_pays_only_pcie(self):
        reg = make_registry("a")
        reg.ensure_host("a", now=0.0)
        store = GpuAdapterStore(registry=reg)
        now = reg.host_ready("a") + 1.0  # staging settled
        plan = store.request_load("a", 40 * MB, now=now)
        assert plan.finish == pytest.approx(
            now + PCIE_GEN4_X16.transfer_time(40 * MB)
        )

    def test_registry_overrides_caller_nbytes(self):
        reg = make_registry("a", nbytes=80 * MB)
        store = GpuAdapterStore(registry=reg)
        store.request_load("a", 1 * MB, now=0.0)  # caller guesses wrong
        assert store.used_bytes() == 80 * MB

    def test_load_notes_gpu_residency(self):
        reg = make_registry("a")
        store = GpuAdapterStore(registry=reg, gpu_id="gpuX")
        store.request_load("a", 40 * MB, now=0.0)
        assert reg.tier("a", gpu_id="gpuX") is Tier.GPU

    def test_hit_tier_events(self):
        reg = make_registry("a", "b")
        reg.ensure_host("b", now=-10.0)
        store = GpuAdapterStore(registry=reg)
        store.request_load("a", 40 * MB, now=0.0)   # DISK source
        store.request_load("b", 40 * MB, now=0.0)   # HOST source
        store.request_load("a", 40 * MB, now=50.0)  # resident: GPU hit
        loads = [e for e in store.drain_events() if e.kind == "load"]
        assert [int(e.value) for e in loads] == [Tier.DISK, Tier.HOST, Tier.GPU]

    def test_streams_through_when_host_tier_pinned_full(self):
        host = HostTierSpec(capacity_bytes=40 * MB)
        reg = make_registry("a", "b", host=host)
        reg.ensure_host("a", now=0.0)
        reg.note_gpu_resident("a", "other-gpu")  # pins the only host slot
        store = GpuAdapterStore(registry=reg)
        plan = store.request_load("b", 40 * MB, now=100.0)
        # Paid the disk leg via a bounce buffer; no host slot taken.
        assert plan.finish == pytest.approx(
            100.0 + reg.host.staging_time(40 * MB)
            + PCIE_GEN4_X16.transfer_time(40 * MB)
        )
        assert not reg.host_resident("b")


class TestPrefetch:
    def test_prefetch_into_free_bytes(self):
        reg = make_registry("a")
        reg.ensure_host("a", now=-10.0)
        store = GpuAdapterStore(registry=reg, capacity_bytes=100 * MB)
        assert store.prefetch("a", now=0.0)
        assert store.is_resident("a")
        issues = [e for e in store.drain_events() if e.kind == "prefetch_issue"]
        assert len(issues) == 1

    def test_prefetch_never_evicts(self):
        reg = make_registry("old", "new", nbytes=60 * MB)
        store = GpuAdapterStore(registry=reg, capacity_bytes=100 * MB)
        store.request_load("old", 60 * MB, now=0.0)
        assert not store.prefetch("new", now=100.0)  # would need eviction
        assert store.is_resident("old")

    def test_prefetch_resident_noop(self):
        reg = make_registry("a")
        store = GpuAdapterStore(registry=reg)
        store.request_load("a", 40 * MB, now=0.0)
        assert not store.prefetch("a", now=1.0)

    def test_demand_hit_on_prefetched_entry_counts(self):
        reg = make_registry("a")
        reg.ensure_host("a", now=-10.0)
        store = GpuAdapterStore(registry=reg, capacity_bytes=100 * MB)
        store.prefetch("a", now=0.0)
        store.request_load("a", 40 * MB, now=1.0)
        store.request_load("a", 40 * MB, now=2.0)  # second hit doesn't recount
        hits = [e for e in store.drain_events() if e.kind == "prefetch_hit"]
        assert len(hits) == 1

    def test_prefetch_without_metadata_rejected(self):
        store = GpuAdapterStore()
        with pytest.raises(ValueError):
            store.prefetch("ghost", now=0.0)


class TestSharedBudget:
    def test_external_usage_counts_against_capacity(self):
        reg = make_registry("a", nbytes=60 * MB)
        store = GpuAdapterStore(
            registry=reg, capacity_bytes=100 * MB, external_used=lambda: 50 * MB
        )
        assert not store.can_admit_adapter("a", 60 * MB)
        with pytest.raises(MemoryError):
            store.request_load("a", 60 * MB, now=0.0)

    def test_reclaim_evicts_unpinned(self):
        reg = make_registry("a", "b", nbytes=30 * MB)
        store = GpuAdapterStore(registry=reg, capacity_bytes=100 * MB)
        store.request_load("a", 30 * MB, now=0.0)
        store.request_load("b", 30 * MB, now=1.0)
        store.advance(10.0)  # both transfers settled
        assert store.reclaim(80 * MB)
        assert store.used_bytes() <= 20 * MB

    def test_reclaim_fails_on_pinned(self):
        reg = make_registry("a", nbytes=30 * MB)
        store = GpuAdapterStore(registry=reg, capacity_bytes=100 * MB)
        store.request_load("a", 30 * MB, now=0.0)
        store.acquire("a", now=0.0)
        store.advance(10.0)
        assert not store.reclaim(90 * MB)
        assert store.is_resident("a")

    def test_eviction_demotes_to_host_not_disk(self):
        reg = make_registry("old", "new", nbytes=60 * MB)
        store = GpuAdapterStore(registry=reg, capacity_bytes=100 * MB)
        store.request_load("old", 60 * MB, now=0.0)
        store.request_load("new", 60 * MB, now=100.0)  # evicts "old"
        assert not store.is_resident("old")
        assert reg.tier("old") is Tier.HOST  # host copy survives the demotion


class TestSerializedPcie:
    def test_transfers_queue_on_the_link(self):
        store = GpuAdapterStore(serialize_pcie=True)
        p1 = store.request_load("a", 40 * MB, now=0.0)
        p2 = store.request_load("b", 40 * MB, now=0.0)
        assert p2.finish == pytest.approx(
            p1.finish + PCIE_GEN4_X16.transfer_time(40 * MB)
        )

    def test_pcie_idle(self):
        store = GpuAdapterStore()
        assert store.pcie_idle(0.0)
        plan = store.request_load("a", 40 * MB, now=0.0)
        assert not store.pcie_idle(0.0)
        assert store.pcie_idle(plan.finish)


class TestOversizedAdapter:
    def test_clear_error_without_needless_eviction(self):
        store = GpuAdapterStore(capacity_bytes=100 * MB)
        store.request_load("small", 10 * MB, now=0.0)
        with pytest.raises(MemoryError, match="never fit"):
            store.request_load("big", 200 * MB, now=100.0)
        # The error came before any eviction, not after draining the cache.
        assert store.is_resident("small")
        assert store.num_evictions == 0
